"""Setup shim so `pip install -e . --no-build-isolation --no-use-pep517`
works in offline environments that lack the `wheel` package."""

from setuptools import setup

setup()
