"""Ablations: what each OLAccel mechanism is worth (DESIGN.md call-outs).

Removes one mechanism at a time — the per-group outlier MAC (Fig. 7),
quad zero-skipping (Fig. 6), and the pipelined tri-buffer accumulation
(Fig. 10) — and reports the cycle slowdown on the AlexNet workload.
"""

from repro.harness import run_all_ablations


def test_ablations(run_once):
    results = run_once(run_all_ablations, "alexnet")
    by_name = {r.name: r for r in results}
    for r in results:
        print(r.format())
    # Every mechanism must pay for itself on the paper workload.
    assert by_name["outlier-mac"].slowdown > 1.05
    assert by_name["zero-skip"].slowdown > 1.15
    assert by_name["pipelined-accumulation"].slowdown > 1.0
