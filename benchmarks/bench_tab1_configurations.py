"""Table I — ISO-area configurations of Eyeriss, ZeNA and OLAccel.

Regenerates the PE/MAC counts and areas: 165 Eyeriss PEs, 168 ZeNA PEs,
768 OLAccel 4-bit MACs (16-bit comparison) / 576 (8-bit comparison).
"""

from repro.harness import table1_configurations


def test_table1(run_once):
    result = run_once(table1_configurations)
    by_name = result.by_name()
    assert by_name["olaccel16"][0] == 768
    assert by_name["olaccel8"][0] == 576
