"""Extension: the paper's Sec. V prediction on deeper networks.

"Considering the fact that ... OLAccel is superior to ZeNA in the other
layers except the first one, we expect that OLAccel can give much better
performance than ZeNA in deeper networks, e.g., ResNet-101."

This bench runs ResNet-101 (and DenseNet-121) through the same ISO-area
comparison and checks the prediction: the first layer's share of OLAccel's
cycles shrinks, and the cycle reduction vs ZeNA grows beyond ResNet-18's.
"""

from repro.harness import breakdown_experiment


def test_deeper_networks(run_once):
    resnet18 = breakdown_experiment("resnet18")
    resnet101 = run_once(breakdown_experiment, "resnet101")
    densenet = breakdown_experiment("densenet121")
    print(densenet.format())

    # First-layer share shrinks with depth...
    def conv1_share(result):
        cycles = result.layer_cycles("olaccel16")
        return cycles["conv1"] / sum(cycles.values())

    assert conv1_share(resnet101) < conv1_share(resnet18) / 2

    # ...so the advantage over ZeNA grows (the Sec. V prediction).
    red18 = resnet18.reduction("olaccel16", "zena16", "cycles")
    red101 = resnet101.reduction("olaccel16", "zena16", "cycles")
    assert red101 > red18 + 0.05

    # The energy win also persists on both deep networks.
    assert resnet101.reduction("olaccel16", "zena16") > 0.4
    assert densenet.reduction("olaccel16", "zena16") > 0.3
