"""Ablation: PE-group width at constant MAC count (the Fig. 17 decision,
measured end-to-end).

32-wide groups amortize broadcasts over more MACs but hit multi-outlier
spill chunks far more often (Fig. 17), costing end-to-end cycles at the
paper's 5% worst-case outlier ratio. 8-wide groups avoid spills but halve
channel-level SIMD amortization — the paper picks 16 as the balance (and
because modern architectures like ResNeXt limit per-branch channel counts).
"""

from repro.harness import sweep_group_size


def test_group_size(run_once):
    result = run_once(sweep_group_size, "alexnet", 0.05)
    normalized = result.normalized()
    assert normalized[32] > 1.05  # wide groups pay the spill penalty
    assert 0.85 < normalized[8] <= 1.05  # narrow groups are no big cycle win
