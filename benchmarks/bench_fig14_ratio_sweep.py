"""Fig. 14 — normalized energy and cycles vs outlier ratio (AlexNet,
OLAccel16), with mini-model accuracy alongside.

Paper shape: at 3.5% outliers vs 0%, energy rises ~20.6% and cycles
~10.6% while accuracy recovers to within ~1% of full precision.
"""

from repro.harness import fig14_ratio_sweep


def test_fig14(run_once):
    result = run_once(fig14_ratio_sweep)
    by_ratio = {p.ratio: p for p in result.points}
    assert by_ratio[0.0].cycles == 1.0
    assert 1.02 < by_ratio[0.035].cycles < 1.25  # paper: +10.6%
    assert 1.02 < by_ratio[0.035].energy < 1.35  # paper: +20.6%
    # accuracy improves with ratio
    assert by_ratio[0.035].top5 > by_ratio[0.0].top5
