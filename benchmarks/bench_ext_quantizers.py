"""Extension: OAQ vs the Related-Work quantizer families (Sec. VI).

Pits outlier-aware quantization against full-range linear, clipped linear
(DoReFa-style range control), logarithmic (Miyashita et al.) and
balanced (Zhou et al.) quantization at 4 bits on the trained mini model's
weights — the comparison the paper makes in prose.
"""

import numpy as np

from repro.harness import format_table, trained_mini
from repro.quant import compare_quantizers


def run_comparison():
    model = trained_mini("alexnet")
    weights = np.concatenate([l.weight.value.ravel() for l in model.compute_layers()[1:6]])
    return compare_quantizers(weights, bits=4)


def test_quantizer_families(run_once):
    results = run_once(run_comparison)
    rows = [
        (name, f"{m['sqnr_db']:.2f}", f"{m['mse']:.3e}")
        for name, m in sorted(results.items(), key=lambda kv: -kv[1]["sqnr_db"])
    ]
    print()
    print(format_table(["quantizer", "SQNR (dB)", "MSE"], rows,
                       title="4-bit quantizer comparison on trained weights"))
    oaq = results["oaq"]["sqnr_db"]
    assert oaq > results["linear"]["sqnr_db"]
    assert oaq > results["log"]["sqnr_db"]
