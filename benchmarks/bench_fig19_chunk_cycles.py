"""Fig. 19 — distribution of cycles a PE group spends per A(1x1x16)
activation chunk, per AlexNet conv layer.

Paper shape: conv2 (dense activations) peaks near 15-16 cycles; conv4 and
conv5 (sparse) peak near 5 cycles.
"""

from repro.harness import fig19_chunk_cycles


def test_fig19(run_once):
    result = run_once(fig19_chunk_cycles)
    assert 13 <= result.peaks["conv2"] <= 17
    assert 3 <= result.peaks["conv4"] <= 6
    assert 3 <= result.peaks["conv5"] <= 6
