"""Extension: fine-tuning the first layer down to 4-bit weights.

The paper's footnotes 1 and 6: "fine-tuning can reduce the bitwidth of
weights from 8 to 4 bits for the first convolutional layer", which halves
the dense first-layer pass factor and speeds up ResNet-style networks
where that layer dominates OLAccel's cycles.

This bench (a) STE-fine-tunes the mini ResNet with 4-bit first-layer
weights and shows accuracy survives, and (b) quantifies the cycle win on
the paper-shape ResNet-18 when the first layer's weights drop to 4 bits.
"""

from dataclasses import replace

from repro.harness import default_dataset, memory_bytes, paper_workload, trained_mini
from repro.olaccel import OLAccelSimulator, olaccel16
from repro.quant import (
    FinetuneConfig,
    QuantConfig,
    QuantizedModel,
    calibrate_activation_thresholds,
    finetune_quantized,
)


def run_finetune():
    model = trained_mini("resnet")
    data = default_dataset()
    saved = [p.value.copy() for p in model.parameters()]
    quant4 = QuantConfig(ratio=0.03, first_layer_weight_bits=4)
    try:
        cal = calibrate_activation_thresholds(model, data.train_x[:100], ratio=0.03)
        before = QuantizedModel(model, cal, quant4).topk_accuracy(data.test_x, data.test_y, k=5)
        finetune_quantized(model, data.train_x, data.train_y, quant4, FinetuneConfig(epochs=2))
        cal2 = calibrate_activation_thresholds(model, data.train_x[:100], ratio=0.03)
        after = QuantizedModel(model, cal2, quant4).topk_accuracy(data.test_x, data.test_y, k=5)
    finally:
        for p, s in zip(model.parameters(), saved):
            p.value = s
    return before, after


def test_finetune_first_layer(run_once):
    before, after = run_once(run_finetune)
    print(f"\nmini-resnet 4-bit first layer top-5: {before:.3f} -> {after:.3f} after fine-tuning")
    assert after >= before - 0.02  # fine-tuning does not hurt, usually helps

    # Hardware payoff: first layer at 4-bit weights halves its dense factor.
    workload8 = paper_workload("resnet18")
    layers4 = tuple(
        replace(l, first_weight_bits=4) if l.is_first else l for l in workload8.layers
    )
    workload4 = replace(workload8, layers=layers4)
    sim = OLAccelSimulator(olaccel16(memory_bytes("resnet18", 16)))
    cycles8 = sim.simulate_network(workload8).total_cycles
    cycles4 = sim.simulate_network(workload4).total_cycles
    speedup = cycles8 / cycles4
    print(f"resnet18 cycles with 8-bit vs 4-bit first-layer weights: x{speedup:.3f} speedup")
    assert 1.2 < speedup < 2.0  # conv1 was ~half the cycles at 8x factor
