"""Fig. 16 — histogram of the effective outlier-activation ratio under
statically calibrated thresholds (target 3%).

Paper shape: runtime ratios cluster near the calibration target, showing
that offline thresholds from ~100 sample images generalize.
"""

from repro.harness import fig16_outlier_histogram


def test_fig16(run_once):
    result = run_once(fig16_outlier_histogram, images=60)
    assert 0.01 < result.mean_ratio < 0.06  # clusters near 0.03
    for name, ratio in result.per_layer.items():
        assert ratio < 0.1, name
