"""Fig. 17 — probability of multiple outlier weights per SIMD group vs
outlier ratio, for 16/32/64-lane groups.

Paper shape: at a 5% outlier ratio, 32- and 64-wide groups stall on
multiple outliers ~50%+ of the time while 16 lanes stay near 20% — the
reason OLAccel's PE groups are 16 MACs wide.
"""

from repro.harness import fig17_multi_outlier


def test_fig17(run_once):
    result = run_once(fig17_multi_outlier)
    at_5pct = {lanes: series[-1] for lanes, series in result.series.items()}
    assert at_5pct[16] < 0.25
    assert at_5pct[32] > 0.4
    assert at_5pct[64] > 0.8
