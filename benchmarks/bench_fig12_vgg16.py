"""Fig. 12 — VGG-16 cycle and energy breakdown (normalized to Eyeriss16).

Paper headline: OLAccel cuts energy 56.7% (16-bit) / 36.3% (8-bit) vs
ZeNA and cycles 45.3% / 28.3%; the large on-chip memory amplifies the
benefit of 4-bit data.
"""

from repro.harness import breakdown_experiment


def test_fig12_vgg16(run_once):
    result = run_once(breakdown_experiment, "vgg16")
    assert 0.4 < result.reduction("olaccel16", "zena16") < 0.7
    assert 0.05 < result.reduction("olaccel8", "zena8") < 0.55
    assert result.reduction("olaccel16", "zena16", "cycles") > 0.3
