"""Fig. 15 — scalability: speedup vs NPU count at batch 1/4/16
(normalized to ZeNA, batch 1, one NPU).

Paper shape: near-linear scaling at batch 4 and 16; single-batch speedup
saturates toward 16 NPUs; OLAccel batch 4 slightly beats batch 16 at high
NPU counts due to the off-chip bandwidth limit.
"""

from repro.harness import fig15_scalability


def test_fig15(run_once):
    result = run_once(fig15_scalability)
    ol4 = result.series[("olaccel16", 4)]
    ol16 = result.series[("olaccel16", 16)]
    ol1 = result.series[("olaccel16", 1)]
    assert ol4[-1] > ol16[-1]  # bandwidth penalty at batch 16
    assert ol1[-1] / ol1[0] < 12  # single batch saturates
    assert ol4[-1] / ol4[0] > 10  # batch 4 scales well
