"""Fig. 18 — utilization breakdown (run / skip / idle) of AlexNet's conv
layers on OLAccel16.

Paper shape: the active (run) share tracks each layer's nonzero ratio,
and the quad-based zero-skip overhead grows with sparsity, reaching ~20%
in conv4/conv5.
"""

from repro.harness import fig18_utilization


def test_fig18(run_once):
    result = run_once(fig18_utilization)
    rows = {r.layer: r for r in result.rows}
    assert rows["conv2"].run > rows["conv4"].run  # run tracks nonzero
    assert rows["conv4"].skip > 0.1  # sparse layers pay skip cycles
