"""Fig. 11 — AlexNet cycle and energy breakdown (normalized to Eyeriss16).

Paper headline: OLAccel16 cuts energy 43.5% vs ZeNA16 (27.0% at 8 bits),
cycles 31.5% (35.1%), and 71.8% (73.2%) vs Eyeriss; the gain comes mostly
from the memory components.
"""

from repro.harness import breakdown_experiment


def test_fig11_alexnet(run_once):
    result = run_once(breakdown_experiment, "alexnet")
    assert 0.25 < result.reduction("olaccel16", "zena16") < 0.6
    assert 0.05 < result.reduction("olaccel8", "zena8") < 0.5
    assert 0.6 < 1 - result.normalized_cycles()["olaccel16"] < 0.85
