"""Fig. 1 — weight distribution under full-precision, linear, and
outlier-aware quantization (trained conv2 weights).

The paper's point: full-range linear 4-bit quantization wastes its levels
on a handful of outliers; OAQ's fine-grained normal grid recovers several
dB of SQNR at the same bit width.
"""

from repro.harness import fig1_weight_distributions


def test_fig1(run_once):
    result = run_once(fig1_weight_distributions)
    assert result.oaq_sqnr_db > result.linear_sqnr_db + 3.0
    assert 0.0 < result.outlier_ratio < 0.06
