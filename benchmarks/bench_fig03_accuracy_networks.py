"""Fig. 3 — 4-bit OAQ accuracy across networks at the paper's ratios
(AlexNet 3.5%, VGG 1%, ResNet 3%, DenseNet 3%).

Paper shape: every network stays close to its full-precision top-5 under
4-bit OAQ, with 8-bit first-layer weights for the ResNet-style networks.
"""

from repro.harness import fig3_accuracy_networks


def test_fig3(run_once):
    result = run_once(fig3_accuracy_networks)
    assert len(result.rows) == 4
    for row in result.rows:
        assert row.oaq_top5 >= row.fp_top5 - 0.06, row.network
