"""Fig. 2 — accuracy vs outlier ratio for the 4-bit quantized network.

Paper shape: 0% outliers (plain full-range linear 4-bit, no retraining)
loses significant accuracy; by ~3.5% outliers the network is within ~1%
of full precision top-5.
"""

from repro.harness import fig2_accuracy_vs_ratio


def test_fig2(run_once):
    result = run_once(fig2_accuracy_vs_ratio)
    zero = result.points[0]
    best = max(p.top5 for p in result.points if p.ratio >= 0.03)
    assert zero.ratio == 0.0
    assert best > zero.top5  # outliers recover accuracy
    assert best >= result.fp_top5 - 0.03  # close to full precision
