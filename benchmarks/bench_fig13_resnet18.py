"""Fig. 13 — ResNet-18 cycle and energy breakdown (normalized to Eyeriss16).

Paper headline: OLAccel cuts energy 62.2% / 49.5% vs ZeNA and cycles
25.3% / 29.0%; the dense 8x first conv layer (8-bit weights x 16-bit raw
input on 4-bit MACs) occupies about half of OLAccel16's cycles.
"""

from repro.harness import breakdown_experiment


def test_fig13_resnet18(run_once):
    result = run_once(breakdown_experiment, "resnet18")
    assert 0.4 < result.reduction("olaccel16", "zena16") < 0.75
    assert result.reduction("olaccel8", "zena8") > 0.1
    layer_cycles = result.layer_cycles("olaccel16")
    share = layer_cycles["conv1"] / sum(layer_cycles.values())
    assert 0.3 < share < 0.65  # "C1 occupies half the total execution cycle"
