"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports. Experiment bodies are measured with
a single round (they are end-to-end experiment drivers, not microkernels);
pytest-benchmark still records wall-clock so regressions are visible.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark, capsys):
    """Run an experiment exactly once under the benchmark clock and print
    its formatted output so `--benchmark-only -s` shows the figure rows."""

    def runner(func, *args, **kwargs):
        result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
        if hasattr(result, "format"):
            with capsys.disabled():
                print()
                print(result.format())
        return result

    return runner
