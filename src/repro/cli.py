"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig11            # one experiment
    python -m repro run fig11 fig13      # several
    python -m repro run all              # everything (trains mini models
                                         # on first use; cached afterwards)
    python -m repro run fig11 --json out.json   # machine-readable results
    python -m repro run fig11 --csv out.csv     # per-layer CSV rows
    python -m repro ablations            # design-choice ablations
    python -m repro compare resnet101    # breakdown for any zoo network
    python -m repro profile alexnet      # wall-clock + simulated cycles
    python -m repro faults alexnet       # fault-rate + accumulator sweep
    python -m repro bench                # vectorized-vs-scalar benchmarks
    python -m repro explore alexnet      # design-space Pareto search
    python -m repro export alexnet --out results/   # CSV + JSON breakdown
    python -m repro run fig11 --cache-dir ~/.repro-cache   # warm reruns
    python -m repro cache stats --cache-dir ~/.repro-cache # inspect it
    python -m repro serve --spool /tmp/spool --port 8765   # HTTP job server

``run``/``compare`` accept ``--json``/``--csv`` paths; ``profile`` and
``faults`` accept ``--json``. The JSON layout is the versioned
experiment envelope documented in docs/EXPERIMENTS.md. Unknown
experiment ids and networks exit with status 2 and print the available
choices. ``run``/``compare``/``profile``/``faults``/``bench`` take a
global ``--seed`` that overrides every driver's built-in default
(docs/FAULTS.md explains the precedence). ``run``/``compare`` take
``--jobs N`` to simulate independent layers on a multiprocessing pool
(breakdown-style experiments only; bit-identical to the serial default),
and ``bench`` times the vectorized hot paths against their
``slow_reference`` twins, writing a versioned ``BENCH_<date>.json``
(docs/PERFORMANCE.md).

``explore`` (docs/EXPLORE.md) searches accelerator designs under an
``--budget`` area cap and emits the energy/cycles/accuracy Pareto
frontier as a ``repro.explore/v1`` envelope; it shares the resilience
and cache flags below.

Sweep-shaped verbs are **resumable** (docs/RESILIENCE.md): ``run
fig11/12/13``, ``compare``, ``faults`` and ``explore`` take ``--run-dir
DIR`` to checkpoint each cell of the sweep into ``DIR`` under a
manifest, with
per-cell supervision (``--timeout`` seconds per cell, ``--retries``
attempts with exponential backoff); a failing cell is recorded as a
structured CellError and rendered FAILED instead of aborting (exit
status 1 flags partial results). ``repro resume DIR`` re-executes only
the missing/failed cells and reassembles the final envelope
bit-identically to an uninterrupted run (``--no-verify`` skips the
artifact digest checks). ``export`` refuses to overwrite existing
artifacts unless ``--force`` is given.

Checkpointed sweeps are also **distributable** (docs/COORD.md): any
number of ``repro work DIR`` worker processes — one machine or many
sharing a filesystem — cooperatively drain the same run dir, claiming
cells via crash-safe lease files, renewing heartbeats while simulating,
and stealing cells whose owner died; ``repro status DIR`` shows the
per-cell record/lease/owner state. ``--lease-ttl``/``--heartbeat``
tune the protocol (validated at parse time: the TTL must exceed the
heartbeat interval, and any ``--timeout`` plus one heartbeat).

``repro serve`` (docs/SERVE.md) turns the simulator into a long-running
HTTP job service: ``POST /jobs`` accepts versioned ``repro.job/v1``
requests for the sweep-shaped verbs, each job materializes an ordinary
run dir under ``--spool`` (joinable by external ``repro work``
processes), and a killed server resumes unfinished jobs from the spool
on restart. Workers on *other machines* join with ``repro work
--connect http://host:port`` — no shared filesystem, cells travel over
the HTTP work-dispatch protocol (docs/REMOTE.md) — and ``repro status
--connect`` renders every job's per-cell table the same way; ``repro
serve --workers 0`` runs the server as a pure coordinator whose cells
are computed entirely by such remote workers.

Sweep cells are additionally **memoized** (docs/PERFORMANCE.md):
``run``/``compare``/``faults``/``bench``/``explore``/``resume`` take
``--cache-dir DIR`` to persist every simulated cell content-addressed
under DIR — a
repeat invocation with the same configuration replays from the cache and
produces a byte-identical envelope — and ``--no-cache`` to bypass
memoization entirely. ``repro cache stats|clear|prune`` inspects and
maintains the directory. Cache settings travel to ``--jobs`` workers via
the ``REPRO_CACHE_DIR``/``REPRO_NO_CACHE`` environment variables, which
the flags set.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, List

from .harness import (
    breakdown_experiment,
    experiment_csv_rows,
    experiment_envelope,
    fault_sweep,
    fig1_weight_distributions,
    fig2_accuracy_vs_ratio,
    fig3_accuracy_networks,
    fig14_ratio_sweep,
    fig15_scalability,
    fig16_outlier_histogram,
    fig17_multi_outlier,
    fig18_utilization,
    fig19_chunk_cycles,
    profile_network,
    run_all_ablations,
    save_csv,
    save_json,
    set_global_seed,
    sweep_group_size,
    table1_configurations,
)
from .errors import ArtifactIntegrityError, ConfigError
from .harness.explore import (
    DesignSpace,
    ExploreRequest,
    STRATEGIES,
    explore_csv_rows,
    explore_resume,
    explore_run,
    is_explore_run,
)
from .harness.faults import DEFAULT_RATES, DEFAULT_WIDTHS
from .harness.coord import DEFAULT_HEARTBEAT_S, DEFAULT_LEASE_TTL_S, default_owner_id
from .harness.resilience import (
    RetryPolicy,
    RunDir,
    breakdown_plan,
    execute_sweep,
    faults_plan,
    resume_run,
    status_run,
    work_run,
)
from .harness.seeding import global_seed
from .harness.simcache import CACHE_DIR_ENV, NO_CACHE_ENV, SimCache, set_active
from .harness.workloads import MEMORY_TABLE
from .faults.plan import FAULT_MODELS
from .faults.validate import RECOVERY_POLICIES

__all__ = ["main", "EXPERIMENTS"]

#: Experiments that decompose into checkpointable cells (--run-dir).
SWEEPABLE = {"fig11": "alexnet", "fig12": "vgg16", "fig13": "resnet18"}

#: Experiment id -> (runner, description). Runners return objects with
#: ``format()``.
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": (fig1_weight_distributions, "weight distributions: fp vs linear vs OAQ"),
    "fig2": (fig2_accuracy_vs_ratio, "accuracy vs outlier ratio (mini-AlexNet)"),
    "fig3": (fig3_accuracy_networks, "4-bit OAQ accuracy across networks"),
    "tab1": (table1_configurations, "ISO-area configurations"),
    "fig11": (lambda jobs=1: breakdown_experiment("alexnet", jobs=jobs), "AlexNet cycle/energy breakdown"),
    "fig12": (lambda jobs=1: breakdown_experiment("vgg16", jobs=jobs), "VGG-16 cycle/energy breakdown"),
    "fig13": (lambda jobs=1: breakdown_experiment("resnet18", jobs=jobs), "ResNet-18 cycle/energy breakdown"),
    "fig14": (fig14_ratio_sweep, "energy/cycles/accuracy vs outlier ratio"),
    "fig15": (fig15_scalability, "multi-NPU scalability"),
    "fig16": (fig16_outlier_histogram, "effective outlier-activation ratios"),
    "fig17": (fig17_multi_outlier, "multi-outlier probability vs group width"),
    "fig18": (fig18_utilization, "utilization breakdown per conv layer"),
    "fig19": (fig19_chunk_cycles, "per-chunk cycle distributions"),
}

#: Experiments whose runner accepts the ``--jobs`` layer-parallel knob.
_JOBS_AWARE = {"fig11", "fig12", "fig13"}


def _unknown_network(network: str) -> int:
    print(
        f"unknown network {network!r}; available: {', '.join(sorted(MEMORY_TABLE))}",
        file=sys.stderr,
    )
    return 2


def _cmd_list(_: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def _write_outputs(args: argparse.Namespace, envelopes: Dict[str, dict], csv_rows: List[dict]) -> int:
    """Handle the shared ``--json``/``--csv`` flags; returns an exit code."""
    if getattr(args, "json", None):
        payload = next(iter(envelopes.values())) if len(envelopes) == 1 else envelopes
        print(f"wrote {save_json(payload, args.json)}")
    if getattr(args, "csv", None):
        if not csv_rows:
            print(
                "no per-layer rows to write as CSV (only breakdown-style "
                "experiments — fig11/12/13, compare — have them)",
                file=sys.stderr,
            )
            return 1
        print(f"wrote {save_csv(csv_rows, args.csv)}")
    return 0


def _retry_policy(args: argparse.Namespace) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=getattr(args, "retries", 3),
        timeout_s=getattr(args, "timeout", None),
    )


def _run_sweep(plan, args: argparse.Namespace):
    """Execute one checkpointed sweep; returns (result, envelope, exit code)."""
    try:
        result, envelope, _, _ = execute_sweep(
            plan,
            args.run_dir,
            jobs=getattr(args, "jobs", 1),
            retry=_retry_policy(args),
            lease_ttl=getattr(args, "lease_ttl", None),
            heartbeat_s=getattr(args, "heartbeat", None),
        )
    except ArtifactIntegrityError as exc:
        print(str(exc), file=sys.stderr)
        return None, None, 2
    return result, envelope, 1 if envelope["resilience"]["cells_failed"] else 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if getattr(args, "run_dir", None):
        if len(names) != 1 or names[0] not in SWEEPABLE:
            print(
                "--run-dir requires exactly one sweep-shaped experiment; "
                f"available: {', '.join(SWEEPABLE)}",
                file=sys.stderr,
            )
            return 2
        name = names[0]
        _, description = EXPERIMENTS[name]
        plan = breakdown_plan(
            SWEEPABLE[name], seed=global_seed(), experiment=name, description=description
        )
        result, envelope, code = _run_sweep(plan, args)
        if result is None:
            return code
        print(f"== {name} ==")
        print(result.format())
        print()
        write_code = _write_outputs(
            args, {name: envelope}, experiment_csv_rows(result) if args.csv else []
        )
        return code or write_code
    envelopes: Dict[str, dict] = {}
    csv_rows: List[dict] = []
    jobs = getattr(args, "jobs", 1)
    for name in names:
        runner, description = EXPERIMENTS[name]
        result = runner(jobs=jobs) if name in _JOBS_AWARE else runner()
        print(f"== {name} ==")
        print(result.format())
        print()
        if args.json:
            envelopes[name] = experiment_envelope(name, result, description)
        if args.csv:
            csv_rows.extend(experiment_csv_rows(result))
    return _write_outputs(args, envelopes, csv_rows)


def _cmd_ablations(args: argparse.Namespace) -> int:
    for result in run_all_ablations(args.network):
        print(result.format())
    print()
    print(sweep_group_size(args.network).format())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.network not in MEMORY_TABLE:
        return _unknown_network(args.network)
    if getattr(args, "run_dir", None):
        plan = breakdown_plan(args.network, ratio=args.ratio, seed=global_seed())
        result, envelope, code = _run_sweep(plan, args)
        if result is None:
            return code
        print(result.format())
        write_code = _write_outputs(
            args, {"compare": envelope}, experiment_csv_rows(result) if args.csv else []
        )
        return code or write_code
    result = breakdown_experiment(args.network, ratio=args.ratio, jobs=args.jobs)
    print(result.format())
    envelopes = {}
    if args.json:
        envelopes["compare"] = experiment_envelope(
            "compare", result, f"cycle/energy breakdown for {args.network}"
        )
    csv_rows = experiment_csv_rows(result) if args.csv else []
    return _write_outputs(args, envelopes, csv_rows)


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.network not in MEMORY_TABLE:
        return _unknown_network(args.network)
    result = profile_network(args.network, ratio=args.ratio, event_sim_passes=args.passes)
    print(result.format())
    if args.json:
        print(f"wrote {save_json(experiment_envelope('profile', result.to_dict()), args.json)}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.network not in MEMORY_TABLE:
        return _unknown_network(args.network)
    if getattr(args, "run_dir", None):
        plan = faults_plan(
            args.network,
            rates=tuple(args.rates),
            widths=tuple(args.widths),
            policy=args.policy,
            model=args.model,
            ratio=args.ratio,
            seed=global_seed(),
        )
        result, envelope, code = _run_sweep(plan, args)
        if result is None:
            return code
        print(result.format())
        if args.json:
            print(f"wrote {save_json(envelope, args.json)}")
        return code
    result = fault_sweep(
        args.network,
        rates=tuple(args.rates),
        widths=tuple(args.widths),
        policy=args.policy,
        model=args.model,
        ratio=args.ratio,
    )
    print(result.format())
    if args.json:
        envelope = experiment_envelope(
            "faults", result, f"fault-rate + accumulator-width sweep for {args.network}"
        )
        print(f"wrote {save_json(envelope, args.json)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness.bench import default_bench_path, run_benchmarks

    result = run_benchmarks(smoke=args.smoke, seed=args.seed)
    print(result.format())
    path = args.json or default_bench_path()
    envelope = experiment_envelope(
        "bench", result.to_dict(), "wall-clock hot-path benchmarks (vectorized vs slow_reference)"
    )
    print(f"wrote {save_json(envelope, path)}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    root = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    if not root:
        print(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    cache = SimCache(root=root)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache {stats['root']}: {stats['entries']} entries, {stats['bytes']} bytes")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {root}")
        return 0
    # prune
    if args.max_bytes is None:
        print("cache prune requires --max-bytes N", file=sys.stderr)
        return 2
    removed, remaining = cache.prune(args.max_bytes)
    print(f"pruned {removed} entries; {remaining} bytes remain in {root}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    if args.network not in MEMORY_TABLE:
        return _unknown_network(args.network)
    space_overrides = {
        "clusters": args.clusters,
        "groups": args.groups,
        "buffers_kib": args.buffers_kib,
        "ratios": args.ratios,
        "acc_bits": args.acc_bits,
        "act_bits": args.act_bits,
        "weight_bits": args.weight_bits,
    }
    space_doc = {name: values for name, values in space_overrides.items() if values}
    request = ExploreRequest(
        network=args.network,
        budget_mm2=args.budget,
        strategy=args.strategy,
        samples=args.samples,
        eta=args.eta,
        screen_layers=args.screen_layers,
        max_candidates=args.max_candidates,
        accuracy=args.accuracy,
        accuracy_samples=args.accuracy_samples,
        seed=global_seed(),
        space=DesignSpace.from_dict(space_doc) if space_doc else DesignSpace(),
    )
    try:
        result, envelope = explore_run(
            request,
            run_dir=args.run_dir,
            jobs=args.jobs,
            retry=_retry_policy(args),
            lease_ttl=getattr(args, "lease_ttl", None),
            heartbeat_s=getattr(args, "heartbeat", None),
        )
    except (ArtifactIntegrityError, ConfigError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(result.format())
    if args.run_dir:
        print(f"\nwrote {Path(args.run_dir) / 'envelope.json'}")
    code = 1 if result.failures else 0
    write_code = _write_outputs(
        args, {"explore": envelope}, explore_csv_rows(result) if args.csv else []
    )
    return code or write_code


def _drain_run_dir(args: argparse.Namespace, owner: str = None) -> int:
    """Shared body of ``repro resume`` and ``repro work``: drain a run
    dir (plain sweep or explore search) and report the result."""
    if is_explore_run(args.run_dir):
        try:
            result, envelope = explore_resume(
                args.run_dir,
                jobs=args.jobs,
                retry=_retry_policy(args),
                verify=not args.no_verify,
                lease_ttl=getattr(args, "lease_ttl", None),
                heartbeat_s=getattr(args, "heartbeat", None),
            )
        except (ArtifactIntegrityError, ConfigError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(result.format())
        print(f"\nwrote {Path(args.run_dir) / 'envelope.json'}")
        if args.json:
            print(f"wrote {save_json(envelope, args.json)}")
        return 1 if result.failures else 0
    try:
        result, envelope, _, _ = work_run(
            args.run_dir,
            jobs=args.jobs,
            retry=_retry_policy(args),
            verify=not args.no_verify,
            owner=owner,
            lease_ttl=getattr(args, "lease_ttl", None),
            heartbeat_s=getattr(args, "heartbeat", None),
        )
    except ArtifactIntegrityError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(result.format())
    print(f"\nwrote {RunDir(args.run_dir).envelope_path}")
    if args.json:
        print(f"wrote {save_json(envelope, args.json)}")
    return 1 if envelope["resilience"]["cells_failed"] else 0


def _cmd_resume(args: argparse.Namespace) -> int:
    return _drain_run_dir(args)


def _cmd_work(args: argparse.Namespace) -> int:
    if bool(args.connect) == bool(args.run_dir):
        print(
            "error: repro work takes exactly one of RUN_DIR (shared "
            "filesystem) or --connect URL (remote server)",
            file=sys.stderr,
        )
        return 2
    owner = default_owner_id()
    if args.connect:
        return _remote_work(args, owner)
    print(f"worker {owner} draining {args.run_dir}")
    return _drain_run_dir(args, owner=owner)


def _remote_work(args: argparse.Namespace, owner: str) -> int:
    """``repro work --connect``: drain a remote server's cells over HTTP
    with no shared filesystem (docs/REMOTE.md)."""
    from .errors import RemoteProtocolError
    from .harness.remote import RemoteClient, RemoteWorker

    try:
        client = RemoteClient(args.connect, timeout_s=args.request_timeout)
    except RemoteProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"worker {owner} connecting to {client.base_url}")
    worker = RemoteWorker(
        client,
        owner=owner,
        attempts=args.retries,
        linger_s=args.linger,
    )
    return worker.run()


def _print_status(status: Dict, indent: str = "") -> None:
    """Render one run's per-cell table (shared by ``repro status`` on a
    local run dir and on each job of ``repro status --connect``)."""
    counts = status["counts"]
    print(
        f"{indent}run {status['run_id']}  plan={status['plan']}  "
        f"experiment={status['experiment']}  cells={counts['total']}  "
        f"envelope={'yes' if status['envelope'] else 'no'}"
    )
    width = max([len("cell")] + [len(c["cell_id"]) for c in status["cells"]])
    print(
        f"{indent}{'cell'.ljust(width)}  {'state':7}  {'attempts':8}  "
        "owner (token, heartbeats, elapsed)"
    )
    for cell in status["cells"]:
        attempts = "-" if cell["attempts"] is None else str(cell["attempts"])
        if cell["owner"] is None:
            lease = "-"
        else:
            lease = (
                f"{cell['owner']} (token {cell['token']}, "
                f"hb {cell['heartbeats']}, {cell['elapsed_s']:g}s)"
            )
        print(f"{indent}{cell['cell_id'].ljust(width)}  {cell['state']:7}  {attempts:8}  {lease}")
    print(
        f"{indent}{counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['leased']} leased, {counts['pending']} pending"
    )


def _cmd_status(args: argparse.Namespace) -> int:
    if bool(args.connect) == bool(args.run_dir):
        print(
            "error: repro status takes exactly one of RUN_DIR or --connect URL",
            file=sys.stderr,
        )
        return 2
    if args.connect:
        return _remote_status(args)
    try:
        status = status_run(args.run_dir, verify=not args.no_verify)
    except ArtifactIntegrityError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _print_status(status)
    return 0


def _remote_status(args: argparse.Namespace) -> int:
    """``repro status --connect``: every job's table over HTTP."""
    from .errors import RemoteProtocolError
    from .harness.remote import RemoteClient

    try:
        client = RemoteClient(args.connect, timeout_s=args.request_timeout, retries=1)
        code, doc = client.request("GET", "/status")
    except RemoteProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if code != 200:
        print(f"error: server answered {code}: {doc.get('message')}", file=sys.stderr)
        return 2
    jobs = doc.get("jobs") or []
    if not jobs:
        print("no jobs")
        return 0
    for entry in jobs:
        print(
            f"job {entry['job_id']}  state={entry['state']}  "
            f"verb={entry['verb']}  detail={entry.get('detail', '')}"
        )
        if entry.get("cells"):
            _print_status(entry["cells"], indent="  ")
        else:
            progress = entry.get("progress") or {}
            total = progress.get("cells_total")
            print(
                f"  {progress.get('cells_ok', 0)} ok, "
                f"{progress.get('cells_failed', 0)} failed, "
                f"{progress.get('cells_leased', 0)} leased of "
                f"{'?' if total is None else total} cells"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Lazy import: the server pulls in asyncio plumbing no other verb needs.
    from .harness.serve import ServeConfig, serve_forever

    if not (0 <= args.port <= 65535):
        print(f"error: --port must be in [0, 65535], got {args.port}", file=sys.stderr)
        return 2
    config = ServeConfig(
        spool=Path(args.spool),
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        job_timeout_s=args.job_timeout,
        cell_jobs=args.jobs,
        retries=args.retries,
        cell_timeout_s=args.cell_timeout,
        lease_ttl=getattr(args, "lease_ttl", None),
        heartbeat_s=getattr(args, "heartbeat", None),
        read_timeout_s=args.read_timeout,
    )
    return serve_forever(config)


def _cmd_export(args: argparse.Namespace) -> int:
    from .harness.serialize import run_stats_rows

    if args.network not in MEMORY_TABLE:
        return _unknown_network(args.network)
    csv_path = Path(args.out) / f"{args.network}_layers.csv"
    json_path = Path(args.out) / f"{args.network}_summary.json"
    existing = [str(p) for p in (csv_path, json_path) if p.exists()]
    if existing and not args.force:
        print(
            f"refusing to overwrite {', '.join(existing)}; pass --force to replace",
            file=sys.stderr,
        )
        return 2
    result = breakdown_experiment(args.network, ratio=args.ratio)
    rows = []
    for run in result.runs.values():
        rows.extend(run_stats_rows(run))
    csv_path = save_csv(rows, csv_path)
    json_path = save_json(
        {"cycles": result.normalized_cycles(), "energy": result.normalized_energy()},
        json_path,
    )
    print(f"wrote {csv_path} and {json_path}")
    return 0


def _add_output_flags(parser: argparse.ArgumentParser, csv: bool = True) -> None:
    parser.add_argument("--json", metavar="PATH", help="also write results as a JSON envelope")
    if csv:
        parser.add_argument("--csv", metavar="PATH", help="also write per-layer rows as CSV")


def _add_seed_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="override every stochastic driver's default RNG seed",
    )


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, rejected at parse time."""
    try:
        value = int(text)
    except (TypeError, ValueError):
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: an integer >= 0, rejected at parse time."""
    try:
        value = int(text)
    except (TypeError, ValueError):
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {text!r}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float, rejected at parse time."""
    try:
        value = float(text)
    except (TypeError, ValueError):
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}")
    return value


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="simulate independent layers on an N-process pool "
             "(breakdown-style experiments; 1 = serial, the default)",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist simulated cells content-addressed under DIR so "
             "repeat invocations replay from the cache; shared safely "
             "by --jobs workers (docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the simulation cache entirely (every cell recomputes)",
    )


def _apply_cache_flags(args: argparse.Namespace) -> None:
    """Publish the cache flags as environment variables.

    Env vars (not direct plumbing) so forked *and* spawned ``--jobs``
    workers resolve the identical cache configuration, and so run-dir
    manifests/cell params stay byte-identical whether or not a cache is
    attached.
    """
    if getattr(args, "cache_dir", None):
        os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    if getattr(args, "no_cache", False):
        os.environ[NO_CACHE_ENV] = "1"
    set_active(None)


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--run-dir", metavar="DIR", default=None,
        help="checkpoint each sweep cell into DIR so the run can be "
             "resumed with `repro resume DIR` or drained by extra "
             "`repro work DIR` workers (docs/RESILIENCE.md, docs/COORD.md)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-cell timeout in seconds (checkpointed sweeps; default none)",
    )
    parser.add_argument(
        "--retries", type=_positive_int, default=3, metavar="N",
        help="max attempts per cell incl. the first, with exponential "
             "backoff between attempts (default 3)",
    )
    _add_lease_flags(parser)


def _add_lease_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lease-ttl", type=_positive_float, default=None, metavar="S",
        help="seconds a cell lease may go unrenewed before other workers "
             f"steal it (default: max({DEFAULT_LEASE_TTL_S:g}, --timeout "
             "+ two heartbeats); docs/COORD.md)",
    )
    parser.add_argument(
        "--heartbeat", type=_positive_float, default=None, metavar="S",
        help="seconds between lease heartbeat renewals "
             f"(default {DEFAULT_HEARTBEAT_S:g})",
    )


def _lease_flag_error(args: argparse.Namespace) -> str:
    """The parse-time consistency check for the lease knobs.

    Returns an error message (exit 2) when an explicit ``--lease-ttl``
    cannot outlive a heartbeat interval, or a cell running up to its
    ``--timeout``: such a configuration would let live leases expire
    mid-cell by construction. The auto-scaled default TTL is always
    consistent, so only explicit values can be rejected.
    """
    ttl = getattr(args, "lease_ttl", None)
    if ttl is None:
        return ""
    heartbeat = getattr(args, "heartbeat", None)
    heartbeat = heartbeat if heartbeat is not None else DEFAULT_HEARTBEAT_S
    if ttl <= heartbeat:
        return (
            f"--lease-ttl ({ttl:g}s) must exceed the --heartbeat interval "
            f"({heartbeat:g}s): a lease would expire between renewals by "
            "construction"
        )
    timeout = getattr(args, "timeout", None)
    if timeout is not None and ttl <= timeout + heartbeat:
        return (
            f"--lease-ttl ({ttl:g}s) must exceed --timeout ({timeout:g}s) "
            f"plus one --heartbeat interval ({heartbeat:g}s), or a live "
            "lease could expire mid-cell; raise --lease-ttl or lower "
            "--timeout"
        )
    return ""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the OLAccel (ISCA 2018) evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run experiments by id (or 'all')")
    run.add_argument("experiments", nargs="+", help="experiment ids, e.g. fig11 tab1, or 'all'")
    _add_output_flags(run)
    _add_seed_flag(run)
    _add_jobs_flag(run)
    _add_resilience_flags(run)
    _add_cache_flags(run)
    run.set_defaults(func=_cmd_run)

    abl = sub.add_parser("ablations", help="design-choice ablations")
    abl.add_argument("--network", default="alexnet", choices=sorted(MEMORY_TABLE))
    abl.set_defaults(func=_cmd_ablations)

    cmp_ = sub.add_parser("compare", help="cycle/energy breakdown for one network")
    cmp_.add_argument("network", help=f"one of: {', '.join(MEMORY_TABLE)}")
    cmp_.add_argument("--ratio", type=float, default=0.03, help="outlier ratio (default 0.03)")
    _add_output_flags(cmp_)
    _add_seed_flag(cmp_)
    _add_jobs_flag(cmp_)
    _add_resilience_flags(cmp_)
    _add_cache_flags(cmp_)
    cmp_.set_defaults(func=_cmd_compare)

    prof = sub.add_parser("profile", help="wall-clock + simulated-cycle profile")
    prof.add_argument("network", help=f"one of: {', '.join(MEMORY_TABLE)}")
    prof.add_argument("--ratio", type=float, default=0.03, help="outlier ratio (default 0.03)")
    prof.add_argument(
        "--passes", type=int, default=512,
        help="event-sim micro-trace sample size (0 disables; default 512)",
    )
    _add_output_flags(prof, csv=False)
    _add_seed_flag(prof)
    prof.set_defaults(func=_cmd_profile)

    faults = sub.add_parser("faults", help="fault-rate + accumulator-width sweep")
    faults.add_argument("network", help=f"one of: {', '.join(MEMORY_TABLE)}")
    faults.add_argument(
        "--rates", type=float, nargs="+", default=list(DEFAULT_RATES), metavar="R",
        help=f"fault rates to sweep (default {' '.join(str(r) for r in DEFAULT_RATES)})",
    )
    faults.add_argument(
        "--widths", type=int, nargs="+", default=list(DEFAULT_WIDTHS), metavar="W",
        help=f"accumulator widths to sweep (default {' '.join(str(w) for w in DEFAULT_WIDTHS)})",
    )
    faults.add_argument(
        "--policy", default="degrade", choices=RECOVERY_POLICIES,
        help="recovery policy for detected violations (default degrade)",
    )
    faults.add_argument(
        "--model", default="bitflip", choices=FAULT_MODELS,
        help="fault model (default bitflip)",
    )
    faults.add_argument("--ratio", type=float, default=0.03, help="outlier ratio (default 0.03)")
    _add_output_flags(faults, csv=False)
    _add_seed_flag(faults)
    _add_jobs_flag(faults)
    _add_resilience_flags(faults)
    _add_cache_flags(faults)
    faults.set_defaults(func=_cmd_faults)

    bench = sub.add_parser("bench", help="time vectorized hot paths vs slow_reference")
    bench.add_argument("--smoke", action="store_true", help="small inputs for CI smoke runs")
    _add_output_flags(bench, csv=False)
    _add_seed_flag(bench)
    _add_cache_flags(bench)
    bench.set_defaults(func=_cmd_bench)

    explore = sub.add_parser(
        "explore", help="Pareto search over accelerator designs under an area budget"
    )
    explore.add_argument("network", help=f"one of: {', '.join(MEMORY_TABLE)}")
    explore.add_argument(
        "--budget", type=float, default=None, metavar="MM2",
        help="area budget in mm^2 for datapath + swarm buffer "
             "(default: the Table I ISO-area point for the network)",
    )
    explore.add_argument(
        "--strategy", default="grid", choices=sorted(STRATEGIES),
        help="search strategy (default grid; docs/EXPLORE.md)",
    )
    explore.add_argument(
        "--samples", type=_positive_int, default=64, metavar="N",
        help="candidate count drawn by --strategy random (default 64)",
    )
    explore.add_argument(
        "--eta", type=_positive_int, default=4, metavar="N",
        help="halving keep fraction 1/N between rungs (default 4)",
    )
    explore.add_argument(
        "--screen-layers", type=_positive_int, default=2, metavar="K",
        help="conv layers simulated in the halving screen rung (default 2)",
    )
    explore.add_argument(
        "--max-candidates", type=_positive_int, default=None, metavar="N",
        help="hard cap on enumerated candidates (excess counts as pruned)",
    )
    explore.add_argument(
        "--accuracy", default="proxy", choices=["none", "proxy", "quant"],
        help="accuracy axis: none, proxy (deterministic SQNR, default), or "
             "quant (measured mini-model top-1; trains on first use)",
    )
    explore.add_argument(
        "--accuracy-samples", type=_positive_int, default=256, metavar="N",
        help="test samples for --accuracy quant (default 256)",
    )
    for dim, flag_help in (
        ("clusters", "PE-cluster counts to explore"),
        ("groups", "PE groups per cluster to explore"),
        ("buffers-kib", "swarm-buffer capacities (KiB) to explore"),
        ("acc-bits", "accumulator widths to explore"),
        ("act-bits", "normal activation widths to explore"),
        ("weight-bits", "normal weight widths to explore"),
    ):
        explore.add_argument(
            f"--{dim}", type=int, nargs="+", default=None, metavar="V",
            help=f"{flag_help} (default: the documented grid, docs/EXPLORE.md)",
        )
    explore.add_argument(
        "--ratios", type=float, nargs="+", default=None, metavar="R",
        help="outlier ratios to explore (default 0.01 0.03 0.05)",
    )
    _add_output_flags(explore)
    _add_seed_flag(explore)
    _add_jobs_flag(explore)
    _add_resilience_flags(explore)
    _add_cache_flags(explore)
    explore.set_defaults(func=_cmd_explore)

    resume = sub.add_parser(
        "resume", help="re-execute the missing/failed cells of a checkpointed sweep"
    )
    resume.add_argument("run_dir", metavar="RUN_DIR", help="run directory with a manifest.json")
    resume.add_argument(
        "--no-verify", action="store_true",
        help="skip artifact digest verification when reading checkpointed cells",
    )
    resume.add_argument("--json", metavar="PATH", help="also write the final envelope here")
    resume.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-cell timeout in seconds (default none)",
    )
    resume.add_argument(
        "--retries", type=_positive_int, default=3, metavar="N",
        help="max attempts per cell incl. the first (default 3)",
    )
    _add_lease_flags(resume)
    _add_jobs_flag(resume)
    _add_cache_flags(resume)
    resume.set_defaults(func=_cmd_resume)

    work = sub.add_parser(
        "work",
        help="join a checkpointed sweep as an extra worker, claiming and "
             "stealing cells via crash-safe leases (docs/COORD.md), or a "
             "remote server via --connect (docs/REMOTE.md)",
    )
    work.add_argument(
        "run_dir", metavar="RUN_DIR", nargs="?", default=None,
        help="run directory with a manifest.json (omit with --connect)",
    )
    work.add_argument(
        "--connect", metavar="URL", default=None,
        help="claim cells from a running `repro serve` at URL over HTTP "
             "instead of a shared filesystem (docs/REMOTE.md)",
    )
    work.add_argument(
        "--request-timeout", type=_positive_float, default=10.0, metavar="S",
        help="per-HTTP-request timeout for --connect (default 10)",
    )
    work.add_argument(
        "--linger", type=float, default=0.0, metavar="S",
        help="with --connect, keep polling an idle server this long "
             "before exiting 0 (default 0: exit on first idle answer)",
    )
    work.add_argument(
        "--no-verify", action="store_true",
        help="skip artifact digest verification when reading checkpointed cells",
    )
    work.add_argument("--json", metavar="PATH", help="also write the final envelope here")
    work.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-cell timeout in seconds (default none)",
    )
    work.add_argument(
        "--retries", type=_positive_int, default=3, metavar="N",
        help="max attempts per cell incl. the first (default 3)",
    )
    _add_lease_flags(work)
    _add_jobs_flag(work)
    _add_cache_flags(work)
    work.set_defaults(func=_cmd_work)

    status = sub.add_parser(
        "status",
        help="per-cell completion and lease/owner state of a checkpointed "
             "sweep, locally or from a remote server via --connect",
    )
    status.add_argument(
        "run_dir", metavar="RUN_DIR", nargs="?", default=None,
        help="run directory with a manifest.json (omit with --connect)",
    )
    status.add_argument(
        "--connect", metavar="URL", default=None,
        help="render every job's table from a running `repro serve` at "
             "URL over HTTP (docs/REMOTE.md)",
    )
    status.add_argument(
        "--request-timeout", type=_positive_float, default=10.0, metavar="S",
        help="per-HTTP-request timeout for --connect (default 10)",
    )
    status.add_argument(
        "--no-verify", action="store_true",
        help="skip artifact digest verification when reading checkpointed cells",
    )
    status.set_defaults(func=_cmd_status)

    cache = sub.add_parser("cache", help="inspect or maintain a simcache directory")
    cache.add_argument("action", choices=["stats", "clear", "prune"],
                       help="stats: entry/byte totals; clear: delete all "
                            "entries; prune: evict LRU entries to --max-bytes")
    cache.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="prune target: keep at most N bytes of entries",
    )
    cache.set_defaults(func=_cmd_cache)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP job server: accept repro.job/v1 requests and "
             "drain them on the coordination substrate (docs/SERVE.md)",
    )
    serve.add_argument(
        "--spool", metavar="DIR", required=True,
        help="directory for job state and run dirs; rescanned on restart "
             "so accepted jobs survive a server crash",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8765, metavar="N",
        help="TCP port; 0 picks an ephemeral port, published in "
             "<spool>/serve.json (default 8765)",
    )
    serve.add_argument(
        "--workers", type=_nonneg_int, default=2, metavar="N",
        help="concurrent job drains (default 2); 0 = pure coordinator, "
             "cells are computed only by --connect workers (docs/REMOTE.md)",
    )
    serve.add_argument(
        "--read-timeout", type=_positive_float, default=10.0, metavar="S",
        help="whole-request read deadline; a request that stalls past it "
             "answers 408 (default 10)",
    )
    serve.add_argument(
        "--queue-limit", type=_positive_int, default=16, metavar="N",
        help="max QUEUED jobs before POST /jobs answers 429 (default 16)",
    )
    serve.add_argument(
        "--timeout", dest="job_timeout", type=_positive_float, default=None, metavar="S",
        help="per-job wall-clock timeout in seconds; a request's "
             "timeout_s overrides it (default none)",
    )
    serve.add_argument(
        "--cell-timeout", type=_positive_float, default=None, metavar="S",
        help="per-cell timeout inside each drain (default none)",
    )
    serve.add_argument(
        "--retries", type=_positive_int, default=3, metavar="N",
        help="max attempts per cell incl. the first (default 3)",
    )
    _add_lease_flags(serve)
    _add_jobs_flag(serve)
    _add_cache_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    export = sub.add_parser("export", help="save a breakdown as CSV + JSON")
    export.add_argument("network", help=f"one of: {', '.join(MEMORY_TABLE)}")
    export.add_argument("--ratio", type=float, default=0.03)
    export.add_argument("--out", default="results", help="output directory (default ./results)")
    export.add_argument(
        "--force", action="store_true",
        help="overwrite existing output files (refused with exit 2 otherwise)",
    )
    export.set_defaults(func=_cmd_export)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    lease_error = _lease_flag_error(args)
    if lease_error:
        print(f"error: {lease_error}", file=sys.stderr)
        return 2
    set_global_seed(getattr(args, "seed", None))
    _apply_cache_flags(args)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Checkpointed sweeps have already terminated+joined their
        # workers and flushed completed cells; exit like a shell would.
        print("interrupted", file=sys.stderr)
        return 130
