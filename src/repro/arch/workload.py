"""Architecture-neutral layer workload description.

All three simulated accelerators (OLAccel, Eyeriss, ZeNA) consume the same
:class:`LayerWorkload` record: pure geometry plus density/outlier
statistics. Workloads come from two sources:

- :func:`from_spec` — the paper-shape networks in
  :mod:`repro.nn.zoo_paper`, with literature-derived densities (used for
  the performance figures);
- :func:`repro.harness.workloads.from_quantized_model` — measured
  statistics of a trained+quantized mini model (used for end-to-end runs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ..nn.zoo_paper import LayerSpec, NetworkSpec

__all__ = ["LayerWorkload", "NetworkWorkload", "from_spec"]


@dataclass(frozen=True)
class LayerWorkload:
    """One compute layer as the accelerator simulators see it.

    ``act_density`` is the nonzero fraction of input activations
    (including outliers); ``act_outlier_ratio`` the outlier fraction of
    the *nonzero* inputs; ``weight_outlier_ratio`` the outlier fraction of
    all weights. ``first_weight_bits`` is the dense weight precision used
    when ``is_first`` (Sec. II: 8 for ResNet-18/101, else 4).
    """

    name: str
    kind: str  # "conv" or "fc"
    macs: int
    weight_count: int
    input_count: int
    output_count: int
    out_channels: int
    kernel: int = 1
    stride: int = 1
    act_density: float = 0.5
    weight_density: float = 1.0
    act_outlier_ratio: float = 0.03
    weight_outlier_ratio: float = 0.03
    is_first: bool = False
    first_weight_bits: int = 4

    def __post_init__(self):
        for field_name in ("act_density", "weight_density", "act_outlier_ratio", "weight_outlier_ratio"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.macs <= 0 or self.weight_count <= 0:
            raise ValueError("macs and weight_count must be positive")

    @property
    def out_groups(self) -> int:
        """Output-channel groups of 16 (PE-group granularity)."""
        return -(-self.out_channels // 16)

    @property
    def broadcast_slots(self) -> float:
        """16-lane broadcast slots at full density (= macs / 16)."""
        return self.macs / 16.0

    @property
    def slots_per_input(self) -> float:
        """Broadcast slots each input activation participates in."""
        return self.broadcast_slots / self.input_count

    def with_ratio(self, ratio: float) -> "LayerWorkload":
        """Copy with both outlier ratios replaced (for Fig. 14 sweeps)."""
        if self.is_first:
            return self
        return replace(self, act_outlier_ratio=ratio, weight_outlier_ratio=ratio)


@dataclass(frozen=True)
class NetworkWorkload:
    """A full network: ordered layers plus a name."""

    name: str
    layers: tuple

    def with_ratio(self, ratio: float) -> "NetworkWorkload":
        return NetworkWorkload(self.name, tuple(layer.with_ratio(ratio) for layer in self.layers))

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)


def from_spec(
    spec: NetworkSpec,
    act_outlier_ratio: float = 0.03,
    weight_outlier_ratio: float = 0.03,
) -> NetworkWorkload:
    """Convert a paper-shape :class:`NetworkSpec` into a simulator workload."""
    layers: List[LayerWorkload] = []
    for layer in spec.layers:
        layers.append(_layer_from_spec(layer, spec, act_outlier_ratio, weight_outlier_ratio))
    return NetworkWorkload(spec.name, tuple(layers))


def _layer_from_spec(
    layer: LayerSpec,
    spec: NetworkSpec,
    act_outlier_ratio: float,
    weight_outlier_ratio: float,
) -> LayerWorkload:
    return LayerWorkload(
        name=layer.name,
        kind=layer.kind,
        macs=layer.macs,
        weight_count=layer.weight_count,
        input_count=layer.input_count,
        output_count=layer.output_count,
        out_channels=layer.out_c,
        kernel=layer.kernel,
        stride=layer.stride,
        act_density=layer.act_density,
        weight_density=layer.weight_density,
        act_outlier_ratio=0.0 if layer.is_first else act_outlier_ratio,
        weight_outlier_ratio=0.0 if layer.is_first and spec.first_layer_weight_bits > 4 else weight_outlier_ratio,
        is_first=layer.is_first,
        first_weight_bits=spec.first_layer_weight_bits,
    )
