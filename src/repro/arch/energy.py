"""Per-access energy model (substitute for Design Compiler + CACTI + Micron).

The paper synthesized Verilog at 65 nm / 1.0 V / 250 MHz and used CACTI for
SRAM and Micron's calculator for DRAM. Offline we model the same quantities
analytically. Constants derive from the widely used per-op energy table in
Horowitz, "Computing's energy problem" (ISSCC 2014, 45 nm), scaled by
``TECH_SCALE`` to approximate 65 nm LP:

- integer multiply energy grows with the product of operand widths
  (0.2 pJ for 8x8, 3.1 pJ for 32x32 at 45 nm → ~0.003 pJ per bit-squared);
- integer add energy grows linearly in width (~0.003 pJ/bit);
- SRAM read energy per bit grows with the square root of capacity
  (8 KiB: 10 pJ / 64 b; scaled by sqrt(capacity));
- DRAM costs a flat ~20 pJ/bit (640 pJ per 32-bit word).

All results in this reproduction are *relative* (normalized to Eyeriss16,
as in the paper), so what matters is that the ratios between components are
realistic, not the absolute pJ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyParams", "EnergyBreakdown", "EnergyModel", "DEFAULT_ENERGY"]

#: Approximate 45 nm -> 65 nm LP dynamic-energy scale factor.
TECH_SCALE = 1.8


@dataclass(frozen=True)
class EnergyParams:
    """Technology constants (pJ) for the energy model."""

    mult_pj_per_bit2: float = 0.0031 * TECH_SCALE
    add_pj_per_bit: float = 0.0031 * TECH_SCALE
    #: flip-flop/bus/control energy charged per MAC-lane operation.
    ctrl_pj_per_op: float = 0.01 * TECH_SCALE
    #: SRAM read/write energy per bit for an 8 KiB macro (scales with sqrt cap).
    sram_pj_per_bit_8k: float = (10.0 / 64.0) * TECH_SCALE
    sram_ref_bits: float = 8 * 1024 * 8
    dram_pj_per_bit: float = 20.0


@dataclass
class EnergyBreakdown:
    """Energy decomposed the way the paper's Figs. 11-13 report it.

    ``dram`` — off-chip traffic; ``buffer`` — the large on-chip memory
    (Eyeriss/ZeNA global buffer, OLAccel swarm buffer); ``local`` — PE /
    cluster / group buffers; ``logic`` — MAC units and interconnect.
    All in pJ.
    """

    dram: float = 0.0
    buffer: float = 0.0
    local: float = 0.0
    logic: float = 0.0

    @property
    def total(self) -> float:
        return self.dram + self.buffer + self.local + self.logic

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram=self.dram + other.dram,
            buffer=self.buffer + other.buffer,
            local=self.local + other.local,
            logic=self.logic + other.logic,
        )

    def __iadd__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        self.dram += other.dram
        self.buffer += other.buffer
        self.local += other.local
        self.logic += other.logic
        return self

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram=self.dram * factor,
            buffer=self.buffer * factor,
            local=self.local * factor,
            logic=self.logic * factor,
        )

    def normalized(self, reference_total: float) -> "EnergyBreakdown":
        """Express each component as a fraction of ``reference_total``."""
        if reference_total <= 0:
            raise ValueError("reference total must be positive")
        return self.scaled(1.0 / reference_total)

    def as_dict(self) -> Dict[str, float]:
        return {"dram": self.dram, "buffer": self.buffer, "local": self.local, "logic": self.logic}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "EnergyBreakdown":
        """Inverse of :meth:`as_dict` (extra keys such as totals ignored)."""
        return cls(
            dram=data.get("dram", 0.0),
            buffer=data.get("buffer", 0.0),
            local=data.get("local", 0.0),
            logic=data.get("logic", 0.0),
        )


class EnergyModel:
    """Per-access energies built from :class:`EnergyParams`."""

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.params = params

    def mult_energy(self, bits_a: int, bits_b: int) -> float:
        return self.params.mult_pj_per_bit2 * bits_a * bits_b

    def add_energy(self, bits: int) -> float:
        return self.params.add_pj_per_bit * bits

    def mac_energy(self, act_bits: int, weight_bits: int, acc_bits: int = 24) -> float:
        """One multiply-accumulate lane operation incl. control/registers."""
        return self.mult_energy(act_bits, weight_bits) + self.add_energy(acc_bits) + self.params.ctrl_pj_per_op

    def sram_energy(self, capacity_bits: float, bits_accessed: float) -> float:
        """Read/write ``bits_accessed`` from an SRAM of ``capacity_bits``.

        CACTI-style capacity scaling: energy per bit grows with the square
        root of the macro capacity (wordline/bitline length).
        """
        if capacity_bits <= 0:
            raise ValueError("SRAM capacity must be positive")
        per_bit = self.params.sram_pj_per_bit_8k * (capacity_bits / self.params.sram_ref_bits) ** 0.5
        return per_bit * bits_accessed

    def dram_energy(self, bits: float) -> float:
        return self.params.dram_pj_per_bit * bits


#: Shared default instance.
DEFAULT_ENERGY = EnergyModel()
