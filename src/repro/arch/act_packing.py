"""Packing activation tensors into the OLAccel on-chip layout.

The swarm/cluster activation buffers hold the dense 4-bit stream as
A(1x1x16) chunks (Fig. 5 bottom); activations above the calibrated
threshold are *removed* from that stream and queued as sparse
(value, coordinates) entries in the outlier FIFO (Fig. 9). This module
performs the split on integer activation levels and reassembles them, so
tests can prove the layout lossless end-to-end:

    levels  ->  (dense chunk array, outlier FIFO)  ->  levels

It also reports the exact storage footprint both halves occupy, which the
energy model's activation terms are anchored to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ConfigError, QuantRangeError
from .chunks import LANES, OutlierActivation

__all__ = ["PackedActivations", "pack_activations", "unpack_activations", "ACT_NORMAL_MAX"]

#: Largest level the dense 4-bit unsigned stream can hold.
ACT_NORMAL_MAX = 15

#: Outlier FIFO entry: 16-bit value + 8-bit w/h indices + 8-bit channel-chunk
#: index (Fig. 9's OLw.idx / OLh.idx / OLc.idx).
OUTLIER_ENTRY_BITS = 16 + 24


@dataclass
class PackedActivations:
    """One layer's input activations in on-chip form.

    ``dense`` is a (chunks, 16) int array of 4-bit levels in channel-major
    chunk order: chunk ``(h, w, c_blk)`` covers channels
    ``[16 c_blk, 16 c_blk + 16)`` at pixel ``(h, w)``. ``outliers`` carry
    the diverted high-precision activations with their coordinates.
    """

    dense: np.ndarray
    outliers: List[OutlierActivation] = field(default_factory=list)
    shape: tuple = ()  # original (C, H, W)

    @property
    def n_chunks(self) -> int:
        return self.dense.shape[0]

    @property
    def dense_bits(self) -> int:
        """Dense stream footprint: 4 bits per slot (zeros included)."""
        return self.dense.size * 4

    @property
    def outlier_bits(self) -> int:
        return len(self.outliers) * OUTLIER_ENTRY_BITS

    @property
    def total_bits(self) -> int:
        return self.dense_bits + self.outlier_bits

    def nonzero_density(self) -> float:
        """Nonzero fraction of the dense stream (drives zero-skipping)."""
        return float(np.count_nonzero(self.dense) / self.dense.size) if self.dense.size else 0.0

    def zero_quad_fraction(self) -> float:
        """Fraction of aligned quads that are all zero (skip-cycle payers)."""
        if self.dense.size == 0:
            return 0.0
        quads = self.dense.reshape(-1, 4)
        return float((~quads.any(axis=1)).mean())


def pack_activations(levels: np.ndarray, normal_max: int = ACT_NORMAL_MAX) -> PackedActivations:
    """Split a (C, H, W) non-negative level tensor into dense + outliers.

    Channels are padded to a multiple of 16 with zeros. Values above
    ``normal_max`` go to the outlier FIFO and leave a zero in the dense
    stream (they are "stored only in the swarm buffer", Sec. III-A).
    """
    levels = np.asarray(levels, dtype=np.int64)
    if levels.ndim != 3:
        raise ConfigError(f"expected (C, H, W) levels, got shape {levels.shape}")
    if levels.size and levels.min() < 0:
        raise QuantRangeError("activation levels must be non-negative")

    c, h, w = levels.shape
    n_blocks = -(-c // LANES)
    padded = np.zeros((n_blocks * LANES, h, w), dtype=np.int64)
    padded[:c] = levels

    outliers: List[OutlierActivation] = []
    is_outlier = padded > normal_max
    for channel, row, col in zip(*np.nonzero(is_outlier)):
        outliers.append(
            OutlierActivation(
                value=int(padded[channel, row, col]),
                w_idx=int(col),
                h_idx=int(row),
                c_idx=int(channel),
            )
        )
    dense = np.where(is_outlier, 0, padded)
    # chunk order: (h, w, channel block) — the traversal of Fig. 6.
    chunks = dense.reshape(n_blocks, LANES, h, w).transpose(2, 3, 0, 1).reshape(-1, LANES)
    return PackedActivations(dense=np.ascontiguousarray(chunks), outliers=outliers, shape=(c, h, w))


def unpack_activations(packed: PackedActivations) -> np.ndarray:
    """Reassemble the original (C, H, W) level tensor (dense + outliers)."""
    c, h, w = packed.shape
    n_blocks = -(-c // LANES)
    dense = packed.dense.reshape(h, w, n_blocks, LANES).transpose(2, 3, 0, 1).reshape(n_blocks * LANES, h, w)
    out = dense.copy()
    for entry in packed.outliers:
        out[entry.c_idx, entry.h_idx, entry.w_idx] = entry.value
    return out[:c]
