"""Packing activation tensors into the OLAccel on-chip layout.

The swarm/cluster activation buffers hold the dense 4-bit stream as
A(1x1x16) chunks (Fig. 5 bottom); activations above the calibrated
threshold are *removed* from that stream and queued as sparse
(value, coordinates) entries in the outlier FIFO (Fig. 9). This module
performs the split on integer activation levels and reassembles them, so
tests can prove the layout lossless end-to-end:

    levels  ->  (dense chunk array, outlier FIFO)  ->  levels

It also reports the exact storage footprint both halves occupy, which the
energy model's activation terms are anchored to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ConfigError, QuantRangeError
from .chunks import LANES, OutlierActivation

__all__ = ["PackedActivations", "pack_activations", "unpack_activations", "ACT_NORMAL_MAX"]

#: Largest level the dense 4-bit unsigned stream can hold.
ACT_NORMAL_MAX = 15

#: Outlier FIFO entry: 16-bit value + 8-bit w/h indices + 8-bit channel-chunk
#: index (Fig. 9's OLw.idx / OLh.idx / OLc.idx).
OUTLIER_ENTRY_BITS = 16 + 24


@dataclass
class PackedActivations:
    """One layer's input activations in on-chip form.

    ``dense`` is a (chunks, 16) int array of 4-bit levels in channel-major
    chunk order: chunk ``(h, w, c_blk)`` covers channels
    ``[16 c_blk, 16 c_blk + 16)`` at pixel ``(h, w)``. ``outliers`` carry
    the diverted high-precision activations with their coordinates.
    """

    dense: np.ndarray
    outliers: List[OutlierActivation] = field(default_factory=list)
    shape: tuple = ()  # original (C, H, W)

    @property
    def n_chunks(self) -> int:
        return self.dense.shape[0]

    @property
    def dense_bits(self) -> int:
        """Dense stream footprint: 4 bits per slot (zeros included)."""
        return self.dense.size * 4

    @property
    def outlier_bits(self) -> int:
        return len(self.outliers) * OUTLIER_ENTRY_BITS

    @property
    def total_bits(self) -> int:
        return self.dense_bits + self.outlier_bits

    def nonzero_density(self) -> float:
        """Nonzero fraction of the dense stream (drives zero-skipping)."""
        return float(np.count_nonzero(self.dense) / self.dense.size) if self.dense.size else 0.0

    def zero_quad_fraction(self) -> float:
        """Fraction of aligned quads that are all zero (skip-cycle payers)."""
        if self.dense.size == 0:
            return 0.0
        quads = self.dense.reshape(-1, 4)
        return float((~quads.any(axis=1)).mean())

    def _coord_table(self) -> np.ndarray:
        """(n_outliers, 4) int64 rows of (c, h, w, value) — the FIFO as an
        array, for the vectorized unpack scatter.

        The fast packer seeds the cache; a stale entry count (e.g. after
        ``dataclasses.replace`` swapped the outlier list, which builds a
        fresh instance without the cache) triggers a rebuild from
        ``outliers``.
        """
        table = self.__dict__.get("_outlier_table")
        if table is None or table.shape[0] != len(self.outliers):
            table = np.array(
                [(e.c_idx, e.h_idx, e.w_idx, e.value) for e in self.outliers], dtype=np.int64
            ).reshape(len(self.outliers), 4)
            self.__dict__["_outlier_table"] = table
        return table


def pack_activations(
    levels: np.ndarray, normal_max: int = ACT_NORMAL_MAX, slow_reference: bool = False
) -> PackedActivations:
    """Split a (C, H, W) non-negative level tensor into dense + outliers.

    Channels are padded to a multiple of 16 with zeros. Values above
    ``normal_max`` go to the outlier FIFO and leave a zero in the dense
    stream (they are "stored only in the swarm buffer", Sec. III-A).

    The default path gathers the outlier coordinates/values with one
    ``argwhere`` instead of a per-entry scan; ``slow_reference=True`` keeps
    the original loop. Both produce identical FIFO order (C-order over
    (channel, row, col)).
    """
    levels = np.asarray(levels, dtype=np.int64)
    if levels.ndim != 3:
        raise ConfigError(f"expected (C, H, W) levels, got shape {levels.shape}")
    if levels.size and levels.min() < 0:
        raise QuantRangeError("activation levels must be non-negative")

    c, h, w = levels.shape
    n_blocks = -(-c // LANES)
    padded = np.zeros((n_blocks * LANES, h, w), dtype=np.int64)
    padded[:c] = levels

    outliers: List[OutlierActivation] = []
    is_outlier = padded > normal_max
    if slow_reference:
        for channel, row, col in zip(*np.nonzero(is_outlier)):
            outliers.append(
                OutlierActivation(
                    value=int(padded[channel, row, col]),
                    w_idx=int(col),
                    h_idx=int(row),
                    c_idx=int(channel),
                )
            )
        table = None
    else:
        coords = np.argwhere(is_outlier)
        values = padded[is_outlier]
        outliers = [
            OutlierActivation(value=value, w_idx=col, h_idx=row, c_idx=channel)
            for (channel, row, col), value in zip(coords.tolist(), values.tolist())
        ]
        table = np.column_stack([coords, values]).astype(np.int64).reshape(len(outliers), 4)
    dense = np.where(is_outlier, 0, padded)
    # chunk order: (h, w, channel block) — the traversal of Fig. 6.
    chunks = dense.reshape(n_blocks, LANES, h, w).transpose(2, 3, 0, 1).reshape(-1, LANES)
    packed = PackedActivations(dense=np.ascontiguousarray(chunks), outliers=outliers, shape=(c, h, w))
    if table is not None:
        packed.__dict__["_outlier_table"] = table
    return packed


def unpack_activations(packed: PackedActivations, slow_reference: bool = False) -> np.ndarray:
    """Reassemble the original (C, H, W) level tensor (dense + outliers).

    The default path scatters all outlier FIFO entries in one fancy-index
    assignment; ``slow_reference=True`` keeps the per-entry loop. Both
    write duplicates last-entry-wins.
    """
    c, h, w = packed.shape
    n_blocks = -(-c // LANES)
    dense = packed.dense.reshape(h, w, n_blocks, LANES).transpose(2, 3, 0, 1).reshape(n_blocks * LANES, h, w)
    out = dense.copy()
    if slow_reference:
        for entry in packed.outliers:
            out[entry.c_idx, entry.h_idx, entry.w_idx] = entry.value
    elif packed.outliers:
        table = packed._coord_table()
        out[table[:, 0], table[:, 1], table[:, 2]] = table[:, 3]
    return out[:c]
