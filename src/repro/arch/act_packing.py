"""Packing activation tensors into the OLAccel on-chip layout.

The swarm/cluster activation buffers hold the dense 4-bit stream as
A(1x1x16) chunks (Fig. 5 bottom); activations above the calibrated
threshold are *removed* from that stream and queued as sparse
(value, coordinates) entries in the outlier FIFO (Fig. 9). This module
performs the split on integer activation levels and reassembles them, so
tests can prove the layout lossless end-to-end:

    levels  ->  (dense chunk array, outlier FIFO)  ->  levels

It also reports the exact storage footprint both halves occupy, which the
energy model's activation terms are anchored to.

Like the weight packer (:mod:`repro.arch.packing`), the packer keeps two
representations: the fast path builds a flat ``(n, 4)`` outlier
coordinate table straight from ``argwhere`` and materializes the
per-entry :class:`OutlierActivation` FIFO list lazily on first access;
``slow_reference=True`` is the fully scalar executable specification
that walks every (channel, row, col) element in FIFO order. Both are
bit-identical (tests/test_vectorized_equiv.py).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError, QuantRangeError
from .chunks import LANES, OutlierActivation

__all__ = ["PackedActivations", "pack_activations", "unpack_activations", "ACT_NORMAL_MAX"]

#: Largest level the dense 4-bit unsigned stream can hold.
ACT_NORMAL_MAX = 15

#: Outlier FIFO entry: 16-bit value + 8-bit w/h indices + 8-bit channel-chunk
#: index (Fig. 9's OLw.idx / OLh.idx / OLc.idx).
OUTLIER_ENTRY_BITS = 16 + 24


class PackedActivations:
    """One layer's input activations in on-chip form.

    ``dense`` is a (chunks, 16) int array of 4-bit levels in channel-major
    chunk order: chunk ``(h, w, c_blk)`` covers channels
    ``[16 c_blk, 16 c_blk + 16)`` at pixel ``(h, w)``. The outlier FIFO
    carries the diverted high-precision activations with their
    coordinates, held in either of two interchangeable forms:

    - a flat ``(n, 4)`` int64 coordinate table of (c, h, w, value) rows
      (the fast packer's native output, consumed directly by the
      vectorized unpack scatter and the fault-injection striker);
    - a list of :class:`OutlierActivation` entries (the FIFO the scalar
      paths walk), materialized lazily from the table on first access.

    Whichever form exists is converted to the other on demand; assigning
    ``outliers`` drops a stale table. FIFO order is C-order over
    (channel, row, col) in both forms.
    """

    def __init__(
        self,
        dense: np.ndarray,
        outliers: Optional[Sequence[OutlierActivation]] = None,
        shape: tuple = (),
        outlier_table: Optional[np.ndarray] = None,
    ):
        self.dense = dense
        self.shape = tuple(shape)
        self._outliers: Optional[List[OutlierActivation]] = (
            list(outliers) if outliers is not None else None
        )
        self._table: Optional[np.ndarray] = outlier_table
        if self._outliers is None and self._table is None:
            self._outliers = []

    # -- the two outlier forms ----------------------------------------------

    @property
    def outliers(self) -> List[OutlierActivation]:
        """The outlier FIFO as entry objects (materialized lazily)."""
        if self._outliers is None:
            self._outliers = [
                OutlierActivation(value=value, w_idx=col, h_idx=row, c_idx=channel)
                for channel, row, col, value in self._table.tolist()
            ]
        return self._outliers

    @outliers.setter
    def outliers(self, entries: Sequence[OutlierActivation]) -> None:
        self._outliers = list(entries)
        self._table = None  # stale: rebuild from the new FIFO on demand

    @property
    def n_outliers(self) -> int:
        """FIFO entry count, without materializing either form."""
        if self._table is not None:
            return int(self._table.shape[0])
        return len(self._outliers)

    def _coord_table(self) -> np.ndarray:
        """(n_outliers, 4) int64 rows of (c, h, w, value) — the FIFO as an
        array, for the vectorized unpack scatter and the swarm striker."""
        if self._table is None:
            self._table = np.array(
                [(e.c_idx, e.h_idx, e.w_idx, e.value) for e in self._outliers],
                dtype=np.int64,
            ).reshape(len(self._outliers), 4)
        return self._table

    def replace_streams(
        self,
        dense: Optional[np.ndarray] = None,
        outliers: Optional[Sequence[OutlierActivation]] = None,
    ) -> "PackedActivations":
        """A copy with the dense stream and/or outlier FIFO swapped out
        (the fault injector's strike-and-rebuild step)."""
        out = PackedActivations(
            dense=self.dense if dense is None else dense,
            shape=self.shape,
        )
        if outliers is not None:
            out._outliers = list(outliers)
        elif self._outliers is not None:
            out._outliers = list(self._outliers)
            out._table = self._table
        else:
            out._table = self._table
            out._outliers = None
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, PackedActivations):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.dense, other.dense)
            and self.outliers == other.outliers
        )

    # -- footprint and density ----------------------------------------------

    @property
    def n_chunks(self) -> int:
        return self.dense.shape[0]

    @property
    def dense_bits(self) -> int:
        """Dense stream footprint: 4 bits per slot (zeros included)."""
        return self.dense.size * 4

    @property
    def outlier_bits(self) -> int:
        return self.n_outliers * OUTLIER_ENTRY_BITS

    @property
    def total_bits(self) -> int:
        return self.dense_bits + self.outlier_bits

    def nonzero_density(self) -> float:
        """Nonzero fraction of the dense stream (drives zero-skipping)."""
        return float(np.count_nonzero(self.dense) / self.dense.size) if self.dense.size else 0.0

    def zero_quad_fraction(self) -> float:
        """Fraction of aligned quads that are all zero (skip-cycle payers)."""
        if self.dense.size == 0:
            return 0.0
        quads = self.dense.reshape(-1, 4)
        return float((~quads.any(axis=1)).mean())


def _check_levels(levels: np.ndarray) -> np.ndarray:
    levels = np.asarray(levels, dtype=np.int64)
    if levels.ndim != 3:
        raise ConfigError(f"expected (C, H, W) levels, got shape {levels.shape}")
    if levels.size and levels.min() < 0:
        raise QuantRangeError("activation levels must be non-negative")
    return levels


def _pack_scalar(levels: np.ndarray, normal_max: int) -> PackedActivations:
    """The executable specification: walk every element in Python.

    Outliers are collected in FIFO order (C-order over channel, row,
    col); dense values land in chunk ``(row * W + col) * n_blocks + blk``
    at lane ``channel % 16`` — the Fig. 6 traversal, one element at a
    time the way the store hardware would stream them.
    """
    c, h, w = levels.shape
    n_blocks = -(-c // LANES)
    chunks = np.zeros((h * w * n_blocks, LANES), dtype=np.int64)
    outliers: List[OutlierActivation] = []
    for channel in range(c):
        block, lane = divmod(channel, LANES)
        plane = levels[channel]
        for row in range(h):
            for col in range(w):
                value = int(plane[row, col])
                if value > normal_max:
                    outliers.append(
                        OutlierActivation(value=value, w_idx=col, h_idx=row, c_idx=channel)
                    )
                else:
                    chunks[(row * w + col) * n_blocks + block, lane] = value
    return PackedActivations(dense=chunks, outliers=outliers, shape=(c, h, w))


def _pack_fast(levels: np.ndarray, normal_max: int) -> PackedActivations:
    """Vectorized split: one comparison, one ``argwhere``, one gather."""
    c, h, w = levels.shape
    n_blocks = -(-c // LANES)
    if n_blocks * LANES == c:
        padded = levels
    else:
        padded = np.zeros((n_blocks * LANES, h, w), dtype=np.int64)
        padded[:c] = levels
    is_outlier = padded > normal_max
    coords = np.argwhere(is_outlier)
    table = np.column_stack([coords, padded[is_outlier]]).astype(np.int64).reshape(-1, 4)
    dense = np.where(is_outlier, 0, padded)
    # chunk order: (h, w, channel block) — the traversal of Fig. 6.
    chunks = dense.reshape(n_blocks, LANES, h, w).transpose(2, 3, 0, 1).reshape(-1, LANES)
    return PackedActivations(
        dense=np.ascontiguousarray(chunks), shape=(c, h, w), outlier_table=table
    )


def pack_activations(
    levels: np.ndarray, normal_max: int = ACT_NORMAL_MAX, slow_reference: bool = False
) -> PackedActivations:
    """Split a (C, H, W) non-negative level tensor into dense + outliers.

    Channels are padded to a multiple of 16 with zeros. Values above
    ``normal_max`` go to the outlier FIFO and leave a zero in the dense
    stream (they are "stored only in the swarm buffer", Sec. III-A).

    The default path builds the whole dense chunk grid and the outlier
    coordinate table with array ops (the FIFO entry list materializes
    lazily); ``slow_reference=True`` is the per-element scalar twin.
    Both produce identical chunk grids and FIFO order (C-order over
    (channel, row, col)).
    """
    levels = _check_levels(levels)
    if slow_reference:
        return _pack_scalar(levels, normal_max)
    return _pack_fast(levels, normal_max)


def unpack_activations(packed: PackedActivations, slow_reference: bool = False) -> np.ndarray:
    """Reassemble the original (C, H, W) level tensor (dense + outliers).

    The default path scatters all outlier FIFO entries in one fancy-index
    assignment; ``slow_reference=True`` keeps the per-entry loop. Both
    write duplicates last-entry-wins.
    """
    c, h, w = packed.shape
    n_blocks = -(-c // LANES)
    dense = packed.dense.reshape(h, w, n_blocks, LANES).transpose(2, 3, 0, 1).reshape(n_blocks * LANES, h, w)
    out = dense.copy()
    if slow_reference:
        for entry in packed.outliers:
            out[entry.c_idx, entry.h_idx, entry.w_idx] = entry.value
    elif packed.n_outliers:
        table = packed._coord_table()
        out[table[:, 0], table[:, 1], table[:, 2]] = table[:, 3]
    return out[:c]
