"""Area model and the ISO-area configuration search (paper Table I).

The paper sizes every accelerator to the same logic+buffer area as Eyeriss
at the matching precision, then reports the resulting PE/MAC counts:
Eyeriss 165 PEs, ZeNA 168 PEs, OLAccel 768 4-bit MACs (16-bit comparison,
eight clusters) / 576 (8-bit comparison, six clusters).

Model structure:

- An Eyeriss-style PE (MAC + internal buffers + control) has area
  ``pe_base + pe_per_bit * bits`` — a linear fit through the paper's two
  published Eyeriss areas (1.53 mm^2 at 16 bit, 0.96 mm^2 at 8 bit, 165
  PEs each). ZeNA PEs carry a small zero-skip overhead factor.
- An OLAccel PE group is 17 MACs (16 normal + 1 outlier) plus group
  buffers/control; a cluster is 6 normal groups + 1 outlier group (17
  mixed-precision ``ol_act_bits x 4`` MACs) + cluster buffers, tri-buffer
  and accumulation units. MAC area scales with the product of operand
  widths plus a fixed accumulator/register term.

Constants are calibrated so the ISO-area search reproduces Table I's
cluster/MAC counts for both comparisons (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AreaParams",
    "eyeriss_pe_area",
    "zena_pe_area",
    "olaccel_group_area",
    "olaccel_cluster_area",
    "olaccel_area",
    "olaccel_design_area",
    "swarm_buffer_area",
    "iso_area_clusters",
]


@dataclass(frozen=True)
class AreaParams:
    """Area constants in mm^2 (65 nm)."""

    # Eyeriss PE linear fit: 1.53/165 at 16 b and 0.96/165 at 8 b.
    pe_base: float = 0.002372
    pe_per_bit: float = 0.000432
    # ZeNA adds zero-skip index logic per PE.
    zena_overhead: float = 1.06
    # OLAccel datapath.
    mac_per_bit2: float = 0.000025  # multiplier array
    mac_fixed: float = 0.0003  # 24-bit accumulator + registers
    group_fixed: float = 0.006  # group act/weight/output buffers + control
    # Cluster buffers, tri-buffer and accumulation units at 16-bit outlier
    # precision; these datapaths narrow proportionally in the 8-bit
    # comparison (outlier activations, partial-sum movement).
    cluster_fixed_16: float = 0.05
    groups_per_cluster: int = 6
    lanes_per_group: int = 17  # 16 normal + 1 outlier MAC
    # On-chip SRAM density for the swarm buffer (65 nm single-port
    # estimate); only the design-space explorer charges buffer area —
    # the Table I comparisons hold the buffer constant across designs.
    sram_mm2_per_kib: float = 0.005
    # Accumulator/register area scales linearly with accumulator width;
    # ``mac_fixed`` is calibrated at the paper's 24-bit accumulators.
    acc_ref_bits: int = 24


DEFAULT_AREA = AreaParams()


def eyeriss_pe_area(bits: int, params: AreaParams = DEFAULT_AREA) -> float:
    """Area of one Eyeriss PE (MAC + spads + control) at ``bits`` precision."""
    return params.pe_base + params.pe_per_bit * bits


def zena_pe_area(bits: int, params: AreaParams = DEFAULT_AREA) -> float:
    """ZeNA PE: Eyeriss PE plus zero-skip bookkeeping."""
    return eyeriss_pe_area(bits, params) * params.zena_overhead


def _mac_area(act_bits: int, weight_bits: int, params: AreaParams) -> float:
    return params.mac_per_bit2 * act_bits * weight_bits + params.mac_fixed


def olaccel_group_area(params: AreaParams = DEFAULT_AREA) -> float:
    """One normal PE group: 17 4x4-bit MACs + group buffers."""
    return params.group_fixed + params.lanes_per_group * _mac_area(4, 4, params)


def olaccel_outlier_group_area(ol_act_bits: int, params: AreaParams = DEFAULT_AREA) -> float:
    """One outlier PE group: 17 mixed-precision (ol_act_bits x 4) MACs."""
    return params.group_fixed + params.lanes_per_group * _mac_area(ol_act_bits, 4, params)


def olaccel_cluster_area(ol_act_bits: int, params: AreaParams = DEFAULT_AREA) -> float:
    """One PE cluster: normal groups + one outlier group + cluster overhead."""
    cluster_fixed = params.cluster_fixed_16 * (ol_act_bits / 16.0)
    return (
        cluster_fixed
        + params.groups_per_cluster * olaccel_group_area(params)
        + olaccel_outlier_group_area(ol_act_bits, params)
    )


def olaccel_area(n_clusters: int, ol_act_bits: int, params: AreaParams = DEFAULT_AREA) -> float:
    """Total OLAccel datapath area for ``n_clusters`` clusters."""
    return n_clusters * olaccel_cluster_area(ol_act_bits, params)


def _mac_area_at(
    act_bits: int, weight_bits: int, acc_bits: int, params: AreaParams
) -> float:
    """MAC area at arbitrary operand and accumulator widths."""
    acc_scale = acc_bits / params.acc_ref_bits
    return params.mac_per_bit2 * act_bits * weight_bits + params.mac_fixed * acc_scale


def swarm_buffer_area(nbytes: int, params: AreaParams = DEFAULT_AREA) -> float:
    """SRAM area of a swarm buffer of ``nbytes`` capacity."""
    return params.sram_mm2_per_kib * nbytes / 1024.0


def olaccel_design_area(
    n_clusters: int,
    groups_per_cluster: int,
    act_bits: int = 4,
    weight_bits: int = 4,
    ol_act_bits: int = 16,
    acc_bits: int = 24,
    swarm_buffer_bytes: int = 0,
    params: AreaParams = DEFAULT_AREA,
) -> float:
    """Datapath + swarm-buffer area of an arbitrary OLAccel-style design.

    Generalizes :func:`olaccel_area` over the explorer's free dimensions
    (group count, operand widths, accumulator width, buffer capacity).
    At the paper's design point — ``groups_per_cluster=6``, 4x4-bit
    MACs, 24-bit accumulators, no buffer term — it coincides with
    ``olaccel_area(n_clusters, ol_act_bits)`` exactly.
    """
    group = params.group_fixed + params.lanes_per_group * _mac_area_at(
        act_bits, weight_bits, acc_bits, params
    )
    outlier_group = params.group_fixed + params.lanes_per_group * _mac_area_at(
        ol_act_bits, weight_bits, acc_bits, params
    )
    cluster_fixed = params.cluster_fixed_16 * (ol_act_bits / 16.0)
    cluster = cluster_fixed + groups_per_cluster * group + outlier_group
    return n_clusters * cluster + swarm_buffer_area(swarm_buffer_bytes, params)


def iso_area_clusters(budget_mm2: float, ol_act_bits: int, params: AreaParams = DEFAULT_AREA) -> int:
    """Largest cluster count whose area fits the budget (Table I search)."""
    if budget_mm2 <= 0:
        raise ValueError("area budget must be positive")
    per_cluster = olaccel_cluster_area(ol_act_bits, params)
    return max(int(budget_mm2 // per_cluster), 0)
