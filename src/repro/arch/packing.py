"""Packing weight tensors into OLAccel weight chunks (Fig. 5).

The cluster weight buffer stores weights at the granularity of 80-bit
chunks: 16 lanes (one per output channel of a PE group) for a single
(kernel position, input channel) reduction index. Outlier weights are
8-bit levels on the same step as the 4-bit normal weights; their LSB part
stays in the lane nibble and their MSB nibble goes either into the chunk's
``ol_msb`` field (single outlier — free, handled by the outlier MAC) or
into a spill chunk referenced by ``ol_ptr`` (multiple outliers — the chunk
then costs two cycles, Fig. 8).

The packer is exact: :meth:`PackedWeights.unpack` reconstructs the original
integer levels, which hypothesis round-trip tests verify.

Two equivalent representations coexist. The *table* form
(:class:`WeightTables`) holds the whole packed tensor as flat numpy
arrays and is what the vectorized fast paths operate on; the *chunk* form
is the per-chunk :class:`WeightChunk` object list the scalar reference
paths and the fault validators walk. :class:`PackedWeights` converts
lazily between the two, so ``pack_weights`` never builds chunk objects
unless something asks for them. ``slow_reference=True`` selects the
original per-element scalar implementation everywhere a vectorized path
exists; ``tests/test_vectorized_equiv.py`` proves the two bit-exact on
randomized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigError, QuantRangeError
from .chunks import LANES, WEIGHT_CHUNK_BITS, WeightChunk, combine_outlier_weight, split_outlier_weight

__all__ = ["PackedWeights", "WeightTables", "pack_weights", "normal_max_level", "outlier_max_level"]

#: Largest level a 4-bit sign-magnitude lane nibble can hold.
normal_max_level = 7
#: Largest level an 8-bit sign-magnitude outlier weight can hold.
outlier_max_level = 127


@dataclass(frozen=True)
class WeightTables:
    """A packed weight table as flat arrays — the vectorized twin of the
    :class:`WeightChunk` lists.

    Row ``i`` of every base array describes base chunk ``i``
    (``i = g * reduction + r``). ``ol_ptr`` uses ``-1`` for "no spill"
    (the chunk form uses ``None``); ``ol_idx``/``ol_msb`` are zero for
    multi-outlier rows, mirroring how :func:`repro.arch.bitcodec.decode_chunk`
    drops those fields when ``ol_ptr`` is set.
    """

    #: (n_base, LANES) signed lane LSB values.
    lanes: np.ndarray
    #: (n_base,) single-outlier lane index (0 when unused).
    ol_idx: np.ndarray
    #: (n_base,) signed single-outlier MSB (0 when unused).
    ol_msb: np.ndarray
    #: (n_base,) spill-chunk index, -1 = no spill.
    ol_ptr: np.ndarray
    #: (n_spill, LANES) signed spill MSB values.
    spill_lanes: np.ndarray

    @property
    def n_base(self) -> int:
        return self.lanes.shape[0]

    @property
    def n_spill(self) -> int:
        return self.spill_lanes.shape[0]


def _tables_from_chunks(base_chunks: List[WeightChunk], spill_chunks: List[WeightChunk]) -> WeightTables:
    n = len(base_chunks)
    lanes = np.zeros((n, LANES), dtype=np.int64)
    ol_idx = np.zeros(n, dtype=np.int64)
    ol_msb = np.zeros(n, dtype=np.int64)
    ol_ptr = np.full(n, -1, dtype=np.int64)
    for i, chunk in enumerate(base_chunks):
        lanes[i] = chunk.lanes
        if chunk.ol_ptr is not None:
            ol_ptr[i] = chunk.ol_ptr
        else:
            ol_idx[i] = chunk.ol_idx
            ol_msb[i] = chunk.ol_msb
    spill = np.array([c.lanes for c in spill_chunks], dtype=np.int64).reshape(len(spill_chunks), LANES)
    return WeightTables(lanes=lanes, ol_idx=ol_idx, ol_msb=ol_msb, ol_ptr=ol_ptr, spill_lanes=spill)


def _chunks_from_tables(tables: WeightTables) -> Tuple[List[WeightChunk], List[WeightChunk]]:
    base: List[WeightChunk] = []
    for lanes, idx, msb, ptr in zip(
        tables.lanes.tolist(), tables.ol_idx.tolist(), tables.ol_msb.tolist(), tables.ol_ptr.tolist()
    ):
        if ptr >= 0:
            base.append(WeightChunk(lanes=tuple(lanes), ol_ptr=ptr))
        elif msb != 0:
            base.append(WeightChunk(lanes=tuple(lanes), ol_idx=idx, ol_msb=msb))
        else:
            base.append(WeightChunk(lanes=tuple(lanes)))
    spill = [WeightChunk(lanes=tuple(l), is_spill=True) for l in tables.spill_lanes.tolist()]
    return base, spill


class PackedWeights:
    """A weight tensor packed into base + spill chunks.

    ``base_chunks[g * reduction + r]`` covers output-channel group ``g`` at
    reduction index ``r`` (reduction = flattened (in_c, kh, kw) in im2col
    order). ``spill_chunks`` are indexed by the base chunks' ``ol_ptr``.

    Construct from chunk lists (positional, the historical layout) or from
    a :class:`WeightTables` via the ``tables`` keyword; either form
    materializes the other on demand. Replace chunk lists through the
    ``base_chunks``/``spill_chunks`` setters — in-place mutation of a
    returned list is not tracked (the outlier-chunk counts are cached at
    construction, not rescanned per access).
    """

    def __init__(
        self,
        base_chunks: Optional[List[WeightChunk]] = None,
        spill_chunks: Optional[List[WeightChunk]] = None,
        n_groups: int = 0,
        reduction: int = 0,
        out_channels: int = 0,
        *,
        tables: Optional[WeightTables] = None,
    ):
        if tables is None and base_chunks is None:
            raise ConfigError("PackedWeights needs either chunk lists or tables")
        self._base_chunks = list(base_chunks) if base_chunks is not None else None
        self._spill_chunks = list(spill_chunks) if spill_chunks is not None else None
        if self._base_chunks is not None and self._spill_chunks is None:
            self._spill_chunks = []
        self._tables = tables
        self.n_groups = n_groups
        self.reduction = reduction
        self.out_channels = out_channels
        self._recount()

    def _recount(self) -> None:
        """Cache the single/multi outlier chunk counts (once, at construction
        or chunk-list replacement — not per property access)."""
        if self._base_chunks is not None:
            self._single_count = sum(1 for c in self._base_chunks if c.has_single_outlier)
            self._multi_count = sum(1 for c in self._base_chunks if c.has_multi_outlier)
        else:
            t = self._tables
            self._single_count = int(((t.ol_ptr < 0) & (t.ol_msb != 0)).sum())
            self._multi_count = int((t.ol_ptr >= 0).sum())

    # -- representation conversion ---------------------------------------

    @property
    def tables(self) -> WeightTables:
        """The flat-array form (built from the chunk lists on first use)."""
        if self._tables is None:
            self._tables = _tables_from_chunks(self._base_chunks, self._spill_chunks)
        return self._tables

    @property
    def base_chunks(self) -> List[WeightChunk]:
        if self._base_chunks is None:
            self._base_chunks, self._spill_chunks = _chunks_from_tables(self._tables)
        return self._base_chunks

    @base_chunks.setter
    def base_chunks(self, chunks: List[WeightChunk]) -> None:
        if self._spill_chunks is None:  # keep the spill half before dropping tables
            _, self._spill_chunks = _chunks_from_tables(self._tables)
        self._base_chunks = list(chunks)
        self._tables = None
        self._recount()

    @property
    def spill_chunks(self) -> List[WeightChunk]:
        if self._spill_chunks is None:
            self._base_chunks, self._spill_chunks = _chunks_from_tables(self._tables)
        return self._spill_chunks

    @spill_chunks.setter
    def spill_chunks(self, chunks: List[WeightChunk]) -> None:
        if self._base_chunks is None:
            self._base_chunks, _ = _chunks_from_tables(self._tables)
        self._spill_chunks = list(chunks)
        self._tables = None
        self._recount()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedWeights):
            return NotImplemented
        return (
            self.n_groups == other.n_groups
            and self.reduction == other.reduction
            and self.out_channels == other.out_channels
            and self.base_chunks == other.base_chunks
            and self.spill_chunks == other.spill_chunks
        )

    # -- cached counts and footprint -------------------------------------

    @property
    def n_base(self) -> int:
        return len(self._base_chunks) if self._base_chunks is not None else self._tables.n_base

    @property
    def n_spill(self) -> int:
        return len(self._spill_chunks) if self._spill_chunks is not None else self._tables.n_spill

    @property
    def single_outlier_chunks(self) -> int:
        return self._single_count

    @property
    def multi_outlier_chunks(self) -> int:
        return self._multi_count

    @property
    def multi_outlier_mask(self) -> np.ndarray:
        """(n_base,) bool — which base chunks pay the two-cycle spill pass."""
        if self._tables is not None:
            return self._tables.ol_ptr >= 0
        return np.fromiter(
            (c.has_multi_outlier for c in self._base_chunks), dtype=bool, count=len(self._base_chunks)
        )

    @property
    def total_chunks(self) -> int:
        return self.n_base + self.n_spill

    @property
    def total_bits(self) -> int:
        """On-chip footprint of the packed representation."""
        return self.total_chunks * WEIGHT_CHUNK_BITS

    @property
    def multi_outlier_fraction(self) -> float:
        """Fraction of base chunks paying the two-cycle penalty (Fig. 17)."""
        return self._multi_count / self.n_base if self.n_base else 0.0

    # -- unpacking -------------------------------------------------------

    def unpack(self, slow_reference: bool = False) -> np.ndarray:
        """Reconstruct the (out_channels, reduction) integer level matrix."""
        if slow_reference:
            return self._unpack_scalar()
        t = self.tables
        lanes = t.lanes.copy()
        single = np.flatnonzero((t.ol_ptr < 0) & (t.ol_msb != 0))
        lanes[single, t.ol_idx[single]] += 8 * t.ol_msb[single]
        multi = np.flatnonzero(t.ol_ptr >= 0)
        if multi.size:
            lanes[multi] += 8 * t.spill_lanes[t.ol_ptr[multi]]
        levels = (
            lanes.reshape(self.n_groups, self.reduction, LANES)
            .transpose(0, 2, 1)
            .reshape(self.n_groups * LANES, self.reduction)
        )
        return levels[: self.out_channels]

    def _unpack_scalar(self) -> np.ndarray:
        levels = np.zeros((self.n_groups * LANES, self.reduction), dtype=np.int64)
        for g in range(self.n_groups):
            for r in range(self.reduction):
                chunk = self.base_chunks[g * self.reduction + r]
                lane_values = list(chunk.lanes)
                if chunk.has_multi_outlier:
                    spill = self.spill_chunks[chunk.ol_ptr]
                    for lane in range(LANES):
                        lane_values[lane] = combine_outlier_weight(spill.lanes[lane], lane_values[lane])
                elif chunk.has_single_outlier:
                    lane = chunk.ol_idx
                    lane_values[lane] = combine_outlier_weight(chunk.ol_msb, lane_values[lane])
                levels[g * LANES : (g + 1) * LANES, r] = lane_values
        return levels[: self.out_channels]


def _validate_levels(levels: np.ndarray) -> np.ndarray:
    levels = np.asarray(levels, dtype=np.int64)
    if levels.ndim != 2:
        raise ConfigError(f"expected a 2-D level matrix, got shape {levels.shape}")
    if np.abs(levels).max(initial=0) > outlier_max_level:
        raise QuantRangeError("levels exceed the 8-bit outlier grid")
    return levels


def pack_weights(levels: np.ndarray, slow_reference: bool = False) -> PackedWeights:
    """Pack a (out_channels, reduction) integer level matrix into chunks.

    Levels must fit the 8-bit outlier grid [-127, 127]; levels in [-7, 7]
    are normal, anything larger is an outlier. Output channels are padded
    with zero lanes to a multiple of 16.

    The default path classifies and splits the whole chunk grid with
    numpy batch operations and returns a table-backed
    :class:`PackedWeights` (chunk objects are materialized lazily);
    ``slow_reference=True`` runs the original per-chunk scalar loop. Both
    produce identical chunks and identical 80-bit words.
    """
    if slow_reference:
        return _pack_weights_scalar(levels)
    levels = _validate_levels(levels)

    out_channels, reduction = levels.shape
    n_groups = -(-out_channels // LANES)
    padded = np.zeros((n_groups * LANES, reduction), dtype=np.int64)
    padded[:out_channels] = levels

    # Row i = base chunk i = (g, r) with i = g * reduction + r; columns are
    # the 16 output-channel lanes of group g.
    n_base = n_groups * reduction
    grid = padded.reshape(n_groups, LANES, reduction).transpose(0, 2, 1).reshape(n_base, LANES)

    magnitude = np.abs(grid)
    out_mask = magnitude > normal_max_level
    sign = np.sign(grid)
    lsb = sign * (magnitude & 0b111)
    msb = sign * (magnitude >> 3)  # zero for normal lanes

    lanes = np.where(out_mask, lsb, grid)
    outlier_counts = out_mask.sum(axis=1)
    single = outlier_counts == 1
    multi = outlier_counts >= 2

    ol_idx = np.where(single, out_mask.argmax(axis=1), 0)
    ol_msb = np.where(single, np.take_along_axis(msb, ol_idx[:, None], axis=1)[:, 0], 0)

    ol_ptr = np.full(n_base, -1, dtype=np.int64)
    multi_rows = np.flatnonzero(multi)
    ol_ptr[multi_rows] = np.arange(multi_rows.size)  # spill order = base index order
    spill_lanes = msb[multi_rows]

    tables = WeightTables(
        lanes=lanes,
        ol_idx=ol_idx.astype(np.int64),
        ol_msb=ol_msb.astype(np.int64),
        ol_ptr=ol_ptr,
        spill_lanes=spill_lanes,
    )
    return PackedWeights(
        tables=tables, n_groups=n_groups, reduction=reduction, out_channels=out_channels
    )


def _pack_weights_scalar(levels: np.ndarray) -> PackedWeights:
    """The original per-chunk packer — kept as the golden scalar reference."""
    levels = _validate_levels(levels)

    out_channels, reduction = levels.shape
    n_groups = -(-out_channels // LANES)
    padded = np.zeros((n_groups * LANES, reduction), dtype=np.int64)
    padded[:out_channels] = levels

    base_chunks: List[WeightChunk] = []
    spill_chunks: List[WeightChunk] = []
    for g in range(n_groups):
        block = padded[g * LANES : (g + 1) * LANES]
        for r in range(reduction):
            lane_levels = block[:, r]
            outlier_lanes = np.flatnonzero(np.abs(lane_levels) > normal_max_level)
            if outlier_lanes.size == 0:
                base_chunks.append(WeightChunk(lanes=tuple(int(v) for v in lane_levels)))
            elif outlier_lanes.size == 1:
                lane = int(outlier_lanes[0])
                msb, lsb = split_outlier_weight(int(lane_levels[lane]))
                lanes = [int(v) for v in lane_levels]
                lanes[lane] = lsb
                base_chunks.append(WeightChunk(lanes=tuple(lanes), ol_idx=lane, ol_msb=msb))
            else:
                lanes = []
                spill_lanes = []
                for v in lane_levels:
                    v = int(v)
                    if abs(v) > normal_max_level:
                        msb, lsb = split_outlier_weight(v)
                    else:
                        msb, lsb = 0, v
                    lanes.append(lsb)
                    spill_lanes.append(msb)
                spill_index = len(spill_chunks)
                spill_chunks.append(WeightChunk(lanes=tuple(spill_lanes), is_spill=True))
                base_chunks.append(WeightChunk(lanes=tuple(lanes), ol_ptr=spill_index))

    return PackedWeights(
        base_chunks=base_chunks,
        spill_chunks=spill_chunks,
        n_groups=n_groups,
        reduction=reduction,
        out_channels=out_channels,
    )
