"""Packing weight tensors into OLAccel weight chunks (Fig. 5).

The cluster weight buffer stores weights at the granularity of 80-bit
chunks: 16 lanes (one per output channel of a PE group) for a single
(kernel position, input channel) reduction index. Outlier weights are
8-bit levels on the same step as the 4-bit normal weights; their LSB part
stays in the lane nibble and their MSB nibble goes either into the chunk's
``ol_msb`` field (single outlier — free, handled by the outlier MAC) or
into a spill chunk referenced by ``ol_ptr`` (multiple outliers — the chunk
then costs two cycles, Fig. 8).

The packer is exact: :meth:`PackedWeights.unpack` reconstructs the original
integer levels, which hypothesis round-trip tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigError, QuantRangeError
from .chunks import LANES, WEIGHT_CHUNK_BITS, WeightChunk, combine_outlier_weight, split_outlier_weight

__all__ = ["PackedWeights", "pack_weights", "normal_max_level", "outlier_max_level"]

#: Largest level a 4-bit sign-magnitude lane nibble can hold.
normal_max_level = 7
#: Largest level an 8-bit sign-magnitude outlier weight can hold.
outlier_max_level = 127


@dataclass
class PackedWeights:
    """A weight tensor packed into base + spill chunks.

    ``base_chunks[g * reduction + r]`` covers output-channel group ``g`` at
    reduction index ``r`` (reduction = flattened (in_c, kh, kw) in im2col
    order). ``spill_chunks`` are indexed by the base chunks' ``ol_ptr``.
    """

    base_chunks: List[WeightChunk]
    spill_chunks: List[WeightChunk]
    n_groups: int
    reduction: int
    out_channels: int

    @property
    def single_outlier_chunks(self) -> int:
        return sum(1 for c in self.base_chunks if c.has_single_outlier)

    @property
    def multi_outlier_chunks(self) -> int:
        return sum(1 for c in self.base_chunks if c.has_multi_outlier)

    @property
    def total_chunks(self) -> int:
        return len(self.base_chunks) + len(self.spill_chunks)

    @property
    def total_bits(self) -> int:
        """On-chip footprint of the packed representation."""
        return self.total_chunks * WEIGHT_CHUNK_BITS

    @property
    def multi_outlier_fraction(self) -> float:
        """Fraction of base chunks paying the two-cycle penalty (Fig. 17)."""
        return self.multi_outlier_chunks / len(self.base_chunks) if self.base_chunks else 0.0

    def unpack(self) -> np.ndarray:
        """Reconstruct the (out_channels, reduction) integer level matrix."""
        levels = np.zeros((self.n_groups * LANES, self.reduction), dtype=np.int64)
        for g in range(self.n_groups):
            for r in range(self.reduction):
                chunk = self.base_chunks[g * self.reduction + r]
                lane_values = list(chunk.lanes)
                if chunk.has_multi_outlier:
                    spill = self.spill_chunks[chunk.ol_ptr]
                    for lane in range(LANES):
                        lane_values[lane] = combine_outlier_weight(spill.lanes[lane], lane_values[lane])
                elif chunk.has_single_outlier:
                    lane = chunk.ol_idx
                    lane_values[lane] = combine_outlier_weight(chunk.ol_msb, lane_values[lane])
                levels[g * LANES : (g + 1) * LANES, r] = lane_values
        return levels[: self.out_channels]


def pack_weights(levels: np.ndarray) -> PackedWeights:
    """Pack a (out_channels, reduction) integer level matrix into chunks.

    Levels must fit the 8-bit outlier grid [-127, 127]; levels in [-7, 7]
    are normal, anything larger is an outlier. Output channels are padded
    with zero lanes to a multiple of 16.
    """
    levels = np.asarray(levels, dtype=np.int64)
    if levels.ndim != 2:
        raise ConfigError(f"expected a 2-D level matrix, got shape {levels.shape}")
    if np.abs(levels).max(initial=0) > outlier_max_level:
        raise QuantRangeError("levels exceed the 8-bit outlier grid")

    out_channels, reduction = levels.shape
    n_groups = -(-out_channels // LANES)
    padded = np.zeros((n_groups * LANES, reduction), dtype=np.int64)
    padded[:out_channels] = levels

    base_chunks: List[WeightChunk] = []
    spill_chunks: List[WeightChunk] = []
    for g in range(n_groups):
        block = padded[g * LANES : (g + 1) * LANES]
        for r in range(reduction):
            lane_levels = block[:, r]
            outlier_lanes = np.flatnonzero(np.abs(lane_levels) > normal_max_level)
            if outlier_lanes.size == 0:
                base_chunks.append(WeightChunk(lanes=tuple(int(v) for v in lane_levels)))
            elif outlier_lanes.size == 1:
                lane = int(outlier_lanes[0])
                msb, lsb = split_outlier_weight(int(lane_levels[lane]))
                lanes = [int(v) for v in lane_levels]
                lanes[lane] = lsb
                base_chunks.append(WeightChunk(lanes=tuple(lanes), ol_idx=lane, ol_msb=msb))
            else:
                lanes = []
                spill_lanes = []
                for v in lane_levels:
                    v = int(v)
                    if abs(v) > normal_max_level:
                        msb, lsb = split_outlier_weight(v)
                    else:
                        msb, lsb = 0, v
                    lanes.append(lsb)
                    spill_lanes.append(msb)
                spill_index = len(spill_chunks)
                spill_chunks.append(WeightChunk(lanes=tuple(spill_lanes), is_spill=True))
                base_chunks.append(WeightChunk(lanes=tuple(lanes), ol_ptr=spill_index))

    return PackedWeights(
        base_chunks=base_chunks,
        spill_chunks=spill_chunks,
        n_groups=n_groups,
        reduction=reduction,
        out_channels=out_channels,
    )
