"""The OLAccel on-chip data structures (paper Figs. 5 and 9).

Three chunk types move through the accelerator:

- :class:`WeightChunk` — an 80-bit entry holding 16 4-bit weight nibbles
  (one per output channel of a SIMD lane group), an 8-bit ``ol_ptr``
  pointing at a spill chunk when more than one outlier weight is present,
  a 4-bit ``ol_idx`` naming which lane holds the (single) outlier, and a
  4-bit ``ol_msb`` carrying that outlier's most-significant nibble.
- :class:`ActivationChunk` — 16 4-bit normal activations (one A(1x1x16)
  input-channel slice).
- :class:`OutlierActivation` — a sparse 16-bit activation with its three
  tensor coordinates, queued in the swarm buffer for the outlier PE group.

Weight nibbles are sign-magnitude: bit 3 is the sign, bits 2..0 the
magnitude, mirroring the paper's description that an outlier's "least
significant three bits and a sign bit" live in the normal 4-bit field.
The encode/decode helpers in :mod:`repro.arch.packing` are exercised by
hypothesis round-trip tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ChunkIntegrityError, QuantRangeError

__all__ = [
    "LANES",
    "WEIGHT_CHUNK_BITS",
    "WeightChunk",
    "ActivationChunk",
    "OutlierActivation",
    "encode_weight_nibble",
    "decode_weight_nibble",
    "split_outlier_weight",
    "combine_outlier_weight",
]

#: SIMD width of a PE group (16 normal MAC units), fixed by Fig. 17's
#: multi-outlier probability analysis.
LANES = 16

#: 16 x 4-bit weights + 8-bit OLptr + 4-bit OLidx + 4-bit OLmsb.
WEIGHT_CHUNK_BITS = LANES * 4 + 8 + 4 + 4


def encode_weight_nibble(level: int) -> int:
    """Sign-magnitude encode a weight level in [-7, 7] into 4 bits."""
    if not -7 <= level <= 7:
        raise QuantRangeError(f"nibble level out of range: {level}")
    sign = 1 if level < 0 else 0
    return (sign << 3) | abs(level)


def decode_weight_nibble(nibble: int) -> int:
    """Inverse of :func:`encode_weight_nibble`."""
    if not 0 <= nibble <= 15:
        raise QuantRangeError(f"nibble out of range: {nibble}")
    magnitude = nibble & 0b0111
    return -magnitude if nibble & 0b1000 else magnitude


def split_outlier_weight(level: int) -> Tuple[int, int]:
    """Split an 8-bit outlier level into (msb_nibble_level, lsb_level).

    Both halves are signed levels carrying the outlier's sign, such that
    ``msb * 8 + lsb == level`` exactly. The LSB part lives in the normal
    4-bit lane field ("least significant three bits and a sign bit"); the
    MSB part goes to ``ol_msb`` (or the spill chunk) and is what the
    outlier MAC multiplies, pre-shifted by 3 bits.
    """
    if not -127 <= level <= 127:
        raise QuantRangeError(f"outlier level out of range: {level}")
    sign = -1 if level < 0 else 1
    magnitude = abs(level)
    msb = magnitude >> 3
    lsb = magnitude & 0b111
    return sign * msb, sign * lsb


def combine_outlier_weight(msb: int, lsb: int) -> int:
    """Inverse of :func:`split_outlier_weight`."""
    return msb * 8 + lsb


@dataclass(frozen=True)
class WeightChunk:
    """One 80-bit weight-buffer entry (Fig. 5).

    ``lanes`` holds the signed level stored in each lane's 4-bit field
    (for an outlier lane that is the LSB part). ``ol_idx``/``ol_msb``
    describe the first outlier; ``ol_ptr`` is the index of the spill chunk
    holding the MSB nibbles when there are two or more outliers (the spill
    chunk reuses its ``lanes`` field for the MSB parts). A chunk with
    ``ol_ptr`` set costs the PE group two cycles instead of one (Fig. 8).
    """

    lanes: Tuple[int, ...]
    ol_idx: int = 0
    ol_msb: int = 0
    ol_ptr: Optional[int] = None
    is_spill: bool = False

    def __post_init__(self):
        if len(self.lanes) != LANES:
            raise ChunkIntegrityError(
                f"weight chunk needs {LANES} lanes, got {len(self.lanes)}", field="lanes"
            )

    @property
    def has_single_outlier(self) -> bool:
        return self.ol_ptr is None and self.ol_msb != 0

    @property
    def has_multi_outlier(self) -> bool:
        return self.ol_ptr is not None

    @property
    def cycles(self) -> int:
        """MAC cycles to consume this chunk against one broadcast activation."""
        return 2 if self.has_multi_outlier else 1


@dataclass(frozen=True)
class ActivationChunk:
    """A(1x1x16): 16 normal 4-bit activation levels along the channel dim."""

    values: Tuple[int, ...]

    def __post_init__(self):
        if len(self.values) != LANES:
            raise ChunkIntegrityError(
                f"activation chunk needs {LANES} values, got {len(self.values)}", field="values"
            )

    @property
    def nonzero_count(self) -> int:
        return sum(1 for v in self.values if v != 0)

    @property
    def zero_quads(self) -> int:
        """Number of all-zero aligned quads — each costs one skip cycle (Fig. 18)."""
        return sum(
            1
            for q in range(LANES // 4)
            if all(v == 0 for v in self.values[4 * q : 4 * q + 4])
        )


@dataclass(frozen=True)
class OutlierActivation:
    """A sparse high-precision activation with tensor coordinates (Fig. 9)."""

    value: int
    w_idx: int
    h_idx: int
    c_idx: int


@dataclass
class OutlierActivationFifo:
    """The swarm-buffer FIFO feeding an outlier PE group."""

    entries: List[OutlierActivation] = field(default_factory=list)

    def push(self, entry: OutlierActivation) -> None:
        self.entries.append(entry)

    def pop(self) -> OutlierActivation:
        return self.entries.pop(0)

    def __len__(self) -> int:
        return len(self.entries)
