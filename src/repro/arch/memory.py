"""On-chip buffer occupancy and tiling analysis (Table I capacities).

The paper sizes per-network on-chip memories so "all the data required
for a layer" stays on chip (Sec. IV). This module checks that claim layer
by layer for each accelerator's storage format and derives the tiling
consequences when a layer does *not* fit:

- :func:`layer_footprint` — bits each accelerator needs resident for one
  layer (input + output activations in its own encoding, plus the weight
  working set);
- :func:`check_network` — per-layer fit/spill report against a capacity;
- :func:`olaccel_tiling` — how a layer maps onto OLAccel's small cluster
  buffers (Fig. 5: 200-chunk weight buffer, 64-chunk activation buffer):
  how many weight tiles the reduction splits into, and how often partial
  sums revisit the tri-buffer as a result.

Tests assert the paper-consistent facts: AlexNet's 4-bit activations fit
the 393 KiB swarm buffer with room to spare, VGG-scale 16-bit activations
overflow the same budget that 4-bit ones fit, and deep-layer reductions
need multiple weight tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import CapacityError, ConfigError
from ..obs import NULL_REGISTRY, Registry
from .chunks import LANES, WEIGHT_CHUNK_BITS
from .workload import LayerWorkload, NetworkWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> arch)
    from ..faults.plan import FaultPlan

__all__ = [
    "Footprint",
    "layer_footprint",
    "check_network",
    "OLAccelTiling",
    "olaccel_tiling",
    "transfer_words",
]


@dataclass(frozen=True)
class Footprint:
    """Resident bits one layer needs in a given storage format."""

    layer_name: str
    input_bits: float
    output_bits: float
    weight_working_set_bits: float

    @property
    def activation_bits(self) -> float:
        return self.input_bits + self.output_bits

    def fits(self, capacity_bits: float) -> bool:
        """Do input+output activations fit on chip (weights stream)?"""
        return self.activation_bits <= capacity_bits

    def spill_bits(self, capacity_bits: float) -> float:
        return max(0.0, self.activation_bits - capacity_bits)


def layer_footprint(layer: LayerWorkload, style: str, outlier_ratio: float = 0.03) -> Footprint:
    """Footprint under one accelerator's encoding.

    ``style`` is ``"eyeriss16" / "eyeriss8" / "zena16" / "zena8" /
    "olaccel"``. Eyeriss stores dense values; ZeNA adds a one-bit zero
    mask; OLAccel stores the 4-bit dense stream plus 40-bit outlier FIFO
    entries, and weights as 80-bit chunks.
    """
    if style.startswith("eyeriss") or style.startswith("zena"):
        bits = 16 if style.endswith("16") else 8
        mask = 1 if style.startswith("zena") else 0
        per_act = bits + mask
        weight_bits = layer.weight_count * (
            layer.weight_density * (bits + 4) if style.startswith("zena") else bits
        )
        return Footprint(
            layer_name=layer.name,
            input_bits=layer.input_count * per_act,
            output_bits=layer.output_count * per_act,
            weight_working_set_bits=weight_bits,
        )
    if style == "olaccel":
        outlier_acts = layer.input_count * layer.act_density * (0.0 if layer.is_first else outlier_ratio)
        in_bits = layer.input_count * 4 + outlier_acts * 40
        if layer.is_first:
            in_bits = layer.input_count * 16
        return Footprint(
            layer_name=layer.name,
            input_bits=in_bits,
            output_bits=layer.output_count * 4,
            weight_working_set_bits=(layer.weight_count / LANES) * WEIGHT_CHUNK_BITS,
        )
    raise ConfigError(f"unknown storage style {style!r}")


def check_network(
    network: NetworkWorkload,
    capacity_bits: float,
    style: str,
) -> Dict[str, Footprint]:
    """Per-layer footprints keyed by layer name (use ``.fits`` to test)."""
    if capacity_bits <= 0:
        raise CapacityError("capacity must be positive")
    return {layer.name: layer_footprint(layer, style) for layer in network.layers}


@dataclass(frozen=True)
class OLAccelTiling:
    """How one layer maps onto the per-cluster buffers (Fig. 5 sizes)."""

    layer_name: str
    #: weight chunks along one output-channel group's full reduction
    reduction_chunks: int
    #: tiles the reduction splits into given the 200-chunk weight buffer
    weight_tiles: int
    #: times each output partial sum revisits the tri-buffer (one pass per tile)
    psum_passes: int
    #: activation chunks resident per pixel (vs the 64-chunk act buffer)
    act_chunks_per_pixel: int

    @property
    def single_tile(self) -> bool:
        return self.weight_tiles == 1


def olaccel_tiling(
    layer: LayerWorkload,
    weight_buffer_chunks: int = 200,
    act_buffer_chunks: int = 64,
) -> OLAccelTiling:
    """Tile a layer's reduction over the cluster weight buffer.

    A PE group accumulates one output chunk over ``reduction_chunks``
    weight chunks (kernel positions x input-channel chunks). When those
    exceed the cluster weight buffer, the reduction splits into tiles and
    each output partial sum makes one tri-buffer round trip per tile —
    the "multiple stages of the pipeline" the paper describes for a 3x3
    convolution (Fig. 10).
    """
    if weight_buffer_chunks < 1 or act_buffer_chunks < 1:
        raise CapacityError("buffer sizes must be positive")
    in_chunks = -(-int(layer.weight_count / layer.out_channels / (layer.kernel**2)) // LANES)
    reduction_chunks = layer.kernel * layer.kernel * max(in_chunks, 1)
    weight_tiles = -(-reduction_chunks // weight_buffer_chunks)
    return OLAccelTiling(
        layer_name=layer.name,
        reduction_chunks=reduction_chunks,
        weight_tiles=weight_tiles,
        psum_passes=weight_tiles,
        act_chunks_per_pixel=max(in_chunks, 1),
    )


def transfer_words(
    words: List[int],
    width_bits: int = WEIGHT_CHUNK_BITS,
    plan: Optional["FaultPlan"] = None,
    obs: Registry = NULL_REGISTRY,
) -> List[int]:
    """Move packed words across the DRAM/SRAM boundary.

    Healthy memories return the words unchanged; a
    :class:`~repro.faults.plan.FaultPlan` with the ``memory`` surface
    enabled strikes words in flight (modelling bus/array upsets) and
    counts each strike on ``faults/injected``. This is the single choke
    point the fault-injection datapath routes every buffer fill through,
    so a transfer-level fault model needs no changes anywhere else.
    """
    if plan is None:
        return list(words)
    struck, _ = plan.corrupt_words(words, width_bits, surface="memory", obs=obs)
    return struck
