"""Bit-level serialization of weight chunks (the literal 80-bit words).

:mod:`repro.arch.packing` works on structured :class:`WeightChunk`
objects; this module lowers them to the actual 80-bit buffer words of
Fig. 5 and raises them back, so the on-chip format is modelled down to
the bit:

====================  =======  =============================================
field                 bits     contents
====================  =======  =============================================
``lanes``             64       16 x 4-bit sign-magnitude weight nibbles
                               (lane 0 in the least-significant nibble);
                               for a spill chunk, 16 x 4-bit unsigned MSB
                               magnitudes (signs live in the base chunk)
``ol_ptr``            8        spill-chunk index + 1 (0 = no spill)
``ol_idx``            4        lane index of the single outlier
``ol_msb``            4        unsigned MSB magnitude of the single outlier
====================  =======  =============================================

Outlier signs ride the lane nibbles ("the remaining least significant
three bits and a sign bit ... are stored in the associated position"), so
an outlier whose LSB magnitude is zero (e.g. level -8) still encodes its
sign in the nibble's sign bit; the decoder reads the raw bit rather than
the integer sign.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import CapacityError, ChunkIntegrityError, QuantRangeError
from .chunks import LANES, WEIGHT_CHUNK_BITS, WeightChunk
from .packing import PackedWeights, WeightTables

__all__ = [
    "encode_chunk",
    "decode_chunk",
    "encode_table",
    "decode_table",
    "encode_packed",
    "decode_packed",
    "MAX_SPILL_CHUNKS",
]

#: ol_ptr is 8 bits and reserves 0 for "no spill".
MAX_SPILL_CHUNKS = 254

_LANE_FIELD_BITS = 4 * LANES  # 64
_OL_PTR_SHIFT = _LANE_FIELD_BITS
_OL_IDX_SHIFT = _OL_PTR_SHIFT + 8
_OL_MSB_SHIFT = _OL_IDX_SHIFT + 4


def _nibble(magnitude: int, negative: bool) -> int:
    if not 0 <= magnitude <= 7:
        raise QuantRangeError(f"lane magnitude out of range: {magnitude}")
    return (8 if negative else 0) | magnitude


def _lane_signs(chunk: WeightChunk, spill: Optional[WeightChunk]) -> List[bool]:
    """Per-lane sign bits, recovering signs hidden by zero LSB magnitudes."""
    signs = [value < 0 for value in chunk.lanes]
    if chunk.has_single_outlier and chunk.ol_msb < 0:
        signs[chunk.ol_idx] = True
    if chunk.has_multi_outlier:
        if spill is None:
            raise ChunkIntegrityError(
                "encoding a multi-outlier chunk requires its spill chunk", field="ol_ptr"
            )
        for lane, msb in enumerate(spill.lanes):
            if msb < 0:
                signs[lane] = True
    return signs


def encode_chunk(chunk: WeightChunk, spill: Optional[WeightChunk] = None) -> int:
    """Serialize one chunk into its 80-bit integer word.

    For a multi-outlier base chunk, pass the referenced ``spill`` chunk so
    zero-LSB outlier lanes still encode their sign bit.
    """
    word = 0
    if chunk.is_spill:
        for lane, value in enumerate(chunk.lanes):
            magnitude = abs(value)
            if magnitude > 15:
                raise QuantRangeError(f"spill MSB magnitude out of range: {value}")
            word |= magnitude << (4 * lane)
    else:
        signs = _lane_signs(chunk, spill)
        for lane, value in enumerate(chunk.lanes):
            word |= _nibble(abs(value), signs[lane]) << (4 * lane)
    if chunk.ol_ptr is not None:
        if not 0 <= chunk.ol_ptr < MAX_SPILL_CHUNKS:
            raise QuantRangeError(f"ol_ptr out of the 8-bit field: {chunk.ol_ptr}")
        word |= (chunk.ol_ptr + 1) << _OL_PTR_SHIFT
    if not 0 <= chunk.ol_idx < LANES:
        raise QuantRangeError(f"ol_idx out of range: {chunk.ol_idx}")
    word |= chunk.ol_idx << _OL_IDX_SHIFT
    msb_magnitude = abs(chunk.ol_msb)
    if msb_magnitude > 15:
        raise QuantRangeError(f"ol_msb out of the 4-bit field: {chunk.ol_msb}")
    word |= msb_magnitude << _OL_MSB_SHIFT
    assert word < (1 << WEIGHT_CHUNK_BITS)
    return word


def _raw_lanes(word: int) -> List[int]:
    return [(word >> (4 * lane)) & 0xF for lane in range(LANES)]


def decode_chunk(word: int, is_spill: bool = False) -> WeightChunk:
    """Inverse of :func:`encode_chunk`.

    Spill chunks decode their lanes as unsigned magnitudes;
    :func:`decode_table` re-applies the signs recorded in the base chunk.
    """
    if not 0 <= word < (1 << WEIGHT_CHUNK_BITS):
        raise ChunkIntegrityError("word does not fit the 80-bit chunk format")
    raw = _raw_lanes(word)
    if is_spill:
        return WeightChunk(lanes=tuple(raw), is_spill=True)

    lanes = tuple((-(n & 7) if n & 8 else n & 7) for n in raw)
    ol_ptr_raw = (word >> _OL_PTR_SHIFT) & 0xFF
    ol_idx = (word >> _OL_IDX_SHIFT) & 0xF
    ol_msb = (word >> _OL_MSB_SHIFT) & 0xF
    if ol_ptr_raw:
        return WeightChunk(lanes=lanes, ol_ptr=ol_ptr_raw - 1)
    if ol_msb:
        sign = -1 if raw[ol_idx] & 8 else 1  # sign bit, not integer sign
        return WeightChunk(lanes=lanes, ol_idx=ol_idx, ol_msb=sign * ol_msb)
    return WeightChunk(lanes=lanes)


def encode_table(base_chunks: List[WeightChunk], spill_chunks: List[WeightChunk]) -> Tuple[List[int], List[int]]:
    """Serialize a packed weight table into base + spill word lists."""
    if len(spill_chunks) > MAX_SPILL_CHUNKS:
        raise CapacityError(
            f"{len(spill_chunks)} spill chunks exceed the 8-bit OLptr space; "
            "split the table across buffer tiles"
        )
    base_words = []
    for chunk in base_chunks:
        spill = spill_chunks[chunk.ol_ptr] if chunk.has_multi_outlier else None
        base_words.append(encode_chunk(chunk, spill))
    return base_words, [encode_chunk(c) for c in spill_chunks]


def decode_table(
    base_words: List[int],
    spill_words: List[int],
    strict: bool = True,
) -> Tuple[List[WeightChunk], List[WeightChunk]]:
    """Inverse of :func:`encode_table` with spill-lane signs re-applied.

    A dangling ``ol_ptr`` (pointing past the spill table — impossible in
    a healthy encoding, the signature of a corrupted word) raises
    :class:`ChunkIntegrityError` under ``strict``; with ``strict=False``
    the chunk is decoded as-is so a downstream validator
    (:func:`repro.faults.validate_packed`) can detect, count and repair
    it under a recovery policy.
    """
    spills_unsigned = [decode_chunk(w, is_spill=True) for w in spill_words]
    bases: List[WeightChunk] = []
    signed_spills: List[WeightChunk] = list(spills_unsigned)
    for index, word in enumerate(base_words):
        chunk = decode_chunk(word)
        bases.append(chunk)
        if chunk.has_multi_outlier:
            if not 0 <= chunk.ol_ptr < len(spills_unsigned):
                if strict:
                    raise ChunkIntegrityError(
                        f"ol_ptr {chunk.ol_ptr} dangles past the "
                        f"{len(spills_unsigned)}-entry spill table",
                        chunk_index=index,
                        field="ol_ptr",
                    )
                continue
            raw = _raw_lanes(word)
            spill = spills_unsigned[chunk.ol_ptr]
            signed = tuple(
                (-m if raw[lane] & 8 else m) for lane, m in enumerate(spill.lanes)
            )
            signed_spills[chunk.ol_ptr] = WeightChunk(lanes=signed, is_spill=True)
    return bases, signed_spills


# ---------------------------------------------------------------------------
# Vectorized whole-table codec (PackedWeights <-> word lists in one shot)
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1
_NIBBLE_SHIFTS = (4 * np.arange(LANES)).astype(np.uint64)


def _combine_nibbles(nibbles: np.ndarray) -> np.ndarray:
    """OR 16 nibble columns into one uint64 per row (lane 0 = LSB nibble)."""
    # disjoint 4-bit fields, so a sum is exactly the OR
    return (nibbles.astype(np.uint64) << _NIBBLE_SHIFTS).sum(axis=1, dtype=np.uint64)


def _split_nibbles(lo: np.ndarray) -> np.ndarray:
    """(n,) uint64 -> (n, LANES) raw 4-bit fields."""
    return ((lo[:, None] >> _NIBBLE_SHIFTS) & np.uint64(0xF)).astype(np.int64)


def encode_packed(packed: PackedWeights, slow_reference: bool = False) -> Tuple[List[int], List[int]]:
    """Serialize a :class:`PackedWeights` into base + spill word lists.

    Bit-exact to :func:`encode_table` on the same table (the equivalence
    tests assert word-for-word identity); the fast path encodes the whole
    table from its array form without building chunk objects.
    """
    if slow_reference:
        return encode_table(packed.base_chunks, packed.spill_chunks)
    t = packed.tables
    if t.n_spill > MAX_SPILL_CHUNKS:
        raise CapacityError(
            f"{t.n_spill} spill chunks exceed the 8-bit OLptr space; "
            "split the table across buffer tiles"
        )

    magnitude = np.abs(t.lanes)
    if magnitude.max(initial=0) > 7:
        raise QuantRangeError(f"lane magnitude out of range: {magnitude.max()}")
    msb_magnitude = np.abs(t.ol_msb)
    if msb_magnitude.max(initial=0) > 15:
        raise QuantRangeError(f"ol_msb out of the 4-bit field: {msb_magnitude.max()}")
    if t.n_base and (t.ol_idx.min() < 0 or t.ol_idx.max() >= LANES):
        raise QuantRangeError("ol_idx out of range")
    if t.n_base and t.ol_ptr.max(initial=-1) >= MAX_SPILL_CHUNKS:
        raise QuantRangeError(f"ol_ptr out of the 8-bit field: {t.ol_ptr.max()}")

    # Per-lane sign bits, recovering signs hidden by zero LSB magnitudes
    # (the vector twin of ``_lane_signs``).
    negative = t.lanes < 0
    single_rows = np.flatnonzero((t.ol_ptr < 0) & (t.ol_msb < 0))
    negative[single_rows, t.ol_idx[single_rows]] = True
    multi_rows = np.flatnonzero(t.ol_ptr >= 0)
    if multi_rows.size:
        negative[multi_rows] |= t.spill_lanes[t.ol_ptr[multi_rows]] < 0

    lo = _combine_nibbles(np.where(negative, 8, 0) | magnitude)
    hi = (
        np.where(t.ol_ptr >= 0, t.ol_ptr + 1, 0).astype(np.uint64)
        | (t.ol_idx.astype(np.uint64) << np.uint64(_OL_IDX_SHIFT - _OL_PTR_SHIFT))
        | (msb_magnitude.astype(np.uint64) << np.uint64(_OL_MSB_SHIFT - _OL_PTR_SHIFT))
    )
    base_words = [l | (h << _OL_PTR_SHIFT) for l, h in zip(lo.tolist(), hi.tolist())]

    spill_magnitude = np.abs(t.spill_lanes)
    if spill_magnitude.max(initial=0) > 15:
        raise QuantRangeError(f"spill MSB magnitude out of range: {spill_magnitude.max()}")
    spill_words = _combine_nibbles(spill_magnitude).tolist()
    return base_words, spill_words


def decode_packed(
    base_words: List[int],
    spill_words: List[int],
    *,
    n_groups: int,
    reduction: int,
    out_channels: int,
    strict: bool = True,
    slow_reference: bool = False,
) -> PackedWeights:
    """Inverse of :func:`encode_packed`: words -> table-backed PackedWeights.

    Decodes whole word lists at once and re-applies spill-lane signs from
    the base chunks' nibble sign bits, with the same strict/non-strict
    dangling-``ol_ptr`` contract as :func:`decode_table`. The chunk lists
    of the returned object are identical to the scalar decoder's.
    """
    if slow_reference:
        bases, spills = decode_table(base_words, spill_words, strict=strict)
        return PackedWeights(bases, spills, n_groups, reduction, out_channels)
    limit = 1 << WEIGHT_CHUNK_BITS
    for word in base_words:
        if not 0 <= word < limit:
            raise ChunkIntegrityError("word does not fit the 80-bit chunk format")
    for word in spill_words:
        if not 0 <= word < limit:
            raise ChunkIntegrityError("word does not fit the 80-bit chunk format")

    lo = np.fromiter((w & _MASK64 for w in base_words), dtype=np.uint64, count=len(base_words))
    hi = np.fromiter((w >> _OL_PTR_SHIFT for w in base_words), dtype=np.uint64, count=len(base_words))
    raw = _split_nibbles(lo)
    lanes = np.where(raw & 8, -(raw & 7), raw & 7)

    ptr_raw = (hi & np.uint64(0xFF)).astype(np.int64)
    idx_field = ((hi >> np.uint64(_OL_IDX_SHIFT - _OL_PTR_SHIFT)) & np.uint64(0xF)).astype(np.int64)
    msb_field = ((hi >> np.uint64(_OL_MSB_SHIFT - _OL_PTR_SHIFT)) & np.uint64(0xF)).astype(np.int64)

    multi = ptr_raw > 0
    ol_ptr = np.where(multi, ptr_raw - 1, -1)
    single = ~multi & (msb_field != 0)
    ol_idx = np.where(single, idx_field, 0)
    # sign bit of the outlier's lane nibble, not the integer sign
    sign_bit = np.take_along_axis(raw, ol_idx[:, None], axis=1)[:, 0] & 8
    ol_msb = np.where(single, np.where(sign_bit != 0, -msb_field, msb_field), 0)

    lo_spill = np.fromiter((w & _MASK64 for w in spill_words), dtype=np.uint64, count=len(spill_words))
    spill_lanes = _split_nibbles(lo_spill)

    n_spill = spill_lanes.shape[0]
    dangling = multi & (ol_ptr >= n_spill)
    if dangling.any():
        if strict:
            index = int(np.flatnonzero(dangling)[0])
            raise ChunkIntegrityError(
                f"ol_ptr {int(ol_ptr[index])} dangles past the "
                f"{n_spill}-entry spill table",
                chunk_index=index,
                field="ol_ptr",
            )
        multi = multi & ~dangling
    valid_rows = np.flatnonzero(multi)
    if valid_rows.size:
        # last write wins on duplicate pointers, matching the scalar loop
        ptrs = ol_ptr[valid_rows]
        spill_lanes[ptrs] = np.where(raw[valid_rows] & 8, -spill_lanes[ptrs], spill_lanes[ptrs])

    tables = WeightTables(
        lanes=lanes.astype(np.int64),
        ol_idx=ol_idx.astype(np.int64),
        ol_msb=ol_msb.astype(np.int64),
        ol_ptr=ol_ptr.astype(np.int64),
        spill_lanes=spill_lanes,
    )
    return PackedWeights(
        tables=tables, n_groups=n_groups, reduction=reduction, out_channels=out_channels
    )
