"""Bit-level serialization of weight chunks (the literal 80-bit words).

:mod:`repro.arch.packing` works on structured :class:`WeightChunk`
objects; this module lowers them to the actual 80-bit buffer words of
Fig. 5 and raises them back, so the on-chip format is modelled down to
the bit:

====================  =======  =============================================
field                 bits     contents
====================  =======  =============================================
``lanes``             64       16 x 4-bit sign-magnitude weight nibbles
                               (lane 0 in the least-significant nibble);
                               for a spill chunk, 16 x 4-bit unsigned MSB
                               magnitudes (signs live in the base chunk)
``ol_ptr``            8        spill-chunk index + 1 (0 = no spill)
``ol_idx``            4        lane index of the single outlier
``ol_msb``            4        unsigned MSB magnitude of the single outlier
====================  =======  =============================================

Outlier signs ride the lane nibbles ("the remaining least significant
three bits and a sign bit ... are stored in the associated position"), so
an outlier whose LSB magnitude is zero (e.g. level -8) still encodes its
sign in the nibble's sign bit; the decoder reads the raw bit rather than
the integer sign.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import CapacityError, ChunkIntegrityError, QuantRangeError
from .chunks import LANES, WEIGHT_CHUNK_BITS, WeightChunk

__all__ = ["encode_chunk", "decode_chunk", "encode_table", "decode_table", "MAX_SPILL_CHUNKS"]

#: ol_ptr is 8 bits and reserves 0 for "no spill".
MAX_SPILL_CHUNKS = 254

_LANE_FIELD_BITS = 4 * LANES  # 64
_OL_PTR_SHIFT = _LANE_FIELD_BITS
_OL_IDX_SHIFT = _OL_PTR_SHIFT + 8
_OL_MSB_SHIFT = _OL_IDX_SHIFT + 4


def _nibble(magnitude: int, negative: bool) -> int:
    if not 0 <= magnitude <= 7:
        raise QuantRangeError(f"lane magnitude out of range: {magnitude}")
    return (8 if negative else 0) | magnitude


def _lane_signs(chunk: WeightChunk, spill: Optional[WeightChunk]) -> List[bool]:
    """Per-lane sign bits, recovering signs hidden by zero LSB magnitudes."""
    signs = [value < 0 for value in chunk.lanes]
    if chunk.has_single_outlier and chunk.ol_msb < 0:
        signs[chunk.ol_idx] = True
    if chunk.has_multi_outlier:
        if spill is None:
            raise ChunkIntegrityError(
                "encoding a multi-outlier chunk requires its spill chunk", field="ol_ptr"
            )
        for lane, msb in enumerate(spill.lanes):
            if msb < 0:
                signs[lane] = True
    return signs


def encode_chunk(chunk: WeightChunk, spill: Optional[WeightChunk] = None) -> int:
    """Serialize one chunk into its 80-bit integer word.

    For a multi-outlier base chunk, pass the referenced ``spill`` chunk so
    zero-LSB outlier lanes still encode their sign bit.
    """
    word = 0
    if chunk.is_spill:
        for lane, value in enumerate(chunk.lanes):
            magnitude = abs(value)
            if magnitude > 15:
                raise QuantRangeError(f"spill MSB magnitude out of range: {value}")
            word |= magnitude << (4 * lane)
    else:
        signs = _lane_signs(chunk, spill)
        for lane, value in enumerate(chunk.lanes):
            word |= _nibble(abs(value), signs[lane]) << (4 * lane)
    if chunk.ol_ptr is not None:
        if not 0 <= chunk.ol_ptr < MAX_SPILL_CHUNKS:
            raise QuantRangeError(f"ol_ptr out of the 8-bit field: {chunk.ol_ptr}")
        word |= (chunk.ol_ptr + 1) << _OL_PTR_SHIFT
    if not 0 <= chunk.ol_idx < LANES:
        raise QuantRangeError(f"ol_idx out of range: {chunk.ol_idx}")
    word |= chunk.ol_idx << _OL_IDX_SHIFT
    msb_magnitude = abs(chunk.ol_msb)
    if msb_magnitude > 15:
        raise QuantRangeError(f"ol_msb out of the 4-bit field: {chunk.ol_msb}")
    word |= msb_magnitude << _OL_MSB_SHIFT
    assert word < (1 << WEIGHT_CHUNK_BITS)
    return word


def _raw_lanes(word: int) -> List[int]:
    return [(word >> (4 * lane)) & 0xF for lane in range(LANES)]


def decode_chunk(word: int, is_spill: bool = False) -> WeightChunk:
    """Inverse of :func:`encode_chunk`.

    Spill chunks decode their lanes as unsigned magnitudes;
    :func:`decode_table` re-applies the signs recorded in the base chunk.
    """
    if not 0 <= word < (1 << WEIGHT_CHUNK_BITS):
        raise ChunkIntegrityError("word does not fit the 80-bit chunk format")
    raw = _raw_lanes(word)
    if is_spill:
        return WeightChunk(lanes=tuple(raw), is_spill=True)

    lanes = tuple((-(n & 7) if n & 8 else n & 7) for n in raw)
    ol_ptr_raw = (word >> _OL_PTR_SHIFT) & 0xFF
    ol_idx = (word >> _OL_IDX_SHIFT) & 0xF
    ol_msb = (word >> _OL_MSB_SHIFT) & 0xF
    if ol_ptr_raw:
        return WeightChunk(lanes=lanes, ol_ptr=ol_ptr_raw - 1)
    if ol_msb:
        sign = -1 if raw[ol_idx] & 8 else 1  # sign bit, not integer sign
        return WeightChunk(lanes=lanes, ol_idx=ol_idx, ol_msb=sign * ol_msb)
    return WeightChunk(lanes=lanes)


def encode_table(base_chunks: List[WeightChunk], spill_chunks: List[WeightChunk]) -> Tuple[List[int], List[int]]:
    """Serialize a packed weight table into base + spill word lists."""
    if len(spill_chunks) > MAX_SPILL_CHUNKS:
        raise CapacityError(
            f"{len(spill_chunks)} spill chunks exceed the 8-bit OLptr space; "
            "split the table across buffer tiles"
        )
    base_words = []
    for chunk in base_chunks:
        spill = spill_chunks[chunk.ol_ptr] if chunk.has_multi_outlier else None
        base_words.append(encode_chunk(chunk, spill))
    return base_words, [encode_chunk(c) for c in spill_chunks]


def decode_table(
    base_words: List[int],
    spill_words: List[int],
    strict: bool = True,
) -> Tuple[List[WeightChunk], List[WeightChunk]]:
    """Inverse of :func:`encode_table` with spill-lane signs re-applied.

    A dangling ``ol_ptr`` (pointing past the spill table — impossible in
    a healthy encoding, the signature of a corrupted word) raises
    :class:`ChunkIntegrityError` under ``strict``; with ``strict=False``
    the chunk is decoded as-is so a downstream validator
    (:func:`repro.faults.validate_packed`) can detect, count and repair
    it under a recovery policy.
    """
    spills_unsigned = [decode_chunk(w, is_spill=True) for w in spill_words]
    bases: List[WeightChunk] = []
    signed_spills: List[WeightChunk] = list(spills_unsigned)
    for index, word in enumerate(base_words):
        chunk = decode_chunk(word)
        bases.append(chunk)
        if chunk.has_multi_outlier:
            if not 0 <= chunk.ol_ptr < len(spills_unsigned):
                if strict:
                    raise ChunkIntegrityError(
                        f"ol_ptr {chunk.ol_ptr} dangles past the "
                        f"{len(spills_unsigned)}-entry spill table",
                        chunk_index=index,
                        field="ol_ptr",
                    )
                continue
            raw = _raw_lanes(word)
            spill = spills_unsigned[chunk.ol_ptr]
            signed = tuple(
                (-m if raw[lane] & 8 else m) for lane, m in enumerate(spill.lanes)
            )
            signed_spills[chunk.ol_ptr] = WeightChunk(lanes=signed, is_spill=True)
    return bases, signed_spills
