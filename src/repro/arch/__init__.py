"""Shared accelerator infrastructure: chunk formats, energy, area, stats."""

from .area import (
    AreaParams,
    DEFAULT_AREA,
    eyeriss_pe_area,
    iso_area_clusters,
    olaccel_area,
    olaccel_cluster_area,
    olaccel_group_area,
    olaccel_outlier_group_area,
    zena_pe_area,
)
from .chunks import (
    LANES,
    WEIGHT_CHUNK_BITS,
    ActivationChunk,
    OutlierActivation,
    OutlierActivationFifo,
    WeightChunk,
    combine_outlier_weight,
    decode_weight_nibble,
    encode_weight_nibble,
    split_outlier_weight,
)
from .act_packing import (
    ACT_NORMAL_MAX,
    PackedActivations,
    pack_activations,
    unpack_activations,
)
from .bitcodec import MAX_SPILL_CHUNKS, decode_chunk, decode_table, encode_chunk, encode_table
from .memory import Footprint, OLAccelTiling, check_network, layer_footprint, olaccel_tiling
from .energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel, EnergyParams
from .packing import PackedWeights, pack_weights
from .stats import LayerStats, RunStats, STATS_SCHEMA_VERSION

__all__ = [
    "AreaParams",
    "DEFAULT_AREA",
    "eyeriss_pe_area",
    "iso_area_clusters",
    "olaccel_area",
    "olaccel_cluster_area",
    "olaccel_group_area",
    "olaccel_outlier_group_area",
    "zena_pe_area",
    "LANES",
    "WEIGHT_CHUNK_BITS",
    "ActivationChunk",
    "OutlierActivation",
    "OutlierActivationFifo",
    "WeightChunk",
    "combine_outlier_weight",
    "decode_weight_nibble",
    "encode_weight_nibble",
    "split_outlier_weight",
    "ACT_NORMAL_MAX",
    "PackedActivations",
    "pack_activations",
    "unpack_activations",
    "Footprint",
    "OLAccelTiling",
    "check_network",
    "layer_footprint",
    "olaccel_tiling",
    "MAX_SPILL_CHUNKS",
    "decode_chunk",
    "decode_table",
    "encode_chunk",
    "encode_table",
    "DEFAULT_ENERGY",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "PackedWeights",
    "pack_weights",
    "LayerStats",
    "RunStats",
    "STATS_SCHEMA_VERSION",
]
