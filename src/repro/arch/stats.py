"""Simulation statistics containers shared by all accelerator models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .energy import EnergyBreakdown

__all__ = ["LayerStats", "RunStats"]


@dataclass
class LayerStats:
    """Cycle and energy outcome of simulating one layer on one accelerator."""

    layer_name: str
    cycles: float
    energy: EnergyBreakdown
    #: dense MAC count of the layer (for utilization reporting)
    macs: int = 0
    #: MAC-lane operations actually issued
    ops_issued: float = 0.0
    #: cycle decomposition for Fig. 18: run / skip / idle fractions
    run_cycles: float = 0.0
    skip_cycles: float = 0.0
    idle_cycles: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class RunStats:
    """Accumulated statistics for a whole network on one accelerator."""

    accelerator: str
    network: str
    layers: List[LayerStats] = field(default_factory=list)

    def add(self, layer: LayerStats) -> None:
        self.layers.append(layer)

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for layer in self.layers:
            total += layer.energy
        return total

    def cycles_by_layer(self) -> Dict[str, float]:
        return {layer.layer_name: layer.cycles for layer in self.layers}

    def energy_by_component(self) -> Dict[str, float]:
        return self.total_energy.as_dict()
