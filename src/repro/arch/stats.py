"""Simulation statistics containers shared by all accelerator models.

:class:`LayerStats` and :class:`RunStats` carry the cycle/energy outcome
of a simulation and serialize losslessly through ``to_dict`` /
``from_dict``. The dict layout is the versioned "run-stats" schema that
``repro.harness.serialize`` writes to JSON/CSV; bump
:data:`STATS_SCHEMA_VERSION` whenever a field is added, removed or
renamed, and record the change in docs/EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from .energy import EnergyBreakdown

__all__ = ["LayerStats", "RunStats", "STATS_SCHEMA_VERSION"]

#: Version of the LayerStats/RunStats dict schema (see docs/EXPERIMENTS.md).
STATS_SCHEMA_VERSION = 1


@dataclass
class LayerStats:
    """Cycle and energy outcome of simulating one layer on one accelerator."""

    layer_name: str
    cycles: float
    energy: EnergyBreakdown
    #: dense MAC count of the layer (for utilization reporting)
    macs: int = 0
    #: MAC-lane operations actually issued
    ops_issued: float = 0.0
    #: cycle decomposition for Fig. 18: run / skip / idle fractions
    run_cycles: float = 0.0
    skip_cycles: float = 0.0
    idle_cycles: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (energy expanded by component, in pJ)."""
        return {
            "layer_name": self.layer_name,
            "cycles": self.cycles,
            "energy": self.energy.as_dict(),
            "macs": self.macs,
            "ops_issued": self.ops_issued,
            "run_cycles": self.run_cycles,
            "skip_cycles": self.skip_cycles,
            "idle_cycles": self.idle_cycles,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LayerStats":
        return cls(
            layer_name=data["layer_name"],
            cycles=data["cycles"],
            energy=EnergyBreakdown.from_dict(data["energy"]),
            macs=data.get("macs", 0),
            ops_issued=data.get("ops_issued", 0.0),
            run_cycles=data.get("run_cycles", 0.0),
            skip_cycles=data.get("skip_cycles", 0.0),
            idle_cycles=data.get("idle_cycles", 0.0),
            extras=dict(data.get("extras", {})),
        )


@dataclass
class RunStats:
    """Accumulated statistics for a whole network on one accelerator."""

    accelerator: str
    network: str
    layers: List[LayerStats] = field(default_factory=list)

    def add(self, layer: LayerStats) -> None:
        self.layers.append(layer)

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for layer in self.layers:
            total += layer.energy
        return total

    @property
    def total_run_cycles(self) -> float:
        return sum(layer.run_cycles for layer in self.layers)

    @property
    def total_skip_cycles(self) -> float:
        return sum(layer.skip_cycles for layer in self.layers)

    @property
    def total_idle_cycles(self) -> float:
        return sum(layer.idle_cycles for layer in self.layers)

    def cycles_by_layer(self) -> Dict[str, float]:
        return {layer.layer_name: layer.cycles for layer in self.layers}

    def energy_by_component(self) -> Dict[str, float]:
        return self.total_energy.as_dict()

    def to_dict(self) -> Dict[str, Any]:
        """Versioned plain-dict form; round-trips through :meth:`from_dict`."""
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "kind": "run_stats",
            "accelerator": self.accelerator,
            "network": self.network,
            "totals": {
                "cycles": self.total_cycles,
                "run_cycles": self.total_run_cycles,
                "skip_cycles": self.total_skip_cycles,
                "idle_cycles": self.total_idle_cycles,
                "energy": self.total_energy.as_dict(),
            },
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunStats":
        version = data.get("schema_version", STATS_SCHEMA_VERSION)
        if version != STATS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run-stats schema version {version} "
                f"(this build reads version {STATS_SCHEMA_VERSION})"
            )
        return cls(
            accelerator=data["accelerator"],
            network=data["network"],
            layers=[LayerStats.from_dict(layer) for layer in data.get("layers", [])],
        )
