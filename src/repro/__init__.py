"""repro — reproduction of "Energy-efficient Neural Network Accelerator
Based on Outlier-aware Low-precision Computation" (Park, Kim, Yoo — ISCA
2018).

Subpackages:

- :mod:`repro.nn` — numpy neural-network substrate (layers, training,
  datasets, model zoos);
- :mod:`repro.quant` — outlier-aware quantization (the paper's Sec. II);
- :mod:`repro.arch` — shared accelerator infrastructure (chunk formats,
  energy/area models, workloads);
- :mod:`repro.olaccel` — the OLAccel simulator (Sec. III), including a
  bit-exact functional datapath model;
- :mod:`repro.baselines` — Eyeriss and ZeNA comparison models (Sec. IV);
- :mod:`repro.faults` — fault injection, chunk-integrity validation and
  finite-width accumulator models (docs/FAULTS.md);
- :mod:`repro.errors` — the shared exception taxonomy (every class also
  subclasses :class:`ValueError` for backward compatibility);
- :mod:`repro.harness` — experiment drivers regenerating every table and
  figure in the paper's evaluation (Sec. V).

Quick start::

    from repro.harness import breakdown_experiment
    print(breakdown_experiment("alexnet").format())
"""

__version__ = "1.0.0"

__all__ = ["nn", "quant", "arch", "olaccel", "baselines", "faults", "errors", "harness"]
