"""The repository-wide error taxonomy.

Every structural failure the simulators can detect derives from
:class:`ReproError`, so callers can catch "anything this repo diagnosed"
with one clause, or narrow to a family:

- :class:`ConfigError` — a simulator/quantizer was constructed with
  parameters that cannot describe real hardware (unknown accelerator
  kind, non-positive bit width, malformed fault plan);
- :class:`QuantRangeError` — a value does not fit the integer grid it
  was asked to occupy (a weight level beyond the 8-bit outlier grid, a
  negative post-ReLU activation, a nibble outside [-7, 7]);
- :class:`CapacityError` — a hardware resource overflowed its sized
  capacity (spill chunks beyond the 8-bit ``OLptr`` space, a
  non-positive buffer budget);
- :class:`ChunkIntegrityError` — an on-chip chunk violates a structural
  invariant (dangling or duplicate ``OLptr``, out-of-range ``OLidx``,
  corrupt lane nibble, a swarm-buffer entry pointing outside its
  tensor). Carries the chunk coordinates so a fault report can name the
  exact 80-bit word.
- :class:`ArtifactIntegrityError` — an on-disk artifact (JSON/CSV
  envelope, checkpoint cell record, manifest) is truncated, fails its
  embedded content digest, or was written under a different manifest.
  Carries the path and reason, mirroring the chunk-level diagnostics at
  the filesystem layer.
- :class:`CellError` — one cell of a checkpointed sweep failed
  (worker exception, per-task timeout, or a crashed/killed worker
  process). Carries the cell id, the failure kind and the attempt
  count so reports and envelopes can name exactly what is missing.
- :class:`LeaseError` — a coordination lease on a sweep cell could not
  be acquired, renewed, or released (docs/COORD.md). Carries the cell
  id and the owner id involved.
- :class:`StaleOwnerError` — the narrower, expected flavour of
  :class:`LeaseError`: this process's lease expired and another worker
  stole the cell. Raised on the next heartbeat so the loser can finish
  its attempt and defer to the first durable record.
- :class:`JobError` — a ``repro serve`` job request (``repro.job/v1``)
  is malformed, or a job state transition is illegal (docs/SERVE.md).
  Carries the offending field so the HTTP 400 body can name it.
- :class:`RemoteProtocolError` — the HTTP work-dispatch protocol
  between a remote ``repro work --connect`` worker and a ``repro
  serve`` server failed (docs/REMOTE.md): the server is unreachable
  past the retry budget, an answer is out of protocol, or an operation
  was rejected (stale fencing token, unknown claim). Carries the URL,
  the HTTP status, and a machine-readable ``reason`` slug.

Every pre-existing concrete class also subclasses :class:`ValueError`:
the seed codebase raised bare ``ValueError`` for those conditions, and
existing ``except ValueError`` call sites (and tests) must keep working
unchanged. :class:`CellError`, :class:`LeaseError` and
:class:`StaleOwnerError` are new with this taxonomy (no legacy call
sites) and subclass :class:`RuntimeError` instead — they report a
failed computation or a lost race, not a bad value. New code should
catch the taxonomy classes.

The fault-injection layer (:mod:`repro.faults`) raises
:class:`ChunkIntegrityError` under its ``raise`` recovery policy and
*counts* the same detections under ``degrade``/``skip`` — see
docs/FAULTS.md for the policy and counter semantics.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ConfigError",
    "QuantRangeError",
    "CapacityError",
    "ChunkIntegrityError",
    "ArtifactIntegrityError",
    "CellError",
    "LeaseError",
    "StaleOwnerError",
    "JobError",
    "RemoteProtocolError",
]


class ReproError(Exception):
    """Base class for every error this repository diagnoses itself."""


class ConfigError(ReproError, ValueError):
    """A component was configured with parameters it cannot honour."""


class QuantRangeError(ReproError, ValueError):
    """A value does not fit the integer grid it must occupy."""


class CapacityError(ReproError, ValueError):
    """A sized hardware resource (buffer, pointer space) overflowed."""


class ChunkIntegrityError(ReproError, ValueError):
    """An on-chip chunk violates a structural invariant.

    ``group``/``reduction`` locate a weight chunk in its packed table
    (output-channel group x flattened reduction index); ``chunk_index``
    is the flat buffer index when only that is known; ``field`` names
    the offending field (``ol_ptr``, ``ol_idx``, ``ol_msb``, ``lanes``,
    ``swarm``). All are optional — whatever is known is rendered into
    the message so logs name the exact chunk.
    """

    def __init__(
        self,
        message: str,
        *,
        group: Optional[int] = None,
        reduction: Optional[int] = None,
        chunk_index: Optional[int] = None,
        field: Optional[str] = None,
        is_spill: bool = False,
    ):
        self.group = group
        self.reduction = reduction
        self.chunk_index = chunk_index
        self.field = field
        self.is_spill = is_spill
        where = []
        if group is not None:
            where.append(f"group={group}")
        if reduction is not None:
            where.append(f"reduction={reduction}")
        if chunk_index is not None:
            where.append(f"chunk={chunk_index}")
        if field is not None:
            where.append(f"field={field}")
        if is_spill:
            where.append("spill")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(message + suffix)


class ArtifactIntegrityError(ReproError, ValueError):
    """An on-disk artifact is truncated, corrupt, or fails its digest.

    ``path`` names the offending file and ``reason`` the check that
    failed (``truncated``, ``digest_mismatch``, ``missing_digest``,
    ``manifest_mismatch``); both are rendered into the message so logs
    name the exact artifact, in the same spirit as
    :class:`ChunkIntegrityError` naming the exact 80-bit word.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        reason: Optional[str] = None,
    ):
        self.path = str(path) if path is not None else None
        self.reason = reason
        where = []
        if path is not None:
            where.append(f"path={path}")
        if reason is not None:
            where.append(f"reason={reason}")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(message + suffix)


class CellError(ReproError, RuntimeError):
    """One cell of a checkpointed sweep failed.

    ``kind`` distinguishes the failure mode: ``"exception"`` (the cell
    runner raised), ``"timeout"`` (the worker exceeded its per-task
    budget), ``"crash"`` (the worker process died without reporting).
    ``attempts`` counts executions including retries. Structured so a
    failed cell can be recorded in an envelope and re-raised losslessly
    by ``repro resume``.
    """

    def __init__(
        self,
        message: str,
        *,
        cell_id: Optional[str] = None,
        kind: str = "exception",
        attempts: int = 1,
    ):
        self.cell_id = cell_id
        self.kind = kind
        self.attempts = attempts
        where = []
        if cell_id is not None:
            where.append(f"cell={cell_id}")
        where.append(f"kind={kind}")
        where.append(f"attempts={attempts}")
        super().__init__(f"{message} [{', '.join(where)}]")

    def to_dict(self) -> dict:
        """JSON-able form recorded in cell records and envelopes."""
        return {
            "cell_id": self.cell_id,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": str(self),
        }


class LeaseError(ReproError, RuntimeError):
    """A coordination lease could not be acquired, renewed, or released.

    Raised by the lease protocol (docs/COORD.md) when this process asks
    for an operation on a lease it does not hold, or when the lease
    file itself cannot be maintained. ``cell_id`` names the contested
    cell and ``owner`` the owner id the operation ran as.
    """

    def __init__(
        self,
        message: str,
        *,
        cell_id: Optional[str] = None,
        owner: Optional[str] = None,
    ):
        self.cell_id = cell_id
        self.owner = owner
        where = []
        if cell_id is not None:
            where.append(f"cell={cell_id}")
        if owner is not None:
            where.append(f"owner={owner}")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(message + suffix)


class JobError(ReproError, ValueError):
    """A ``repro serve`` job request or state transition is invalid.

    Raised for malformed ``repro.job/v1`` documents (unknown verb,
    missing/extra fields, out-of-domain parameter values) and for
    illegal job state-machine transitions (e.g. cancelling a job that
    already reached a terminal state). ``field`` names the offending
    request field when one can be pinpointed. Subclasses
    :class:`ValueError` so generic request-validation call sites can
    treat it like the other bad-value taxonomy members.
    """

    def __init__(self, message: str, *, field: Optional[str] = None):
        self.field = field
        suffix = f" [field={field}]" if field is not None else ""
        super().__init__(message + suffix)


class RemoteProtocolError(ReproError, RuntimeError):
    """The HTTP work-dispatch protocol (docs/REMOTE.md) failed.

    Raised by the remote-worker client when the server stays
    unreachable past the retry budget, answers with an out-of-protocol
    status or body, or rejects an operation the client believed it was
    entitled to (a stale fencing token, an unknown or already-settled
    claim). Like :class:`LeaseError` it reports a failed coordination
    step, not a bad value, so it subclasses :class:`RuntimeError`.
    ``status`` is the HTTP status involved (when one was received) and
    ``reason`` a stable machine-readable slug (``unreachable``,
    ``stale_token``, ``unknown_claim``, ``claim_settled``,
    ``cell_conflict``, ``bad_response``).
    """

    def __init__(
        self,
        message: str,
        *,
        url: Optional[str] = None,
        status: Optional[int] = None,
        reason: Optional[str] = None,
    ):
        self.url = url
        self.status = status
        self.reason = reason
        where = []
        if url is not None:
            where.append(f"url={url}")
        if status is not None:
            where.append(f"status={status}")
        if reason is not None:
            where.append(f"reason={reason}")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(message + suffix)


class StaleOwnerError(LeaseError):
    """This process's lease on a cell expired and was stolen.

    The expected contention outcome, not a bug: a worker that stalled
    (or whose heartbeats stopped) finds out on its next renewal that
    another owner now holds the cell. ``current_owner`` names the
    thief; the loser may still finish its attempt — the first durable
    cell record wins deterministically.
    """

    def __init__(
        self,
        message: str,
        *,
        cell_id: Optional[str] = None,
        owner: Optional[str] = None,
        current_owner: Optional[str] = None,
    ):
        self.current_owner = current_owner
        if current_owner is not None:
            message = f"{message} (now held by {current_owner})"
        super().__init__(message, cell_id=cell_id, owner=owner)
