"""Paper-shape network descriptions for performance simulation.

The cycle/energy simulators do not need trained ImageNet weights — they need
layer *shapes* plus weight/activation density statistics. This module
encodes the exact layer geometry of the networks the paper evaluates
(AlexNet, VGG-16, ResNet-18, plus ResNet-101 and DenseNet-121 heads used in
the accuracy discussion) together with per-layer densities.

Density provenance (documented substitution, see DESIGN.md):

- AlexNet / VGG-16 weight densities follow the published Deep Compression
  pruning results (Han et al., ICLR'16), which is the pruned model the paper
  says it used.
- ResNet-18 weight densities model the paper's own moderate pruning
  (~60% kept in convs); its activation densities (~0.3) reflect the high
  post-BN/ReLU sparsity of the pruned model, chosen so the ZeNA baseline's
  relative speed matches the paper's reported reductions.
- Activation densities are the fraction of *nonzero* (post-ReLU) inputs per
  layer, set from published ineffectual-activation measurements (Cnvlutin,
  ISCA'16) and the qualitative per-layer ordering the paper itself reports
  in Fig. 18 (AlexNet conv2 input nearly dense; conv4/conv5 inputs sparse).
  They can be overridden per experiment, or re-measured from the mini zoo.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from .functional import conv_out_size

__all__ = [
    "LayerSpec",
    "NetworkSpec",
    "alexnet_spec",
    "vgg16_spec",
    "resnet18_spec",
    "resnet101_spec",
    "densenet121_spec",
    "PAPER_ZOO",
    "build_paper",
]


@dataclass(frozen=True)
class LayerSpec:
    """Geometry and statistics of one compute layer.

    Fully connected layers are expressed as 1x1 convolutions over a 1x1
    spatial extent, which is how all three simulated accelerators treat
    them. ``act_density`` is the nonzero fraction of the layer's *input*
    activations; ``weight_density`` the nonzero fraction of its weights
    after pruning. ``is_first`` marks layers fed by raw (dense,
    high-precision) network input.
    """

    name: str
    kind: str  # "conv" or "fc"
    in_c: int
    out_c: int
    in_h: int
    in_w: int
    kernel: int = 1
    stride: int = 1
    pad: int = 0
    groups: int = 1
    act_density: float = 0.5
    weight_density: float = 1.0
    is_first: bool = False

    @property
    def out_h(self) -> int:
        return conv_out_size(self.in_h, self.kernel, self.stride, self.pad)

    @property
    def out_w(self) -> int:
        return conv_out_size(self.in_w, self.kernel, self.stride, self.pad)

    @property
    def weight_count(self) -> int:
        """Number of weight scalars."""
        return self.out_c * (self.in_c // self.groups) * self.kernel * self.kernel

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count."""
        return self.out_h * self.out_w * self.weight_count

    @property
    def input_count(self) -> int:
        return self.in_c * self.in_h * self.in_w

    @property
    def output_count(self) -> int:
        return self.out_c * self.out_h * self.out_w

    def with_density(self, act_density: float = None, weight_density: float = None) -> "LayerSpec":
        """Copy with overridden densities (None keeps the current value)."""
        updates = {}
        if act_density is not None:
            updates["act_density"] = act_density
        if weight_density is not None:
            updates["weight_density"] = weight_density
        return replace(self, **updates) if updates else self


@dataclass(frozen=True)
class NetworkSpec:
    """An ordered list of compute layers plus network-level metadata.

    ``first_layer_weight_bits`` reflects Sec. II: ResNet-18/101 need 8-bit
    weights in the first conv layer while AlexNet/VGG-16 use 4-bit there.
    """

    name: str
    layers: tuple
    first_layer_weight_bits: int = 4

    @property
    def conv_layers(self) -> List[LayerSpec]:
        return [layer for layer in self.layers if layer.kind == "conv"]

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.layers)


def _fc(name: str, in_f: int, out_f: int, act_density: float, weight_density: float) -> LayerSpec:
    return LayerSpec(
        name=name,
        kind="fc",
        in_c=in_f,
        out_c=out_f,
        in_h=1,
        in_w=1,
        act_density=act_density,
        weight_density=weight_density,
    )


def alexnet_spec() -> NetworkSpec:
    """AlexNet (Caffe variant, 227x227 input, grouped conv2/4/5)."""
    layers = (
        LayerSpec("conv1", "conv", 3, 96, 227, 227, kernel=11, stride=4, act_density=1.0,
                  weight_density=0.84, is_first=True),
        LayerSpec("conv2", "conv", 96, 256, 27, 27, kernel=5, pad=2, groups=2,
                  act_density=0.85, weight_density=0.38),
        LayerSpec("conv3", "conv", 256, 384, 13, 13, kernel=3, pad=1,
                  act_density=0.50, weight_density=0.35),
        LayerSpec("conv4", "conv", 384, 384, 13, 13, kernel=3, pad=1, groups=2,
                  act_density=0.25, weight_density=0.37),
        LayerSpec("conv5", "conv", 384, 256, 13, 13, kernel=3, pad=1, groups=2,
                  act_density=0.30, weight_density=0.37),
        _fc("fc6", 9216, 4096, act_density=0.30, weight_density=0.09),
        _fc("fc7", 4096, 4096, act_density=0.25, weight_density=0.09),
        _fc("fc8", 4096, 1000, act_density=0.40, weight_density=0.25),
    )
    return NetworkSpec("alexnet", layers)


def vgg16_spec() -> NetworkSpec:
    """VGG-16 (224x224 input)."""
    # (name, in_c, out_c, size, act_density, weight_density)
    conv_rows = [
        ("conv1_1", 3, 64, 224, 1.00, 0.58),
        ("conv1_2", 64, 64, 224, 0.65, 0.22),
        ("conv2_1", 64, 128, 112, 0.60, 0.34),
        ("conv2_2", 128, 128, 112, 0.50, 0.36),
        ("conv3_1", 128, 256, 56, 0.55, 0.53),
        ("conv3_2", 256, 256, 56, 0.40, 0.24),
        ("conv3_3", 256, 256, 56, 0.40, 0.42),
        ("conv4_1", 256, 512, 28, 0.45, 0.32),
        ("conv4_2", 512, 512, 28, 0.30, 0.27),
        ("conv4_3", 512, 512, 28, 0.30, 0.34),
        ("conv5_1", 512, 512, 14, 0.35, 0.35),
        ("conv5_2", 512, 512, 14, 0.25, 0.29),
        ("conv5_3", 512, 512, 14, 0.25, 0.36),
    ]
    layers = tuple(
        LayerSpec(name, "conv", cin, cout, size, size, kernel=3, pad=1,
                  act_density=act, weight_density=wd, is_first=(name == "conv1_1"))
        for name, cin, cout, size, act, wd in conv_rows
    ) + (
        _fc("fc6", 25088, 4096, act_density=0.25, weight_density=0.04),
        _fc("fc7", 4096, 4096, act_density=0.25, weight_density=0.04),
        _fc("fc8", 4096, 1000, act_density=0.40, weight_density=0.23),
    )
    return NetworkSpec("vgg16", layers)


def resnet18_spec() -> NetworkSpec:
    """ResNet-18 (224x224 input); 8-bit first-layer weights per Sec. II."""
    layers: List[LayerSpec] = [
        LayerSpec("conv1", "conv", 3, 64, 224, 224, kernel=7, stride=2, pad=3,
                  act_density=1.0, weight_density=0.80, is_first=True),
    ]

    def stage(tag: str, cin: int, cout: int, size_in: int, downsample: bool) -> None:
        stride = 2 if downsample else 1
        size_mid = size_in // stride
        layers.append(LayerSpec(f"{tag}a_1", "conv", cin, cout, size_in, size_in, kernel=3,
                                stride=stride, pad=1, act_density=0.35, weight_density=0.60))
        layers.append(LayerSpec(f"{tag}a_2", "conv", cout, cout, size_mid, size_mid, kernel=3,
                                pad=1, act_density=0.28, weight_density=0.60))
        if downsample:
            layers.append(LayerSpec(f"{tag}a_ds", "conv", cin, cout, size_in, size_in, kernel=1,
                                    stride=2, act_density=0.35, weight_density=0.60))
        layers.append(LayerSpec(f"{tag}b_1", "conv", cout, cout, size_mid, size_mid, kernel=3,
                                pad=1, act_density=0.30, weight_density=0.60))
        layers.append(LayerSpec(f"{tag}b_2", "conv", cout, cout, size_mid, size_mid, kernel=3,
                                pad=1, act_density=0.28, weight_density=0.60))

    stage("layer1", 64, 64, 56, downsample=False)
    stage("layer2", 64, 128, 56, downsample=True)
    stage("layer3", 128, 256, 28, downsample=True)
    stage("layer4", 256, 512, 14, downsample=True)
    layers.append(_fc("fc", 512, 1000, act_density=0.60, weight_density=0.90))
    return NetworkSpec("resnet18", tuple(layers), first_layer_weight_bits=8)


def resnet101_spec() -> NetworkSpec:
    """ResNet-101 (bottleneck blocks; the paper's "deeper network" case).

    The paper quantizes ResNet-101 (Figs. 2-3 context) and predicts in
    Sec. V that OLAccel's advantage over ZeNA grows on it because the
    first layer's share of total work shrinks. Densities mirror the
    ResNet-18 settings (paper-style own pruning, sparse post-BN/ReLU
    activations).
    """
    layers: List[LayerSpec] = [
        LayerSpec("conv1", "conv", 3, 64, 224, 224, kernel=7, stride=2, pad=3,
                  act_density=1.0, weight_density=0.80, is_first=True),
    ]

    def bottleneck(tag: str, cin: int, width: int, size_in: int, stride: int, project: bool) -> int:
        size_out = size_in // stride
        cout = width * 4
        layers.append(LayerSpec(f"{tag}.1", "conv", cin, width, size_in, size_in, kernel=1,
                                stride=1, act_density=0.35, weight_density=0.60))
        layers.append(LayerSpec(f"{tag}.2", "conv", width, width, size_in, size_in, kernel=3,
                                stride=stride, pad=1, act_density=0.30, weight_density=0.60))
        layers.append(LayerSpec(f"{tag}.3", "conv", width, cout, size_out, size_out, kernel=1,
                                act_density=0.30, weight_density=0.60))
        if project:
            layers.append(LayerSpec(f"{tag}.ds", "conv", cin, cout, size_in, size_in, kernel=1,
                                    stride=stride, act_density=0.35, weight_density=0.60))
        return cout

    # ResNet-101 stages: 3, 4, 23, 3 bottlenecks (after a 56x56 max pool).
    stage_cfg = [("layer1", 64, 56, 1, 3), ("layer2", 128, 56, 2, 4),
                 ("layer3", 256, 28, 2, 23), ("layer4", 512, 14, 2, 3)]
    cin = 64
    for tag, width, size_in, stride, blocks in stage_cfg:
        for b in range(blocks):
            s = stride if b == 0 else 1
            size = size_in if b == 0 else size_in // stride
            cin = bottleneck(f"{tag}.{b}", cin, width, size, s, project=(b == 0))
    layers.append(_fc("fc", 2048, 1000, act_density=0.60, weight_density=0.90))
    return NetworkSpec("resnet101", tuple(layers), first_layer_weight_bits=8)


def densenet121_spec() -> NetworkSpec:
    """DenseNet-121 (growth 32, blocks 6/12/24/16 with 1x1 bottlenecks).

    Included because the paper's quantization results (Fig. 3) cover
    DenseNet-121 and its narrow concatenated layers stress channel-level
    parallelism (the Sec. V discussion around PE-group width).
    """
    growth = 32
    layers: List[LayerSpec] = [
        LayerSpec("conv1", "conv", 3, 64, 224, 224, kernel=7, stride=2, pad=3,
                  act_density=1.0, weight_density=0.85, is_first=True),
    ]
    size = 56  # after the stem max pool
    channels = 64
    for block_idx, n_stages in enumerate((6, 12, 24, 16), start=1):
        for stage in range(n_stages):
            tag = f"dense{block_idx}.{stage}"
            layers.append(LayerSpec(f"{tag}.bottleneck", "conv", channels, 4 * growth, size, size,
                                    kernel=1, act_density=0.30, weight_density=0.70))
            layers.append(LayerSpec(f"{tag}.conv", "conv", 4 * growth, growth, size, size,
                                    kernel=3, pad=1, act_density=0.35, weight_density=0.70))
            channels += growth
        if block_idx < 4:
            layers.append(LayerSpec(f"trans{block_idx}", "conv", channels, channels // 2, size, size,
                                    kernel=1, act_density=0.35, weight_density=0.70))
            channels //= 2
            size //= 2
    layers.append(_fc("fc", channels, 1000, act_density=0.60, weight_density=0.90))
    return NetworkSpec("densenet121", tuple(layers), first_layer_weight_bits=8)


#: Networks whose performance the paper reports (Figs. 11-13, 15, 18, 19),
#: plus the deeper models it discusses (Sec. II / Sec. V outlook).
PAPER_ZOO = {
    "alexnet": alexnet_spec,
    "vgg16": vgg16_spec,
    "resnet18": resnet18_spec,
    "resnet101": resnet101_spec,
    "densenet121": densenet121_spec,
}


def build_paper(name: str) -> NetworkSpec:
    """Build a paper-shape spec by name (raises ``KeyError`` on unknown names)."""
    return PAPER_ZOO[name]()
