"""SGD training for the numpy substrate.

A deliberately small trainer: SGD with momentum, weight decay, optional
cosine learning-rate decay, and per-epoch shuffling. It is enough to train
the mini model zoo (:mod:`repro.nn.zoo_mini`) to well-above-chance accuracy
on the synthetic dataset within seconds, which is all the quantization
accuracy experiments require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from . import functional as F
from .model import Model

__all__ = ["TrainConfig", "TrainResult", "SGD", "train_model", "evaluate_loss"]


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`train_model`."""

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 5e-4
    cosine_decay: bool = True
    grad_clip: float = 5.0
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Per-epoch training trace."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0


class SGD:
    """SGD with momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters,
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        grad_clip: float = 0.0,
    ):
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def _clip_gradients(self) -> None:
        """Scale all gradients so the global L2 norm is at most ``grad_clip``."""
        total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in self.parameters))
        if total > self.grad_clip > 0:
            scale = self.grad_clip / (total + 1e-12)
            for param in self.parameters:
                param.grad *= scale

    def step(self) -> None:
        if self.grad_clip > 0:
            self._clip_gradients()
        for param, vel in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay and param.value.ndim > 1:
                grad = grad + self.weight_decay * param.value
            vel *= self.momentum
            vel -= self.lr * grad
            param.value += vel

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


def evaluate_loss(model: Model, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
    """Mean cross-entropy over a labelled set (inference mode)."""
    total = 0.0
    for start in range(0, x.shape[0], batch_size):
        xb = x[start : start + batch_size]
        yb = y[start : start + batch_size]
        logits = model.forward(xb, train=False)
        total += F.cross_entropy(logits, yb) * xb.shape[0]
    return total / x.shape[0]


def train_model(model: Model, x: np.ndarray, y: np.ndarray, config: TrainConfig) -> TrainResult:
    """Train ``model`` in place; returns the loss trace."""
    rng = np.random.default_rng(config.seed)
    optimizer = SGD(
        model.parameters(),
        config.lr,
        config.momentum,
        config.weight_decay,
        grad_clip=config.grad_clip,
    )
    result = TrainResult()
    n = x.shape[0]

    for epoch in range(config.epochs):
        if config.cosine_decay:
            optimizer.lr = config.lr * 0.5 * (1 + np.cos(np.pi * epoch / max(config.epochs, 1)))
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            xb, yb = x[idx], y[idx]
            optimizer.zero_grad()
            logits = model.forward(xb, train=True)
            loss = F.cross_entropy(logits, yb)
            model.backward(F.cross_entropy_backward(logits, yb))
            optimizer.step()
            epoch_loss += loss * xb.shape[0]
        epoch_loss /= n
        result.losses.append(epoch_loss)
        if config.verbose:
            print(f"epoch {epoch + 1}/{config.epochs}: loss={epoch_loss:.4f}")

    result.train_accuracy = model.accuracy(x, y)
    return result
