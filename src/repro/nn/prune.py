"""Magnitude pruning.

The paper evaluates pruned AlexNet/VGG-16 models (Deep Compression style)
to exercise zero-skipping, and prunes ResNet-18 "on our own". This module
provides the same capability for the mini zoo: global or per-layer magnitude
pruning with zero-masking, so pruned mini models feed measured weight
densities into the cycle simulators.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .layers import Conv2d, Linear
from .model import Model

__all__ = ["prune_layer", "prune_model", "weight_density"]


def prune_layer(weight: np.ndarray, density: float) -> np.ndarray:
    """Zero all but the largest-magnitude ``density`` fraction of ``weight``.

    Returns a new array; ``density`` = 1 keeps everything, 0 zeroes all.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if density >= 1.0:
        return weight.copy()
    flat = np.abs(weight).ravel()
    keep = int(round(density * flat.size))
    if keep == 0:
        return np.zeros_like(weight)
    threshold = np.partition(flat, flat.size - keep)[flat.size - keep]
    pruned = weight.copy()
    pruned[np.abs(pruned) < threshold] = 0.0
    return pruned


def prune_model(
    model: Model,
    density: float = 0.5,
    per_layer: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """Magnitude-prune every Conv2d/Linear weight in place.

    ``per_layer`` maps layer names to densities and overrides the global
    ``density``. Returns the achieved density per layer.
    """
    achieved: Dict[str, float] = {}
    for layer in model.compute_layers():
        assert isinstance(layer, (Conv2d, Linear))
        target = (per_layer or {}).get(layer.name, density)
        layer.weight.value = prune_layer(layer.weight.value, target)
        achieved[layer.name] = weight_density(layer.weight.value)
    return achieved


def weight_density(weight: np.ndarray) -> float:
    """Fraction of nonzero entries."""
    return float(np.count_nonzero(weight) / weight.size)
