"""Numpy neural-network substrate: layers, models, training, datasets.

This package replaces the PyTorch/Caffe environments the paper used (see
DESIGN.md for the substitution table). It provides:

- :mod:`repro.nn.functional` — im2col convolution and friends;
- :mod:`repro.nn.layers` / :mod:`repro.nn.model` — trainable layers and a
  sequential model container;
- :mod:`repro.nn.train` — SGD training;
- :mod:`repro.nn.data` — a synthetic classification dataset;
- :mod:`repro.nn.prune` — magnitude pruning;
- :mod:`repro.nn.zoo_mini` — trainable miniatures of the paper's networks;
- :mod:`repro.nn.zoo_paper` — exact layer geometry of the paper's networks
  for performance simulation.
"""

from .data import SyntheticImageDataset, make_dataset
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DenseBlock,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    Parameter,
    ReLU,
    ResidualBlock,
)
from .model import Model, iter_compute_layers
from .prune import prune_layer, prune_model, weight_density
from .train import SGD, TrainConfig, TrainResult, evaluate_loss, train_model
from .zoo_mini import MINI_ZOO, build_mini, mini_alexnet, mini_densenet, mini_resnet, mini_vgg
from .zoo_paper import (
    PAPER_ZOO,
    LayerSpec,
    NetworkSpec,
    alexnet_spec,
    build_paper,
    densenet121_spec,
    resnet101_spec,
    resnet18_spec,
    vgg16_spec,
)

__all__ = [
    "SyntheticImageDataset",
    "make_dataset",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "DenseBlock",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "Linear",
    "LocalResponseNorm",
    "MaxPool2d",
    "Parameter",
    "ReLU",
    "ResidualBlock",
    "Model",
    "iter_compute_layers",
    "prune_layer",
    "prune_model",
    "weight_density",
    "SGD",
    "TrainConfig",
    "TrainResult",
    "evaluate_loss",
    "train_model",
    "MINI_ZOO",
    "build_mini",
    "mini_alexnet",
    "mini_densenet",
    "mini_resnet",
    "mini_vgg",
    "PAPER_ZOO",
    "LayerSpec",
    "NetworkSpec",
    "alexnet_spec",
    "build_paper",
    "densenet121_spec",
    "resnet101_spec",
    "resnet18_spec",
    "vgg16_spec",
]
