"""Synthetic image-classification dataset.

The paper evaluates on ImageNet, which is unavailable offline. This module
generates a procedural stand-in: each class is a distinct spatial template
(oriented gratings, blobs, rings, checkers at class-specific frequencies,
phases and colour mixes) rendered with per-sample jitter and additive noise.
The task is hard enough that an untrained network sits at chance and a small
trained CNN lands well above it, yet still degrades when quantization noise
is injected — exactly the regime the accuracy experiments (Figs. 2–3) need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticImageDataset", "make_dataset"]


@dataclass
class SyntheticImageDataset:
    """A fixed train/test split of synthetic images.

    Attributes:
        train_x: (N, C, H, W) float images, roughly zero-mean unit-scale.
        train_y: (N,) integer labels.
        test_x / test_y: held-out split with the same generator.
        num_classes: number of distinct templates.
    """

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int


def _class_template(rng: np.random.Generator, size: int, channels: int) -> np.ndarray:
    """Render one class's base pattern: a random mix of structured fields."""
    yy, xx = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size), indexing="ij")
    kind = rng.integers(0, 4)
    freq = rng.uniform(1.5, 5.0)
    theta = rng.uniform(0, np.pi)
    phase = rng.uniform(0, 2 * np.pi)
    u = np.cos(theta) * xx + np.sin(theta) * yy
    if kind == 0:  # oriented grating
        base = np.sin(2 * np.pi * freq * u + phase)
    elif kind == 1:  # rings
        r = np.sqrt(xx**2 + yy**2)
        base = np.cos(2 * np.pi * freq * r + phase)
    elif kind == 2:  # blob mixture
        base = np.zeros_like(xx)
        for _ in range(4):
            cx, cy = rng.uniform(-0.7, 0.7, size=2)
            sigma = rng.uniform(0.15, 0.4)
            base += rng.choice([-1.0, 1.0]) * np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2))
    else:  # checker
        v = -np.sin(theta) * xx + np.cos(theta) * yy
        base = np.sign(np.sin(2 * np.pi * freq * u + phase) * np.sin(2 * np.pi * freq * v))
    colour = rng.uniform(0.3, 1.0, size=channels) * rng.choice([-1.0, 1.0], size=channels)
    return base[None, :, :] * colour[:, None, None]


def _render(
    rng: np.random.Generator,
    templates: np.ndarray,
    labels: np.ndarray,
    noise: float,
    jitter: int,
) -> np.ndarray:
    """Render jittered, noisy instances of the class templates."""
    n = labels.shape[0]
    channels, size = templates.shape[1], templates.shape[2]
    images = np.empty((n, channels, size, size))
    shifts = rng.integers(-jitter, jitter + 1, size=(n, 2))
    gains = rng.uniform(0.7, 1.3, size=n)
    for i in range(n):
        img = np.roll(templates[labels[i]], shift=tuple(shifts[i]), axis=(1, 2))
        images[i] = gains[i] * img
    images += rng.normal(0.0, noise, size=images.shape)
    return images


def make_dataset(
    num_classes: int = 10,
    train_per_class: int = 200,
    test_per_class: int = 50,
    size: int = 32,
    channels: int = 3,
    noise: float = 0.35,
    jitter: int = 3,
    seed: int = 7,
) -> SyntheticImageDataset:
    """Build a train/test split of the synthetic classification task."""
    rng = np.random.default_rng(seed)
    templates = np.stack([_class_template(rng, size, channels) for _ in range(num_classes)])

    train_y = np.repeat(np.arange(num_classes), train_per_class)
    test_y = np.repeat(np.arange(num_classes), test_per_class)
    rng.shuffle(train_y)
    rng.shuffle(test_y)

    train_x = _render(rng, templates, train_y, noise, jitter)
    test_x = _render(rng, templates, test_y, noise, jitter)
    return SyntheticImageDataset(train_x, train_y, test_x, test_y, num_classes)
