"""Sequential model container with parameter enumeration and activation taps.

The top-level model is a plain sequence of layers; composite layers
(:class:`~repro.nn.layers.ResidualBlock`, :class:`~repro.nn.layers.DenseBlock`)
handle branching internally. Activation taps record the *input* of every
compute layer (Conv2d/Linear), which is what the quantization calibrator and
the accelerator simulators consume.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from .layers import Conv2d, Layer, Linear, Parameter

__all__ = ["Model", "iter_compute_layers"]


def iter_compute_layers(layers: Sequence[Layer]) -> Iterator[Layer]:
    """Yield every Conv2d/Linear layer, descending into composite layers."""
    for layer in layers:
        if layer.is_compute:
            yield layer
        children = list(layer.children())
        if children:
            yield from iter_compute_layers(children)


class Model:
    """An ordered sequence of layers with a classification head."""

    def __init__(self, layers: Sequence[Layer], name: str = "model"):
        self.layers: List[Layer] = list(layers)
        self.name = name

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    __call__ = forward

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        grad = dlogits
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def compute_layers(self) -> List[Layer]:
        """All Conv2d/Linear layers in execution order."""
        return list(iter_compute_layers(self.layers))

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Class predictions over ``x``, evaluated in batches."""
        preds = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], train=False)
            preds.append(logits.argmax(axis=1))
        return np.concatenate(preds)

    def accuracy(self, x: np.ndarray, labels: np.ndarray, batch_size: int = 64) -> float:
        """Top-1 accuracy on a labelled set."""
        return float((self.predict(x, batch_size) == labels).mean())

    def topk_accuracy(self, x: np.ndarray, labels: np.ndarray, k: int = 5, batch_size: int = 64) -> float:
        """Top-k accuracy on a labelled set."""
        hits = 0
        for start in range(0, x.shape[0], batch_size):
            batch_labels = labels[start : start + batch_size]
            logits = self.forward(x[start : start + batch_size], train=False)
            topk = np.argpartition(-logits, min(k, logits.shape[1] - 1), axis=1)[:, :k]
            hits += int((topk == batch_labels[:, None]).any(axis=1).sum())
        return hits / x.shape[0]

    def record_activations(self, x: np.ndarray) -> Dict[int, np.ndarray]:
        """Run ``x`` and capture the input tensor of every compute layer.

        Returns a dict keyed by the layer's index in :meth:`compute_layers`.
        Capture is implemented by temporarily wrapping each compute layer's
        ``forward`` so composite layers are handled transparently.
        """
        captured: Dict[int, np.ndarray] = {}
        compute = self.compute_layers()
        originals: List[Callable] = []

        def make_tap(index: int, fwd: Callable) -> Callable:
            def tapped(inp: np.ndarray, train: bool = False) -> np.ndarray:
                captured[index] = inp
                return fwd(inp, train=train)

            return tapped

        for i, layer in enumerate(compute):
            originals.append(layer.forward)
            layer.forward = make_tap(i, layer.forward)  # type: ignore[method-assign]
        try:
            self.forward(x, train=False)
        finally:
            for layer, fwd in zip(compute, originals):
                layer.forward = fwd  # type: ignore[method-assign]
        return captured

    def num_parameters(self) -> int:
        return int(sum(p.value.size for p in self.parameters()))
