"""Trainable mini versions of the paper's networks.

The paper quantizes ImageNet-scale AlexNet, VGG-16, ResNet-18/101 and
DenseNet-121. Training those in numpy is not feasible, so the accuracy
experiments (Figs. 1–3, 14, 16) run on topology-faithful miniatures: the
same layer *types* and block structure (plain conv stack, VGG-style double
convs, residual blocks with projection shortcuts, dense blocks with
concatenation), scaled to 32x32 synthetic images. What matters for the
experiments is that each network has trained, heavy-tailed weights and ReLU
activations — the properties outlier-aware quantization exploits — and the
miniatures have both.

Each factory takes an ``rng`` so experiments are reproducible.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DenseBlock,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)
from .model import Model

__all__ = [
    "mini_alexnet",
    "mini_vgg",
    "mini_resnet",
    "mini_densenet",
    "MINI_ZOO",
    "build_mini",
]


def mini_alexnet(num_classes: int = 10, in_channels: int = 3, seed: int = 1) -> Model:
    """Five conv layers + three FC layers, mirroring AlexNet's macro shape."""
    rng = np.random.default_rng(seed)
    layers: List[Layer] = [
        Conv2d(in_channels, 16, kernel=5, stride=1, pad=2, name="conv1", rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, kernel=5, stride=1, pad=2, name="conv2", rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(32, 48, kernel=3, stride=1, pad=1, name="conv3", rng=rng),
        ReLU(),
        Conv2d(48, 48, kernel=3, stride=1, pad=1, name="conv4", rng=rng),
        ReLU(),
        Conv2d(48, 32, kernel=3, stride=1, pad=1, name="conv5", rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(32 * 4 * 4, 128, name="fc6", rng=rng),
        ReLU(),
        Linear(128, 64, name="fc7", rng=rng),
        ReLU(),
        Linear(64, num_classes, name="fc8", rng=rng),
    ]
    return Model(layers, name="mini-alexnet")


def mini_vgg(num_classes: int = 10, in_channels: int = 3, seed: int = 2) -> Model:
    """VGG-style double-conv blocks with 3x3 kernels."""
    rng = np.random.default_rng(seed)

    def block(cin: int, cout: int, tag: str) -> List[Layer]:
        return [
            Conv2d(cin, cout, kernel=3, pad=1, name=f"{tag}a", rng=rng),
            ReLU(),
            Conv2d(cout, cout, kernel=3, pad=1, name=f"{tag}b", rng=rng),
            ReLU(),
            MaxPool2d(2),
        ]

    layers: List[Layer] = []
    layers += block(in_channels, 16, "conv1")
    layers += block(16, 32, "conv2")
    layers += block(32, 48, "conv3")
    layers += [
        Flatten(),
        Linear(48 * 4 * 4, 128, name="fc1", rng=rng),
        ReLU(),
        Linear(128, num_classes, name="fc2", rng=rng),
    ]
    return Model(layers, name="mini-vgg")


def _res_block(cin: int, cout: int, stride: int, tag: str, rng: np.random.Generator) -> ResidualBlock:
    body: List[Layer] = [
        Conv2d(cin, cout, kernel=3, stride=stride, pad=1, bias=False, name=f"{tag}a", rng=rng),
        BatchNorm2d(cout, name=f"{tag}a.bn"),
        ReLU(),
        Conv2d(cout, cout, kernel=3, stride=1, pad=1, bias=False, name=f"{tag}b", rng=rng),
        BatchNorm2d(cout, name=f"{tag}b.bn"),
    ]
    shortcut: Optional[List[Layer]] = None
    if stride != 1 or cin != cout:
        shortcut = [
            Conv2d(cin, cout, kernel=1, stride=stride, bias=False, name=f"{tag}proj", rng=rng),
            BatchNorm2d(cout, name=f"{tag}proj.bn"),
        ]
    return ResidualBlock(body, shortcut)


def mini_resnet(num_classes: int = 10, in_channels: int = 3, seed: int = 3) -> Model:
    """Three residual stages with projection shortcuts, ResNet-18 style."""
    rng = np.random.default_rng(seed)
    layers: List[Layer] = [
        Conv2d(in_channels, 16, kernel=3, pad=1, bias=False, name="stem", rng=rng),
        BatchNorm2d(16, name="stem.bn"),
        ReLU(),
        _res_block(16, 16, 1, "res1a", rng),
        _res_block(16, 16, 1, "res1b", rng),
        _res_block(16, 32, 2, "res2a", rng),
        _res_block(32, 32, 1, "res2b", rng),
        _res_block(32, 64, 2, "res3a", rng),
        _res_block(64, 64, 1, "res3b", rng),
        GlobalAvgPool(),
        Linear(64, num_classes, name="fc", rng=rng),
    ]
    return Model(layers, name="mini-resnet")


def mini_densenet(num_classes: int = 10, in_channels: int = 3, seed: int = 4) -> Model:
    """Two dense blocks with a pooled transition, DenseNet-121 style."""
    rng = np.random.default_rng(seed)
    growth = 12

    def dense_stage(cin: int, tag: str) -> List[Layer]:
        return [
            BatchNorm2d(cin, name=f"{tag}.bn"),
            ReLU(),
            Conv2d(cin, growth, kernel=3, pad=1, bias=False, name=f"{tag}.conv", rng=rng),
        ]

    def dense_block(cin: int, num_stages: int, tag: str) -> DenseBlock:
        stages = []
        width = cin
        for i in range(num_stages):
            stages.append(dense_stage(width, f"{tag}.{i}"))
            width += growth
        return DenseBlock(stages)

    c0 = 16
    c1 = c0 + 3 * growth  # after first dense block
    c2 = c1 // 2  # after transition
    c3 = c2 + 3 * growth  # after second dense block
    layers: List[Layer] = [
        Conv2d(in_channels, c0, kernel=3, pad=1, bias=False, name="stem", rng=rng),
        dense_block(c0, 3, "dense1"),
        Conv2d(c1, c2, kernel=1, bias=False, name="trans1", rng=rng),
        AvgPool2d(2),
        dense_block(c2, 3, "dense2"),
        BatchNorm2d(c3, name="final.bn"),
        ReLU(),
        GlobalAvgPool(),
        Linear(c3, num_classes, name="fc", rng=rng),
    ]
    return Model(layers, name="mini-densenet")


#: Factories for the miniatures standing in for the paper's evaluated models.
MINI_ZOO = {
    "alexnet": mini_alexnet,
    "vgg": mini_vgg,
    "resnet": mini_resnet,
    "densenet": mini_densenet,
}


def build_mini(name: str, num_classes: int = 10, in_channels: int = 3) -> Model:
    """Build a mini model by zoo name (raises ``KeyError`` on unknown names)."""
    return MINI_ZOO[name](num_classes=num_classes, in_channels=in_channels)
