"""Core tensor operations for the numpy neural-network substrate.

All activation tensors use NCHW layout: ``(batch, channels, height, width)``.
Convolution is implemented through im2col/col2im so both the forward and the
backward pass reduce to matrix multiplications, which is the only way to get
acceptable training throughput out of pure numpy.

These functions are the computational substrate everything else builds on:
the trainable layers in :mod:`repro.nn.layers`, the quantized executor in
:mod:`repro.quant.qmodel`, and the bit-exact OLAccel functional simulator in
:mod:`repro.olaccel.functional` (which runs the same im2col loop in integer
arithmetic).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = [
    "conv_out_size",
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "linear",
    "linear_backward",
    "relu",
    "relu_backward",
    "maxpool2d",
    "maxpool2d_backward",
    "avgpool2d",
    "avgpool2d_backward",
    "softmax",
    "cross_entropy",
    "cross_entropy_backward",
]


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size {out} for input {size}, kernel {kernel},"
            f" stride {stride}, pad {pad}"
        )
    return out


#: Bounded LRU of convolution coordinate tables keyed by
#: (h, w, kernel_h, kernel_w, stride, pad). Each entry is a mutable
#: ``[out_h, out_w, flat_indices_or_None]`` triple — the flat scatter
#: indices into the padded plane are built lazily the first time the
#: col2im fast path needs them, then reused by every backward pass that
#: shares the layer geometry (networks repeat a handful of shapes).
_COORD_CACHE: "OrderedDict[tuple, list]" = OrderedDict()
_COORD_CACHE_MAX = 64

#: col2im implementation crossover, in per-kernel-position slice
#: elements (n*c*out_h*out_w). The K^2 blocked slice-adds cost roughly
#: K^2 python dispatches plus the element traffic, so when each slice is
#: tiny the dispatch overhead dominates and one indexed ``np.add.at``
#: over the cached coordinate table wins (measured up to ~6x); once
#: slices carry a few hundred elements the slice-adds win back (the
#: scatter's index/copy traffic dominates, measured down to ~0.2x).
_SCATTER_SLICE_LIMIT = 256


def _coord_table(
    h: int, w: int, kernel_h: int, kernel_w: int, stride: int, pad: int,
    need_indices: bool = False,
) -> list:
    """The cached ``[out_h, out_w, flat_indices]`` entry for one geometry.

    ``flat_indices`` (built only when ``need_indices``) maps each
    (kh, kw, oh, ow) patch element, in that C-order, to its offset in the
    flattened padded plane: ``(kh + stride*oh) * (w + 2*pad) +
    (kw + stride*ow)``.
    """
    key = (h, w, kernel_h, kernel_w, stride, pad)
    entry = _COORD_CACHE.get(key)
    if entry is None:
        out_h = conv_out_size(h, kernel_h, stride, pad)
        out_w = conv_out_size(w, kernel_w, stride, pad)
        entry = [out_h, out_w, None]
        _COORD_CACHE[key] = entry
    _COORD_CACHE.move_to_end(key)
    while len(_COORD_CACHE) > _COORD_CACHE_MAX:
        _COORD_CACHE.popitem(last=False)
    if need_indices and entry[2] is None:
        out_h, out_w = entry[0], entry[1]
        pw = w + 2 * pad
        kh = np.arange(kernel_h, dtype=np.int64)[:, None, None, None]
        kw = np.arange(kernel_w, dtype=np.int64)[None, :, None, None]
        oh = np.arange(out_h, dtype=np.int64)[None, None, :, None]
        ow = np.arange(out_w, dtype=np.int64)[None, None, None, :]
        entry[2] = ((kh + stride * oh) * pw + (kw + stride * ow)).ravel()
    return entry


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into patch columns.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
    where each row is one receptive field, flattened channel-major. Row order
    is (n, oh, ow); column order is (c, kh, kw). The quantized and integer
    simulators rely on this exact ordering.
    """
    n, c, h, w = x.shape
    out_h, out_w, _ = _coord_table(h, w, kernel_h, kernel_w, stride, pad)

    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    # Strided sliding-window view: (N, C, out_h, out_w, kernel_h, kernel_w).
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel_h * kernel_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
    slow_reference: bool = False,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch columns back to an image.

    Overlapping patch contributions accumulate, which is exactly the adjoint
    of the unfold operation and therefore what the convolution backward pass
    needs.

    Small-slice problems (see :data:`_SCATTER_SLICE_LIMIT`) take an
    indexed ``np.add.at`` scatter over the cached coordinate table;
    larger ones keep the blocked slice-add loop, which wins there. Both
    accumulate each padded element's contributions in the same
    (kh, kw)-major order, so the float rounding — and therefore every
    downstream gradient — is bit-identical across paths;
    ``slow_reference=True`` forces the loop for the equivalence tests.
    """
    n, c, h, w = x_shape
    if slow_reference:
        out_h = conv_out_size(h, kernel_h, stride, pad)
        out_w = conv_out_size(w, kernel_w, stride, pad)
    else:
        out_h, out_w, _ = _coord_table(h, w, kernel_h, kernel_w, stride, pad)

    slice_elems = n * c * out_h * out_w
    if not slow_reference and slice_elems <= _SCATTER_SLICE_LIMIT:
        flat = _coord_table(h, w, kernel_h, kernel_w, stride, pad, need_indices=True)[2]
        plane = (h + 2 * pad) * (w + 2 * pad)
        updates = (
            cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
            .transpose(0, 3, 4, 5, 1, 2)
            .reshape(n * c, -1)
        )
        buf = np.zeros(n * c * plane, dtype=cols.dtype)
        base = np.arange(n * c, dtype=np.int64)[:, None] * plane
        np.add.at(buf, base + flat[None, :], updates)
        padded = buf.reshape(n, c, h + 2 * pad, w + 2 * pad)
    else:
        padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
        patches = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 1, 2, 4, 5)
        for kh in range(kernel_h):
            h_end = kh + stride * out_h
            for kw in range(kernel_w):
                w_end = kw + stride * out_w
                padded[:, :, kh:h_end:stride, kw:w_end:stride] += patches[:, :, :, :, kh, kw]

    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
) -> tuple:
    """2-D convolution.

    ``x`` is (N, C_in, H, W); ``weight`` is (C_out, C_in, K_h, K_w). Returns
    ``(y, cache)`` where ``cache`` carries the im2col matrix for the backward
    pass.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, k_h, k_w = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels but weight expects {c_in_w}")

    out_h = conv_out_size(h, k_h, stride, pad)
    out_w = conv_out_size(w, k_w, stride, pad)

    cols = im2col(x, k_h, k_w, stride, pad)
    w_mat = weight.reshape(c_out, -1)
    y = cols @ w_mat.T
    if bias is not None:
        y += bias
    y = y.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    cache = (x.shape, cols, weight, stride, pad)
    return np.ascontiguousarray(y), cache


def conv2d_backward(dy: np.ndarray, cache: tuple) -> tuple:
    """Backward pass of :func:`conv2d`.

    Returns ``(dx, dweight, dbias)`` for upstream gradient ``dy`` of shape
    (N, C_out, out_h, out_w).
    """
    x_shape, cols, weight, stride, pad = cache
    c_out, c_in, k_h, k_w = weight.shape
    n = x_shape[0]

    dy_mat = dy.transpose(0, 2, 3, 1).reshape(-1, c_out)
    dbias = dy_mat.sum(axis=0)
    dw_mat = dy_mat.T @ cols
    dweight = dw_mat.reshape(weight.shape)
    dcols = dy_mat @ weight.reshape(c_out, -1)
    dx = col2im(dcols, x_shape, k_h, k_w, stride, pad)
    return dx, dweight, dbias


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> tuple:
    """Fully connected layer: ``y = x @ weight.T + bias``.

    ``x`` is (N, in_features); ``weight`` is (out_features, in_features).
    """
    y = x @ weight.T
    if bias is not None:
        y = y + bias
    return y, (x, weight)


def linear_backward(dy: np.ndarray, cache: tuple) -> tuple:
    x, weight = cache
    dx = dy @ weight
    dweight = dy.T @ x
    dbias = dy.sum(axis=0)
    return dx, dweight, dbias


def relu(x: np.ndarray) -> tuple:
    y = np.maximum(x, 0.0)
    return y, (x > 0.0)


def relu_backward(dy: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return dy * mask


def maxpool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> tuple:
    """Max pooling with square windows (no padding)."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = conv_out_size(h, kernel, stride, 0)
    out_w = conv_out_size(w, kernel, stride, 0)

    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=4)
    y = np.take_along_axis(flat, argmax[..., None], axis=4)[..., 0]
    cache = (x.shape, argmax, kernel, stride)
    return y, cache


def maxpool2d_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    x_shape, argmax, kernel, stride = cache
    n, c, h, w = x_shape
    out_h, out_w = dy.shape[2], dy.shape[3]
    dx = np.zeros(x_shape, dtype=dy.dtype)

    kh = argmax // kernel
    kw = argmax % kernel
    oh = np.arange(out_h)[None, None, :, None]
    ow = np.arange(out_w)[None, None, None, :]
    rows = oh * stride + kh
    cols = ow * stride + kw
    nn_idx = np.arange(n)[:, None, None, None]
    cc_idx = np.arange(c)[None, :, None, None]
    np.add.at(dx, (nn_idx, cc_idx, rows, cols), dy)
    return dx


def avgpool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> tuple:
    """Average pooling with square windows (no padding)."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = conv_out_size(h, kernel, stride, 0)
    out_w = conv_out_size(w, kernel, stride, 0)

    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    y = windows.mean(axis=(4, 5))
    cache = (x.shape, kernel, stride)
    return y, cache


def avgpool2d_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    x_shape, kernel, stride = cache
    dx = np.zeros(x_shape, dtype=dy.dtype)
    out_h, out_w = dy.shape[2], dy.shape[3]
    share = dy / (kernel * kernel)
    for kh in range(kernel):
        for kw in range(kernel):
            dx[:, :, kh : kh + stride * out_h : stride, kw : kw + stride * out_w : stride] += share
    return dx


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits``."""
    probs = softmax(logits)
    n = logits.shape[0]
    picked = probs[np.arange(n), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def cross_entropy_backward(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. logits."""
    n = logits.shape[0]
    grad = softmax(logits)
    grad[np.arange(n), labels] -= 1.0
    return grad / n
