"""Trainable layers for the numpy neural-network substrate.

Layers follow a small, explicit protocol instead of a full autograd engine:

- ``forward(x, train=False)`` consumes a batch and stashes whatever the
  backward pass needs on ``self``;
- ``backward(dy)`` returns the gradient w.r.t. the layer input and
  accumulates parameter gradients;
- ``parameters()`` yields :class:`Parameter` objects so optimizers and the
  quantization tooling can enumerate weights uniformly.

Composite layers (:class:`ResidualBlock`, :class:`DenseBlock`) wrap child
layers so that the top-level :class:`repro.nn.model.Model` can stay a plain
sequence, which keeps both training and quantized execution simple.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from . import functional as F

__all__ = [
    "Parameter",
    "Layer",
    "Conv2d",
    "Linear",
    "ReLU",
    "Dropout",
    "LocalResponseNorm",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "BatchNorm2d",
    "Flatten",
    "ResidualBlock",
    "DenseBlock",
]


class Parameter:
    """A named tensor with its gradient accumulator."""

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = value
        self.grad = np.zeros_like(value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.value.shape})"


class Layer:
    """Base class; concrete layers override ``forward``/``backward``."""

    #: set by subclasses that perform multiply-accumulate work; the harness
    #: uses it to decide which layers the accelerators simulate.
    is_compute = False

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        return iter(())

    def children(self) -> Iterator["Layer"]:
        return iter(())

    def __call__(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)


def _he_init(rng: np.random.Generator, shape: Sequence[int], fan_in: int) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float64)


class Conv2d(Layer):
    """2-D convolution with optional bias and channel groups.

    With ``groups > 1`` the input/output channels are split into that many
    independent groups (AlexNet's conv2/4/5 topology); the weight tensor is
    then ``(out_channels, in_channels // groups, k, k)``.
    """

    is_compute = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
        groups: int = 1,
        name: str = "conv",
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        if groups < 1 or in_channels % groups or out_channels % groups:
            raise ValueError(
                f"groups={groups} must divide in_channels={in_channels} and out_channels={out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.groups = groups
        self.name = name
        fan_in = (in_channels // groups) * kernel * kernel
        self.weight = Parameter(
            f"{name}.weight",
            _he_init(rng, (out_channels, in_channels // groups, kernel, kernel), fan_in),
        )
        self.bias = Parameter(f"{name}.bias", np.zeros(out_channels)) if bias else None
        self._cache = None

    def _split(self, x: np.ndarray, per_group: int, axis: int = 1):
        return [x[:, g * per_group : (g + 1) * per_group] for g in range(self.groups)]

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        bias = self.bias.value if self.bias is not None else None
        if self.groups == 1:
            y, cache = F.conv2d(x, self.weight.value, bias, self.stride, self.pad)
            self._cache = cache if train else None
            return y

        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        outputs = []
        caches = []
        for g, xg in enumerate(self._split(x, cin_g)):
            wg = self.weight.value[g * cout_g : (g + 1) * cout_g]
            bg = bias[g * cout_g : (g + 1) * cout_g] if bias is not None else None
            yg, cg = F.conv2d(xg, wg, bg, self.stride, self.pad)
            outputs.append(yg)
            caches.append(cg)
        self._cache = caches if train else None
        return np.concatenate(outputs, axis=1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        if self.groups == 1:
            dx, dw, db = F.conv2d_backward(dy, self._cache)
            self.weight.grad += dw
            if self.bias is not None:
                self.bias.grad += db
            return dx

        cout_g = self.out_channels // self.groups
        dx_parts = []
        for g, cache in enumerate(self._cache):
            dyg = dy[:, g * cout_g : (g + 1) * cout_g]
            dxg, dwg, dbg = F.conv2d_backward(dyg, cache)
            dx_parts.append(dxg)
            self.weight.grad[g * cout_g : (g + 1) * cout_g] += dwg
            if self.bias is not None:
                self.bias.grad[g * cout_g : (g + 1) * cout_g] += dbg
        return np.concatenate(dx_parts, axis=1)

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        if self.bias is not None:
            yield self.bias


class Linear(Layer):
    """Fully connected layer."""

    is_compute = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: str = "fc",
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.weight = Parameter(f"{name}.weight", _he_init(rng, (out_features, in_features), in_features))
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features)) if bias else None
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        bias = self.bias.value if self.bias is not None else None
        y, cache = F.linear(x, self.weight.value, bias)
        self._cache = cache if train else None
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        dx, dw, db = F.linear_backward(dy, self._cache)
        self.weight.grad += dw
        if self.bias is not None:
            self.bias.grad += db
        return dx

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        if self.bias is not None:
            yield self.bias


class ReLU(Layer):
    def __init__(self):
        self._mask = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        y, mask = F.relu(x)
        self._mask = mask if train else None
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return F.relu_backward(dy, self._mask)


class MaxPool2d(Layer):
    def __init__(self, kernel: int, stride: Optional[int] = None):
        self.kernel = kernel
        self.stride = kernel if stride is None else stride
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        y, cache = F.maxpool2d(x, self.kernel, self.stride)
        self._cache = cache if train else None
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return F.maxpool2d_backward(dy, self._cache)


class AvgPool2d(Layer):
    def __init__(self, kernel: int, stride: Optional[int] = None):
        self.kernel = kernel
        self.stride = kernel if stride is None else stride
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        y, cache = F.avgpool2d(x, self.kernel, self.stride)
        self._cache = cache if train else None
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return F.avgpool2d_backward(dy, self._cache)


class GlobalAvgPool(Layer):
    """Average over the full spatial extent, producing (N, C)."""

    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        return np.broadcast_to(dy[:, :, None, None], self._shape) / (h * w)


class BatchNorm2d(Layer):
    """Batch normalization over (N, H, W) per channel with running stats."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5, name: str = "bn"):
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.name = name
        self.gamma = Parameter(f"{name}.gamma", np.ones(channels))
        self.beta = Parameter(f"{name}.beta", np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        y = self.gamma.value[None, :, None, None] * x_hat + self.beta.value[None, :, None, None]
        if train:
            self._cache = (x_hat, inv_std)
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        n, c, h, w = dy.shape
        m = n * h * w
        self.gamma.grad += (dy * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += dy.sum(axis=(0, 2, 3))
        dxhat = dy * self.gamma.value[None, :, None, None]
        # Standard batchnorm backward, vectorized per channel.
        term1 = dxhat
        term2 = dxhat.mean(axis=(0, 2, 3), keepdims=True)
        term3 = x_hat * (dxhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        return (term1 - term2 - term3) * inv_std[None, :, None, None]

    def parameters(self) -> Iterator[Parameter]:
        yield self.gamma
        yield self.beta


class Dropout(Layer):
    """Inverted dropout; identity at inference (AlexNet's FC regularizer)."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._mask = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if not train or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask


class LocalResponseNorm(Layer):
    """AlexNet's cross-channel local response normalization.

    ``y_c = x_c / (k + alpha/n * sum_{c' in window} x_{c'}^2)^beta`` with a
    window of ``size`` channels centred on ``c``. Used at inference in the
    mini-AlexNet variant; backward implements the full LRN gradient.
    """

    def __init__(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 2.0):
        if size < 1:
            raise ValueError(f"LRN window must be >= 1, got {size}")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self._cache = None

    def _window_sums(self, squared: np.ndarray) -> np.ndarray:
        channels = squared.shape[1]
        half = self.size // 2
        padded = np.pad(squared, ((0, 0), (half, half), (0, 0), (0, 0)))
        out = np.zeros_like(squared)
        for offset in range(self.size):
            out += padded[:, offset : offset + channels]
        return out

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        squared = x**2
        denom_base = self.k + (self.alpha / self.size) * self._window_sums(squared)
        denom = denom_base**self.beta
        y = x / denom
        if train:
            self._cache = (x, denom_base, denom)
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x, denom_base, denom = self._cache
        # dy/dx has a direct term and a cross-channel coupling term.
        direct = dy / denom
        coupling = dy * x * denom_base ** (-self.beta - 1.0)
        summed = self._window_sums(coupling)
        return direct - (2.0 * self.alpha * self.beta / self.size) * x * summed


class Flatten(Layer):
    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._shape)


class ResidualBlock(Layer):
    """``y = relu(body(x) + shortcut(x))`` with an optional projection shortcut.

    The body is an arbitrary layer sequence (typically conv-bn-relu-conv-bn);
    the shortcut is identity unless a projection sequence is supplied (for
    stride/channel changes, as in ResNet).
    """

    def __init__(self, body: Sequence[Layer], shortcut: Optional[Sequence[Layer]] = None):
        self.body: List[Layer] = list(body)
        self.shortcut: List[Layer] = list(shortcut) if shortcut else []
        self._relu = ReLU()

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = x
        for layer in self.body:
            out = layer.forward(out, train=train)
        skip = x
        for layer in self.shortcut:
            skip = layer.forward(skip, train=train)
        return self._relu.forward(out + skip, train=train)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dsum = self._relu.backward(dy)
        dbody = dsum
        for layer in reversed(self.body):
            dbody = layer.backward(dbody)
        dskip = dsum
        for layer in reversed(self.shortcut):
            dskip = layer.backward(dskip)
        return dbody + dskip

    def parameters(self) -> Iterator[Parameter]:
        for layer in self.body:
            yield from layer.parameters()
        for layer in self.shortcut:
            yield from layer.parameters()

    def children(self) -> Iterator[Layer]:
        yield from self.body
        yield from self.shortcut


class DenseBlock(Layer):
    """DenseNet-style block: each stage consumes the concat of all earlier outputs.

    Each stage is itself a layer sequence producing ``growth`` channels; the
    block output is the concatenation of the input with every stage output.
    """

    def __init__(self, stages: Sequence[Sequence[Layer]]):
        self.stages: List[List[Layer]] = [list(s) for s in stages]
        self._splits = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        features = [x]
        for stage in self.stages:
            out = np.concatenate(features, axis=1)
            for layer in stage:
                out = layer.forward(out, train=train)
            features.append(out)
        self._splits = [f.shape[1] for f in features]
        return np.concatenate(features, axis=1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        # Split upstream gradient into per-feature slices.
        grads = []
        start = 0
        for width in self._splits:
            grads.append(dy[:, start : start + width].copy())
            start += width
        # Walk stages in reverse; each stage's input was concat(features[:i+1]).
        for i in range(len(self.stages) - 1, -1, -1):
            dstage = grads[i + 1]
            for layer in reversed(self.stages[i]):
                dstage = layer.backward(dstage)
            start = 0
            for j in range(i + 1):
                width = self._splits[j]
                grads[j] += dstage[:, start : start + width]
                start += width
        return grads[0]

    def parameters(self) -> Iterator[Parameter]:
        for stage in self.stages:
            for layer in stage:
                yield from layer.parameters()

    def children(self) -> Iterator[Layer]:
        for stage in self.stages:
            yield from stage
