"""OLAccel hardware configuration (paper Sec. III-A and Table I).

Two reference configurations match the paper's ISO-area comparison points:

- :func:`olaccel16` — the 16-bit comparison: 8 PE clusters x 6 PE groups x
  16 4-bit MACs = 768 MACs, 16-bit outlier activations, 8-bit outlier
  weights, 16-bit raw input activations.
- :func:`olaccel8` — the 8-bit comparison: 6 clusters = 576 MACs, 8-bit
  outlier activations and raw input.

On-chip memory (the swarm buffer) is per-network, matching Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.chunks import LANES

__all__ = ["OLAccelConfig", "olaccel16", "olaccel8"]


@dataclass(frozen=True)
class OLAccelConfig:
    """Structural and precision parameters of one OLAccel instance."""

    name: str = "olaccel16"
    n_clusters: int = 8
    groups_per_cluster: int = 6
    lanes: int = LANES
    act_bits: int = 4
    weight_bits: int = 4
    weight_outlier_bits: int = 8
    act_outlier_bits: int = 16
    acc_bits: int = 24
    raw_input_bits: int = 16
    #: target outlier ratio used for packing statistics
    outlier_ratio: float = 0.03
    #: swarm buffer capacity in bytes (Table I: per-network)
    swarm_buffer_bytes: int = 393 * 1024
    #: cluster weight buffer: 200 chunks of 80 bits (Fig. 5)
    cluster_weight_chunks: int = 200
    #: cluster activation buffer: 64 chunks of 64 bits (Fig. 5)
    cluster_act_chunks: int = 64
    #: group activation buffer: 2 chunks (Fig. 5)
    group_act_chunks: int = 2
    #: fraction of peak group throughput achieved after dispatch/control
    #: overheads and transient starvation (the idle share in Fig. 18)
    dispatch_efficiency: float = 0.8
    clock_mhz: float = 250.0
    # -- ablation switches (all True in the paper's design) ---------------
    #: the 17th MAC per group that absorbs single outlier weights (Fig. 7);
    #: without it every chunk with >= 1 outlier costs the 2-cycle path
    has_outlier_mac: bool = True
    #: quad-based zero-activation skipping (Fig. 6)
    zero_skip: bool = True
    #: pipelined normal/outlier accumulation through the tri-buffer
    #: (Fig. 10); without it the outlier path serializes after the dense one
    pipelined_accumulation: bool = True

    @property
    def n_groups(self) -> int:
        """Total number of normal PE groups."""
        return self.n_clusters * self.groups_per_cluster

    @property
    def n_macs(self) -> int:
        """Total normal 4-bit MAC count (the paper's 768 / 576)."""
        return self.n_groups * self.lanes

    @property
    def n_outlier_groups(self) -> int:
        """One outlier PE group per cluster (Fig. 4)."""
        return self.n_clusters

    @property
    def swarm_buffer_bits(self) -> int:
        return self.swarm_buffer_bytes * 8

    def with_swarm_buffer(self, nbytes: int) -> "OLAccelConfig":
        from dataclasses import replace

        return replace(self, swarm_buffer_bytes=nbytes)


def olaccel16(swarm_buffer_bytes: int = 393 * 1024, outlier_ratio: float = 0.03) -> OLAccelConfig:
    """The paper's 16-bit comparison configuration (768 4-bit MACs)."""
    return OLAccelConfig(
        name="olaccel16",
        n_clusters=8,
        act_outlier_bits=16,
        raw_input_bits=16,
        swarm_buffer_bytes=swarm_buffer_bytes,
        outlier_ratio=outlier_ratio,
    )


def olaccel8(swarm_buffer_bytes: int = 196 * 1024, outlier_ratio: float = 0.03) -> OLAccelConfig:
    """The paper's 8-bit comparison configuration (576 4-bit MACs)."""
    return OLAccelConfig(
        name="olaccel8",
        n_clusters=6,
        act_outlier_bits=8,
        raw_input_bits=8,
        swarm_buffer_bytes=swarm_buffer_bytes,
        outlier_ratio=outlier_ratio,
    )
