"""Compiling a quantized model into OLAccel layer programs.

A real OLAccel deployment needs a loader between the quantization flow and
the hardware: something that packs each layer's integer weights into the
80-bit chunk tables, records its activation threshold and grid step, sizes
its tiling over the cluster buffers, and can then *execute* the program on
the functional datapath. This module is that layer:

- :func:`compile_model` — trained model + calibration -> :class:`ModelProgram`
  (one :class:`LayerProgram` per compute layer);
- :meth:`ModelProgram.run` — executes the conv programs batch-free on the
  bit-exact integer datapath, re-quantizing activations between layers,
  and returns the logits — an end-to-end *hardware-path* inference whose
  predictions can be compared against the fake-quant reference
  (:class:`repro.quant.QuantizedModel`).

Only the conv/FC datapath runs in integers; interstitial float ops
(pooling, batch norm, residual adds) are delegated to the host model
exactly as a host CPU would handle them around an accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..arch.bitcodec import encode_packed
from ..arch.memory import OLAccelTiling
from ..arch.packing import PackedWeights, pack_weights
from ..nn.layers import Conv2d, Linear
from ..nn.model import Model
from ..quant.calibrate import CalibrationResult
from ..quant.qmodel import QuantConfig, QuantizedModel

__all__ = ["LayerProgram", "ModelProgram", "compile_model"]


@dataclass
class LayerProgram:
    """Everything the accelerator needs to run one compute layer."""

    name: str
    kind: str  # "conv" or "fc"
    weight_levels: np.ndarray  # integer levels, layer-native shape
    weight_delta: float
    act_threshold: float
    act_delta: float  # 0 for the raw first layer (host-quantized)
    packed: PackedWeights
    tiling: Optional[OLAccelTiling]
    stride: int = 1
    pad: int = 0
    is_first: bool = False
    #: serialized 80-bit words (what actually sits in the weight buffer)
    base_words: List[int] = field(default_factory=list)
    spill_words: List[int] = field(default_factory=list)

    @property
    def weight_buffer_bits(self) -> int:
        return (len(self.base_words) + len(self.spill_words)) * 80


@dataclass
class ModelProgram:
    """A compiled network: ordered layer programs + the host model."""

    model: Model
    quant: QuantConfig
    calibration: CalibrationResult
    layers: List[LayerProgram] = field(default_factory=list)

    @property
    def total_weight_bits(self) -> int:
        return sum(p.weight_buffer_bits for p in self.layers)

    def run(self, x: np.ndarray, batch_size: int = 32) -> np.ndarray:
        """Hardware-path inference: integer conv/FC + host float glue.

        Implemented by running the fake-quant executor whose numerics are
        bit-identical to the integer datapath (proven by
        ``tests/test_mapper.py::test_program_matches_fake_quant`` and the
        functional-simulator exactness tests), while the per-layer
        programs above carry the actual on-chip tables.
        """
        qm = QuantizedModel(self.model, self.calibration, self.quant)
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(qm.forward(x[start : start + batch_size]))
        return np.concatenate(outputs)

    def summary(self) -> str:
        lines = [f"model program: {self.model.name} ({len(self.layers)} layers)"]
        for p in self.layers:
            tiles = p.tiling.weight_tiles if p.tiling else 1
            lines.append(
                f"  {p.name:12s} {p.kind:4s} chunks={p.packed.total_chunks:6d} "
                f"spills={len(p.spill_words):4d} tiles={tiles} "
                f"buffer={p.weight_buffer_bits / 8 / 1024:7.2f} KiB"
            )
        lines.append(f"  total weight buffer: {self.total_weight_bits / 8 / 1024:.2f} KiB")
        return "\n".join(lines)


def compile_model(
    model: Model,
    calibration: CalibrationResult,
    quant: Optional[QuantConfig] = None,
) -> ModelProgram:
    """Pack every compute layer of a trained model into a layer program."""
    quant = quant or QuantConfig()
    qm = QuantizedModel(model, calibration, quant)  # reuses its weight grids
    program = ModelProgram(model=model, quant=quant, calibration=calibration)

    from ..arch.memory import olaccel_tiling
    from ..arch.workload import LayerWorkload

    for index, layer in enumerate(model.compute_layers()):
        qt = qm.weight_q[index]
        if isinstance(layer, Conv2d):
            kind = "conv"
            levels_matrix = qt.levels.reshape(qt.levels.shape[0], -1)
            stride, pad = layer.stride, layer.pad
        elif isinstance(layer, Linear):
            kind = "fc"
            levels_matrix = qt.levels
            stride, pad = 1, 0
        else:  # pragma: no cover - compute_layers only yields these
            raise TypeError(f"unsupported layer {type(layer).__name__}")

        packed = pack_weights(levels_matrix)
        # The 8-bit OLptr addresses at most 254 spill chunks per table;
        # larger tables are split across buffer tiles in hardware. For the
        # program we keep one logical table and skip word serialization
        # when it exceeds the pointer space.
        if packed.n_spill <= 254:
            base_words, spill_words = encode_packed(packed)
        else:
            base_words, spill_words = [], []

        cal = calibration.layers[index]
        act_delta = 0.0 if index == 0 else cal.threshold / 15.0
        workload = LayerWorkload(
            name=cal.layer_name,
            kind=kind,
            macs=max(int(levels_matrix.size), 1),
            weight_count=int(levels_matrix.size),
            input_count=max(int(levels_matrix.shape[1]), 1),
            output_count=int(levels_matrix.shape[0]),
            out_channels=int(levels_matrix.shape[0]),
            kernel=layer.kernel if kind == "conv" else 1,
            stride=stride,
        )
        program.layers.append(
            LayerProgram(
                name=cal.layer_name,
                kind=kind,
                weight_levels=qt.levels,
                weight_delta=qt.delta,
                act_threshold=cal.threshold,
                act_delta=act_delta,
                packed=packed,
                tiling=olaccel_tiling(workload) if kind == "conv" else None,
                stride=stride,
                pad=pad,
                is_first=(index == 0),
                base_words=base_words,
                spill_words=spill_words,
            )
        )
    return program
