"""Bandwidth-aware network pipeline: overlap of compute and DRAM traffic.

The per-layer simulator counts compute cycles; a deployed OLAccel also
streams each layer's weight chunks from DRAM, double-buffered so the
transfer of layer *i+1*'s weights overlaps layer *i*'s compute (standard
practice, and the effect behind the paper's Fig. 15 bandwidth ceiling).
This module schedules a whole network under a finite DRAM bandwidth:

- per layer, transfer time = weight bits / bandwidth;
- with double buffering, layer *i* starts once its weights are resident
  *and* the previous layer's compute is done;
- a layer is **memory-bound** when its weight transfer, not its compute,
  dominates its slot (AlexNet-style FC layers at batch 1 are the classic
  case).

Outputs per-layer start/end times and the network's bandwidth-bound share,
so experiments can ask "how much bandwidth until compute-bound?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..arch.stats import RunStats
from ..arch.workload import NetworkWorkload
from .accelerator import OLAccelSimulator

__all__ = ["LayerSchedule", "PipelineResult", "schedule_network", "bandwidth_to_compute_bound"]


@dataclass(frozen=True)
class LayerSchedule:
    """Timing of one layer in the double-buffered pipeline (cycles)."""

    name: str
    compute_cycles: float
    transfer_cycles: float
    start: float
    end: float

    @property
    def memory_bound(self) -> bool:
        return self.transfer_cycles > self.compute_cycles


@dataclass
class PipelineResult:
    """Whole-network schedule under a bandwidth constraint."""

    bandwidth_bits_per_cycle: float
    layers: List[LayerSchedule] = field(default_factory=list)
    compute_cycles: float = 0.0  # sum of pure compute

    @property
    def makespan(self) -> float:
        return self.layers[-1].end if self.layers else 0.0

    @property
    def stall_cycles(self) -> float:
        """Extra cycles beyond pure compute caused by weight transfers."""
        return self.makespan - self.compute_cycles

    @property
    def memory_bound_layers(self) -> List[str]:
        return [l.name for l in self.layers if l.memory_bound]

    @property
    def bandwidth_bound(self) -> bool:
        return self.stall_cycles > 1e-9


def _weight_transfer_bits(run: RunStats, network: NetworkWorkload) -> List[float]:
    """Per-layer packed-weight DRAM bits (5 bits/weight + spill chunks)."""
    bits = []
    for layer, stats in zip(network.layers, run.layers):
        multi = stats.extras.get("multi_outlier_fraction", 0.0)
        chunk_count = layer.weight_count / 16.0 * (1.0 + multi)
        if layer.is_first and layer.first_weight_bits > 4:
            chunk_count = layer.weight_count / 16.0 * (layer.first_weight_bits / 4.0)
        bits.append(chunk_count * 80.0)
    return bits


def schedule_network(
    network: NetworkWorkload,
    simulator: OLAccelSimulator = None,
    bandwidth_bits_per_cycle: float = 216.0,
) -> PipelineResult:
    """Schedule all layers with double-buffered weight streaming."""
    if bandwidth_bits_per_cycle <= 0:
        raise ValueError("bandwidth must be positive")
    simulator = simulator or OLAccelSimulator()
    run = simulator.simulate_network(network)
    transfers = [bits / bandwidth_bits_per_cycle for bits in _weight_transfer_bits(run, network)]

    result = PipelineResult(bandwidth_bits_per_cycle=bandwidth_bits_per_cycle)
    compute_done = 0.0  # when the previous layer's compute finished
    transfer_done = 0.0  # when the DMA engine becomes free
    for layer_stats, transfer in zip(run.layers, transfers):
        # Weights stream as soon as the DMA is free (prefetch)...
        transfer_start = transfer_done
        transfer_end = transfer_start + transfer
        transfer_done = transfer_end
        # ...and compute starts when both the weights and the PE array are ready.
        start = max(compute_done, transfer_end)
        end = start + layer_stats.cycles
        compute_done = end
        result.layers.append(
            LayerSchedule(
                name=layer_stats.layer_name,
                compute_cycles=layer_stats.cycles,
                transfer_cycles=transfer,
                start=start,
                end=end,
            )
        )
    result.compute_cycles = run.total_cycles
    return result


def bandwidth_to_compute_bound(
    network: NetworkWorkload,
    simulator: OLAccelSimulator = None,
    tolerance: float = 0.01,
    lo: float = 1.0,
    hi: float = 100000.0,
) -> float:
    """Smallest DRAM bandwidth (bits/cycle) with < ``tolerance`` stall share.

    Binary search over the pipeline model; answers "how much memory
    bandwidth does this network need before OLAccel is compute-bound?".
    """
    simulator = simulator or OLAccelSimulator()

    def stall_share(bw: float) -> float:
        result = schedule_network(network, simulator, bw)
        return result.stall_cycles / result.compute_cycles

    if stall_share(hi) > tolerance:
        raise ValueError("even the search upper bound is bandwidth-starved")
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if stall_share(mid) > tolerance:
            lo = mid
        else:
            hi = mid
    return hi
