"""Cluster output tri-buffer and pipelined accumulation (paper Fig. 10).

The cluster output is triple-buffered: on any cycle the *normal*
accumulation unit reads/writes two of the three partial-sum buffers while
the *outlier* accumulation unit owns the third — the outlier unit only
touches a buffer once the normal unit has finished with it, so the two
units never race on a partial sum (the paper's coherence argument). This
module models that rotation explicitly so tests can assert the invariant,
and provides the pipeline drain cost the top-level simulator charges per
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

__all__ = ["TriBuffer", "accumulation_drain_cycles"]


@dataclass
class TriBuffer:
    """Rotation state of the three partial-sum buffers.

    ``step()`` advances one pipeline stage and returns the buffer indices
    assigned to (normal unit, outlier unit) for that stage, mirroring the
    paper's t0/t1 example: normal reads {0,1} at t0, {1,2} at t1 while the
    outlier unit takes {0}, and so on cyclically.
    """

    stage: int = 0
    history: List[Tuple[Set[int], Set[int]]] = field(default_factory=list)

    def step(self) -> Tuple[Set[int], Set[int]]:
        normal = {self.stage % 3, (self.stage + 1) % 3}
        # The outlier unit trails the normal unit by one stage and owns the
        # buffer the normal unit just released.
        outlier = {(self.stage + 2) % 3} if self.stage > 0 else set()
        self.stage += 1
        self.history.append((normal, outlier))
        return normal, outlier

    def run(self, stages: int) -> None:
        for _ in range(stages):
            self.step()

    @property
    def conflict_free(self) -> bool:
        """True when normal and outlier units never shared a buffer."""
        return all(not (normal & outlier) for normal, outlier in self.history)


def accumulation_drain_cycles(out_groups: int, pipeline_depth: int = 2) -> int:
    """Cycles to drain the accumulation pipeline at the end of a layer.

    The outlier accumulation unit trails the normal unit by one stage per
    output-channel group still in flight; with a ``pipeline_depth``-stage
    accumulate path the drain is a small additive term (it only matters for
    tiny layers).
    """
    if out_groups < 0:
        raise ValueError("out_groups must be non-negative")
    return pipeline_depth * max(out_groups, 1)
