"""OLAccel: the outlier-aware accelerator simulator (paper Sec. III)."""

from .accelerator import OLAccelSimulator
from .cluster import load_balance_efficiency, schedule_passes
from .event_sim import ClusterSim, PassDescriptor, PassMatrix, PEGroupSim, passes_from_levels
from .mapper import LayerProgram, ModelProgram, compile_model
from .pipeline import (
    LayerSchedule,
    PipelineResult,
    bandwidth_to_compute_bound,
    schedule_network,
)
from .config import OLAccelConfig, olaccel16, olaccel8
from .functional import (
    ACC_LIMIT,
    FunctionalResult,
    olaccel_conv2d,
    reference_conv2d_int,
    split_activation_levels,
    split_weight_levels,
)
from .outlier_group import OutlierWork, outlier_work
from .pe_group import (
    PassCosts,
    batch_pass_cycles,
    chunk_pass_cycles,
    pass_op_counts,
    dense_pass_factor,
    expected_pass_costs,
    multi_outlier_probability,
    sample_pass_cycles,
    single_or_more_outlier_probability,
)
from .tribuffer import TriBuffer, accumulation_drain_cycles

__all__ = [
    "OLAccelSimulator",
    "load_balance_efficiency",
    "schedule_passes",
    "ClusterSim",
    "PassDescriptor",
    "PassMatrix",
    "PEGroupSim",
    "passes_from_levels",
    "LayerProgram",
    "ModelProgram",
    "compile_model",
    "LayerSchedule",
    "PipelineResult",
    "bandwidth_to_compute_bound",
    "schedule_network",
    "OLAccelConfig",
    "olaccel16",
    "olaccel8",
    "ACC_LIMIT",
    "FunctionalResult",
    "olaccel_conv2d",
    "reference_conv2d_int",
    "split_activation_levels",
    "split_weight_levels",
    "OutlierWork",
    "outlier_work",
    "PassCosts",
    "batch_pass_cycles",
    "chunk_pass_cycles",
    "dense_pass_factor",
    "pass_op_counts",
    "expected_pass_costs",
    "multi_outlier_probability",
    "sample_pass_cycles",
    "single_or_more_outlier_probability",
    "TriBuffer",
    "accumulation_drain_cycles",
]
