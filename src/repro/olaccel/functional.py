"""Bit-exact functional simulation of the OLAccel datapath.

This module executes a convolution exactly the way the hardware does —
integer levels, the normal/outlier weight split of Figs. 7-8, the dense
4-bit stream with outlier activations diverted to the outlier PE group
(Fig. 9) — and proves the decomposition exact:

    conv(acts, weights) ==
          conv(normal_acts, lsb(weights))        # normal MACs
        + 8 * conv(normal_acts, msb(weights))    # outlier MAC / spill pass
        + conv(outlier_acts, weights)            # outlier PE group

It also counts the exact PE-group cycles (nonzero broadcasts, two-cycle
spill chunks, zero-quad skips) for the same data, which grounds the
stochastic cycle model used on full-size networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from ..arch.chunks import LANES
from ..arch.packing import PackedWeights, normal_max_level, pack_weights
from ..errors import ConfigError, QuantRangeError
from ..nn.functional import conv_out_size, im2col
from ..obs import NULL_REGISTRY, Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> olaccel)
    from ..faults.accumulator import AccumulatorModel

__all__ = [
    "split_weight_levels",
    "split_activation_levels",
    "FunctionalResult",
    "olaccel_conv2d",
    "reference_conv2d_int",
]

#: 24-bit signed partial-sum accumulator limit (Sec. III-B).
ACC_LIMIT = 2**23 - 1


def split_weight_levels(levels: np.ndarray) -> tuple:
    """Split integer weight levels into (lsb, msb) parts.

    Normal weights (|level| <= 7) are entirely in the LSB part; outliers
    contribute their low three magnitude bits (with sign) to the LSB part
    and their high nibble to the MSB part, so ``lsb + 8 * msb == levels``.
    """
    levels = np.asarray(levels, dtype=np.int64)
    sign = np.sign(levels)
    magnitude = np.abs(levels)
    is_outlier = magnitude > normal_max_level
    lsb = np.where(is_outlier, sign * (magnitude & 0b111), levels)
    msb = np.where(is_outlier, sign * (magnitude >> 3), 0)
    return lsb, msb


def split_activation_levels(levels: np.ndarray, normal_max: int = 15) -> tuple:
    """Split activation levels into the dense normal stream and sparse outliers.

    Outlier activations are *removed* from the dense stream (stored only in
    the swarm buffer, Sec. III-A) and carried at full precision by the
    outlier path, so ``normal + outlier == levels``.
    """
    levels = np.asarray(levels, dtype=np.int64)
    if np.any(levels < 0):
        raise QuantRangeError("activation levels must be non-negative (post-ReLU)")
    is_outlier = levels > normal_max
    normal = np.where(is_outlier, 0, levels)
    outlier = np.where(is_outlier, levels, 0)
    return normal, outlier


@dataclass
class FunctionalResult:
    """Outcome of a bit-exact OLAccel convolution."""

    psum: np.ndarray  # (N, out_c, out_h, out_w) int64 partial sums
    normal_psum: np.ndarray
    outlier_psum: np.ndarray
    cycles: int  # exact normal-PE-group cycles (single group, serial)
    pass_cycles: np.ndarray  # per (pixel, out-group, in-chunk) pass costs
    outlier_broadcasts: int  # exact outlier-PE-group broadcast count
    #: values clipped/wrapped by the accumulator model (0 without one)
    acc_overflows: int = 0

    @property
    def saturated(self) -> bool:
        """True if any partial sum exceeded the 24-bit accumulator."""
        return bool(np.abs(self.psum).max(initial=0) > ACC_LIMIT)


def reference_conv2d_int(
    act_levels: np.ndarray,
    weight_levels: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    acc: Optional["AccumulatorModel"] = None,
    obs: Registry = NULL_REGISTRY,
) -> np.ndarray:
    """Plain integer convolution — the golden reference.

    ``acc`` optionally reduces the ideal partial sums through a
    finite-width accumulator (:mod:`repro.faults.accumulator`); without
    one the accumulator is infinite, the seed behaviour.
    """
    n, c, h, w = act_levels.shape
    out_c = weight_levels.shape[0]
    out_h = conv_out_size(h, weight_levels.shape[2], stride, pad)
    out_w = conv_out_size(w, weight_levels.shape[3], stride, pad)
    cols = im2col(act_levels.astype(np.int64), weight_levels.shape[2], weight_levels.shape[3], stride, pad)
    w_mat = weight_levels.reshape(out_c, -1).astype(np.int64)
    y = cols @ w_mat.T
    if acc is not None:
        y = acc.apply(y, obs=obs)
    return y.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)


def olaccel_conv2d(
    act_levels: np.ndarray,
    weight_levels: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    act_normal_max: int = 15,
    packed: PackedWeights = None,
    acc: Optional["AccumulatorModel"] = None,
    obs: Registry = NULL_REGISTRY,
    slow_reference: bool = False,
) -> FunctionalResult:
    """Run a convolution through the OLAccel integer datapath.

    ``act_levels`` is (N, C, H, W) non-negative activation levels;
    ``weight_levels`` is (out_c, in_c, kh, kw) signed levels within the
    8-bit outlier grid. ``packed`` may supply a pre-packed weight table
    (otherwise the weights are packed here) — the two-cycle spill chunks it
    contains drive the exact cycle count. ``acc`` optionally models a
    finite-width accumulator on the combined partial sums: ``wrap`` mode
    is bit-exact to per-MAC wraparound (modular addition commutes),
    ``saturate`` models clamping on write-back, and overflow events are
    counted on ``obs`` under ``acc/overflow``.

    ``slow_reference=True`` routes the weight packing and the per-chunk
    spill-flag matrix through the original scalar loops instead of the
    vectorized table form; results are bit-identical either way
    (tests/test_vectorized_equiv.py).
    """
    act_levels = np.asarray(act_levels, dtype=np.int64)
    weight_levels = np.asarray(weight_levels, dtype=np.int64)
    n, c, h, w = act_levels.shape
    out_c, in_c, k_h, k_w = weight_levels.shape
    if c != in_c:
        raise ConfigError(f"activation channels {c} != weight input channels {in_c}")

    w_mat = weight_levels.reshape(out_c, -1)
    if packed is None:
        packed = pack_weights(w_mat, slow_reference=slow_reference)
    lsb, msb = split_weight_levels(w_mat)
    normal_acts, outlier_acts = split_activation_levels(act_levels, act_normal_max)

    out_h = conv_out_size(h, k_h, stride, pad)
    out_w = conv_out_size(w, k_w, stride, pad)

    cols_norm = im2col(normal_acts, k_h, k_w, stride, pad)
    cols_out = im2col(outlier_acts, k_h, k_w, stride, pad)

    normal_flat = cols_norm @ lsb.T + 8 * (cols_norm @ msb.T)
    outlier_flat = cols_out @ w_mat.T

    def to_nchw(flat: np.ndarray) -> np.ndarray:
        return flat.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)

    # im2col column order is (c, kh, kw); weight chunks are packed over the
    # same flattened reduction axis, LANES input positions per chunk.
    reduction = cols_norm.shape[1]
    n_in_chunks = -(-reduction // LANES)
    padded_red = n_in_chunks * LANES
    cols_padded = np.zeros((cols_norm.shape[0], padded_red), dtype=np.int64)
    cols_padded[:, :reduction] = cols_norm
    lane_nonzero = (cols_padded != 0).reshape(-1, n_in_chunks, LANES)

    # Per-(out-group, reduction index) spill flag from the packed table.
    multi = np.zeros((packed.n_groups, padded_red), dtype=bool)
    if slow_reference:
        for g in range(packed.n_groups):
            for r in range(reduction):
                multi[g, r] = packed.base_chunks[g * reduction + r].has_multi_outlier
    else:
        multi[:, :reduction] = packed.multi_outlier_mask.reshape(packed.n_groups, reduction)
    multi_lanes = multi.reshape(packed.n_groups, n_in_chunks, LANES)

    # pass cost = nonzero broadcasts (+1 per spill-chunk broadcast) + zero quads
    nonzero = lane_nonzero.sum(axis=2)  # (pixels, in_chunks)
    quads = (~lane_nonzero.reshape(-1, n_in_chunks, LANES // 4, 4).any(axis=3)).sum(axis=2)
    # int operands: einsum over bools would saturate each (pass, chunk) at 1
    # instead of counting every spilled-lane broadcast.
    extra = np.einsum(
        "pcl,gcl->pgc", lane_nonzero.astype(np.int64), multi_lanes.astype(np.int64)
    )
    pass_cycles = nonzero[:, None, :] + quads[:, None, :] + extra
    cycles = int(pass_cycles.sum())
    outlier_broadcasts = int((cols_out != 0).sum()) * packed.n_groups

    combined = normal_flat + outlier_flat
    acc_overflows = 0
    if acc is not None:
        acc_overflows = acc.overflows(combined)
        combined = acc.apply(combined, obs=obs)

    return FunctionalResult(
        psum=to_nchw(combined),
        normal_psum=to_nchw(normal_flat),
        outlier_psum=to_nchw(outlier_flat),
        cycles=cycles,
        pass_cycles=pass_cycles,
        outlier_broadcasts=outlier_broadcasts,
        acc_overflows=acc_overflows,
    )
