"""Top-level OLAccel per-layer cycle and energy simulator.

Ties together the PE-group cycle model (:mod:`repro.olaccel.pe_group`),
the outlier PE group (:mod:`repro.olaccel.outlier_group`), the cluster
scheduler (:mod:`repro.olaccel.cluster`) and the tri-buffer drain
(:mod:`repro.olaccel.tribuffer`) into per-layer
:class:`~repro.arch.stats.LayerStats`.

Cycle model (Sec. III, V):

- Dense 4-bit work: ``macs / 16`` broadcast slots, thinned by the normal
  activation density (nonzero and below the outlier threshold), stretched
  by the multi-outlier weight-chunk probability (second cycle per spill
  chunk, Fig. 8), plus one skip cycle per all-zero activation quad.
- First layer: dense, no skipping, serialized by
  ``ceil(act_bits/4) * ceil(weight_bits/4)`` (8x for 16-bit activations x
  8-bit weights, Sec. V).
- Outlier activations run on one outlier PE group per cluster in parallel;
  the layer ends when the slower of the two paths finishes, plus the
  accumulation-pipeline drain.

Energy model (components as in Figs. 11-13):

- **DRAM** — packed weight chunks (80 bits per 16 weights, plus spill
  chunks), raw network input/output, and activation overflow whenever a
  layer's input+output footprint exceeds the swarm buffer.
- **Buffer** (swarm) — activation writes once and reads with a
  ``kernel/stride`` vertical-reuse factor; outlier FIFO traffic; weights
  passing through the small weight buffer.
- **Local** (cluster/group/tri-buffer SRAM) — 80-bit weight-chunk read
  per issued broadcast, 64-bit activation-chunk read per pass, partial
  sums revisiting the tri-buffer once per kernel row.
- **Logic** — MAC energy at the actual operand widths plus skip/control
  overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.chunks import WEIGHT_CHUNK_BITS
from ..arch.energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel
from ..arch.stats import LayerStats, RunStats
from ..arch.workload import LayerWorkload, NetworkWorkload
from ..obs import NULL_REGISTRY, Registry
from .cluster import load_balance_efficiency
from .config import OLAccelConfig, olaccel16
from .outlier_group import outlier_work
from .pe_group import (
    dense_pass_factor,
    expected_pass_costs,
    multi_outlier_probability,
    single_or_more_outlier_probability,
)
from .tribuffer import accumulation_drain_cycles

__all__ = ["OLAccelSimulator"]

#: Small SRAM capacities (bits) used for per-access energy of local buffers.
_GROUP_BUFFER_BITS = 2 * 1024 * 8
_CLUSTER_BUFFER_BITS = 8 * 1024 * 8
_WEIGHT_BUFFER_BITS = 16 * 1024 * 8


@dataclass
class _LayerDerived:
    """Intermediate per-layer quantities shared by cycle and energy math."""

    dense_factor: int
    normal_density: float
    multi_outlier_fraction: float
    n_passes: float
    run_cycles: float
    skip_cycles: float
    broadcasts: float
    outlier_broadcasts: float
    outlier_acts: float


class OLAccelSimulator:
    """Cycle + energy model of one OLAccel instance.

    Pass ``obs=Registry(...)`` to record per-layer counters (run / skip /
    idle / outlier cycles, broadcasts, passes) under
    ``<config name>/<layer name>/…`` and a wall-clock timer per simulated
    network; the default records nothing.
    """

    def __init__(
        self,
        config: OLAccelConfig = None,
        energy: EnergyModel = DEFAULT_ENERGY,
        obs: Registry = None,
    ):
        self.config = config or olaccel16()
        self.energy = energy
        self.obs = obs if obs is not None else NULL_REGISTRY

    # -- derivation ---------------------------------------------------------

    def _derive(self, layer: LayerWorkload) -> _LayerDerived:
        cfg = self.config
        # One broadcast drives `lanes` output channels, so the broadcast
        # count scales inversely with group width; the activation *chunk*
        # stays A(1x1x16) regardless (Fig. 5).
        slots = layer.macs / cfg.lanes
        chunk_len = 16
        if layer.is_first:
            factor = dense_pass_factor(cfg.raw_input_bits, layer.first_weight_bits)
            return _LayerDerived(
                dense_factor=factor,
                normal_density=1.0,
                multi_outlier_fraction=0.0,
                n_passes=slots / chunk_len,
                run_cycles=slots * factor,
                skip_cycles=0.0,
                broadcasts=slots * factor,
                outlier_broadcasts=0.0,
                outlier_acts=0.0,
            )

        p_multi = multi_outlier_probability(layer.weight_outlier_ratio, cfg.lanes)
        if cfg.has_outlier_mac:
            p_extra = p_multi
        else:
            # Ablation: no 17th MAC — any outlier in the chunk forces the
            # two-cycle MSB pass.
            p_extra = single_or_more_outlier_probability(layer.weight_outlier_ratio, cfg.lanes)
        d_norm = layer.act_density * (1.0 - layer.act_outlier_ratio)
        if not cfg.zero_skip:
            # Ablation: no skip logic — every lane slot is issued.
            d_norm = 1.0
        n_passes = slots / chunk_len
        costs = expected_pass_costs(d_norm, p_extra, lanes=chunk_len)
        ow = outlier_work(
            input_activations=layer.input_count,
            act_density=layer.act_density,
            act_outlier_ratio=layer.act_outlier_ratio,
            broadcast_slots_per_input=layer.slots_per_input,
            n_outlier_groups=cfg.n_outlier_groups,
            value_bits=cfg.act_outlier_bits,
        )
        return _LayerDerived(
            dense_factor=1,
            normal_density=d_norm,
            multi_outlier_fraction=p_multi,  # storage format is unchanged by ablations
            n_passes=n_passes,
            run_cycles=n_passes * costs.run_cycles,
            skip_cycles=n_passes * costs.skip_cycles,
            broadcasts=n_passes * costs.broadcasts,
            outlier_broadcasts=ow.broadcasts,
            outlier_acts=ow.outlier_activations,
        )

    # -- cycles --------------------------------------------------------------

    def _layer_cycles(self, layer: LayerWorkload, derived: _LayerDerived) -> tuple:
        cfg = self.config
        work = derived.run_cycles + derived.skip_cycles
        mean_cost = work / derived.n_passes if derived.n_passes else 1.0
        efficiency = load_balance_efficiency(derived.n_passes, cfg.n_groups, mean_cost=max(mean_cost, 1.0))
        efficiency *= cfg.dispatch_efficiency
        normal_cycles = work / cfg.n_groups / efficiency
        outlier_cycles = derived.outlier_broadcasts / cfg.n_outlier_groups
        drain = accumulation_drain_cycles(layer.out_groups)
        if cfg.pipelined_accumulation:
            cycles = max(normal_cycles, outlier_cycles) + drain
        else:
            # Ablation: outlier partial sums merge only after the dense
            # pass finishes, serializing the two paths.
            cycles = normal_cycles + outlier_cycles + drain
        idle = cycles * cfg.n_groups - work
        return cycles, max(idle, 0.0), outlier_cycles

    # -- energy ---------------------------------------------------------------

    def _weight_chunk_bits(self, layer: LayerWorkload, derived: _LayerDerived) -> float:
        base_chunks = layer.weight_count / self.config.lanes
        spill_chunks = base_chunks * derived.multi_outlier_fraction
        if layer.is_first and layer.first_weight_bits > 4:
            # Dense high-precision first-layer weights: two nibble planes.
            base_chunks *= layer.first_weight_bits / 4.0
            spill_chunks = 0.0
        return (base_chunks + spill_chunks) * WEIGHT_CHUNK_BITS

    def _act_store_bits(self, layer: LayerWorkload, derived: _LayerDerived) -> float:
        cfg = self.config
        if layer.is_first:
            return layer.input_count * cfg.raw_input_bits
        dense = layer.input_count * cfg.act_bits
        fifo = derived.outlier_acts * (cfg.act_outlier_bits + 24.0)
        return dense + fifo

    def _layer_energy(self, layer: LayerWorkload, derived: _LayerDerived) -> EnergyBreakdown:
        cfg = self.config
        em = self.energy
        out = EnergyBreakdown()

        weight_bits = self._weight_chunk_bits(layer, derived)
        in_bits = self._act_store_bits(layer, derived)
        out_bits = layer.output_count * cfg.act_bits

        # DRAM: weights stream in once; activations overflow the swarm buffer
        # only when a layer's input+output footprint exceeds it.
        dram_bits = weight_bits
        spill = max(0.0, in_bits + out_bits - cfg.swarm_buffer_bits)
        dram_bits += 2.0 * spill
        if layer.is_first:
            dram_bits += in_bits  # raw network input
        out.dram = em.dram_energy(dram_bits)

        # Swarm buffer: activation write once, read with vertical reuse;
        # outlier FIFO reads; weights pass through the 16 KiB weight buffer.
        reuse = max(1.0, layer.kernel / layer.stride)
        swarm_bits = out_bits + in_bits * reuse + derived.outlier_acts * (cfg.act_outlier_bits + 24.0)
        out.buffer = em.sram_energy(cfg.swarm_buffer_bits, swarm_bits)
        out.buffer += em.sram_energy(_WEIGHT_BUFFER_BITS, 2.0 * weight_bits)

        # Local buffers: weight chunk per issued broadcast cycle, activation
        # chunk per pass, partial sums revisiting the tri-buffer per kernel row.
        local_bits = derived.run_cycles * WEIGHT_CHUNK_BITS
        local_bits += derived.n_passes * (cfg.lanes * cfg.act_bits)
        psum_visits = max(1, layer.kernel)
        local_bits += 2.0 * layer.output_count * cfg.acc_bits * psum_visits
        local_bits += derived.outlier_broadcasts * WEIGHT_CHUNK_BITS
        out.local = em.sram_energy(_GROUP_BUFFER_BITS, local_bits)

        # Logic: normal MAC lanes, outlier MAC lanes, skip/control overhead.
        normal_mac = em.mac_energy(cfg.act_bits, cfg.weight_bits, cfg.acc_bits)
        logic = derived.broadcasts * cfg.lanes * normal_mac
        outlier_mac = em.mac_energy(cfg.act_outlier_bits, cfg.weight_bits, cfg.acc_bits)
        logic += derived.outlier_broadcasts * cfg.lanes * outlier_mac
        logic += derived.skip_cycles * em.params.ctrl_pj_per_op * cfg.lanes
        out.logic = logic
        return out

    # -- public API -------------------------------------------------------------

    def simulate_layer(self, layer: LayerWorkload) -> LayerStats:
        """Simulate one layer; returns cycles, energy and a cycle breakdown."""
        derived = self._derive(layer)
        cycles, idle, outlier_cycles = self._layer_cycles(layer, derived)
        energy = self._layer_energy(layer, derived)
        with self.obs.scope(layer.name):
            self.obs.counter("cycles").add(cycles)
            self.obs.counter("run_cycles").add(derived.run_cycles)
            self.obs.counter("skip_cycles").add(derived.skip_cycles)
            self.obs.counter("idle_cycles").add(idle)
            self.obs.counter("outlier_cycles").add(outlier_cycles)
            self.obs.counter("broadcasts").add(derived.broadcasts)
            self.obs.counter("outlier_broadcasts").add(derived.outlier_broadcasts)
            self.obs.counter("passes").add(derived.n_passes)
            self.obs.counter("energy_pj").add(energy.total)
        return LayerStats(
            layer_name=layer.name,
            cycles=cycles,
            energy=energy,
            macs=layer.macs,
            ops_issued=derived.broadcasts * self.config.lanes,
            run_cycles=derived.run_cycles,
            skip_cycles=derived.skip_cycles,
            idle_cycles=idle,
            extras={
                "outlier_cycles": outlier_cycles,
                "outlier_acts": derived.outlier_acts,
                "multi_outlier_fraction": derived.multi_outlier_fraction,
                "n_passes": derived.n_passes,
            },
        )

    def simulate_network(self, network: NetworkWorkload) -> RunStats:
        """Simulate every layer; adds the final output's DRAM write."""
        stats = RunStats(accelerator=self.config.name, network=network.name)
        with self.obs.timer(f"simulate/{network.name}"), self.obs.scope(self.config.name):
            for layer in network.layers:
                stats.add(self.simulate_layer(layer))
        return self.finalize_network(stats, network)

    def finalize_network(self, stats: RunStats, network: NetworkWorkload) -> RunStats:
        """Charge the final output's DRAM write (shared with the
        layer-parallel driver, which assembles RunStats itself)."""
        if stats.layers:
            last = network.layers[-1]
            stats.layers[-1].energy.dram += self.energy.dram_energy(
                last.output_count * self.config.act_bits
            )
        return stats
