"""Normal PE group cycle model (paper Figs. 6-8, 17-19).

A PE group consumes one A(1x1x16) activation chunk per *pass* (one pass per
kernel position x input-channel chunk x output-channel group x output
pixel). Within a pass:

- each **nonzero** normal activation costs one broadcast cycle: the 16
  normal MACs multiply it with their lane weights while the 17th (outlier)
  MAC handles a single outlier weight's MSB nibble for free (Fig. 7);
- if the paired weight chunk holds **two or more** outlier weights
  (``ol_ptr`` set), the operation takes a second cycle to stream the MSB
  spill chunk through the normal MACs (Fig. 8);
- zero activations are skipped in aligned quads: a quad of four zeros
  costs one *skip* cycle and no MAC work (the ~20% overhead the paper
  reports around Fig. 18);
- dense high-precision passes (the first layer's raw input) serialize a
  wide operand over the 4-bit datapath: ``ceil(act_bits/4) x
  ceil(weight_bits/4)`` cycles per activation (Sec. V: 8x for 16-bit
  activations x 8-bit weights, 4x in the 8-bit comparison).

Two interfaces are provided: exact per-chunk cycle counting (used by the
bit-exact functional simulator and the Fig. 19 histograms) and a vectorized
stochastic model for full-size layers (used by Figs. 11-15, 18).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..arch.chunks import ActivationChunk, WeightChunk

__all__ = [
    "chunk_pass_cycles",
    "pass_op_counts",
    "batch_pass_cycles",
    "PassCosts",
    "expected_pass_costs",
    "sample_pass_cycles",
    "multi_outlier_probability",
    "single_or_more_outlier_probability",
]


def chunk_pass_cycles(activations: ActivationChunk, weight_chunks) -> int:
    """Exact cycles for one pass of an activation chunk against its weights.

    ``weight_chunks`` maps lane/channel index -> :class:`WeightChunk` (one
    per input channel in the chunk). Nonzero activations pay 1 cycle (2 if
    their weight chunk spills); all-zero quads pay 1 skip cycle each.
    """
    cycles = activations.zero_quads
    for channel, value in enumerate(activations.values):
        if value == 0:
            continue
        chunk = weight_chunks[channel]
        cycles += chunk.cycles if isinstance(chunk, WeightChunk) else int(chunk)
    return cycles


def pass_op_counts(act_levels: np.ndarray, spill_flags: np.ndarray):
    """Per-pass micro-op counts for a whole (n, 16) pass batch at once.

    Returns ``(bcast, stall, skip)`` int64 arrays of length n: nonzero
    lanes each cost one broadcast cycle, spilled nonzero lanes one extra
    stall cycle (Fig. 8), and all-zero aligned quads one skip cycle each
    (Fig. 18). ``bcast + stall + skip`` is the exact pass length the
    scalar micro-op schedule would execute — the batched form of
    :func:`chunk_pass_cycles`, shared by the vectorized
    :meth:`~repro.olaccel.event_sim.ClusterSim.run` accounting.
    """
    act_levels = np.asarray(act_levels, dtype=np.int64)
    spill_flags = np.asarray(spill_flags, dtype=bool)
    n = act_levels.shape[0]
    lanes = act_levels.shape[1] if act_levels.ndim == 2 else 0
    nonzero = act_levels != 0
    bcast = nonzero.sum(axis=1)
    stall = (spill_flags & nonzero).sum(axis=1)
    skip = (~nonzero.reshape(n, lanes // 4, 4).any(axis=2)).sum(axis=1)
    return bcast.astype(np.int64), stall.astype(np.int64), skip.astype(np.int64)


def batch_pass_cycles(
    act_levels: np.ndarray,
    spill_flags: np.ndarray = None,
    slow_reference: bool = False,
) -> np.ndarray:
    """Exact cycles for every pass of an (n, 16) activation level batch.

    The vector twin of :func:`chunk_pass_cycles`: element i is the cycle
    count of pass i (broadcasts + spill stalls + zero-quad skips).
    ``slow_reference=True`` walks the batch pass by pass through the
    scalar per-chunk API — the executable specification the fast path is
    held bit-identical to (tests/test_vectorized_equiv.py).
    """
    act_levels = np.asarray(act_levels, dtype=np.int64)
    if spill_flags is None:
        spill_flags = np.zeros(act_levels.shape, dtype=bool)
    spill_flags = np.asarray(spill_flags, dtype=bool)
    if act_levels.shape != spill_flags.shape:
        raise ValueError("spill_flags must match act_levels shape")
    if slow_reference:
        cycles = np.empty(act_levels.shape[0], dtype=np.int64)
        for i, (row, srow) in enumerate(zip(act_levels, spill_flags)):
            chunk = ActivationChunk(tuple(int(v) for v in row))
            weight_cycles = [2 if s else 1 for s in srow]
            cycles[i] = chunk_pass_cycles(chunk, weight_cycles)
        return cycles
    bcast, stall, skip = pass_op_counts(act_levels, spill_flags)
    return bcast + stall + skip


def multi_outlier_probability(ratio: float, lanes: int = 16) -> float:
    """P(>= 2 outlier weights among ``lanes`` weights) — paper Fig. 17.

    Assumes independent Bernoulli outliers at ``ratio``, the same model the
    paper uses to justify 16-wide PE groups.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    p_zero = (1.0 - ratio) ** lanes
    p_one = lanes * ratio * (1.0 - ratio) ** (lanes - 1)
    return max(0.0, 1.0 - p_zero - p_one)


def single_or_more_outlier_probability(ratio: float, lanes: int = 16) -> float:
    """P(>= 1 outlier among ``lanes`` weights) — the naive-SIMD stall rate."""
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    return 1.0 - (1.0 - ratio) ** lanes


@dataclass(frozen=True)
class PassCosts:
    """Expected per-pass cycle decomposition for a layer's statistics."""

    run_cycles: float  # broadcast cycles incl. multi-outlier second cycles
    skip_cycles: float  # zero-quad skip overhead
    broadcasts: float  # MAC-issue slots (for energy accounting)

    @property
    def total(self) -> float:
        return self.run_cycles + self.skip_cycles


def expected_pass_costs(
    act_density: float,
    weight_multi_outlier_fraction: float,
    lanes: int = 16,
    dense_factor: int = 1,
) -> PassCosts:
    """Expected cycles for one activation-chunk pass.

    ``act_density`` is the probability a normal-stream activation is
    nonzero (outlier activations are removed from the dense stream and
    handled by the outlier PE group). ``dense_factor`` > 1 models
    high-precision dense passes (first layer), which disable zero skipping.
    """
    if not 0.0 <= act_density <= 1.0:
        raise ValueError(f"act_density must be in [0, 1], got {act_density}")
    if dense_factor < 1:
        raise ValueError(f"dense_factor must be >= 1, got {dense_factor}")

    if dense_factor > 1 or act_density >= 1.0:
        # Dense pass: every lane slot is issued, no skip logic. Spilled
        # weight chunks still cost their extra MSB cycle.
        extra = lanes * weight_multi_outlier_fraction if dense_factor == 1 else 0.0
        return PassCosts(
            run_cycles=lanes * dense_factor + extra,
            skip_cycles=0.0,
            broadcasts=float(lanes),
        )

    nonzero = lanes * act_density
    extra = nonzero * weight_multi_outlier_fraction
    zero_quads = (lanes / 4.0) * (1.0 - act_density) ** 4
    return PassCosts(run_cycles=nonzero + extra, skip_cycles=zero_quads, broadcasts=nonzero)


def sample_pass_cycles(
    rng: np.random.Generator,
    n_passes: int,
    act_density: float,
    weight_multi_outlier_fraction: float,
    lanes: int = 16,
) -> np.ndarray:
    """Monte-Carlo per-pass cycle counts (the Fig. 19 histograms).

    Samples nonzero lane patterns i.i.d. at ``act_density`` and weight
    chunks' spill status at ``weight_multi_outlier_fraction``.
    """
    if n_passes <= 0:
        return np.zeros(0, dtype=np.int64)
    mask = rng.random((n_passes, lanes)) < act_density
    nonzero = mask.sum(axis=1)
    spill = rng.random((n_passes, lanes)) < weight_multi_outlier_fraction
    extra = (mask & spill).sum(axis=1)
    quads = mask.reshape(n_passes, lanes // 4, 4)
    zero_quads = (~quads.any(axis=2)).sum(axis=1)
    return (nonzero + extra + zero_quads).astype(np.int64)


def dense_pass_factor(act_bits: int, weight_bits: int, base_bits: int = 4) -> int:
    """Serialization factor for a dense high-precision pass (Sec. V)."""
    return math.ceil(act_bits / base_bits) * math.ceil(weight_bits / base_bits)
