"""Outlier PE group model (paper Fig. 9).

Each cluster has one outlier PE group with 17 mixed-precision MAC units
(``act_outlier_bits x 4``). Outlier activations arrive as sparse
(value, coordinates) chunks from the swarm buffer FIFO; each is broadcast
to the 16 lanes, producing partial sums for one output-channel group per
cycle — structurally the same dataflow as the normal group but on sparse
high-precision data, running in parallel with the dense computation. The
outlier accumulation unit merges its partial sums through the tri-buffer
one pipeline stage behind the normal unit (Fig. 10), so outlier work only
extends the layer when it exceeds the dense work.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OutlierWork", "outlier_work"]


@dataclass(frozen=True)
class OutlierWork:
    """Outlier-path load for one layer."""

    outlier_activations: float  # sparse high-precision activations fetched
    broadcasts: float  # (outlier act x kernel position x out-group) ops
    cycles_per_group: float  # broadcasts / number of outlier groups

    #: high-precision value width for FIFO sizing (16 in the 16-bit
    #: comparison, 8 in the 8-bit one)
    value_bits: int = 16

    @property
    def fifo_bits(self) -> float:
        """Swarm-buffer FIFO traffic per Fig. 9's outlier chunks.

        Each entry is the high-precision value plus three coordinates
        (8-bit width/height indices and an 8-bit channel-chunk index).
        """
        return self.outlier_activations * (self.value_bits + 24.0)


def outlier_work(
    input_activations: float,
    act_density: float,
    act_outlier_ratio: float,
    broadcast_slots_per_input: float,
    n_outlier_groups: int,
    value_bits: int = 16,
) -> OutlierWork:
    """Compute the outlier PE groups' load for a layer.

    ``act_outlier_ratio`` is the fraction of *nonzero* input activations
    above the calibrated threshold (Sec. II); each outlier activation
    needs ``broadcast_slots_per_input`` broadcasts (kernel positions x
    output-channel groups it contributes to), spread over the clusters'
    outlier groups.
    """
    if n_outlier_groups <= 0:
        raise ValueError("n_outlier_groups must be positive")
    if not 0.0 <= act_outlier_ratio <= 1.0:
        raise ValueError(f"act_outlier_ratio must be in [0, 1], got {act_outlier_ratio}")
    outliers = input_activations * act_density * act_outlier_ratio
    broadcasts = outliers * broadcast_slots_per_input
    return OutlierWork(
        outlier_activations=outliers,
        broadcasts=broadcasts,
        cycles_per_group=broadcasts / n_outlier_groups,
        value_bits=value_bits,
    )
