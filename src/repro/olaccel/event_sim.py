"""Cycle-stepped microarchitectural simulation of one PE cluster.

The analytic model in :mod:`repro.olaccel.accelerator` aggregates expected
pass costs; this module instead *steps the hardware cycle by cycle* for
small layers, faithfully modelling:

- the PE-group front end: quad-at-a-time zero scanning (one cycle per
  all-zero quad), one broadcast cycle per nonzero activation, a stall
  cycle when the paired weight chunk spills (``ol_ptr`` set, Fig. 8);
- dynamic pass dispatch: each cycle, every idle group grabs the next
  pending pass from the cluster queue (Fig. 6's ready-group allocation);
- the outlier PE group draining the outlier-activation FIFO one broadcast
  per cycle (Fig. 9);
- the accumulation back end: the normal unit merges at most two group
  results per cycle and the outlier unit one, a stage behind, through the
  tri-buffer (Fig. 10) — results queue up when the units are saturated.

It exists to *cross-validate* the fast analytic model: tests drive both on
identical workloads and require agreement, and
:func:`simulate_layer_exact` runs real quantized tensors through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..arch.chunks import LANES
from ..errors import ChunkIntegrityError, ConfigError
from ..obs import NULL_REGISTRY, NULL_TRACER, Registry, Tracer
from .tribuffer import TriBuffer

__all__ = ["PassDescriptor", "PEGroupSim", "ClusterSim", "ClusterResult", "passes_from_levels"]


@dataclass(frozen=True)
class PassDescriptor:
    """One unit of PE-group work: an activation chunk against weight chunks.

    ``activations`` is the 16-lane chunk (normal-stream levels, outliers
    already diverted); ``spill`` flags, per lane, whether the weight chunk
    consumed by that lane's broadcast has multiple outliers (2-cycle op).
    """

    activations: Sequence[int]
    spill: Sequence[bool]

    def __post_init__(self):
        if len(self.activations) != LANES or len(self.spill) != LANES:
            raise ChunkIntegrityError(f"pass descriptors are {LANES} lanes wide", field="lanes")


#: Micro-operations a PE group front end executes, one per cycle.
_OP_SKIP = "skip"  # an all-zero quad scanned away
_OP_BCAST = "bcast"  # a nonzero activation broadcast to the 17 MACs
_OP_STALL = "stall"  # second cycle of a spilled (multi-outlier) chunk


def _micro_schedule(work: PassDescriptor) -> List[str]:
    """Expand one pass into its exact per-cycle micro-op sequence.

    The front end scans activations a quad at a time: an all-zero quad
    costs one skip cycle; each nonzero lane costs a broadcast cycle, plus
    a stall cycle when its weight chunk spills (Fig. 8). Zero lanes inside
    a quad that also has nonzeros are free — the quad's nonzero mask is
    known the cycle it is read.
    """
    ops: List[str] = []
    for quad in range(LANES // 4):
        lanes = range(quad * 4, quad * 4 + 4)
        nonzero = [lane for lane in lanes if work.activations[lane] != 0]
        if not nonzero:
            ops.append(_OP_SKIP)
            continue
        for lane in nonzero:
            ops.append(_OP_BCAST)
            if work.spill[lane]:
                ops.append(_OP_STALL)
    return ops


class PEGroupSim:
    """One PE group's front end as a cycle-stepped state machine."""

    def __init__(self) -> None:
        self._ops: List[str] = []
        self.busy_cycles = 0
        self.skip_cycles = 0
        self.run_cycles = 0
        #: micro-op split of ``run_cycles`` (broadcast vs spill stall)
        self.bcast_cycles = 0
        self.stall_cycles = 0
        self.completed_passes = 0

    @property
    def idle(self) -> bool:
        return not self._ops

    def start(self, work: PassDescriptor) -> None:
        if not self.idle:
            raise RuntimeError("group is busy")
        self._ops = _micro_schedule(work)
        if not self._ops:  # cannot happen: 4 quads always emit >= 4 ops
            self.completed_passes += 1

    def step(self) -> bool:
        """Advance one cycle; returns True if a pass completed this cycle."""
        if self.idle:
            return False
        self.busy_cycles += 1
        op = self._ops.pop(0)
        if op == _OP_SKIP:
            self.skip_cycles += 1
        else:
            self.run_cycles += 1
            if op == _OP_BCAST:
                self.bcast_cycles += 1
            else:
                self.stall_cycles += 1
        if not self._ops:
            self.completed_passes += 1
            return True
        return False


@dataclass
class ClusterResult:
    """Outcome of a cycle-stepped cluster run."""

    cycles: int
    run_cycles: int
    skip_cycles: int
    idle_cycles: int
    outlier_cycles: int
    accumulation_stalls: int
    passes: int
    tri_buffer_conflict_free: bool
    #: micro-op split of ``run_cycles`` (broadcast vs spill stall)
    bcast_cycles: int = 0
    stall_cycles: int = 0
    #: deepest pass backlog observed in the cluster queue
    max_queue_depth: int = 0


class ClusterSim:
    """A PE cluster: N group front ends + outlier group + accumulation.

    Pass ``obs=Registry(...)`` to record micro-op counters (``ops/skip``,
    ``ops/bcast``, ``ops/stall``), per-cycle queue-depth and
    pending-result histograms, and tri-buffer occupancy; pass
    ``tracer=Tracer(...)`` for timestamped per-pass completion events.
    Both default to shared no-ops.
    """

    def __init__(
        self,
        n_groups: int = 6,
        accumulation_bandwidth: int = 2,
        obs: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if n_groups < 1:
            raise ConfigError("n_groups must be >= 1")
        self.n_groups = n_groups
        self.accumulation_bandwidth = accumulation_bandwidth
        self.groups = [PEGroupSim() for _ in range(n_groups)]
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        passes: Sequence[PassDescriptor],
        outlier_broadcasts: int = 0,
        max_cycles: int = 10_000_000,
    ) -> ClusterResult:
        """Run all passes to completion and return cycle statistics."""
        queue: List[PassDescriptor] = list(passes)
        pending_results = 0  # group results waiting for the normal accum unit
        accumulated = 0
        stalls = 0
        outlier_left = int(outlier_broadcasts)
        outlier_done = 0
        max_queue = len(queue)
        tri = TriBuffer()
        obs = self.obs
        tracer = self.tracer
        queue_hist = obs.histogram("queue_depth")
        pending_hist = obs.histogram("pending_results")
        tri_hist = obs.histogram("tribuffer_active")

        cycle = 0
        while cycle < max_cycles:
            work_left = queue or any(not g.idle for g in self.groups)
            if not work_left and pending_results == 0 and outlier_left == 0:
                break
            cycle += 1
            queue_hist.record(len(queue))

            # Dispatch: every idle group takes the next pending pass.
            for group in self.groups:
                if group.idle and queue:
                    group.start(queue.pop(0))

            # Step the front ends.
            for index, group in enumerate(self.groups):
                if group.step():
                    pending_results += 1
                    tracer.emit(cycle, "pass_done", group=index)

            # Outlier PE group: one broadcast per cycle.
            if outlier_left > 0:
                outlier_left -= 1
                outlier_done += 1

            # Accumulation back end through the tri-buffer.
            pending_hist.record(pending_results)
            if pending_results > 0:
                normal, outlier = tri.step()
                tri_hist.record(len(normal | outlier))
                merged = min(pending_results, self.accumulation_bandwidth)
                accumulated += merged
                if pending_results > self.accumulation_bandwidth:
                    stalls += 1
                pending_results -= merged
        else:
            raise RuntimeError(f"cluster did not converge within {max_cycles} cycles")

        run = sum(g.run_cycles for g in self.groups)
        skip = sum(g.skip_cycles for g in self.groups)
        busy = sum(g.busy_cycles for g in self.groups)
        bcast = sum(g.bcast_cycles for g in self.groups)
        stall = sum(g.stall_cycles for g in self.groups)
        idle = cycle * self.n_groups - busy
        with obs.scope("ops"):
            obs.counter("skip").add(skip)
            obs.counter("bcast").add(bcast)
            obs.counter("stall").add(stall)
        obs.counter("run_cycles").add(run)
        obs.counter("skip_cycles").add(skip)
        obs.counter("idle_cycles").add(idle)
        obs.counter("cycles").add(cycle)
        obs.counter("passes").add(sum(g.completed_passes for g in self.groups))
        obs.counter("outlier_broadcasts").add(outlier_done)
        obs.counter("accumulation_stalls").add(stalls)
        return ClusterResult(
            cycles=cycle,
            run_cycles=run,
            skip_cycles=skip,
            idle_cycles=idle,
            outlier_cycles=outlier_done,
            accumulation_stalls=stalls,
            passes=sum(g.completed_passes for g in self.groups),
            tri_buffer_conflict_free=tri.conflict_free,
            bcast_cycles=bcast,
            stall_cycles=stall,
            max_queue_depth=max_queue,
        )


def passes_from_levels(
    act_levels: np.ndarray,
    spill_flags: Optional[np.ndarray] = None,
) -> List[PassDescriptor]:
    """Build pass descriptors from an (n_passes, 16) activation level array.

    ``spill_flags`` (same shape, boolean) marks lanes whose weight chunk
    has multiple outliers; defaults to no spills.
    """
    act_levels = np.asarray(act_levels, dtype=np.int64)
    if act_levels.ndim != 2 or act_levels.shape[1] != LANES:
        raise ConfigError(f"expected (n, {LANES}) activation levels, got {act_levels.shape}")
    if spill_flags is None:
        spill_flags = np.zeros(act_levels.shape, dtype=bool)
    spill_flags = np.asarray(spill_flags, dtype=bool)
    if spill_flags.shape != act_levels.shape:
        raise ConfigError("spill_flags must match act_levels shape")
    return [
        PassDescriptor(tuple(int(v) for v in row), tuple(bool(s) for s in srow))
        for row, srow in zip(act_levels, spill_flags)
    ]
