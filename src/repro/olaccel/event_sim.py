"""Cycle-stepped microarchitectural simulation of one PE cluster.

The analytic model in :mod:`repro.olaccel.accelerator` aggregates expected
pass costs; this module instead *steps the hardware cycle by cycle* for
small layers, faithfully modelling:

- the PE-group front end: quad-at-a-time zero scanning (one cycle per
  all-zero quad), one broadcast cycle per nonzero activation, a stall
  cycle when the paired weight chunk spills (``ol_ptr`` set, Fig. 8);
- dynamic pass dispatch: each cycle, every idle group grabs the next
  pending pass from the cluster queue (Fig. 6's ready-group allocation);
- the outlier PE group draining the outlier-activation FIFO one broadcast
  per cycle (Fig. 9);
- the accumulation back end: the normal unit merges at most two group
  results per cycle and the outlier unit one, a stage behind, through the
  tri-buffer (Fig. 10) — results queue up when the units are saturated.

It exists to *cross-validate* the fast analytic model: tests drive both on
identical workloads and require agreement, and
:func:`simulate_layer_exact` runs real quantized tensors through it.

Two execution paths produce bit-identical :class:`ClusterResult`\\ s
(docs/PERFORMANCE.md):

- the **scalar stepper** (``slow_reference=True``, or automatically
  whenever an observability registry or tracer is attached, since those
  need per-cycle histograms/events) walks every cycle of every group;
- the **vectorized fast path** batches the whole run with numpy: the
  per-pass micro-op schedule (quad zero-scan / broadcast / spill-stall)
  collapses to three counted terms per pass, greedy queue dispatch
  replays as a (next-free-cycle, group-index) heap, and the
  accumulation backlog follows the Lindley recursion
  ``Q_c = max(0, Q_{c-1} + arrivals_c - bandwidth)`` evaluated with a
  cumulative-sum/running-minimum identity instead of a cycle loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..arch.chunks import LANES
from ..errors import ChunkIntegrityError, ConfigError
from ..obs import NULL_REGISTRY, NULL_TRACER, Registry, Tracer
from .pe_group import pass_op_counts
from .tribuffer import TriBuffer

__all__ = [
    "PassDescriptor",
    "PassMatrix",
    "PEGroupSim",
    "ClusterSim",
    "ClusterResult",
    "passes_from_levels",
]


@dataclass(frozen=True)
class PassDescriptor:
    """One unit of PE-group work: an activation chunk against weight chunks.

    ``activations`` is the 16-lane chunk (normal-stream levels, outliers
    already diverted); ``spill`` flags, per lane, whether the weight chunk
    consumed by that lane's broadcast has multiple outliers (2-cycle op).
    """

    activations: Sequence[int]
    spill: Sequence[bool]

    def __post_init__(self):
        if len(self.activations) != LANES or len(self.spill) != LANES:
            raise ChunkIntegrityError(f"pass descriptors are {LANES} lanes wide", field="lanes")


class PassMatrix(Sequence):
    """A pass batch held as flat arrays, materializing descriptors lazily.

    :func:`passes_from_levels` returns this instead of a descriptor list:
    the vectorized :meth:`ClusterSim.run` path consumes ``acts`` /
    ``spill`` directly (no per-pass Python objects), while scalar
    consumers — the stepper, tracer/obs fallback, or anything indexing
    the sequence — get real :class:`PassDescriptor` objects on demand.
    """

    def __init__(self, acts: np.ndarray, spill: np.ndarray):
        self.acts = acts
        self.spill = spill

    def __len__(self) -> int:
        return self.acts.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        row = self.acts[index]
        srow = self.spill[index]
        return PassDescriptor(
            tuple(int(v) for v in row), tuple(bool(s) for s in srow)
        )


#: Micro-operations a PE group front end executes, one per cycle.
_OP_SKIP = "skip"  # an all-zero quad scanned away
_OP_BCAST = "bcast"  # a nonzero activation broadcast to the 17 MACs
_OP_STALL = "stall"  # second cycle of a spilled (multi-outlier) chunk


def _micro_schedule(work: PassDescriptor) -> List[str]:
    """Expand one pass into its exact per-cycle micro-op sequence.

    The front end scans activations a quad at a time: an all-zero quad
    costs one skip cycle; each nonzero lane costs a broadcast cycle, plus
    a stall cycle when its weight chunk spills (Fig. 8). Zero lanes inside
    a quad that also has nonzeros are free — the quad's nonzero mask is
    known the cycle it is read.
    """
    ops: List[str] = []
    for quad in range(LANES // 4):
        lanes = range(quad * 4, quad * 4 + 4)
        nonzero = [lane for lane in lanes if work.activations[lane] != 0]
        if not nonzero:
            ops.append(_OP_SKIP)
            continue
        for lane in nonzero:
            ops.append(_OP_BCAST)
            if work.spill[lane]:
                ops.append(_OP_STALL)
    return ops


class PEGroupSim:
    """One PE group's front end as a cycle-stepped state machine."""

    def __init__(self) -> None:
        self._ops: List[str] = []
        self._pos = 0
        self.busy_cycles = 0
        self.skip_cycles = 0
        self.run_cycles = 0
        #: micro-op split of ``run_cycles`` (broadcast vs spill stall)
        self.bcast_cycles = 0
        self.stall_cycles = 0
        self.completed_passes = 0

    @property
    def idle(self) -> bool:
        return self._pos >= len(self._ops)

    def start(self, work: PassDescriptor) -> None:
        if not self.idle:
            raise RuntimeError("group is busy")
        self._ops = _micro_schedule(work)
        self._pos = 0
        if not self._ops:  # cannot happen: 4 quads always emit >= 4 ops
            self.completed_passes += 1

    def step(self) -> bool:
        """Advance one cycle; returns True if a pass completed this cycle."""
        if self.idle:
            return False
        self.busy_cycles += 1
        op = self._ops[self._pos]
        self._pos += 1
        if op == _OP_SKIP:
            self.skip_cycles += 1
        else:
            self.run_cycles += 1
            if op == _OP_BCAST:
                self.bcast_cycles += 1
            else:
                self.stall_cycles += 1
        if self.idle:
            self.completed_passes += 1
            return True
        return False


@dataclass
class ClusterResult:
    """Outcome of a cycle-stepped cluster run."""

    cycles: int
    run_cycles: int
    skip_cycles: int
    idle_cycles: int
    outlier_cycles: int
    accumulation_stalls: int
    passes: int
    tri_buffer_conflict_free: bool
    #: micro-op split of ``run_cycles`` (broadcast vs spill stall)
    bcast_cycles: int = 0
    stall_cycles: int = 0
    #: deepest pass backlog observed in the cluster queue
    max_queue_depth: int = 0


class ClusterSim:
    """A PE cluster: N group front ends + outlier group + accumulation.

    Pass ``obs=Registry(...)`` to record micro-op counters (``ops/skip``,
    ``ops/bcast``, ``ops/stall``), per-cycle queue-depth and
    pending-result histograms, and tri-buffer occupancy; pass
    ``tracer=Tracer(...)`` for timestamped per-pass completion events.
    Both default to shared no-ops. Attaching either forces the scalar
    stepper (the fast path cannot reconstruct per-cycle samples);
    otherwise :meth:`run` takes the vectorized path, which is
    bit-identical — ``slow_reference=True`` forces the stepper for the
    equivalence tests.
    """

    def __init__(
        self,
        n_groups: int = 6,
        accumulation_bandwidth: int = 2,
        obs: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if n_groups < 1:
            raise ConfigError("n_groups must be >= 1")
        self.n_groups = n_groups
        self.accumulation_bandwidth = accumulation_bandwidth
        self.groups = [PEGroupSim() for _ in range(n_groups)]
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        passes: Sequence[PassDescriptor],
        outlier_broadcasts: int = 0,
        max_cycles: int = 10_000_000,
        slow_reference: bool = False,
    ) -> ClusterResult:
        """Run all passes to completion and return cycle statistics."""
        if slow_reference or self.obs is not NULL_REGISTRY or self.tracer is not NULL_TRACER:
            return self._run_scalar(passes, outlier_broadcasts, max_cycles)
        return self._run_fast(passes, outlier_broadcasts, max_cycles)

    # -- scalar reference stepper ------------------------------------------

    def _run_scalar(
        self,
        passes: Sequence[PassDescriptor],
        outlier_broadcasts: int = 0,
        max_cycles: int = 10_000_000,
    ) -> ClusterResult:
        queue: List[PassDescriptor] = list(passes)
        pending_results = 0  # group results waiting for the normal accum unit
        accumulated = 0
        stalls = 0
        outlier_left = int(outlier_broadcasts)
        outlier_done = 0
        tri = TriBuffer()
        obs = self.obs
        tracer = self.tracer
        queue_hist = obs.histogram("queue_depth")
        pending_hist = obs.histogram("pending_results")
        tri_hist = obs.histogram("tribuffer_active")

        cycle = 0
        while cycle < max_cycles:
            work_left = queue or any(not g.idle for g in self.groups)
            if not work_left and pending_results == 0 and outlier_left == 0:
                break
            cycle += 1
            queue_hist.record(len(queue))

            # Dispatch: every idle group takes the next pending pass.
            for group in self.groups:
                if group.idle and queue:
                    group.start(queue.pop(0))

            # Step the front ends.
            for index, group in enumerate(self.groups):
                if group.step():
                    pending_results += 1
                    tracer.emit(cycle, "pass_done", group=index)

            # Outlier PE group: one broadcast per cycle.
            if outlier_left > 0:
                outlier_left -= 1
                outlier_done += 1

            # Accumulation back end through the tri-buffer.
            pending_hist.record(pending_results)
            if pending_results > 0:
                normal, outlier = tri.step()
                tri_hist.record(len(normal | outlier))
                merged = min(pending_results, self.accumulation_bandwidth)
                accumulated += merged
                if pending_results > self.accumulation_bandwidth:
                    stalls += 1
                pending_results -= merged
        else:
            raise RuntimeError(f"cluster did not converge within {max_cycles} cycles")

        return self._finish(cycle, outlier_done, stalls, len(passes), tri.conflict_free)

    # -- vectorized fast path ----------------------------------------------

    def _run_fast(
        self,
        passes: Sequence[PassDescriptor],
        outlier_broadcasts: int = 0,
        max_cycles: int = 10_000_000,
    ) -> ClusterResult:
        """Batch the whole run with numpy; bit-identical to the stepper.

        Per pass, the micro-op schedule reduces to counts — skips
        (all-zero quads), broadcasts (nonzero lanes) and stalls (spilled
        nonzero lanes) — whose sum is the pass length. Greedy per-cycle
        dispatch of a static queue is equivalent to assigning each pass
        to the earliest-free group (ties by group index), replayed with
        a heap in O(P log G). Completions per cycle then feed the
        accumulation queue's Lindley recursion, evaluated closed-form
        with a cumulative sum and a running minimum.
        """
        n_passes = len(passes)
        outlier_done = int(outlier_broadcasts)
        n_groups = self.n_groups
        bw = self.accumulation_bandwidth

        if n_passes == 0:
            cycles = outlier_done
            if cycles >= max_cycles:
                raise RuntimeError(f"cluster did not converge within {max_cycles} cycles")
            return self._finish(cycles, outlier_done, 0, 0, True)

        if isinstance(passes, PassMatrix):
            acts, spill = passes.acts, passes.spill
        else:
            acts = np.asarray([p.activations for p in passes], dtype=np.int64)
            spill = np.asarray([p.spill for p in passes], dtype=bool)
        bcast_p, stall_p, skip_p = pass_op_counts(acts, spill)
        length_p = bcast_p + stall_p + skip_p

        # Greedy dispatch replay: pass i starts the cycle its group frees.
        finish_p = np.empty(n_passes, dtype=np.int64)
        group_p = np.empty(n_passes, dtype=np.int64)
        heap: List[Tuple[int, int]] = [(1, g) for g in range(n_groups)]
        for i, length in enumerate(length_p):
            free, g = heapq.heappop(heap)
            finish = free + int(length) - 1
            finish_p[i] = finish
            group_p[i] = g
            heapq.heappush(heap, (finish + 1, g))

        last_finish = int(finish_p.max())
        arrivals = np.bincount(finish_p, minlength=last_finish + 1)[1:]

        # Accumulation backlog: Q_c = max(0, Q_{c-1} + a_c - bw) unrolls to
        # S_c - min(0, min_{j<=c} S_j) with S_c = cumsum(a)_c - bw*c.
        csum = np.cumsum(arrivals, dtype=np.int64)
        s = csum - bw * np.arange(1, last_finish + 1, dtype=np.int64)
        run_min = np.minimum(np.minimum.accumulate(s), 0)
        q = s - run_min
        q_prev = np.concatenate(([0], q[:-1]))
        pending_before = q_prev + arrivals
        stalls = int((pending_before > bw).sum())

        # Drain the leftover backlog at bw per cycle, then the outlier tail.
        q_final = int(q[-1])
        drain = -(-q_final // bw)  # ceil
        stalls += max(0, drain - 1)
        cycles = max(last_finish + drain, outlier_done)
        if cycles >= max_cycles:
            raise RuntimeError(f"cluster did not converge within {max_cycles} cycles")

        # Attribute per-group counters so repeated run() calls accumulate
        # exactly like the stepper (ClusterSim instances are reusable).
        for name, per_pass in (
            ("busy_cycles", length_p),
            ("skip_cycles", skip_p),
            ("run_cycles", bcast_p + stall_p),
            ("bcast_cycles", bcast_p),
            ("stall_cycles", stall_p),
            ("completed_passes", np.ones(n_passes, dtype=np.int64)),
        ):
            totals = np.bincount(group_p, weights=per_pass, minlength=n_groups)
            for g, group in enumerate(self.groups):
                setattr(group, name, getattr(group, name) + int(totals[g]))

        return self._finish(cycles, outlier_done, stalls, n_passes, True)

    # -- shared result assembly --------------------------------------------

    def _finish(
        self,
        cycles: int,
        outlier_done: int,
        stalls: int,
        n_passes: int,
        conflict_free: bool,
    ) -> ClusterResult:
        run = sum(g.run_cycles for g in self.groups)
        skip = sum(g.skip_cycles for g in self.groups)
        busy = sum(g.busy_cycles for g in self.groups)
        bcast = sum(g.bcast_cycles for g in self.groups)
        stall = sum(g.stall_cycles for g in self.groups)
        idle = cycles * self.n_groups - busy
        obs = self.obs
        with obs.scope("ops"):
            obs.counter("skip").add(skip)
            obs.counter("bcast").add(bcast)
            obs.counter("stall").add(stall)
        obs.counter("run_cycles").add(run)
        obs.counter("skip_cycles").add(skip)
        obs.counter("idle_cycles").add(idle)
        obs.counter("cycles").add(cycles)
        obs.counter("passes").add(sum(g.completed_passes for g in self.groups))
        obs.counter("outlier_broadcasts").add(outlier_done)
        obs.counter("accumulation_stalls").add(stalls)
        return ClusterResult(
            cycles=cycles,
            run_cycles=run,
            skip_cycles=skip,
            idle_cycles=idle,
            outlier_cycles=outlier_done,
            accumulation_stalls=stalls,
            passes=sum(g.completed_passes for g in self.groups),
            tri_buffer_conflict_free=conflict_free,
            bcast_cycles=bcast,
            stall_cycles=stall,
            max_queue_depth=n_passes,
        )


def passes_from_levels(
    act_levels: np.ndarray,
    spill_flags: Optional[np.ndarray] = None,
) -> PassMatrix:
    """Build a pass batch from an (n_passes, 16) activation level array.

    ``spill_flags`` (same shape, boolean) marks lanes whose weight chunk
    has multiple outliers; defaults to no spills. Returns a
    :class:`PassMatrix` — a sequence of :class:`PassDescriptor`\\ s whose
    backing arrays the vectorized cluster run consumes without ever
    building the per-pass objects.
    """
    act_levels = np.asarray(act_levels, dtype=np.int64)
    if act_levels.ndim != 2 or act_levels.shape[1] != LANES:
        raise ConfigError(f"expected (n, {LANES}) activation levels, got {act_levels.shape}")
    if spill_flags is None:
        spill_flags = np.zeros(act_levels.shape, dtype=bool)
    spill_flags = np.asarray(spill_flags, dtype=bool)
    if spill_flags.shape != act_levels.shape:
        raise ConfigError("spill_flags must match act_levels shape")
    return PassMatrix(act_levels, spill_flags)
