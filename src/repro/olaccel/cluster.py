"""PE-cluster scheduling (paper Fig. 6).

The cluster keeps its PE groups busy by handing a new activation chunk to
whichever group finishes first ("the PE cluster allocates new input
activation chunks to the PE groups that are ready"). With work units of
variable cost (sparsity makes some chunks cheap), this greedy dynamic
assignment is an LPT-style schedule whose makespan exceeds the ideal
``total_work / n_groups`` only by a fraction of one work unit.

:func:`schedule_passes` simulates the greedy assignment exactly (used for
small layers, tests, and the load-balance analysis);
:func:`load_balance_efficiency` is the closed-form estimate the full-size
layer simulator uses.
"""

from __future__ import annotations

from heapq import heapreplace
from typing import Sequence

import numpy as np

__all__ = ["schedule_passes", "load_balance_efficiency"]


def schedule_passes(costs: Sequence[float], n_groups: int) -> float:
    """Makespan of greedily assigning pass ``costs`` to ``n_groups`` groups.

    Work units are dispatched in order to the earliest-available group,
    which is exactly the cluster's ready-group allocation policy.
    """
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    heap = [0.0] * n_groups
    for cost in costs:
        if cost < 0:
            raise ValueError("pass costs must be non-negative")
        heapreplace(heap, heap[0] + cost)
    return max(heap)


def load_balance_efficiency(n_passes: float, n_groups: int, mean_cost: float = 8.0) -> float:
    """Fraction of ideal throughput achieved by dynamic chunk allocation.

    Greedy dispatch wastes at most ~one work unit per group at the end of
    the layer, so the efficiency is ``ideal / (ideal + tail)`` with
    ``tail ~ mean_cost / 2``. For the millions of passes in a real conv
    layer this is ~1; it only bites for tiny layers.
    """
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    if n_passes <= 0:
        return 1.0
    ideal = n_passes * mean_cost / n_groups
    tail = mean_cost / 2.0
    return ideal / (ideal + tail)
