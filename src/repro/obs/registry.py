"""Hierarchical counter/timer registry — the core of ``repro.obs``.

Every simulator in the repository accepts an optional :class:`Registry`.
When one is supplied (and enabled) the simulators record named counters,
value histograms and wall-clock timers under a hierarchical ``a/b/c``
path built from nested :meth:`Registry.scope` blocks. When no registry is
supplied they fall back to :data:`NULL_REGISTRY`, whose instruments are
shared no-op singletons — the disabled path costs one attribute lookup
and an empty method call, so instrumentation can stay in hot loops.

Design rules:

- *No dependencies*: stdlib only (``time.perf_counter`` for timers).
- *Plain data out*: :meth:`Registry.snapshot` returns a flat
  ``{path: value}`` dict and :meth:`Registry.to_dict` a structured,
  JSON-ready document (see docs/EXPERIMENTS.md for the schema).
- *Deterministic*: counters and histograms only record what the caller
  passes in; iteration order is insertion order.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Counter",
    "Histogram",
    "Timer",
    "Scope",
    "Registry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
]


class Counter:
    """A named monotonically growing count (float to allow expectations)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A named histogram over integer-bucketed observations.

    Tracks the full bucket map plus count/total/min/max so means and
    maxima survive serialization without the raw samples.
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        bucket = int(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Timer:
    """A named wall-clock timer; use as a context manager around the work."""

    __slots__ = ("name", "seconds", "calls", "_t0")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._t0
        self.calls += 1


class _NullCounter:
    __slots__ = ()

    def add(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class Scope:
    """Context manager that pushes one path segment onto a registry."""

    __slots__ = ("_registry", "_name")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "Scope":
        self._registry._stack.append(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._registry._stack.pop()


class Registry:
    """Hierarchical home for counters, histograms and timers.

    ``Registry(enabled=False)`` hands out shared no-op instruments, so
    instrumented code pays near-zero cost when observability is off.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Timer] = {}
        self._stack: List[str] = []

    # -- path handling ------------------------------------------------------

    def _path(self, name: str) -> str:
        return "/".join(self._stack + [name]) if self._stack else name

    def scope(self, name: str) -> Scope:
        """Nest subsequent instrument names under ``name/``."""
        return Scope(self, name)

    # -- instruments --------------------------------------------------------

    def counter(self, name: str):
        if not self.enabled:
            return _NULL_COUNTER
        path = self._path(name)
        found = self.counters.get(path)
        if found is None:
            found = self.counters[path] = Counter(path)
        return found

    def histogram(self, name: str):
        if not self.enabled:
            return _NULL_HISTOGRAM
        path = self._path(name)
        found = self.histograms.get(path)
        if found is None:
            found = self.histograms[path] = Histogram(path)
        return found

    def timer(self, name: str):
        if not self.enabled:
            return _NULL_TIMER
        path = self._path(name)
        found = self.timers.get(path)
        if found is None:
            found = self.timers[path] = Timer(path)
        return found

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{path: value}`` view (counter values, timer seconds)."""
        out: Dict[str, float] = {path: c.value for path, c in self.counters.items()}
        out.update({f"{path}.seconds": t.seconds for path, t in self.timers.items()})
        return out

    def to_dict(self) -> Dict[str, object]:
        """Structured JSON-ready document of everything recorded."""
        return {
            "counters": {path: c.value for path, c in self.counters.items()},
            "histograms": {path: h.to_dict() for path, h in self.histograms.items()},
            "timers": {
                path: {"seconds": t.seconds, "calls": t.calls}
                for path, t in self.timers.items()
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()
        self.timers.clear()

    def iter_counters(self, prefix: str = "") -> Iterator[Counter]:
        for path, counter in self.counters.items():
            if path.startswith(prefix):
                yield counter


#: Shared disabled registry — the default ``obs`` of every simulator.
NULL_REGISTRY = Registry(enabled=False)

_active = NULL_REGISTRY


def get_registry() -> Registry:
    """The process-wide default registry (disabled unless replaced)."""
    return _active


def set_registry(registry: Optional[Registry]) -> Registry:
    """Swap the process-wide default registry; ``None`` restores the null.

    Returns the previous registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous
