"""Ordered event traces for the cycle-stepped simulators.

Counters (``repro.obs.registry``) answer "how many"; traces answer
"when". A :class:`Tracer` collects timestamped :class:`TraceEvent`
records — pass completions in the event simulator, layer boundaries in
the per-layer simulators — into a bounded ring so tracing a long run
cannot exhaust memory. Like the registry, a disabled tracer degrades to
a shared no-op singleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped simulator event.

    ``cycle`` is the simulated cycle (or layer index for per-layer
    events); ``kind`` is a short category like ``pass_done`` or
    ``layer``; ``payload`` holds small JSON-able details.
    """

    cycle: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Bounded collector of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 65536, enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        #: events discarded once the ring filled (oldest are dropped)
        self.dropped = 0

    def emit(self, cycle: int, kind: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if len(self.events) >= self.capacity:
            self.events.pop(0)
            self.dropped += 1
        self.events.append(TraceEvent(cycle=cycle, kind=kind, payload=payload))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"cycle": e.cycle, "kind": e.kind, **e.payload} for e in self.events
        ]

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0


class _NullTracer(Tracer):
    def __init__(self):
        super().__init__(capacity=1, enabled=False)

    def emit(self, cycle: int, kind: str, **payload: Any) -> None:
        pass


#: Shared disabled tracer — the default of every traced simulator.
NULL_TRACER: Tracer = _NullTracer()
