"""``repro.obs`` — dependency-free observability for every simulator.

Three pieces:

- :mod:`repro.obs.registry` — hierarchical :class:`Counter`,
  :class:`Histogram` and wall-clock :class:`Timer` instruments grouped
  under ``a/b/c`` paths by nested :meth:`Registry.scope` blocks, with a
  shared no-op fast path when disabled;
- :mod:`repro.obs.trace` — bounded, timestamped event traces
  (:class:`Tracer`) for the cycle-stepped event simulator;
- JSON-ready export via ``Registry.to_dict()`` / ``Tracer.to_dicts()``,
  consumed by ``repro profile`` and the ``--json`` CLI flags.

Every simulator (`OLAccelSimulator`, `EyerissSimulator`,
`ZenaSimulator`, `ClusterSim`) takes an optional ``obs=Registry(...)``;
without one they use :data:`NULL_REGISTRY` and record nothing.
See docs/ARCHITECTURE.md for where each hook sits.
"""

from .registry import (
    Counter,
    Histogram,
    NULL_REGISTRY,
    Registry,
    Scope,
    Timer,
    get_registry,
    set_registry,
)
from .trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "NULL_REGISTRY",
    "Registry",
    "Scope",
    "Timer",
    "get_registry",
    "set_registry",
    "NULL_TRACER",
    "TraceEvent",
    "Tracer",
]
