"""Design-space exploration: the ``repro explore`` Pareto autotuner.

The paper's Table I ISO-area configuration (8 clusters x 6 groups of
4-bit MACs, a 3% outlier ratio, 24-bit accumulators) was found by a
manual search. This module automates that search: it enumerates
candidate OLAccel designs over the explorer's free dimensions —
cluster/PE-group counts, swarm-buffer capacity, outlier ratio,
accumulator width, operand bit widths — prunes candidates whose
:func:`~repro.arch.area.olaccel_design_area` exceeds the area budget,
evaluates the survivors on the analytic simulator, and keeps the
energy-vs-cycles-vs-accuracy Pareto frontier.

Execution reuses the two PR 4/5 subsystems end to end:

- every candidate evaluation is a **simcache cell** (kind ``explore``)
  keyed on the full accelerator config + workload digest, so a warm
  re-exploration replays every point from the cache;
- with ``--run-dir`` each search *rung* executes as a checkpointed
  :func:`~repro.harness.resilience.execute_sweep` under
  ``<run-dir>/rungs/<n>/``, and an ``explore.json`` marker at the run
  root records the full request so ``repro resume <run-dir>``
  deterministically re-drives the whole search, skipping completed
  cells.

Search strategies live behind :class:`SearchStrategy` —
``grid`` (exhaustive), ``random`` (seeded subsample of the grid) and
``halving`` (successive halving: a cheap screen rung on the first K
conv layers, then full-fidelity refinement of the top ``1/eta``).

Observability lands under ``explore/*`` and reconciles exactly::

    candidates == evaluated + pruned + cache_hits

where ``pruned`` counts candidates never simulated (over budget or cut
by ``--max-candidates``), ``evaluated`` counts screen-rung cells that
ran the simulator (including ones that failed, tracked separately
under ``explore/failed``), and ``cache_hits`` counts screen-rung cells
replayed from the simcache. Refinement rungs count under
``explore/refine_evaluated`` / ``explore/refine_cache_hits``.

The result is a versioned ``repro.explore/v1`` envelope (JSON/CSV,
atomic + digest-carrying); ``run_id``/``created`` are declared in a
top-level ``volatile`` list so cold, warm and kill+resume runs are
byte-identical under
:func:`~repro.harness.resilience.canonical_envelope_bytes`.
See docs/EXPLORE.md for the full workflow.
"""

from __future__ import annotations

import itertools
import math
import uuid
from dataclasses import dataclass, field, fields, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arch.area import olaccel_design_area, swarm_buffer_area
from ..arch.stats import STATS_SCHEMA_VERSION
from ..arch.workload import NetworkWorkload
from ..errors import ArtifactIntegrityError, CellError, ConfigError
from ..obs import Registry, get_registry
from .resilience import (
    PLAN_ASSEMBLERS,
    CellSpec,
    RetryPolicy,
    SweepPlan,
    execute_sweep,
)
from .seeding import resolve_seed, set_global_seed
from .serialize import content_digest, load_json, save_json, to_jsonable
from .simcache import SimCache, get_active
from .workloads import MEMORY_TABLE, memory_bytes, paper_workload

__all__ = [
    "EXPLORE_SCHEMA",
    "EXPLORE_MARKER",
    "DesignSpace",
    "Candidate",
    "ExploreRequest",
    "ExploreResult",
    "ParetoArchive",
    "SearchStrategy",
    "STRATEGIES",
    "register_strategy",
    "default_budget",
    "dominates",
    "explore_cell",
    "accuracy_cell",
    "explore_run",
    "explore_resume",
    "is_explore_run",
    "explore_envelope",
    "explore_csv_rows",
]

EXPLORE_SCHEMA = "repro.explore/v1"
EXPLORE_SCHEMA_VERSION = 1

#: Marker file at the run-dir root that records the full request, so
#: ``repro resume`` can re-drive the search without re-stating flags.
EXPLORE_MARKER = "explore.json"
MARKER_SCHEMA = "repro.explore-run/v1"
RUNGS_DIR = "rungs"

#: Paper network name -> trained mini-model zoo name (fig2/3/14 mapping).
MINI_OF = {
    "alexnet": "alexnet",
    "vgg16": "vgg",
    "resnet18": "resnet",
    "resnet101": "resnet",
    "densenet121": "densenet",
}


# ---------------------------------------------------------------------------
# Search space and candidates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DesignSpace:
    """The grid of values each design dimension may take.

    The defaults bracket the paper's 16-bit-comparison design point
    (8 clusters x 6 groups, 384 KiB-class buffer, 3% outliers, 24-bit
    accumulators, 4-bit operands); outlier activations stay at 16 bits
    — the paper's comparison precision — so accuracy depends only on
    the normal-path widths and the ratio.
    """

    clusters: Tuple[int, ...] = (4, 6, 8, 10)
    groups: Tuple[int, ...] = (4, 6, 8)
    buffers_kib: Tuple[int, ...] = (96, 192, 384)
    ratios: Tuple[float, ...] = (0.01, 0.03, 0.05)
    acc_bits: Tuple[int, ...] = (16, 24)
    act_bits: Tuple[int, ...] = (4,)
    weight_bits: Tuple[int, ...] = (4,)

    def size(self) -> int:
        out = 1
        for f in fields(self):
            out *= len(getattr(self, f.name))
        return out

    def to_dict(self) -> Dict[str, list]:
        return {f.name: list(getattr(self, f.name)) for f in fields(self)}

    @staticmethod
    def from_dict(doc: Dict[str, Sequence]) -> "DesignSpace":
        known = {f.name for f in fields(DesignSpace)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(f"unknown design-space dimension(s): {', '.join(sorted(unknown))}")
        kwargs = {
            name: tuple(float(v) if name == "ratios" else int(v) for v in values)
            for name, values in doc.items()
        }
        for name, values in kwargs.items():
            if not values:
                raise ConfigError(f"design-space dimension {name!r} must be non-empty")
        return DesignSpace(**kwargs)


@dataclass(frozen=True)
class Candidate:
    """One point of the design space, addressable by :attr:`cand_id`."""

    clusters: int
    groups: int
    buffer_kib: int
    ratio: float
    acc_bits: int
    act_bits: int
    weight_bits: int

    @property
    def cand_id(self) -> str:
        """Deterministic, filesystem-safe id doubling as the cell id."""
        return (
            f"c{self.clusters}g{self.groups}b{self.buffer_kib}"
            f"r{self.ratio:g}a{self.acc_bits}w{self.weight_bits}x{self.act_bits}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clusters": self.clusters,
            "groups": self.groups,
            "buffer_kib": self.buffer_kib,
            "ratio": self.ratio,
            "acc_bits": self.acc_bits,
            "act_bits": self.act_bits,
            "weight_bits": self.weight_bits,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "Candidate":
        return Candidate(
            clusters=int(doc["clusters"]),
            groups=int(doc["groups"]),
            buffer_kib=int(doc["buffer_kib"]),
            ratio=float(doc["ratio"]),
            acc_bits=int(doc["acc_bits"]),
            act_bits=int(doc["act_bits"]),
            weight_bits=int(doc["weight_bits"]),
        )

    def accel_config(self):
        """The :class:`~repro.olaccel.config.OLAccelConfig` this point names."""
        from ..olaccel.config import olaccel16

        base = olaccel16(
            swarm_buffer_bytes=self.buffer_kib * 1024, outlier_ratio=self.ratio
        )
        return replace(
            base,
            name=f"olx-{self.cand_id}",
            n_clusters=self.clusters,
            groups_per_cluster=self.groups,
            act_bits=self.act_bits,
            weight_bits=self.weight_bits,
            acc_bits=self.acc_bits,
        )

    def area_mm2(self) -> float:
        """Datapath + swarm-buffer area charged against the budget."""
        return olaccel_design_area(
            self.clusters,
            self.groups,
            act_bits=self.act_bits,
            weight_bits=self.weight_bits,
            ol_act_bits=16,
            acc_bits=self.acc_bits,
            swarm_buffer_bytes=self.buffer_kib * 1024,
        )


def default_budget(network: str) -> float:
    """The ISO-area budget: Table I's 16-bit Eyeriss-equivalent datapath
    (with the paper's 11% margin) plus the network's Table I swarm buffer."""
    from ..arch.area import eyeriss_pe_area

    if network not in MEMORY_TABLE:
        raise ConfigError(f"no memory budget recorded for network {network!r}")
    datapath = 165 * eyeriss_pe_area(16) * 1.11
    return datapath + swarm_buffer_area(memory_bytes(network, 16))


# ---------------------------------------------------------------------------
# Search strategies
# ---------------------------------------------------------------------------


class SearchStrategy:
    """Enumeration + refinement schedule of one search flavor.

    ``candidates`` returns the deterministic candidate list (the seeded
    ``rng`` is the only randomness source); ``rungs`` returns one
    fidelity per evaluation rung — ``None`` means the full conv
    workload, an integer means only the first K conv layers (the cheap
    screen used by successive halving).
    """

    name = "?"

    def candidates(
        self, space: DesignSpace, request: "ExploreRequest", rng: np.random.Generator
    ) -> List[Candidate]:
        raise NotImplementedError

    def rungs(self, request: "ExploreRequest") -> List[Optional[int]]:
        return [None]


def _grid(space: DesignSpace) -> List[Candidate]:
    return [
        Candidate(*point)
        for point in itertools.product(
            space.clusters,
            space.groups,
            space.buffers_kib,
            space.ratios,
            space.acc_bits,
            space.act_bits,
            space.weight_bits,
        )
    ]


class GridSearch(SearchStrategy):
    """Exhaustive enumeration in axis order."""

    name = "grid"

    def candidates(self, space, request, rng):
        return _grid(space)


class RandomSearch(SearchStrategy):
    """A seeded ``--samples``-point subsample of the grid, in grid order."""

    name = "random"

    def candidates(self, space, request, rng):
        grid = _grid(space)
        if request.samples >= len(grid):
            return grid
        picks = sorted(rng.permutation(len(grid))[: request.samples].tolist())
        return [grid[i] for i in picks]


class HalvingSearch(GridSearch):
    """Successive halving: screen the grid on the first ``--screen-layers``
    conv layers, refine the top ``1/eta`` at full fidelity."""

    name = "halving"

    def rungs(self, request):
        return [max(1, int(request.screen_layers)), None]


STRATEGIES: Dict[str, SearchStrategy] = {}


def register_strategy(strategy: SearchStrategy) -> None:
    """Register a strategy under its ``name`` (later PRs add samplers here)."""
    STRATEGIES[strategy.name] = strategy


register_strategy(GridSearch())
register_strategy(RandomSearch())
register_strategy(HalvingSearch())


# ---------------------------------------------------------------------------
# Pareto dominance
# ---------------------------------------------------------------------------


def dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """True iff ``a`` is no worse than ``b`` everywhere and better somewhere.

    Minimizes ``cycles`` and ``energy_total``, maximizes ``accuracy``
    (ignored when either side carries ``None`` — the ``--accuracy
    none`` mode degrades to a 2-objective frontier).
    """
    keys = [("cycles", -1.0), ("energy_total", -1.0)]
    if a.get("accuracy") is not None and b.get("accuracy") is not None:
        keys.append(("accuracy", 1.0))
    not_worse = all(sign * a[k] >= sign * b[k] for k, sign in keys)
    better = any(sign * a[k] > sign * b[k] for k, sign in keys)
    return not_worse and better


class ParetoArchive:
    """Incremental non-dominated archive over evaluated rows."""

    def __init__(self) -> None:
        self._rows: List[Dict[str, Any]] = []

    def offer(self, row: Dict[str, Any]) -> bool:
        """Admit ``row`` unless dominated; evict rows it dominates."""
        if any(dominates(kept, row) for kept in self._rows):
            return False
        self._rows = [kept for kept in self._rows if not dominates(row, kept)]
        self._rows.append(row)
        return True

    def __len__(self) -> int:
        return len(self._rows)

    def frontier(self) -> List[Dict[str, Any]]:
        """The archive sorted by (cycles, energy, cand_id) — deterministic."""
        return sorted(
            self._rows,
            key=lambda r: (r["cycles"], r["energy_total"], r["cand_id"]),
        )


# ---------------------------------------------------------------------------
# Cells: candidate cost + (shared) accuracy, both simcache-keyed
# ---------------------------------------------------------------------------


def _ratio_digest(network: str, ratio: float) -> str:
    """Workload digest for (network, ratio), built lazily and memoized.

    On the warm path this avoids constructing the workload at all —
    the per-process digest memo in ``experiments`` satisfies repeats.
    """
    from .experiments import _WORKLOAD_DIGESTS, _workload_digest

    digest = _WORKLOAD_DIGESTS.get((network, float(ratio)))
    if digest is None:
        digest = _workload_digest(network, ratio, paper_workload(network, ratio=ratio))
    return digest


def explore_cell(
    network: str,
    candidate: Union[Candidate, Dict[str, Any]],
    fidelity_layers: Optional[int] = None,
    cache: Optional[SimCache] = None,
) -> Dict[str, Any]:
    """Evaluate one candidate design through the simcache.

    Returns a flat dict — ``cycles``, per-component ``energy_*`` plus
    ``energy_total`` (pJ) — with a transient ``cached`` flag saying
    whether the metrics were replayed rather than simulated. The flag
    is stripped before anything lands in an envelope, so cold and warm
    artifacts stay byte-identical.
    """
    from ..olaccel.accelerator import OLAccelSimulator

    cache = cache if cache is not None else get_active()
    cand = candidate if isinstance(candidate, Candidate) else Candidate.from_dict(candidate)
    if network not in MEMORY_TABLE:
        raise ConfigError(f"unknown network {network!r}")
    cfg = cand.accel_config()
    components = {
        "cell": "explore",
        "accelerator": cfg.name,
        "accel_config": cfg,
        "network": network,
        "ratio": float(cand.ratio),
        "fidelity_layers": fidelity_layers,
        "workload_digest": _ratio_digest(network, cand.ratio),
        "fault_plan": None,
        "stats_schema": STATS_SCHEMA_VERSION,
    }
    cached = cache.contains(components)

    def compute() -> Dict[str, float]:
        workload = paper_workload(network, ratio=cand.ratio)
        if fidelity_layers is not None:
            workload = NetworkWorkload(workload.name, workload.layers[:fidelity_layers])
        run = OLAccelSimulator(cfg).simulate_network(workload)
        doc = {"cycles": float(run.total_cycles)}
        energy = run.energy_by_component()
        for component, pj in energy.items():
            doc[f"energy_{component}"] = float(pj)
        doc["energy_total"] = float(sum(energy.values()))
        return doc

    value = cache.memoize(components, compute)
    return {**value, "cached": cached}


def accuracy_cell(
    network: str,
    act_bits: int,
    weight_bits: int,
    ratio: float,
    mode: str = "proxy",
    samples: int = 256,
    seed: int = 0,
    cache: Optional[SimCache] = None,
) -> Dict[str, Any]:
    """The accuracy coordinate shared by every candidate at one
    (act_bits, weight_bits, ratio) point, memoized like any other cell.

    ``proxy`` (the default) quantizes deterministic heavy-tailed
    synthetic tensors and reports the mean weight/activation SQNR in
    dB — a training-free, seconds-scale stand-in that orders precision
    points the way measured accuracy does. ``quant`` measures top-1 on
    the trained mini model (trains it on first use — minutes, then
    cached). ``none`` drops the accuracy axis entirely.
    """
    if mode == "none":
        return {"metric": "none", "accuracy": None}
    if mode not in ("proxy", "quant"):
        raise ConfigError(f"unknown accuracy mode {mode!r}; use none, proxy or quant")
    cache = cache if cache is not None else get_active()
    components = {
        "cell": "explore-accuracy",
        "mode": mode,
        "network": network,
        "mini": MINI_OF.get(network),
        "act_bits": int(act_bits),
        "weight_bits": int(weight_bits),
        "ratio": float(ratio),
        "samples": int(samples),
        "seed": int(seed),
    }

    def compute() -> Dict[str, Any]:
        if mode == "proxy":
            return _proxy_accuracy(int(act_bits), int(weight_bits), float(ratio), int(seed))
        return _measured_accuracy(
            network, int(act_bits), int(weight_bits), float(ratio), int(samples)
        )

    return cache.memoize(components, compute)


def _proxy_accuracy(act_bits: int, weight_bits: int, ratio: float, seed: int) -> Dict[str, Any]:
    """Quantization SQNR (dB) on seeded Student-t tensors.

    Heavy-tailed draws mirror the outlier-rich distributions of Fig. 1;
    numpy ``Generator`` streams are stable across platforms, so the
    proxy is bit-deterministic for a given seed.
    """
    from ..quant.outlier import magnitude_threshold, quantize_activations, quantize_weights

    rng = np.random.default_rng([seed, act_bits, weight_bits])
    weights = rng.standard_t(4, size=1 << 15)
    qw = quantize_weights(weights, ratio=ratio, normal_bits=weight_bits, outlier_bits=8)
    acts = np.abs(rng.standard_t(4, size=1 << 15))
    threshold = magnitude_threshold(acts, ratio, over_nonzero=True)
    qa = quantize_activations(
        acts, threshold, normal_bits=act_bits, outlier_bits=16, ratio=ratio
    )

    def sqnr_db(x: np.ndarray, xq: np.ndarray) -> float:
        noise = float(np.sum((x - xq) ** 2))
        signal = float(np.sum(x**2))
        return 10.0 * math.log10(signal / noise) if noise > 0 else float("inf")

    w_sqnr = sqnr_db(weights, qw.dequantize())
    a_sqnr = sqnr_db(acts, qa.dequantize())
    return {
        "metric": "sqnr_db",
        "accuracy": 0.5 * (w_sqnr + a_sqnr),
        "weight_sqnr_db": w_sqnr,
        "act_sqnr_db": a_sqnr,
    }


def _measured_accuracy(
    network: str, act_bits: int, weight_bits: int, ratio: float, samples: int
) -> Dict[str, Any]:
    """Measured top-1 of the quantized mini model (``--accuracy quant``)."""
    from ..quant.qmodel import QuantConfig, QuantizedModel, calibrate_activation_thresholds
    from .pretrained import default_dataset, trained_mini

    mini = MINI_OF.get(network)
    if mini is None:
        raise ConfigError(f"no mini model mapped for network {network!r}")
    model = trained_mini(mini)
    data = default_dataset()
    cal = calibrate_activation_thresholds(model, data.train_x[:100], ratio=ratio)
    qm = QuantizedModel(
        model, cal, QuantConfig(ratio=ratio, weight_bits=weight_bits, act_bits=act_bits)
    )
    n = min(samples, len(data.test_y)) if samples else len(data.test_y)
    top1 = qm.accuracy(data.test_x[:n], data.test_y[:n])
    return {"metric": "top1", "accuracy": float(top1), "samples": int(n), "mini": mini}


# ---------------------------------------------------------------------------
# Request, plan assembly, driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExploreRequest:
    """Everything that determines one search, JSON-round-trippable."""

    network: str
    budget_mm2: Optional[float] = None  # None -> default_budget(network)
    strategy: str = "grid"
    samples: int = 64
    eta: int = 4
    screen_layers: int = 2
    max_candidates: Optional[int] = None
    accuracy: str = "proxy"
    accuracy_samples: int = 256
    seed: Optional[int] = None
    space: DesignSpace = field(default_factory=DesignSpace)

    def resolved_budget(self) -> float:
        return float(self.budget_mm2) if self.budget_mm2 else default_budget(self.network)

    def to_dict(self) -> Dict[str, Any]:
        doc = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "space"}
        doc["space"] = self.space.to_dict()
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "ExploreRequest":
        doc = dict(doc)
        space = DesignSpace.from_dict(doc.pop("space", {}))
        known = {f.name for f in fields(ExploreRequest)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigError(f"unknown explore request field(s): {', '.join(sorted(unknown))}")
        return ExploreRequest(space=space, **doc)


def _explore_plan(
    request: ExploreRequest,
    population: Sequence[Candidate],
    fidelity: Optional[int],
    rung: int,
    seed: int,
    budget: float,
) -> SweepPlan:
    cells = [
        CellSpec(
            cell_id=cand.cand_id,
            kind="explore",
            params={
                "network": request.network,
                "candidate": cand.to_dict(),
                "fidelity_layers": fidelity,
                "seed": seed,
            },
        )
        for cand in population
    ]
    return SweepPlan(
        plan="explore",
        experiment="explore",
        description=f"design-space rung {rung} for {request.network}",
        seed=seed,
        params={
            "network": request.network,
            "budget_mm2": budget,
            "strategy": request.strategy,
            "rung": rung,
            "fidelity_layers": fidelity,
            "space": request.space.to_dict(),
        },
        cells=cells,
    )


@dataclass
class ExploreRungResult:
    """Assembled view of one rung's records (``rungs/<n>/envelope.json``)."""

    network: str
    rung: int
    rows: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def format(self) -> str:
        from .report import format_failures, format_table

        table = format_table(
            ("candidate", "cycles", "energy pJ"),
            [(r["cand_id"], f"{r['cycles']:.0f}", f"{r['energy_total']:.3e}") for r in self.rows],
            title=f"explore rung {self.rung} — {self.network}",
        )
        if self.failures:
            table += "\n\n" + format_failures(self.failures)
        return table


def _assemble_explore(plan: SweepPlan, records: Dict[str, Dict[str, Any]]) -> ExploreRungResult:
    # The transient "cached" flag never reaches an assembled artifact:
    # it differs between cold and warm runs by construction.
    result = ExploreRungResult(network=plan.params["network"], rung=plan.params["rung"])
    for spec in plan.cells:
        record = records.get(spec.cell_id)
        if record is not None and record.get("status") == "ok":
            row = {k: v for k, v in record["result"].items() if k != "cached"}
            row["cand_id"] = spec.cell_id
            result.rows.append(row)
        else:
            result.failures.append(
                (record or {}).get("error")
                or CellError("cell record missing", cell_id=spec.cell_id, kind="crash").to_dict()
            )
    return result


PLAN_ASSEMBLERS["explore"] = _assemble_explore


def _execute_inline(plan: SweepPlan, obs: Registry) -> Dict[str, Dict[str, Any]]:
    """In-process execution (no run dir): same record shape as a sweep."""
    from .resilience import CELL_RUNNERS

    records: Dict[str, Dict[str, Any]] = {}
    for spec in plan.cells:
        runner = CELL_RUNNERS[spec.kind]
        try:
            result = to_jsonable(runner(dict(spec.params)))
            records[spec.cell_id] = {"status": "ok", "result": result}
        except Exception as exc:  # pragma: no cover - exercised via failure tests
            records[spec.cell_id] = {
                "status": "failed",
                "error": CellError(
                    f"{type(exc).__name__}: {exc}", cell_id=spec.cell_id, kind="exception"
                ).to_dict(),
            }
    return records


@dataclass
class ExploreResult:
    """The search outcome: evaluated rows plus their Pareto frontier."""

    network: str
    strategy: str
    budget_mm2: float
    accuracy_mode: str
    seed: int
    space: Dict[str, list]
    candidates: int
    pruned: int
    rungs: int
    evaluated: List[Dict[str, Any]] = field(default_factory=list)
    frontier: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def format(self) -> str:
        from .report import format_failures, format_table

        header = (
            f"explore {self.network} — strategy {self.strategy}, "
            f"budget {self.budget_mm2:.3f} mm^2: {self.candidates} candidates, "
            f"{self.pruned} pruned, {len(self.evaluated)} evaluated, "
            f"{len(self.frontier)} on the frontier"
        )
        rows = [
            (
                r["cand_id"],
                r["clusters"],
                r["groups"],
                r["buffer_kib"],
                f"{r['ratio']:g}",
                r["acc_bits"],
                f"{r['area_mm2']:.3f}",
                f"{r['cycles']:.0f}",
                f"{r['energy_total']:.3e}",
                "-" if r.get("accuracy") is None else f"{r['accuracy']:.3f}",
            )
            for r in self.frontier
        ]
        table = format_table(
            ("candidate", "clu", "grp", "buf KiB", "ratio", "acc b", "area mm^2",
             "cycles", "energy pJ", "accuracy"),
            rows,
            title="Pareto frontier (cycles/energy minimized, accuracy maximized)",
        )
        out = header + "\n\n" + table
        if self.failures:
            out += "\n\n" + format_failures(self.failures)
        return out


def explore_envelope(result: ExploreResult) -> Dict[str, Any]:
    """Wrap a search result in the versioned ``repro.explore/v1`` envelope.

    ``run_id``/``created`` are declared under the top-level ``volatile``
    list, which :func:`~repro.harness.resilience.canonical_envelope_bytes`
    strips — everything else is a pure function of the request, so cold,
    warm-cache and kill+resume envelopes agree byte-for-byte.
    """
    return {
        "schema": EXPLORE_SCHEMA,
        "schema_version": EXPLORE_SCHEMA_VERSION,
        "stats_schema_version": STATS_SCHEMA_VERSION,
        "experiment": "explore",
        "description": f"design-space Pareto search for {result.network}",
        "run_id": uuid.uuid4().hex[:12],
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "volatile": ["run_id", "created"],
        "result": to_jsonable(result),
    }


def explore_csv_rows(result: ExploreResult) -> List[Dict[str, Any]]:
    """One flat CSV row per evaluated candidate, frontier membership marked."""
    on_frontier = {row["cand_id"] for row in result.frontier}
    return [
        {**row, "on_frontier": row["cand_id"] in on_frontier} for row in result.evaluated
    ]


def _marker_doc(request: ExploreRequest) -> Dict[str, Any]:
    body = to_jsonable(request.to_dict())
    return {
        "schema": MARKER_SCHEMA,
        "schema_version": 1,
        "request": body,
        "config_hash": content_digest(body),
    }


def _init_marker(root: Path, request: ExploreRequest, verify: bool) -> None:
    path = root / EXPLORE_MARKER
    doc = _marker_doc(request)
    if path.exists():
        existing = load_json(path, verify=verify)
        if not isinstance(existing, dict) or existing.get("config_hash") != doc["config_hash"]:
            raise ArtifactIntegrityError(
                "run directory belongs to a different explore request",
                path=str(path),
                reason="manifest_mismatch",
            )
        return
    root.mkdir(parents=True, exist_ok=True)
    save_json(doc, path)


def is_explore_run(run_dir: Union[str, Path]) -> bool:
    """Does ``run_dir`` hold an explore search (vs a plain sweep)?"""
    return (Path(run_dir) / EXPLORE_MARKER).exists()


def explore_run(
    request: ExploreRequest,
    run_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    obs: Optional[Registry] = None,
    verify: bool = True,
    lease_ttl: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
) -> Tuple[ExploreResult, Dict[str, Any]]:
    """Run (or continue) one design-space search; returns (result, envelope).

    Without ``run_dir`` every cell executes in-process (fast path, still
    simcache-keyed). With ``run_dir`` each rung is a checkpointed
    :func:`execute_sweep` under ``<run-dir>/rungs/<n>/`` and the final
    envelope lands at ``<run-dir>/envelope.json`` — killing the process
    mid-search and calling :func:`explore_resume` completes it with the
    already-finished cells skipped.
    """
    obs = obs if obs is not None else get_registry()
    if request.network not in MEMORY_TABLE:
        raise ConfigError(
            f"unknown network {request.network!r}; available: {', '.join(sorted(MEMORY_TABLE))}"
        )
    strategy = STRATEGIES.get(request.strategy)
    if strategy is None:
        raise ConfigError(
            f"unknown strategy {request.strategy!r}; available: {', '.join(sorted(STRATEGIES))}"
        )
    if request.eta < 2:
        raise ConfigError("eta must be >= 2 (the survivor fraction is 1/eta)")
    seed = resolve_seed(request.seed, default=0)
    request = replace(request, seed=seed)
    set_global_seed(seed)
    budget = request.resolved_budget()

    rng = np.random.default_rng(seed)
    cands = strategy.candidates(request.space, request, rng)
    obs.counter("explore/candidates").add(len(cands))
    capped = 0
    if request.max_candidates is not None and len(cands) > request.max_candidates:
        capped = len(cands) - request.max_candidates
        cands = cands[: request.max_candidates]
    feasible = [c for c in cands if c.area_mm2() <= budget]
    pruned = (len(cands) - len(feasible)) + capped
    obs.counter("explore/pruned").add(pruned)

    root: Optional[Path] = None
    if run_dir is not None:
        root = Path(run_dir)
        _init_marker(root, request, verify)

    rungs = strategy.rungs(request)
    population: List[Candidate] = list(feasible)
    final_rows: Dict[str, Dict[str, Any]] = {}
    failures: List[Dict[str, Any]] = []
    evaluated = cache_hits = 0

    for rung, fidelity in enumerate(rungs):
        if not population:
            break
        plan = _explore_plan(request, population, fidelity, rung, seed, budget)
        if root is not None:
            _, _, _, records = execute_sweep(
                plan, root / RUNGS_DIR / str(rung), jobs=jobs, retry=retry,
                obs=obs, verify=verify, lease_ttl=lease_ttl, heartbeat_s=heartbeat_s,
            )
        else:
            records = _execute_inline(plan, obs)

        rung_rows: Dict[str, Dict[str, Any]] = {}
        screen = rung == 0
        for spec in plan.cells:
            record = records.get(spec.cell_id)
            ok = record is not None and record.get("status") == "ok"
            hit = bool(ok and record["result"].get("cached"))
            if screen:
                cache_hits += 1 if hit else 0
                evaluated += 0 if hit else 1
            else:
                obs.counter("explore/refine_cache_hits" if hit else "explore/refine_evaluated").add()
            if ok:
                rung_rows[spec.cell_id] = {
                    k: v for k, v in record["result"].items() if k != "cached"
                }
            else:
                obs.counter("explore/failed").add()
                failures.append(
                    (record or {}).get("error")
                    or CellError(
                        "cell record missing", cell_id=spec.cell_id, kind="crash"
                    ).to_dict()
                )

        if rung < len(rungs) - 1:
            # Successive halving: keep the best ceil(n/eta) by the
            # energy-cycles product on the screen metrics (cand_id
            # breaks ties deterministically).
            keep = max(1, math.ceil(len(population) / request.eta))
            scored = sorted(
                (cid for cid in rung_rows),
                key=lambda cid: (
                    rung_rows[cid]["energy_total"] * rung_rows[cid]["cycles"],
                    cid,
                ),
            )
            kept = set(scored[:keep])
            obs.counter("explore/refined").add(len(kept))
            population = [c for c in population if c.cand_id in kept]
        else:
            final_rows = rung_rows

    obs.counter("explore/evaluated").add(evaluated)
    obs.counter("explore/cache_hits").add(cache_hits)

    # Accuracy is shared across candidates with identical precision
    # coordinates — one memoized cell per distinct point.
    accuracy_points: Dict[Tuple[int, int, float], Dict[str, Any]] = {}
    survivors = [c for c in population if c.cand_id in final_rows]
    if request.accuracy != "none":
        for cand in survivors:
            key = (cand.act_bits, cand.weight_bits, cand.ratio)
            if key not in accuracy_points:
                accuracy_points[key] = accuracy_cell(
                    request.network,
                    cand.act_bits,
                    cand.weight_bits,
                    cand.ratio,
                    mode=request.accuracy,
                    samples=request.accuracy_samples,
                    seed=seed,
                )
        obs.counter("explore/accuracy_cells").add(len(accuracy_points))

    archive = ParetoArchive()
    dominated = 0
    rows: List[Dict[str, Any]] = []
    for cand in survivors:
        row = {"cand_id": cand.cand_id, **cand.to_dict()}
        row["area_mm2"] = cand.area_mm2()
        row.update(final_rows[cand.cand_id])
        acc = accuracy_points.get((cand.act_bits, cand.weight_bits, cand.ratio))
        row["accuracy"] = None if acc is None else acc.get("accuracy")
        row["accuracy_metric"] = "none" if acc is None else acc.get("metric")
        if not archive.offer(row):
            dominated += 1
        rows.append(row)
    obs.counter("explore/dominated").add(dominated)
    frontier = archive.frontier()
    obs.counter("explore/frontier").add(len(frontier))

    result = ExploreResult(
        network=request.network,
        strategy=request.strategy,
        budget_mm2=budget,
        accuracy_mode=request.accuracy,
        seed=seed,
        space=request.space.to_dict(),
        candidates=len(cands) + capped,
        pruned=pruned,
        rungs=len(rungs),
        evaluated=rows,
        frontier=frontier,
        failures=failures,
    )
    envelope = explore_envelope(result)
    if root is not None:
        save_json(envelope, root / "envelope.json")
    return result, envelope


def explore_resume(
    run_dir: Union[str, Path],
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    obs: Optional[Registry] = None,
    verify: bool = True,
    lease_ttl: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
) -> Tuple[ExploreResult, Dict[str, Any]]:
    """Re-drive an interrupted search from its ``explore.json`` marker.

    The marker pins the full request (seed included), so the candidate
    list, rung plans and survivor selection re-derive identically;
    completed cells are skipped by the per-rung sweeps and the final
    envelope is byte-identical (modulo declared volatile fields) to an
    uninterrupted run.
    """
    path = Path(run_dir) / EXPLORE_MARKER
    if not path.exists():
        raise ArtifactIntegrityError(
            "no explore marker — not an explore run directory",
            path=str(path),
            reason="unreadable",
        )
    doc = load_json(path, verify=verify)
    if not isinstance(doc, dict):
        raise ArtifactIntegrityError(
            f"explore marker is not a JSON object ({type(doc).__name__})",
            path=str(path),
            reason="manifest_mismatch",
        )
    if doc.get("schema") != MARKER_SCHEMA:
        raise ArtifactIntegrityError(
            f"unknown explore marker schema {doc.get('schema')!r}",
            path=str(path),
            reason="manifest_mismatch",
        )
    if not isinstance(doc.get("request"), dict):
        raise ArtifactIntegrityError(
            "explore marker carries no request object",
            path=str(path),
            reason="manifest_mismatch",
        )
    request = ExploreRequest.from_dict(doc["request"])
    return explore_run(
        request, run_dir=run_dir, jobs=jobs, retry=retry, obs=obs, verify=verify,
        lease_ttl=lease_ttl, heartbeat_s=heartbeat_s,
    )
