"""Experiment drivers: one function per paper table/figure.

Each function returns a structured result object with a ``format()``
method; the benchmarks in ``benchmarks/`` call these and print the rows,
and the tests assert the paper's qualitative claims on the returned data.
See DESIGN.md's per-experiment index for the figure -> module mapping and
EXPERIMENTS.md for paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.area import (
    DEFAULT_AREA,
    eyeriss_pe_area,
    iso_area_clusters,
    olaccel_area,
    zena_pe_area,
)
from ..arch.stats import RunStats
from ..arch.workload import NetworkWorkload
from ..baselines import EyerissSimulator, ZenaSimulator, eyeriss16, eyeriss8, zena16, zena8
from ..olaccel import (
    OLAccelSimulator,
    multi_outlier_probability,
    olaccel16,
    olaccel8,
    sample_pass_cycles,
)
from ..quant import (
    QuantConfig,
    QuantizedModel,
    calibrate_activation_thresholds,
    effective_outlier_ratios,
    level_occupancy,
    quantize_linear,
    quantize_weights,
    sqnr_db,
    summarize,
)
from .pretrained import default_dataset, trained_mini
from .report import format_series, format_table
from .scaling import NpuSpec, ScalingModel
from .seeding import resolve_seed
from .workloads import memory_bytes, paper_workload

__all__ = [
    "simulate_cell",
    "simulate_network_layered",
    "fig1_weight_distributions",
    "fig2_accuracy_vs_ratio",
    "fig3_accuracy_networks",
    "table1_configurations",
    "breakdown_experiment",
    "fig14_ratio_sweep",
    "fig15_scalability",
    "fig16_outlier_histogram",
    "fig17_multi_outlier",
    "fig18_utilization",
    "fig19_chunk_cycles",
    "ALL_ACCELERATORS",
]

#: Outlier ratio per network used in Fig. 3 (paper caption).
FIG3_RATIOS = {"alexnet": 0.035, "vgg": 0.01, "resnet": 0.03, "densenet": 0.03}

ALL_ACCELERATORS = ("eyeriss16", "eyeriss8", "zena16", "zena8", "olaccel16", "olaccel8")


def _simulator(kind: str, network: str, ratio: float = 0.03, obs=None):
    bits = 16 if kind.endswith("16") else 8
    mem = memory_bytes(network, bits)
    if kind.startswith("eyeriss"):
        return EyerissSimulator(eyeriss16(mem) if bits == 16 else eyeriss8(mem), obs=obs)
    if kind.startswith("zena"):
        return ZenaSimulator(zena16(mem) if bits == 16 else zena8(mem), obs=obs)
    if kind.startswith("olaccel"):
        cfg = olaccel16(mem, ratio) if bits == 16 else olaccel8(mem, ratio)
        return OLAccelSimulator(cfg, obs=obs)
    raise ValueError(f"unknown accelerator kind {kind!r}")


#: Per-process memo of workload content digests keyed (network, ratio).
#: ``paper_workload`` is a pure function of its arguments, so one digest
#: of its full layer-spec JSON identifies the workload in every cell key
#: without re-canonicalizing the 20-odd layer dicts per lookup (the
#: digest computation dominated the warm hit path otherwise).
_WORKLOAD_DIGESTS: Dict[tuple, str] = {}


def _workload_digest(network: str, ratio: float, workload) -> str:
    from .serialize import content_digest, to_jsonable

    key = (network, float(ratio))
    digest = _WORKLOAD_DIGESTS.get(key)
    if digest is None:
        digest = content_digest({"layers": to_jsonable(workload)})
        _WORKLOAD_DIGESTS[key] = digest
    return digest


def simulate_network_layered(
    kind: str,
    network: str,
    ratio: float = 0.03,
    cache=None,
    workload: Optional[NetworkWorkload] = None,
):
    """Simulate one network with every layer memoized individually.

    The layer-granularity tier under :func:`simulate_cell`: each layer's
    :meth:`simulate_layer` result is cached on (accelerator id, full
    accelerator config, the layer's complete spec — quant bits, outlier
    ratios and first-layer overrides are baked into its fields by
    ``paper_workload``'s ``with_ratio`` — fault-plan slice, stats schema,
    and the code-version salt). A sweep tweak that changes one layer's
    spec therefore recomputes exactly that layer and replays the rest
    from cache; identical layers even dedup across networks and (for the
    ratio-independent first layer) across outlier ratios.

    Layer results are stored **pre-finalize**: the final output's DRAM
    write is applied here after assembly, exactly as the serial
    :meth:`simulate_network` and the layer-parallel driver do, so the
    assembled :class:`RunStats` is bit-identical to both. Lookups land
    under the ``simcache/layer_*`` counters (``layer_lookups ==
    layer_hits + layer_misses + layer_bypassed``), disjoint from the
    cell-level set. Pass an explicit ``workload`` (e.g. one layer
    replaced via ``dataclasses.replace``) to simulate a modified network
    against the same cache population.
    """
    from ..arch.stats import STATS_SCHEMA_VERSION, LayerStats
    from .simcache import get_active

    cache = cache if cache is not None else get_active()
    sim = _simulator(kind, network, ratio)
    if workload is None:
        workload = paper_workload(network, ratio=ratio)

    stats = RunStats(accelerator=sim.config.name, network=workload.name)
    for layer in workload.layers:
        components = {
            "cell": "layer",
            "accelerator": kind,
            "accel_config": sim.config,
            "layer": layer,
            "fault_plan": None,
            "stats_schema": STATS_SCHEMA_VERSION,
        }
        stats.add(
            cache.memoize(
                components,
                lambda layer=layer: sim.simulate_layer(layer),
                encode=lambda s: s.to_dict(),
                decode=LayerStats.from_dict,
                kind="layer",
            )
        )
    return sim.finalize_network(stats, workload)


def simulate_cell(kind: str, network: str, ratio: float = 0.03, jobs: int = 1, cache=None):
    """Simulate one (accelerator, network) sweep cell through the simcache.

    The cache key covers everything the result depends on: the
    accelerator id and its full config dataclass (so quant bits, buffer
    sizes and ablation switches each flip the key), a digest of the
    network's full layer specs plus the outlier ratio, the stats schema
    version, and the code-version salt (docs/PERFORMANCE.md). Results
    decode through the lossless ``RunStats`` round-trip, so a warm cell
    is byte-identical to a cold one. ``cache=None`` resolves the
    process-wide cache (``--cache-dir``/``--no-cache`` via their
    environment variables); ``jobs > 1`` computes misses on the
    layer-parallel pool, the serial default through
    :func:`simulate_network_layered` so a cell-level miss still reuses
    any individually memoized layers.
    """
    from .serialize import run_stats_from_dict
    from .simcache import get_active

    cache = cache if cache is not None else get_active()
    sim = _simulator(kind, network, ratio)
    workload = paper_workload(network, ratio=ratio)
    from ..arch.stats import STATS_SCHEMA_VERSION

    components = {
        "cell": "breakdown",
        "accelerator": kind,
        "accel_config": sim.config,
        "network": network,
        "ratio": float(ratio),
        "workload_digest": _workload_digest(network, ratio, workload),
        "fault_plan": None,
        "stats_schema": STATS_SCHEMA_VERSION,
    }

    def compute() -> RunStats:
        if jobs > 1:
            from .parallel import parallel_network_run

            return parallel_network_run(kind, network, ratio=ratio, jobs=jobs)
        return simulate_network_layered(kind, network, ratio=ratio, cache=cache, workload=workload)

    return cache.memoize(
        components,
        compute,
        encode=lambda run: run.to_dict(),
        decode=run_stats_from_dict,
    )


# ---------------------------------------------------------------------------
# Fig. 1 — weight distributions under three quantizers
# ---------------------------------------------------------------------------


@dataclass
class Fig1Result:
    """Distribution and error stats for full-precision vs linear vs OAQ."""

    layer_name: str
    fp_summary: object
    linear_sqnr_db: float
    oaq_sqnr_db: float
    linear_occupancy: np.ndarray  # 4-bit level histogram, full-range grid
    oaq_occupancy: np.ndarray  # 4-bit level histogram, OAQ normal grid
    outlier_ratio: float

    def format(self) -> str:
        rows = [
            ("full precision", f"max|w|={self.fp_summary.max_abs:.4f}", f"kurtosis={self.fp_summary.kurtosis:.2f}"),
            ("linear 4-bit", f"SQNR={self.linear_sqnr_db:.2f} dB",
             f"occupied levels={int((self.linear_occupancy > 0).sum())}/15"),
            ("OAQ 4-bit (3%)", f"SQNR={self.oaq_sqnr_db:.2f} dB",
             f"occupied levels={int((self.oaq_occupancy > 0).sum())}/15"),
        ]
        return format_table(["quantizer", "error", "level use"], rows,
                            title=f"Fig.1 — weight distribution, {self.layer_name}")


def fig1_weight_distributions(model_name: str = "alexnet", layer_index: int = 1, ratio: float = 0.03) -> Fig1Result:
    """Reproduce Fig. 1 on the trained mini model's conv2 weights."""
    model = trained_mini(model_name)
    layer = model.compute_layers()[layer_index]
    weights = layer.weight.value

    linear_rt = quantize_linear(weights, bits=4)
    oaq = quantize_weights(weights, ratio=ratio)

    # Level occupancy on the two 4-bit grids.
    max_abs = float(np.abs(weights).max())
    linear_levels = np.clip(np.rint(weights / (max_abs / 7.0)), -7, 7).astype(np.int64)
    oaq_normal = np.clip(oaq.levels, -7, 7)

    return Fig1Result(
        layer_name=getattr(layer, "name", f"layer{layer_index}"),
        fp_summary=summarize(weights),
        linear_sqnr_db=sqnr_db(weights, linear_rt),
        oaq_sqnr_db=sqnr_db(weights, oaq.dequantize()),
        linear_occupancy=level_occupancy(linear_levels, 7),
        oaq_occupancy=level_occupancy(oaq_normal, 7),
        outlier_ratio=oaq.outlier_ratio,
    )


# ---------------------------------------------------------------------------
# Fig. 2 / Fig. 3 — accuracy under outlier-aware quantization
# ---------------------------------------------------------------------------


@dataclass
class AccuracyPoint:
    ratio: float
    top1: float
    top5: float


@dataclass
class Fig2Result:
    model_name: str
    fp_top1: float
    fp_top5: float
    points: List[AccuracyPoint] = field(default_factory=list)

    def format(self) -> str:
        rows = [("full precision", f"{self.fp_top1:.3f}", f"{self.fp_top5:.3f}")]
        rows += [(f"ratio={p.ratio:.3f}", f"{p.top1:.3f}", f"{p.top5:.3f}") for p in self.points]
        return format_table(["config", "top-1", "top-5"], rows,
                            title=f"Fig.2 — accuracy vs outlier ratio ({self.model_name})")


def fig2_accuracy_vs_ratio(
    model_name: str = "alexnet",
    ratios: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.035, 0.05),
    calibration_samples: int = 100,
) -> Fig2Result:
    """Accuracy of the 4-bit quantized mini model across outlier ratios.

    ``ratio = 0`` is conventional full-range linear quantization without
    truncation or retraining, exactly the paper's baseline point.
    """
    model = trained_mini(model_name)
    data = default_dataset()
    result = Fig2Result(
        model_name=model.name,
        fp_top1=model.accuracy(data.test_x, data.test_y),
        fp_top5=model.topk_accuracy(data.test_x, data.test_y, k=5),
    )
    for ratio in ratios:
        cal = calibrate_activation_thresholds(model, data.train_x[:calibration_samples], ratio=ratio)
        qm = QuantizedModel(model, cal, QuantConfig(ratio=ratio))
        result.points.append(
            AccuracyPoint(
                ratio=ratio,
                top1=qm.accuracy(data.test_x, data.test_y),
                top5=qm.topk_accuracy(data.test_x, data.test_y, k=5),
            )
        )
    return result


@dataclass
class Fig3Row:
    network: str
    ratio: float
    fp_top1: float
    fp_top5: float
    oaq_top1: float
    oaq_top5: float


@dataclass
class Fig3Result:
    rows: List[Fig3Row] = field(default_factory=list)

    def format(self) -> str:
        table = [
            (r.network, f"{r.ratio * 100:.1f}%", f"{r.fp_top1:.3f}", f"{r.oaq_top1:.3f}",
             f"{r.fp_top5:.3f}", f"{r.oaq_top5:.3f}")
            for r in self.rows
        ]
        return format_table(
            ["network", "outliers", "fp top-1", "oaq top-1", "fp top-5", "oaq top-5"],
            table,
            title="Fig.3 — 4-bit OAQ accuracy across networks",
        )


def fig3_accuracy_networks(networks: Optional[Sequence[str]] = None) -> Fig3Result:
    """4-bit OAQ accuracy vs full precision for every mini network."""
    result = Fig3Result()
    for name in networks or ("alexnet", "vgg", "resnet", "densenet"):
        ratio = FIG3_RATIOS[name]
        model = trained_mini(name)
        data = default_dataset()
        cal = calibrate_activation_thresholds(model, data.train_x[:100], ratio=ratio)
        config = QuantConfig(ratio=ratio, first_layer_weight_bits=8 if name in ("resnet", "densenet") else 4)
        qm = QuantizedModel(model, cal, config)
        result.rows.append(
            Fig3Row(
                network=model.name,
                ratio=ratio,
                fp_top1=model.accuracy(data.test_x, data.test_y),
                fp_top5=model.topk_accuracy(data.test_x, data.test_y, k=5),
                oaq_top1=qm.accuracy(data.test_x, data.test_y),
                oaq_top5=qm.topk_accuracy(data.test_x, data.test_y, k=5),
            )
        )
    return result


# ---------------------------------------------------------------------------
# Table I — ISO-area configurations
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    rows: List[Tuple[str, int, float]] = field(default_factory=list)  # (name, PEs/MACs, area)

    def format(self) -> str:
        table = [(name, pes, f"{area:.2f}") for name, pes, area in self.rows]
        return format_table(["accelerator", "# PEs/MACs", "area (mm^2)"], table,
                            title="Table I — ISO-area configurations")

    def by_name(self) -> Dict[str, Tuple[int, float]]:
        return {name: (pes, area) for name, pes, area in self.rows}


def table1_configurations() -> Table1Result:
    """Reproduce Table I's PE counts and areas from the area model."""
    result = Table1Result()
    for bits in (16, 8):
        result.rows.append((f"eyeriss{bits}", 165, 165 * eyeriss_pe_area(bits)))
        result.rows.append((f"zena{bits}", 168, 168 * zena_pe_area(bits)))
        budget = 165 * eyeriss_pe_area(bits) * 1.11  # the paper's ~10% slack
        clusters = iso_area_clusters(budget, ol_act_bits=bits)
        macs = clusters * DEFAULT_AREA.groups_per_cluster * 16
        result.rows.append((f"olaccel{bits}", macs, olaccel_area(clusters, bits)))
    return result


# ---------------------------------------------------------------------------
# Figs. 11-13 — cycle and energy breakdowns
# ---------------------------------------------------------------------------


@dataclass
class BreakdownResult:
    """Normalized cycle/energy comparison across all six accelerators.

    Under the resilient execution path (docs/RESILIENCE.md) individual
    accelerator cells can fail without aborting the sweep; those land in
    ``failures`` (accelerator kind -> structured CellError dict) and the
    report renders a FAILED row in their place.
    """

    network: str
    runs: Dict[str, RunStats] = field(default_factory=dict)
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def reference(self) -> RunStats:
        return self.runs["eyeriss16"]

    def normalized_cycles(self) -> Dict[str, float]:
        ref = self.reference.total_cycles
        return {k: r.total_cycles / ref for k, r in self.runs.items()}

    def normalized_energy(self) -> Dict[str, Dict[str, float]]:
        ref = self.reference.total_energy.total
        out = {}
        for k, r in self.runs.items():
            e = r.total_energy
            out[k] = {
                "dram": e.dram / ref,
                "buffer": e.buffer / ref,
                "local": e.local / ref,
                "logic": e.logic / ref,
                "total": e.total / ref,
            }
        return out

    def reduction(self, a: str, b: str, what: str = "energy") -> float:
        """Fractional reduction of ``a`` relative to ``b`` (paper headline)."""
        if what == "energy":
            return 1.0 - self.runs[a].total_energy.total / self.runs[b].total_energy.total
        if what == "cycles":
            return 1.0 - self.runs[a].total_cycles / self.runs[b].total_cycles
        raise ValueError(f"what must be 'energy' or 'cycles', got {what!r}")

    def layer_cycles(self, kind: str) -> Dict[str, float]:
        ref = self.reference.total_cycles
        return {s.layer_name: s.cycles / ref for s in self.runs[kind].layers}

    def format(self) -> str:
        from .report import FAILED, format_failures

        if "eyeriss16" not in self.runs:
            # The normalization reference itself failed — render absolute
            # totals for whatever succeeded plus the failure table.
            rows = [
                (kind, f"{self.runs[kind].total_cycles:.0f}",
                 f"{self.runs[kind].total_energy.total:.0f}")
                if kind in self.runs
                else (kind, FAILED, FAILED)
                for kind in ALL_ACCELERATORS
                if kind in self.runs or kind in self.failures
            ]
            table = format_table(
                ["accelerator", "cycles (abs)", "energy (abs pJ)"], rows,
                title=f"Cycle & energy breakdown, {self.network} "
                      "(reference eyeriss16 FAILED; absolute values)",
            )
            return table + "\n" + format_failures(self.failures.values())

        cyc = self.normalized_cycles()
        en = self.normalized_energy()
        rows = []
        for kind in ALL_ACCELERATORS:
            if kind in self.failures:
                rows.append((kind,) + (FAILED,) * 6)
                continue
            if kind not in self.runs:
                continue
            e = en[kind]
            rows.append(
                (kind, f"{cyc[kind]:.3f}", f"{e['total']:.3f}", f"{e['dram']:.3f}",
                 f"{e['buffer']:.3f}", f"{e['local']:.3f}", f"{e['logic']:.3f}")
            )
        table = format_table(
            ["accelerator", "cycles", "energy", "dram", "buffer", "local", "logic"],
            rows,
            title=f"Cycle & energy breakdown, {self.network} (normalized to eyeriss16)",
        )
        headlines = []
        for a, b, label in (
            ("olaccel16", "zena16", "OLAccel16 vs ZeNA16"),
            ("olaccel8", "zena8", "OLAccel8  vs ZeNA8 "),
        ):
            if a in self.runs and b in self.runs:
                headlines.append(
                    f"\n{label}: energy -{self.reduction(a, b) * 100:.1f}%, "
                    f"cycles -{self.reduction(a, b, 'cycles') * 100:.1f}%"
                )
        text = table + "".join(headlines)
        if self.failures:
            text += "\n" + format_failures(self.failures.values())
        return text


def breakdown_experiment(network: str, ratio: float = 0.03, jobs: int = 1) -> BreakdownResult:
    """Figs. 11 (alexnet), 12 (vgg16), 13 (resnet18).

    ``jobs > 1`` simulates each accelerator's layers on a
    :mod:`multiprocessing` pool (see :mod:`repro.harness.parallel`);
    results are bit-identical to the serial default.
    """
    result = BreakdownResult(network=network)
    for kind in ALL_ACCELERATORS:
        result.runs[kind] = simulate_cell(kind, network, ratio=ratio, jobs=jobs)
    return result


# ---------------------------------------------------------------------------
# Fig. 14 — energy / cycles / accuracy vs outlier ratio
# ---------------------------------------------------------------------------


@dataclass
class Fig14Point:
    ratio: float
    cycles: float  # normalized to ratio = 0
    energy: float  # normalized to ratio = 0
    top5: Optional[float] = None


@dataclass
class Fig14Result:
    network: str
    points: List[Fig14Point] = field(default_factory=list)

    def format(self) -> str:
        rows = [
            (f"{p.ratio * 100:.1f}%", f"{p.cycles:.3f}", f"{p.energy:.3f}",
             f"{p.top5:.3f}" if p.top5 is not None else "-")
            for p in self.points
        ]
        return format_table(["outlier ratio", "cycles", "energy", "top-5"], rows,
                            title=f"Fig.14 — outlier-ratio sweep ({self.network}, OLAccel16)")


def fig14_ratio_sweep(
    network: str = "alexnet",
    ratios: Sequence[float] = (0.0, 0.01, 0.02, 0.035, 0.05),
    with_accuracy: bool = True,
    mini_name: str = "alexnet",
) -> Fig14Result:
    """OLAccel16 cost vs outlier ratio, plus mini-model accuracy."""
    result = Fig14Result(network=network)
    base_run = None
    accuracy: Dict[float, float] = {}
    if with_accuracy:
        model = trained_mini(mini_name)
        data = default_dataset()
        for ratio in ratios:
            cal = calibrate_activation_thresholds(model, data.train_x[:100], ratio=ratio)
            qm = QuantizedModel(model, cal, QuantConfig(ratio=ratio))
            accuracy[ratio] = qm.topk_accuracy(data.test_x, data.test_y, k=5)

    for ratio in ratios:
        run = simulate_cell("olaccel16", network, ratio=ratio)
        if base_run is None:
            base_run = run
        result.points.append(
            Fig14Point(
                ratio=ratio,
                cycles=run.total_cycles / base_run.total_cycles,
                energy=run.total_energy.total / base_run.total_energy.total,
                top5=accuracy.get(ratio),
            )
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 15 — multi-NPU scalability
# ---------------------------------------------------------------------------


@dataclass
class Fig15Result:
    network: str
    #: speedups keyed by (accelerator, batch) -> list over npu_counts
    series: Dict[Tuple[str, int], List[float]] = field(default_factory=dict)
    npu_counts: Sequence[int] = (1, 2, 4, 8, 16)

    def format(self) -> str:
        out = [f"Fig.15 — scalability on {self.network} (speedup vs ZeNA batch 1, 1 NPU)"]
        for (kind, batch), values in sorted(self.series.items()):
            out.append(format_series(f"{kind} batch={batch}", list(self.npu_counts), values, "NPUs", "speedup"))
        return "\n".join(out)


def fig15_scalability(
    network: str = "alexnet",
    npu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    batches: Sequence[int] = (1, 4, 16),
) -> Fig15Result:
    """Speedup vs NPU count for OLAccel and ZeNA at several batch sizes."""
    ol_run = simulate_cell("olaccel16", network)
    zena_run = simulate_cell("zena16", network)

    zena_cycles = zena_run.total_cycles
    result = Fig15Result(network=network, npu_counts=tuple(npu_counts))
    for kind, run in (("olaccel16", ol_run), ("zena16", zena_run)):
        model = ScalingModel(NpuSpec.from_run(run))
        base_speed = zena_cycles / run.total_cycles  # 1 NPU, vs ZeNA batch 1
        for batch in batches:
            result.series[(kind, batch)] = [
                base_speed * model.speedup(n, batch).speedup for n in npu_counts
            ]
    return result


# ---------------------------------------------------------------------------
# Fig. 16 — effective outlier-activation ratio histogram
# ---------------------------------------------------------------------------


@dataclass
class Fig16Result:
    target_ratio: float
    per_layer: Dict[str, float] = field(default_factory=dict)
    per_image: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def mean_ratio(self) -> float:
        return float(self.per_image.mean()) if self.per_image.size else 0.0

    def format(self) -> str:
        rows = [(name, f"{ratio:.4f}") for name, ratio in self.per_layer.items()]
        table = format_table(["layer", "effective ratio"], rows,
                             title=f"Fig.16 — effective outlier ratio (target {self.target_ratio})")
        return table + f"\nper-image mean={self.mean_ratio:.4f}, std={float(self.per_image.std()):.4f}"


def fig16_outlier_histogram(model_name: str = "alexnet", ratio: float = 0.03, images: int = 100) -> Fig16Result:
    """Runtime outlier ratios under statically calibrated thresholds."""
    model = trained_mini(model_name)
    data = default_dataset()
    cal = calibrate_activation_thresholds(model, data.train_x[:100], ratio=ratio)

    result = Fig16Result(target_ratio=ratio)
    result.per_layer = effective_outlier_ratios(model, cal, data.test_x[:images])

    # Per-image effective ratio pooled over non-first layers (the histogram).
    per_image = []
    for i in range(min(images, data.test_x.shape[0])):
        captured = model.record_activations(data.test_x[i : i + 1])
        outliers = 0
        nonzero = 0
        for index, act in captured.items():
            if index == 0:
                continue
            threshold = cal.layers[index].threshold
            outliers += int((np.abs(act) > threshold).sum())
            nonzero += int(np.count_nonzero(act))
        per_image.append(outliers / nonzero if nonzero else 0.0)
    result.per_image = np.asarray(per_image)
    return result


# ---------------------------------------------------------------------------
# Fig. 17 — probability of multiple outlier weights per SIMD group
# ---------------------------------------------------------------------------


@dataclass
class Fig17Result:
    ratios: Sequence[float]
    series: Dict[int, List[float]] = field(default_factory=dict)  # lanes -> P(>=2)
    monte_carlo: Dict[int, List[float]] = field(default_factory=dict)

    def format(self) -> str:
        out = ["Fig.17 — P(multiple outlier weights) vs outlier ratio"]
        for lanes, values in sorted(self.series.items()):
            out.append(format_series(f"{lanes} MACs/group", [f"{r:.3f}" for r in self.ratios], values))
        return "\n".join(out)


def fig17_multi_outlier(
    ratios: Sequence[float] = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05),
    lane_counts: Sequence[int] = (16, 32, 64),
    monte_carlo_trials: int = 20000,
    seed: Optional[int] = None,
) -> Fig17Result:
    """Analytic multi-outlier probability, with a Monte-Carlo check."""
    rng = np.random.default_rng(resolve_seed(seed, default=0))
    result = Fig17Result(ratios=tuple(ratios))
    for lanes in lane_counts:
        result.series[lanes] = [multi_outlier_probability(r, lanes) for r in ratios]
        mc = []
        for r in ratios:
            draws = rng.random((monte_carlo_trials, lanes)) < r
            mc.append(float((draws.sum(axis=1) >= 2).mean()))
        result.monte_carlo[lanes] = mc
    return result


# ---------------------------------------------------------------------------
# Fig. 18 — utilization breakdown per conv layer
# ---------------------------------------------------------------------------


@dataclass
class Fig18Row:
    layer: str
    nonzero_ratio: float
    run: float
    skip: float
    idle: float


@dataclass
class Fig18Result:
    network: str
    rows: List[Fig18Row] = field(default_factory=list)

    def format(self) -> str:
        table = [
            (r.layer, f"{r.nonzero_ratio:.2f}", f"{r.run:.3f}", f"{r.skip:.3f}", f"{r.idle:.3f}")
            for r in self.rows
        ]
        return format_table(["layer", "nonzero", "run", "skip", "idle"], table,
                            title=f"Fig.18 — utilization breakdown ({self.network}, OLAccel16)")


def fig18_utilization(network: str = "alexnet", ratio: float = 0.03) -> Fig18Result:
    """Run/skip/idle cycle shares per conv layer."""
    workload = paper_workload(network, ratio=ratio)
    sim = _simulator("olaccel16", network, ratio)
    result = Fig18Result(network=network)
    for layer in workload.layers:
        stats = sim.simulate_layer(layer)
        group_cycles = stats.cycles * sim.config.n_groups
        result.rows.append(
            Fig18Row(
                layer=layer.name,
                nonzero_ratio=layer.act_density,
                run=stats.run_cycles / group_cycles,
                skip=stats.skip_cycles / group_cycles,
                idle=stats.idle_cycles / group_cycles,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 19 — per-chunk cycle histograms
# ---------------------------------------------------------------------------


@dataclass
class Fig19Result:
    network: str
    histograms: Dict[str, np.ndarray] = field(default_factory=dict)  # layer -> counts[cycles]
    peaks: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        rows = [(layer, int(peak), int(hist.sum())) for (layer, peak), hist in
                zip(self.peaks.items(), self.histograms.values())]
        return format_table(["layer", "peak cycles", "samples"], rows,
                            title=f"Fig.19 — cycles per A(1x1x16) chunk ({self.network})")


def fig19_chunk_cycles(
    network: str = "alexnet",
    ratio: float = 0.03,
    samples: int = 50000,
    seed: Optional[int] = None,
) -> Fig19Result:
    """Distribution of per-pass PE-group cycles for each conv layer."""
    rng = np.random.default_rng(resolve_seed(seed, default=1))
    workload = paper_workload(network, ratio=ratio)
    result = Fig19Result(network=network)
    for layer in workload.layers:
        if layer.is_first:
            continue  # dense first layer has a fixed pass cost
        p_multi = multi_outlier_probability(layer.weight_outlier_ratio)
        d_norm = layer.act_density * (1.0 - layer.act_outlier_ratio)
        cycles = sample_pass_cycles(rng, samples, d_norm, p_multi)
        hist = np.bincount(cycles, minlength=36)
        result.histograms[layer.name] = hist
        result.peaks[layer.name] = int(hist.argmax())
    return result
