"""Opt-in multiprocessing layer-parallel simulation.

The analytic per-layer simulators are embarrassingly parallel across a
network's layers: every :meth:`simulate_layer` call is a pure function of
the layer workload, and only the final-output DRAM write-back
(:meth:`finalize_network`) looks across layers. ``parallel_network_run``
exploits that: it farms the layers of one (accelerator, network) pair out
to a :mod:`multiprocessing` pool and reassembles the :class:`RunStats`
in layer order, so the result is bit-identical to the serial
``simulate_network`` (asserted by tests/test_bench_and_parallel.py).

Workers rebuild their simulator from the (kind, network, ratio) triple
instead of pickling it — simulator objects carry an obs
:class:`~repro.obs.Registry`, which is process-local by design. Worker
observability therefore stays in the workers; the parent registry only
records the fan-out under ``parallel/*``.

Enabled from the CLI with ``repro run fig11 --jobs N`` / ``repro compare
<network> --jobs N``; the default (``jobs=1``) never imports a pool, so
the serial path is exactly the seed behaviour.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Tuple

from ..arch.stats import LayerStats, RunStats
from ..obs import NULL_REGISTRY, Registry
from .seeding import global_seed, set_global_seed

__all__ = ["parallel_network_run", "pool_context"]

#: Cache of (kind, network, ratio) -> (simulator, workload) per worker
#: process, so a pool reused across layers builds each simulator once.
_WORKER_STATE: dict = {}


def _simulate_one(job: Tuple[str, str, float, int, Optional[int]]) -> LayerStats:
    kind, network, ratio, index, seed = job
    # The parent's global --seed does not travel with fork-at-pool-start
    # ordering guarantees (and never with spawn); re-seed explicitly so
    # a retried or resumed layer reproduces bit-identical LayerStats.
    set_global_seed(seed)
    state = _WORKER_STATE.get((kind, network, ratio))
    if state is None:
        from .experiments import _simulator
        from .workloads import paper_workload

        state = (_simulator(kind, network, ratio), paper_workload(network, ratio=ratio))
        _WORKER_STATE[(kind, network, ratio)] = state
    simulator, workload = state
    return simulator.simulate_layer(workload.layers[index])


def pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, shares the warm interpreter), else spawn."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def parallel_network_run(
    kind: str,
    network: str,
    ratio: float = 0.03,
    jobs: int = 2,
    obs: Optional[Registry] = None,
) -> RunStats:
    """Simulate one network on one accelerator with layers fanned out.

    Bit-identical to ``_simulator(kind, ...).simulate_network(workload)``:
    layer results come back in submission order and the final-output DRAM
    charge is applied by the same :meth:`finalize_network` the serial path
    uses. ``jobs <= 1`` (or a single-layer network) short-circuits to the
    serial path.
    """
    from .experiments import _simulator
    from .workloads import paper_workload

    obs = obs if obs is not None else NULL_REGISTRY
    workload = paper_workload(network, ratio=ratio)
    simulator = _simulator(kind, network, ratio)
    n_layers = len(workload.layers)
    if jobs <= 1 or n_layers <= 1:
        return simulator.simulate_network(workload)

    jobs = min(jobs, n_layers)
    payload = [(kind, network, ratio, index, global_seed()) for index in range(n_layers)]
    with obs.timer(f"parallel/{kind}/{network}"):
        # Not `with Pool(...)`: Pool.__exit__ only calls terminate() and
        # leaves the join to GC, so a KeyboardInterrupt mid-imap could
        # return to the shell with workers still dying in the background.
        # Terminate AND join explicitly on any interrupt/error.
        pool = pool_context().Pool(processes=jobs)
        try:
            layer_stats = list(pool.imap(_simulate_one, payload, chunksize=1))
            pool.close()
            pool.join()
        except BaseException:
            pool.terminate()
            pool.join()
            raise
    obs.counter("parallel/jobs").add(jobs)
    obs.counter("parallel/layers").add(n_layers)

    stats = RunStats(accelerator=simulator.config.name, network=workload.name)
    for layer in layer_stats:
        stats.add(layer)
    return simulator.finalize_network(stats, workload)
