"""Distributed sweep coordination: crash-safe cell leases over a run dir.

Any number of ``repro work <run-dir>`` worker processes — on one
machine or many sharing a filesystem — cooperatively drain one
checkpointed sweep. The only shared state is the run directory itself:

- **Claims** are lease files under ``<run-dir>/leases/``, one per
  in-flight cell, created atomically (write-to-temp + ``os.link``,
  which fails if the lease already exists — the portable ``O_EXCL``).
  A lease carries the claimer's owner id, a fencing token that
  increments on every steal, and heartbeat progress.
- **Heartbeats** re-write the lease atomically while the cell
  simulates. A renewal that finds the file gone or re-owned raises
  :class:`~repro.errors.StaleOwnerError` — the lease was stolen.
- **Steals** recover cells whose owner died or stalled. Expiry is
  *observation-based*: a would-be thief remembers the lease fingerprint
  ``(owner, token, heartbeats)`` and the first time it saw it on its
  **own monotonic clock**; only when the same fingerprint has persisted
  longer than the lease TTL plus a skew margin is the lease stale.
  Wall-clock timestamps in the lease are informational only — workers'
  clocks are never compared (see the clock-skew tests). As a fast
  path, a lease whose owner is a dead process on *this* host is stale
  immediately. The steal itself is a rename-to-unique-name CAS, so of
  N concurrent thieves exactly one wins.
- **Double completion** cannot corrupt results: the first durable
  ``repro.cell/v1`` record wins, a second identical completion is
  counted (``coord/duplicates``) and discarded, and a *diverging*
  completion raises :class:`~repro.errors.ArtifactIntegrityError` —
  a deterministic cell can only diverge if something is broken.

Counters land under ``coord/*`` and reconcile exactly per process:
``claimed == completed + expired + released`` (every claim ends in
exactly one bucket), plus ``steals``, ``contention``,
``stale_detected``, ``heartbeats`` and ``duplicates``.
docs/COORD.md has the full protocol, lifecycle diagram and failure
matrix.
"""

from __future__ import annotations

import os
import signal
import socket
import time
import uuid
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..errors import ArtifactIntegrityError, LeaseError, StaleOwnerError
from ..obs import NULL_REGISTRY, Registry
from .serialize import load_json, save_json

__all__ = [
    "LEASE_SCHEMA",
    "LEASES_DIR",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_HEARTBEAT_S",
    "SKEW_MARGIN_S",
    "KILL_AFTER_CLAIMS_ENV",
    "KILL_AFTER_HEARTBEATS_ENV",
    "Lease",
    "LeaseManager",
    "CellCoordinator",
    "default_owner_id",
    "maybe_kill",
    "safe_cell_filename",
]

LEASE_SCHEMA = "repro.lease/v1"
LEASES_DIR = "leases"

#: Default seconds a lease may go unrenewed before other workers steal
#: the cell. When a per-cell ``--timeout`` is set, the effective default
#: scales to cover it (see ``effective_lease_ttl``).
DEFAULT_LEASE_TTL_S = 30.0
#: Default seconds between heartbeat renewals of a held lease.
DEFAULT_HEARTBEAT_S = 2.0
#: Grace added to the TTL before an observer declares a lease stale —
#: absorbs scheduling jitter between the claimer's renewal cadence and
#: the observer's sampling cadence (both on their own monotonic clocks).
SKEW_MARGIN_S = 1.0

#: Test/CI hook: SIGKILL this process right after its N-th successful
#: lease claim — before any work or record — i.e. crash in the
#: claim-to-record window.
KILL_AFTER_CLAIMS_ENV = "REPRO_KILL_AFTER_CLAIMS"
#: Test/CI hook: SIGKILL this process right after writing its N-th
#: heartbeat renewal — i.e. crash mid-cell with a fresh-looking lease.
KILL_AFTER_HEARTBEATS_ENV = "REPRO_KILL_AFTER_HEARTBEATS"


def default_owner_id() -> str:
    """A globally unique worker identity: ``host:pid:nonce``.

    The host and pid let same-host workers detect dead owners
    immediately; the nonce keeps recycled pids from impersonating a
    previous owner's lease fingerprint.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


def safe_cell_filename(cell_id: str, suffix: str = ".json") -> str:
    """The filesystem-safe name a cell's artifacts are stored under."""
    safe = "".join(c if (c.isalnum() or c in "._=-") else "_" for c in cell_id)
    return f"{safe}{suffix}"


def maybe_kill(env: str, done: int) -> None:
    """Chaos hook: SIGKILL this process once ``done`` reaches ``$env``.

    Shared by every worker flavour (filesystem leases here, HTTP remote
    workers in :mod:`repro.harness.remote`) so the chaos harness can
    crash any of them at the same protocol-critical instants.
    """
    kill_after = os.environ.get(env)
    if kill_after and done >= int(kill_after):
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here


_maybe_kill = maybe_kill  # internal spelling kept for existing call sites


def _owner_alive(owner: str) -> Optional[bool]:
    """Is the owner's process alive — ``None`` when undecidable.

    Only a same-host owner id of the ``host:pid:nonce`` form can be
    probed; anything else (remote worker, synthetic test owner) returns
    ``None`` and expiry falls back to the observation clock. A recycled
    pid can only make a dead owner look alive — the safe direction.
    """
    parts = owner.rsplit(":", 2)
    if len(parts) != 3 or parts[0] != socket.gethostname():
        return None
    try:
        pid = int(parts[1])
    except ValueError:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return None
    return True


@dataclass
class Lease:
    """One cell's claim: who holds it, fenced by ``token``.

    ``claimed_wall`` is a human-facing wall-clock timestamp and is
    **never** compared across workers — expiry uses each observer's own
    monotonic clock. ``elapsed_s`` is the claimer's monotonic time
    since its claim, refreshed on every heartbeat (status display and
    diagnostics only).
    """

    cell_id: str
    owner: str
    token: int
    ttl_s: float
    claimed_wall: str = ""
    elapsed_s: float = 0.0
    heartbeats: int = 0

    def fingerprint(self) -> Tuple[str, int, int]:
        """Changes on every claim, steal, and heartbeat — the identity
        an observer's staleness clock is keyed on."""
        return (self.owner, self.token, self.heartbeats)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": LEASE_SCHEMA,
            "cell_id": self.cell_id,
            "owner": self.owner,
            "token": self.token,
            "ttl_s": self.ttl_s,
            "claimed_wall": self.claimed_wall,
            "elapsed_s": self.elapsed_s,
            "heartbeats": self.heartbeats,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "Lease":
        return Lease(
            cell_id=doc["cell_id"],
            owner=doc["owner"],
            token=int(doc["token"]),
            ttl_s=float(doc["ttl_s"]),
            claimed_wall=doc.get("claimed_wall", ""),
            elapsed_s=float(doc.get("elapsed_s", 0.0)),
            heartbeats=int(doc.get("heartbeats", 0)),
        )


#: Sentinel fingerprint for a lease file that exists but cannot be
#: parsed — breakable like any other lease once it sits unchanged for
#: a full TTL.
_CORRUPT = Lease(cell_id="", owner="<corrupt>", token=-1, ttl_s=0.0)


class LeaseManager:
    """Claim, renew, steal and release cell leases in one directory.

    One instance per worker process; ``owner`` identifies it in every
    lease it writes. ``clock`` is this process's monotonic clock,
    injectable for the clock-skew tests — wall clocks never participate
    in expiry decisions.
    """

    def __init__(
        self,
        root: Union[str, Path],
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        obs: Optional[Registry] = None,
        clock: Callable[[], float] = time.monotonic,
        skew_margin_s: float = SKEW_MARGIN_S,
    ):
        self.root = Path(root)
        self.owner = owner or default_owner_id()
        self.ttl_s = float(ttl_s)
        self.heartbeat_s = float(heartbeat_s)
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.clock = clock
        self.skew_margin_s = float(skew_margin_s)
        #: leases this process currently holds, by cell id
        self._held: Dict[str, Lease] = {}
        #: monotonic claim instant of each held lease
        self._claim_t0: Dict[str, float] = {}
        #: staleness clock per contested cell: (fingerprint, first seen)
        self._observed: Dict[str, Tuple[Tuple[str, int, int], float]] = {}
        self._claims = 0
        self._renewals = 0

    def _count(self, name: str, n: int = 1) -> None:
        self.obs.counter(f"coord/{name}").add(n)

    def lease_path(self, cell_id: str) -> Path:
        return self.root / safe_cell_filename(cell_id, suffix=".lease.json")

    def holds(self, cell_id: str) -> bool:
        return cell_id in self._held

    @property
    def held(self) -> Dict[str, Lease]:
        return dict(self._held)

    # -- reading ------------------------------------------------------------

    def _read(self, path: Path) -> Optional[Lease]:
        """The lease at ``path`` — ``_CORRUPT`` if unparseable, ``None``
        if (or once) the file is gone."""
        try:
            doc = load_json(path, verify=True)
            if doc.get("schema") != LEASE_SCHEMA:
                return _CORRUPT
            return Lease.from_dict(doc)
        except ArtifactIntegrityError:
            return _CORRUPT if path.exists() else None
        except (KeyError, TypeError, ValueError):
            return _CORRUPT

    def observe_all(self) -> Dict[str, Lease]:
        """Every current lease by cell id (``repro status`` view)."""
        out: Dict[str, Lease] = {}
        if not self.root.exists():
            return out
        for path in sorted(self.root.glob("*.lease.json")):
            lease = self._read(path)
            if lease is None:
                continue
            if lease is _CORRUPT:
                cell_id = path.name[: -len(".lease.json")]
                out[cell_id] = Lease(
                    cell_id=cell_id, owner="<corrupt>", token=-1, ttl_s=0.0
                )
            else:
                out[lease.cell_id] = lease
        return out

    # -- claiming -----------------------------------------------------------

    def try_claim(self, cell_id: str) -> Optional[Lease]:
        """Claim ``cell_id``, stealing an expired lease if need be.

        Returns the held :class:`Lease`, or ``None`` when the cell is
        validly held elsewhere (counted as ``coord/contention``) — call
        again later; the staleness clock is already running.
        """
        path = self.lease_path(cell_id)
        current = self._read(path)
        if current is None:
            lease = self._fresh(cell_id, token=1)
            if self._publish_new(path, lease):
                self._register_claim(lease)
                return lease
            self._count("contention")
            return None
        return self._try_steal(cell_id, path, current)

    def _fresh(self, cell_id: str, token: int) -> Lease:
        return Lease(
            cell_id=cell_id,
            owner=self.owner,
            token=token,
            ttl_s=self.ttl_s,
            claimed_wall=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )

    def _publish_new(self, path: Path, lease: Lease) -> bool:
        """Atomically create ``path`` — False if someone else got there.

        ``os.link`` from a private temp file is the portable
        fail-if-exists primitive (``O_EXCL`` semantics, rename-based
        like every other artifact write in this repo).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex[:8]}.tmp")
        save_json(lease.to_dict(), tmp)
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _try_steal(self, cell_id: str, path: Path, current: Lease) -> Optional[Lease]:
        if current is not _CORRUPT and current.owner == self.owner:
            held = self._held.get(cell_id)
            if held is not None and held.token == current.token:
                return held  # already ours
        if not self._is_stale(cell_id, current):
            self._count("contention")
            return None
        self._count("stale_detected")
        # Rename-CAS: of N concurrent thieves exactly one wins the rename;
        # the losers see ENOENT and fall back to contention.
        grave = path.with_name(f".{path.name}.steal.{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, grave)
        except OSError:
            self._count("contention")
            return None
        old_token = 0 if current is _CORRUPT else current.token
        lease = self._fresh(cell_id, token=old_token + 1)
        published = self._publish_new(path, lease)
        try:
            os.unlink(grave)
        except OSError:
            pass
        self._observed.pop(cell_id, None)
        if not published:
            # A fresh claimer slipped in between our rename and link;
            # its lease (token restarted) is live — back off.
            self._count("contention")
            return None
        self._count("steals")
        self._register_claim(lease)
        return lease

    def _is_stale(self, cell_id: str, current: Lease) -> bool:
        """Observation-based expiry on this process's monotonic clock."""
        if current is not _CORRUPT and _owner_alive(current.owner) is False:
            return True
        ttl = self.ttl_s if current is _CORRUPT else max(current.ttl_s, 0.0)
        fp = current.fingerprint()
        now = self.clock()
        seen = self._observed.get(cell_id)
        if seen is None or seen[0] != fp:
            self._observed[cell_id] = (fp, now)
            return False
        return (now - seen[1]) > ttl + self.skew_margin_s

    def _register_claim(self, lease: Lease) -> None:
        self._held[lease.cell_id] = lease
        self._claim_t0[lease.cell_id] = self.clock()
        self._count("claimed")
        self._claims += 1
        _maybe_kill(KILL_AFTER_CLAIMS_ENV, self._claims)

    # -- renewing -----------------------------------------------------------

    def heartbeat(self, cell_id: str) -> Lease:
        """Renew a held lease; :class:`StaleOwnerError` if it was stolen.

        The raise does **not** release the claim — the caller decides
        whether to abandon the attempt or finish it and let the first
        durable record win; either way the claim is settled exactly
        once through :meth:`release`.
        """
        lease = self._held.get(cell_id)
        if lease is None:
            raise LeaseError(
                "heartbeat on a lease this process does not hold",
                cell_id=cell_id,
                owner=self.owner,
            )
        current = self._read(self.lease_path(cell_id))
        if (
            current is None
            or current is _CORRUPT
            or current.owner != lease.owner
            or current.token != lease.token
        ):
            raise StaleOwnerError(
                "lease expired and was stolen",
                cell_id=cell_id,
                owner=self.owner,
                current_owner=None if current in (None, _CORRUPT) else current.owner,
            )
        lease.elapsed_s = round(self.clock() - self._claim_t0[cell_id], 3)
        lease.heartbeats += 1
        save_json(lease.to_dict(), self.lease_path(cell_id))
        self._count("heartbeats")
        self._renewals += 1
        _maybe_kill(KILL_AFTER_HEARTBEATS_ENV, self._renewals)
        return lease

    # -- releasing ----------------------------------------------------------

    def release(self, cell_id: str, outcome: str) -> None:
        """Settle a claim into exactly one ``coord/*`` outcome bucket.

        ``completed`` — a durable cell record is in place (written by us
        or adopted identical); ``released`` — voluntary relinquish with
        no record (teardown); ``expired`` — the lease was lost to a
        thief and the attempt abandoned. The lease file is removed only
        if it is still verifiably ours.
        """
        if outcome not in ("completed", "expired", "released"):
            raise LeaseError(f"unknown release outcome {outcome!r}", cell_id=cell_id)
        lease = self._held.pop(cell_id, None)
        self._claim_t0.pop(cell_id, None)
        if lease is None:
            return
        self._count(outcome)
        path = self.lease_path(cell_id)
        current = self._read(path)
        if (
            current is not None
            and current is not _CORRUPT
            and current.owner == lease.owner
            and current.token == lease.token
        ):
            try:
                os.unlink(path)
            except OSError:
                pass

    def release_all(self, lost: Optional[set] = None) -> None:
        """Settle every outstanding claim (teardown path)."""
        lost = lost or set()
        for cell_id in list(self._held):
            self.release(cell_id, "expired" if cell_id in lost else "released")

    def cleanup(self) -> int:
        """Delete every lease and temp file — call only once all cells
        have durable records; returns files removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in list(self.root.iterdir()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.root.rmdir()
        except OSError:
            pass
        return removed


class CellCoordinator:
    """The lease protocol as the supervised pool speaks it.

    One instance per :func:`~repro.harness.resilience.execute_sweep`
    invocation. ``rundir`` is duck-typed (anything with ``leases_dir``,
    ``read_cell`` and ``write_cell_exclusive`` — in practice a
    :class:`~repro.harness.resilience.RunDir`), which keeps this module
    free of an import cycle with the resilience layer above it.

    The pool calls :meth:`begin` before launching a cell (claim, adopt
    a finished record, or defer), :meth:`tick` every poll iteration
    (heartbeats for every held lease, including cells waiting out retry
    backoff), :meth:`commit` when a cell reaches a final status, and
    :meth:`abandon_all`/:meth:`finalize` on teardown.
    """

    def __init__(
        self,
        rundir: Any,
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        obs: Optional[Registry] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rundir = rundir
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.heartbeat_s = float(heartbeat_s)
        self.leases = LeaseManager(
            rundir.leases_dir,
            owner=owner,
            ttl_s=ttl_s,
            heartbeat_s=heartbeat_s,
            obs=self.obs,
            clock=clock,
        )
        #: how long a deferred (validly-leased-elsewhere) cell waits
        #: before its next claim attempt — also the observation cadence
        #: feeding the staleness clock
        self.poll_s = max(0.05, min(1.0, self.heartbeat_s))
        self._clock = clock
        self._due: Dict[str, float] = {}
        self._lost: set = set()

    @property
    def owner(self) -> str:
        return self.leases.owner

    def holds(self, cell_id: str) -> bool:
        return self.leases.holds(cell_id)

    def begin(self, spec: Any) -> Tuple[str, Any]:
        """Open a cell: ``("done", record)`` — another worker already
        finished it; ``("lease", lease)`` — ours, run it; or
        ``("wait", delay_s)`` — validly held elsewhere, retry later."""
        record = self.rundir.read_cell(spec)
        if record is not None and record.get("status") == "ok":
            return "done", record
        lease = self.leases.try_claim(spec.cell_id)
        if lease is None:
            return "wait", self.poll_s
        self._due[spec.cell_id] = self._clock() + self.heartbeat_s
        return "lease", lease

    def tick(self) -> None:
        """Renew every held lease that is due. A stolen lease is marked
        lost (once) and its in-flight attempt allowed to finish — the
        first durable record settles who won."""
        now = self._clock()
        for cell_id, due in list(self._due.items()):
            if cell_id in self._lost or now < due:
                continue
            try:
                self.leases.heartbeat(cell_id)
            except StaleOwnerError:
                self._lost.add(cell_id)
            self._due[cell_id] = now + self.heartbeat_s

    def commit(
        self,
        spec: Any,
        status: str,
        result: Any = None,
        error: Optional[Dict[str, Any]] = None,
        attempts: int = 1,
    ) -> Dict[str, Any]:
        """Durably record a cell's final status and settle its claim.

        First durable record wins: if an identical record is already in
        place the duplicate is counted and discarded; a diverging one
        raises from ``write_cell_exclusive``.
        """
        record, wrote = self.rundir.write_cell_exclusive(
            spec, status, result=result, error=error, attempts=attempts
        )
        if not wrote:
            self.obs.counter("coord/duplicates").add()
        self._due.pop(spec.cell_id, None)
        self._lost.discard(spec.cell_id)
        self.leases.release(spec.cell_id, "completed")
        return record

    def abandon_all(self) -> None:
        """Settle every outstanding claim without a record (teardown)."""
        self.leases.release_all(lost=self._lost)
        self._due.clear()
        self._lost.clear()

    def finalize(self, all_recorded: bool) -> int:
        """End-of-drain housekeeping: settle leftovers, and once every
        cell has a durable record sweep the leases directory empty —
        the zero-orphaned-lease-files guarantee."""
        self.abandon_all()
        return self.leases.cleanup() if all_recorded else 0
