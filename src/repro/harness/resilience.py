"""Resilient sweep execution: checkpointed cells, supervised workers, resume.

Every sweep-shaped verb decomposes into **cells** — independent
(accelerator, network, ratio) or (rate)/(width) points, each a pure
function of its JSON-able parameters plus the global seed. This module
executes a sweep's cells through a checkpointed, supervised pipeline so
a crash, hang, or Ctrl-C loses at most the cell in flight:

- **Run directory** — ``<run-dir>/manifest.json`` records the sweep's
  identity (plan name, parameters, seed, a SHA-256 ``config_hash`` over
  all of it, and the full cell list); each finished cell writes an
  atomic, digest-carrying record to ``<run-dir>/cells/<id>.json``.
- **Supervised worker pool** — each cell runs in its own worker
  process with a per-task timeout, bounded retry with exponential
  backoff, and crash isolation: a worker that dies (segfault, OOM
  kill, raised exception) fails *its cell*, not the run.
  ``KeyboardInterrupt``/``SIGTERM`` terminate and join all workers
  before propagating; completed cells are already on disk.
- **Graceful degradation** — a cell that exhausts its retries is
  recorded as a structured :class:`~repro.errors.CellError` in its
  record, the assembled result, and the envelope; reports render a
  FAILED row instead of aborting.
- **Resume** — ``repro resume <run-dir>`` re-executes only missing,
  failed, or corrupt cells and reassembles the final envelope
  bit-identically to an uninterrupted run (modulo the fields the
  manifest declares volatile: run id and creation timestamp).
- **Coordination** — every execution mode (serial, ``--jobs``,
  ``repro resume``, and N independent ``repro work`` processes
  draining one run dir) routes through the same lease protocol
  (:mod:`repro.harness.coord`, docs/COORD.md): cells are claimed via
  crash-consistent lease files, heartbeat-renewed while simulating,
  stolen when their owner dies or stalls, and settled by the first
  durable cell record. A worker that finds a cell finished elsewhere
  *adopts* the record instead of recomputing.

Observability lands under ``resilience/*`` (see docs/RESILIENCE.md for
the exact counter semantics); the core reconciliation invariant is
``cells_attempted == cells_succeeded + cells_failed``, with
``cells_adopted`` counting records taken over from other workers and
the ``coord/*`` ledger reconciling claims exactly (docs/COORD.md).
"""

from __future__ import annotations

import copy
import heapq
import itertools
import multiprocessing.connection
import os
import signal
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ArtifactIntegrityError, CellError
from ..obs import NULL_REGISTRY, Registry
from .coord import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    LEASES_DIR,
    CellCoordinator,
    LeaseManager,
    default_owner_id,
    safe_cell_filename,
)
from .parallel import pool_context
from .seeding import set_global_seed
from .serialize import (
    INTEGRITY_KEY,
    _canonical_dumps,
    content_digest,
    experiment_envelope,
    load_json,
    save_json,
    to_jsonable,
)

__all__ = [
    "RUN_SCHEMA",
    "CELL_SCHEMA",
    "MANIFEST_NAME",
    "ENVELOPE_NAME",
    "KILL_AFTER_ENV",
    "CellSpec",
    "RetryPolicy",
    "SweepPlan",
    "RunDir",
    "register_cell_runner",
    "breakdown_plan",
    "faults_plan",
    "execute_sweep",
    "resume_run",
    "work_run",
    "status_run",
    "effective_lease_ttl",
    "canonical_envelope_bytes",
]

RUN_SCHEMA = "repro.run/v1"
CELL_SCHEMA = "repro.cell/v1"
MANIFEST_NAME = "manifest.json"
ENVELOPE_NAME = "envelope.json"
CELLS_DIR = "cells"

#: Fields of the manifest (and the envelope's ``resilience`` block) that
#: legitimately differ between a resumed and an uninterrupted run.
VOLATILE_FIELDS = ("run_id", "created")

#: Test/CI hook: when set to N, the parent SIGKILLs itself immediately
#: after the N-th cell record is written this invocation — a
#: deterministic "crash at a cell boundary" for kill-resume tests.
KILL_AFTER_ENV = "REPRO_KILL_AFTER_CELLS"


# ---------------------------------------------------------------------------
# Cells, plans, policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One re-executable unit of a sweep, addressable by ``cell_id``."""

    cell_id: str
    kind: str
    params: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"cell_id": self.cell_id, "kind": self.kind, "params": dict(self.params)}

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "CellSpec":
        return CellSpec(cell_id=doc["cell_id"], kind=doc["kind"], params=dict(doc["params"]))


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and a per-task timeout.

    ``timeout_s=None`` disables the per-task deadline. ``max_attempts``
    counts executions, so 3 means one try plus two retries.
    """

    max_attempts: int = 3
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0

    def backoff(self, failed_attempt: int) -> float:
        return self.backoff_base_s * (self.backoff_factor ** (failed_attempt - 1))


@dataclass
class SweepPlan:
    """A sweep's full declarative identity: enough to (re-)execute it."""

    plan: str
    experiment: str
    description: str
    seed: Optional[int]
    params: Dict[str, Any]
    cells: List[CellSpec] = field(default_factory=list)

    def config_hash(self) -> str:
        return content_digest(
            {
                "plan": self.plan,
                "experiment": self.experiment,
                "seed": self.seed,
                "params": self.params,
                "cells": [c.to_dict() for c in self.cells],
            }
        )


#: kind -> runner; a runner maps a cell's params dict to a JSON-able result.
CELL_RUNNERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {}

#: plan name -> assembler(plan, records) -> result object with ``format()``.
PLAN_ASSEMBLERS: Dict[str, Callable[["SweepPlan", Dict[str, Dict[str, Any]]], Any]] = {}


def register_cell_runner(kind: str, runner: Callable[[Dict[str, Any]], Any]) -> None:
    """Register a cell runner; workers look their cell's kind up here."""
    CELL_RUNNERS[kind] = runner


# -- built-in cells: breakdown sweeps (fig11/12/13, compare) ----------------


def _run_breakdown_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    set_global_seed(params.get("seed"))
    from .experiments import simulate_cell

    kind, network, ratio = params["accelerator"], params["network"], params["ratio"]
    # Workers resolve the shared cache from the environment
    # (REPRO_CACHE_DIR / REPRO_NO_CACHE), so a resumed or --jobs run
    # treats warm cells exactly like completed ones: decode + reuse.
    return simulate_cell(kind, network, ratio=ratio).to_dict()


def _run_fault_rate_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    set_global_seed(params.get("seed"))
    from .faults import fault_rate_cell

    return fault_rate_cell(
        params["network"],
        params["rate"],
        policy=params["policy"],
        model=params["model"],
        ratio=params["ratio"],
        seed=params["seed"],
    )


def _run_fault_width_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    set_global_seed(params.get("seed"))
    from .faults import fault_width_cell

    return fault_width_cell(
        params["network"], params["width"], ratio=params["ratio"], seed=params["seed"]
    )


def _run_explore_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    set_global_seed(params.get("seed"))
    from .explore import explore_cell

    return explore_cell(
        params["network"],
        params["candidate"],
        fidelity_layers=params.get("fidelity_layers"),
    )


register_cell_runner("breakdown", _run_breakdown_cell)
register_cell_runner("fault_rate", _run_fault_rate_cell)
register_cell_runner("fault_width", _run_fault_width_cell)
register_cell_runner("explore", _run_explore_cell)


def breakdown_plan(
    network: str,
    ratio: float = 0.03,
    seed: Optional[int] = None,
    experiment: str = "compare",
    description: str = "",
) -> SweepPlan:
    """One cell per accelerator of a Figs. 11-13 / ``compare`` breakdown."""
    from .experiments import ALL_ACCELERATORS

    params = {"network": network, "ratio": float(ratio)}
    cells = [
        CellSpec(
            cell_id=kind,
            kind="breakdown",
            params={"accelerator": kind, "network": network, "ratio": float(ratio), "seed": seed},
        )
        for kind in ALL_ACCELERATORS
    ]
    return SweepPlan(
        plan="breakdown",
        experiment=experiment,
        description=description or f"cycle/energy breakdown for {network}",
        seed=seed,
        params=params,
        cells=cells,
    )


def _assemble_breakdown(plan: SweepPlan, records: Dict[str, Dict[str, Any]]):
    from .experiments import BreakdownResult
    from .serialize import run_stats_from_dict

    result = BreakdownResult(network=plan.params["network"])
    for spec in plan.cells:
        record = records.get(spec.cell_id)
        if record is not None and record.get("status") == "ok":
            result.runs[spec.cell_id] = run_stats_from_dict(record["result"])
        else:
            error = (record or {}).get("error") or CellError(
                "cell record missing", cell_id=spec.cell_id, kind="crash"
            ).to_dict()
            result.failures[spec.cell_id] = error
    return result


def faults_plan(
    network: str,
    rates: Sequence[float],
    widths: Sequence[int],
    policy: str = "degrade",
    model: str = "bitflip",
    ratio: float = 0.03,
    seed: Optional[int] = None,
) -> SweepPlan:
    """One cell per rate point and per width point of ``repro faults``."""
    from .seeding import resolve_seed

    seed = resolve_seed(seed, default=0)
    params = {
        "network": network,
        "rates": [float(r) for r in rates],
        "widths": [int(w) for w in widths],
        "policy": policy,
        "model": model,
        "ratio": float(ratio),
    }
    cells = [
        CellSpec(
            cell_id=f"rate-{float(rate):g}",
            kind="fault_rate",
            params={
                "network": network,
                "rate": float(rate),
                "policy": policy,
                "model": model,
                "ratio": float(ratio),
                "seed": seed,
            },
        )
        for rate in rates
    ] + [
        CellSpec(
            cell_id=f"width-{int(width)}",
            kind="fault_width",
            params={"network": network, "width": int(width), "ratio": float(ratio), "seed": seed},
        )
        for width in widths
    ]
    return SweepPlan(
        plan="faults",
        experiment="faults",
        description=f"fault-rate + accumulator-width sweep for {network}",
        seed=seed,
        params=params,
        cells=cells,
    )


def _assemble_faults(plan: SweepPlan, records: Dict[str, Dict[str, Any]]):
    from .faults import FaultSweepResult, fault_case

    p = plan.params
    _, _, stats, required = fault_case(p["network"], p["ratio"], plan.seed)
    result = FaultSweepResult(
        network=p["network"],
        policy=p["policy"],
        model=p["model"],
        seed=plan.seed,
        case=stats,
        required_bits=required,
    )
    for spec in plan.cells:
        record = records.get(spec.cell_id)
        if record is not None and record.get("status") == "ok":
            if spec.kind == "fault_rate":
                result.rate_rows.append(record["result"])
            else:
                result.width_rows.append(record["result"])
        else:
            result.failures.append(
                (record or {}).get("error")
                or CellError("cell record missing", cell_id=spec.cell_id, kind="crash").to_dict()
            )
    return result


PLAN_ASSEMBLERS["breakdown"] = _assemble_breakdown
PLAN_ASSEMBLERS["faults"] = _assemble_faults


# ---------------------------------------------------------------------------
# Run directory: manifest + per-cell checkpoint records
# ---------------------------------------------------------------------------


def _cell_filename(cell_id: str) -> str:
    return safe_cell_filename(cell_id)


def _config_diff(manifest: Dict[str, Any], plan: SweepPlan) -> List[str]:
    """The config keys on which a manifest and a plan disagree.

    Names the *semantic* source of a config-hash mismatch — seed,
    params.<key>, the cell list — so the error message says what to
    change rather than just that two digests differ.
    """
    diffs: List[str] = []
    for key, ours in (
        ("plan", plan.plan),
        ("experiment", plan.experiment),
        ("seed", plan.seed),
    ):
        if to_jsonable(manifest.get(key)) != to_jsonable(ours):
            diffs.append(key)
    theirs_params = manifest.get("params") or {}
    ours_params = to_jsonable(plan.params) or {}
    for key in sorted(set(theirs_params) | set(ours_params)):
        if theirs_params.get(key) != ours_params.get(key):
            diffs.append(f"params.{key}")
    if to_jsonable([c.to_dict() for c in plan.cells]) != (manifest.get("cells") or []):
        diffs.append("cells")
    return diffs


class RunDir:
    """The on-disk checkpoint of one sweep (docs/RESILIENCE.md layout)."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._written = 0

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def cells_dir(self) -> Path:
        return self.root / CELLS_DIR

    @property
    def envelope_path(self) -> Path:
        return self.root / ENVELOPE_NAME

    @property
    def leases_dir(self) -> Path:
        return self.root / LEASES_DIR

    def cell_path(self, cell_id: str) -> Path:
        return self.cells_dir / _cell_filename(cell_id)

    # -- manifest -----------------------------------------------------------

    def init(self, plan: SweepPlan, verify: bool = True) -> Tuple[Dict[str, Any], bool]:
        """Create the manifest, or validate against an existing one.

        Returns ``(manifest, resumed)``. An existing manifest whose
        ``config_hash`` differs from the plan's is a different sweep —
        refusing beats silently mixing two runs' cells.
        """
        if self.manifest_path.exists():
            manifest = self.load_manifest(verify=verify)
            if manifest["config_hash"] != plan.config_hash():
                diffs = _config_diff(manifest, plan) or ["<undetermined>"]
                raise ArtifactIntegrityError(
                    "run directory belongs to a different sweep configuration: "
                    f"manifest config_hash {manifest['config_hash']} != "
                    f"requested {plan.config_hash()}; "
                    f"differing keys: {', '.join(diffs)}",
                    path=str(self.manifest_path),
                    reason="manifest_mismatch",
                )
            return manifest, True
        manifest = {
            "schema": RUN_SCHEMA,
            "schema_version": 1,
            "run_id": uuid.uuid4().hex[:12],
            "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "volatile": list(VOLATILE_FIELDS),
            "plan": plan.plan,
            "experiment": plan.experiment,
            "description": plan.description,
            "seed": plan.seed,
            "params": plan.params,
            "config_hash": plan.config_hash(),
            "cells": [c.to_dict() for c in plan.cells],
        }
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        save_json(manifest, self.manifest_path)
        return manifest, False

    def load_manifest(self, verify: bool = True) -> Dict[str, Any]:
        if not self.manifest_path.exists():
            raise ArtifactIntegrityError(
                "no manifest — not a run directory",
                path=str(self.manifest_path),
                reason="unreadable",
            )
        manifest = load_json(self.manifest_path, verify=verify)
        if not isinstance(manifest, dict):
            raise ArtifactIntegrityError(
                f"manifest is not a JSON object ({type(manifest).__name__}) — "
                "not a run directory",
                path=str(self.manifest_path),
                reason="manifest_mismatch",
            )
        if manifest.get("schema") != RUN_SCHEMA:
            raise ArtifactIntegrityError(
                f"unknown manifest schema {manifest.get('schema')!r}",
                path=str(self.manifest_path),
                reason="manifest_mismatch",
            )
        return manifest

    def plan_from_manifest(self, manifest: Dict[str, Any]) -> SweepPlan:
        return SweepPlan(
            plan=manifest["plan"],
            experiment=manifest["experiment"],
            description=manifest["description"],
            seed=manifest["seed"],
            params=manifest["params"],
            cells=[CellSpec.from_dict(c) for c in manifest["cells"]],
        )

    # -- cell records -------------------------------------------------------

    def write_cell(
        self,
        spec: CellSpec,
        status: str,
        result: Any = None,
        error: Optional[Dict[str, Any]] = None,
        attempts: int = 1,
    ) -> Tuple[Dict[str, Any], Path]:
        record = {
            "schema": CELL_SCHEMA,
            "cell_id": spec.cell_id,
            "kind": spec.kind,
            "status": status,
            "attempts": attempts,
            "result": result,
            "error": error,
        }
        path = save_json(record, self.cell_path(spec.cell_id))
        self._written += 1
        kill_after = os.environ.get(KILL_AFTER_ENV)
        if kill_after and self._written >= int(kill_after):
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here
        return record, path

    def write_cell_exclusive(
        self,
        spec: CellSpec,
        status: str,
        result: Any = None,
        error: Optional[Dict[str, Any]] = None,
        attempts: int = 1,
    ) -> Tuple[Dict[str, Any], bool]:
        """Write a record only if one is not already durably in place.

        The double-completion rule (docs/COORD.md): the **first durable
        ok record wins**. A second ok completion must carry an
        identical result digest — cells are deterministic, so a
        divergence is corruption and raises — and is otherwise
        discarded in favour of the existing record. An existing
        *failed* record is replaceable by an ok one (resume semantics:
        a later attempt that succeeds beats a recorded failure) but not
        by another failure. Returns ``(record, wrote)``.
        """
        existing = self.read_cell(spec)
        if existing is not None:
            if existing.get("status") == "ok":
                if status == "ok":
                    theirs = content_digest(to_jsonable(existing.get("result")))
                    ours = content_digest(to_jsonable(result))
                    if theirs != ours:
                        raise ArtifactIntegrityError(
                            f"cell {spec.cell_id!r} completed twice with diverging "
                            f"results (existing digest {theirs}, new {ours}) — "
                            "cell runners must be deterministic",
                            path=str(self.cell_path(spec.cell_id)),
                            reason="cell_conflict",
                        )
                return existing, False
            if status != "ok":
                return existing, False
        record, _ = self.write_cell(spec, status, result=result, error=error, attempts=attempts)
        return record, True

    def read_cell(self, spec: CellSpec, verify: bool = True) -> Optional[Dict[str, Any]]:
        """One readable, digest-valid record — or ``None``.

        A truncated or tampered record is treated as missing — the cell
        simply re-executes — rather than poisoning the resume.
        """
        path = self.cell_path(spec.cell_id)
        if not path.exists():
            return None
        try:
            record = load_json(path, verify=verify)
        except ArtifactIntegrityError:
            return None
        if record.get("schema") == CELL_SCHEMA and record.get("cell_id") == spec.cell_id:
            return record
        return None

    def read_cells(self, plan: SweepPlan, verify: bool = True) -> Dict[str, Dict[str, Any]]:
        """All readable, digest-valid records keyed by cell id."""
        records: Dict[str, Dict[str, Any]] = {}
        for spec in plan.cells:
            record = self.read_cell(spec, verify=verify)
            if record is not None:
                records[spec.cell_id] = record
        return records

    def pending_cells(
        self, plan: SweepPlan, verify: bool = True, retry_failed: bool = True
    ) -> List[CellSpec]:
        """The cells of ``plan`` still worth executing.

        With ``retry_failed`` (the resume/drain semantics) a cell is
        pending unless an *ok* record is durably in place — a recorded
        failure gets another chance. Without it (the remote dispatch
        semantics, docs/REMOTE.md) any durable record settles the cell:
        a failure already consumed a full local retry budget somewhere,
        so the network protocol does not re-offer it.
        """
        pending: List[CellSpec] = []
        for spec in plan.cells:
            record = self.read_cell(spec, verify=verify)
            if record is None or (retry_failed and record.get("status") != "ok"):
                pending.append(spec)
        return pending


# ---------------------------------------------------------------------------
# Supervised worker pool
# ---------------------------------------------------------------------------


def _cell_worker(conn, kind: str, params: Dict[str, Any]) -> None:
    """Child-process entry: run one cell, ship (status, payload, counters) back.

    The child installs a fresh enabled registry as its process-global one
    so counters recorded inside the cell (notably ``simcache/*`` — the
    cache resolves ``get_registry()`` per lookup) survive the process
    boundary: they ride back as the third message element and the parent
    merges them into its own registry.
    """
    from ..obs import Registry, set_registry

    worker_obs = Registry()
    set_registry(worker_obs)

    def counters() -> Dict[str, int]:
        return dict(worker_obs.snapshot())

    try:
        runner = CELL_RUNNERS.get(kind)
        if runner is None:
            conn.send(("error", f"no cell runner registered for kind {kind!r}", {}))
            return
        from .serialize import to_jsonable

        conn.send(("ok", to_jsonable(runner(params)), counters()))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", counters()))
        except Exception:
            pass
    finally:
        conn.close()


def _merge_worker_counters(obs: Registry, message) -> None:
    """Fold a worker's counter snapshot (3rd message element) into ``obs``."""
    if len(message) < 3 or not isinstance(message[2], dict):
        return  # old 2-tuple protocol, or garbage — nothing to merge
    for path, value in message[2].items():
        # snapshot() hands back floats; bools are never counters
        if isinstance(value, (int, float)) and not isinstance(value, bool) and value > 0:
            obs.counter(path).add(int(value))


def _terminate(proc) -> None:
    proc.terminate()
    proc.join(5)
    if proc.is_alive():  # pragma: no cover - stuck in uninterruptible state
        proc.kill()
        proc.join()


def _execute_cells(
    specs: Sequence[CellSpec],
    jobs: int,
    retry: RetryPolicy,
    on_done: Callable[[CellSpec, str, Any, int], None],
    obs: Registry,
    coord: Optional[CellCoordinator] = None,
    on_adopted: Optional[Callable[[CellSpec, Dict[str, Any]], None]] = None,
) -> Dict[str, Tuple[str, Any, int]]:
    """Run cells on up to ``jobs`` supervised worker processes.

    Each cell gets its own short-lived process (fork where available),
    so a crashed or hung worker is terminated and retried without
    corrupting a shared pool. ``on_done`` fires once per cell with its
    final status (``ok``/``failed``) — that is the checkpoint hook.

    With ``coord`` attached, every cell is opened through the lease
    protocol before launch: a cell finished by another worker is
    *adopted* (``on_adopted``), a cell validly leased elsewhere is
    deferred and retried (eventually stealing an expired lease), and
    the poll loop heartbeats every held lease — including across retry
    backoff, so a slow-but-alive worker is never robbed mid-cell.
    """
    ctx = pool_context()
    results: Dict[str, Tuple[str, Any, int]] = {}
    queue = deque((spec, 1) for spec in specs)
    backlog: List[Tuple[float, int, CellSpec, int]] = []  # (ready, tiebreak, spec, attempt)
    tiebreak = itertools.count()
    active: Dict[str, Tuple[Any, Any, CellSpec, int, float]] = {}
    jobs = max(1, int(jobs))

    def finish(spec: CellSpec, status: str, payload: Any, attempt: int) -> None:
        if status == "ok":
            obs.counter("resilience/cells_succeeded").add()
        else:
            obs.counter("resilience/cells_failed").add()
        results[spec.cell_id] = (status, payload, attempt)
        on_done(spec, status, payload, attempt)

    try:
        while queue or backlog or active:
            if coord is not None:
                coord.tick()
            now = time.monotonic()
            while backlog and backlog[0][0] <= now:
                _, _, spec, attempt = heapq.heappop(backlog)
                queue.append((spec, attempt))
            while queue and len(active) < jobs:
                spec, attempt = queue.popleft()
                if coord is not None and not coord.holds(spec.cell_id):
                    verdict, payload = coord.begin(spec)
                    if verdict == "done":
                        obs.counter("resilience/cells_adopted").add()
                        results[spec.cell_id] = ("adopted", payload, 0)
                        if on_adopted is not None:
                            on_adopted(spec, payload)
                        continue
                    if verdict == "wait":
                        heapq.heappush(
                            backlog,
                            (time.monotonic() + payload, next(tiebreak), spec, attempt),
                        )
                        continue
                if attempt == 1:
                    obs.counter("resilience/cells_attempted").add()
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_cell_worker, args=(send, spec.kind, spec.params), daemon=True
                )
                proc.start()
                send.close()
                active[spec.cell_id] = (proc, recv, spec, attempt, time.monotonic())
                obs.counter("resilience/attempts").add()
            if not active:
                if backlog:
                    time.sleep(max(0.0, min(0.05, backlog[0][0] - time.monotonic())))
                continue

            multiprocessing.connection.wait(
                [proc.sentinel for proc, _, _, _, _ in active.values()], timeout=0.05
            )
            for cell_id in list(active):
                proc, recv, spec, attempt, started = active[cell_id]
                timed_out = (
                    retry.timeout_s is not None
                    and (time.monotonic() - started) > retry.timeout_s
                )
                if proc.is_alive() and not timed_out:
                    continue
                if proc.is_alive():
                    _terminate(proc)
                    obs.counter("resilience/timeouts").add()
                    outcome = ("timeout", f"cell exceeded its {retry.timeout_s:g}s timeout")
                else:
                    proc.join()
                    message = None
                    try:
                        if recv.poll():
                            message = recv.recv()
                    except (EOFError, OSError):
                        message = None
                    if message is not None and message[0] == "ok":
                        outcome = ("ok", message[1])
                        _merge_worker_counters(obs, message)
                    elif message is not None:
                        outcome = ("exception", message[1])
                        _merge_worker_counters(obs, message)
                    else:
                        outcome = (
                            "crash",
                            f"worker died (exit code {proc.exitcode}) before reporting",
                        )
                recv.close()
                del active[cell_id]

                status, payload = outcome
                if status == "ok":
                    finish(spec, "ok", payload, attempt)
                elif attempt < retry.max_attempts:
                    obs.counter("resilience/retries").add()
                    heapq.heappush(
                        backlog,
                        (time.monotonic() + retry.backoff(attempt), next(tiebreak), spec, attempt + 1),
                    )
                else:
                    error = CellError(
                        str(payload), cell_id=spec.cell_id, kind=status, attempts=attempt
                    )
                    finish(spec, "failed", error.to_dict(), attempt)
    except BaseException:
        # Clean teardown on Ctrl-C / SIGTERM / anything: no orphan
        # workers, every completed cell is already checkpointed, and
        # held leases are relinquished so peers pick the cells up
        # immediately instead of waiting out the TTL.
        for proc, recv, _, _, _ in active.values():
            _terminate(proc)
            recv.close()
        if coord is not None:
            coord.abandon_all()
        raise
    return results


# ---------------------------------------------------------------------------
# Top-level execution + resume
# ---------------------------------------------------------------------------


def effective_lease_ttl(
    lease_ttl: Optional[float],
    heartbeat_s: Optional[float],
    retry: Optional[RetryPolicy] = None,
) -> float:
    """Resolve the lease TTL, auto-scaling the default past ``--timeout``.

    An explicit TTL is taken as given (the CLI validates it at parse
    time). The default grows to cover the per-cell timeout plus two
    heartbeat intervals, so a live lease can never expire mid-cell by
    construction — heartbeats renew during simulation, but the TTL
    still bounds how stale a *crashed* owner's last renewal may look.
    """
    hb = heartbeat_s if heartbeat_s is not None else DEFAULT_HEARTBEAT_S
    if lease_ttl is not None:
        return float(lease_ttl)
    timeout = retry.timeout_s if retry is not None else None
    return max(DEFAULT_LEASE_TTL_S, (timeout or 0.0) + 2.0 * hb)


def execute_sweep(
    plan: SweepPlan,
    run_dir: Union[str, Path],
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    obs: Optional[Registry] = None,
    verify: bool = True,
    owner: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
):
    """Run (or continue) a checkpointed sweep; returns the assembled pieces.

    Returns ``(result, envelope, manifest, records)`` where ``result``
    is the experiment's normal result object (with failures recorded
    structurally) and ``envelope`` the final versioned document, also
    written atomically to ``<run-dir>/envelope.json``.

    Serial, ``--jobs`` and multi-worker (``repro work``) execution all
    route through one lease-protocol code path: every pending cell is
    claimed before launch, heartbeat-renewed while simulating, and
    settled by the first durable record (docs/COORD.md). ``owner``
    names this worker in lease files (default: a fresh
    ``host:pid:nonce`` id); ``lease_ttl``/``heartbeat_s`` are the
    ``--lease-ttl``/``--heartbeat`` knobs.
    """
    retry = retry if retry is not None else RetryPolicy()
    obs = obs if obs is not None else NULL_REGISTRY
    rd = RunDir(run_dir)
    manifest, resumed = rd.init(plan, verify=verify)

    done = {
        cid: rec
        for cid, rec in rd.read_cells(plan, verify=verify).items()
        if rec.get("status") == "ok"
    }
    pending = [spec for spec in plan.cells if spec.cell_id not in done]

    obs.counter("resilience/cells_total").add(len(plan.cells))
    obs.counter("resilience/cells_skipped").add(len(done))
    obs.counter("resilience/cells_attempted").add(0)
    if resumed:
        obs.counter("resilience/cells_resumed").add(len(pending))

    records: Dict[str, Dict[str, Any]] = dict(done)
    coord = CellCoordinator(
        rd,
        owner=owner,
        ttl_s=effective_lease_ttl(lease_ttl, heartbeat_s, retry),
        heartbeat_s=heartbeat_s if heartbeat_s is not None else DEFAULT_HEARTBEAT_S,
        obs=obs,
    )

    def on_done(spec: CellSpec, status: str, payload: Any, attempts: int) -> None:
        if status == "ok":
            record = coord.commit(spec, "ok", result=payload, attempts=attempts)
        else:
            record = coord.commit(spec, "failed", error=payload, attempts=attempts)
        records[spec.cell_id] = record

    def on_adopted(spec: CellSpec, record: Dict[str, Any]) -> None:
        records[spec.cell_id] = record

    try:
        if pending:
            _sigterm_guard(
                lambda: _execute_cells(
                    pending,
                    jobs=jobs,
                    retry=retry,
                    on_done=on_done,
                    obs=obs,
                    coord=coord,
                    on_adopted=on_adopted,
                )
            )
    finally:
        coord.finalize(all_recorded=all(spec.cell_id in records for spec in plan.cells))

    result = PLAN_ASSEMBLERS[plan.plan](plan, records)
    envelope = _resilient_envelope(plan, result, manifest, records)
    save_json(envelope, rd.envelope_path)
    return result, envelope, manifest, records


def resume_run(
    run_dir: Union[str, Path],
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    obs: Optional[Registry] = None,
    verify: bool = True,
    owner: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
):
    """Re-execute only the missing/failed cells of an interrupted sweep."""
    return work_run(
        run_dir,
        jobs=jobs,
        retry=retry,
        obs=obs,
        verify=verify,
        owner=owner,
        lease_ttl=lease_ttl,
        heartbeat_s=heartbeat_s,
    )


def work_run(
    run_dir: Union[str, Path],
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    obs: Optional[Registry] = None,
    verify: bool = True,
    owner: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
):
    """Drain a shared run dir as one cooperating worker (``repro work``).

    The plan comes from the manifest, so any number of workers pointed
    at the same directory execute the identical cell list: each claims
    what it can, adopts what others finish, steals from the dead, and
    whichever workers reach the end assemble the same envelope bytes.
    ``repro resume`` is this exact code path — resume *is* a drain.
    """
    rd = RunDir(run_dir)
    manifest = rd.load_manifest(verify=verify)
    plan = rd.plan_from_manifest(manifest)
    set_global_seed(plan.seed)
    return execute_sweep(
        plan,
        run_dir,
        jobs=jobs,
        retry=retry,
        obs=obs,
        verify=verify,
        owner=owner,
        lease_ttl=lease_ttl,
        heartbeat_s=heartbeat_s,
    )


def status_run(run_dir: Union[str, Path], verify: bool = True) -> Dict[str, Any]:
    """Per-cell record/lease/owner state of a run dir (``repro status``)."""
    rd = RunDir(run_dir)
    manifest = rd.load_manifest(verify=verify)
    plan = rd.plan_from_manifest(manifest)
    records = rd.read_cells(plan, verify=verify)
    leases = LeaseManager(rd.leases_dir).observe_all()
    cells = []
    counts = {"total": len(plan.cells), "ok": 0, "failed": 0, "leased": 0, "pending": 0}
    for spec in plan.cells:
        record = records.get(spec.cell_id)
        lease = leases.get(spec.cell_id)
        if record is not None:
            state = record.get("status", "pending")
        elif lease is not None:
            state = "leased"
        else:
            state = "pending"
        counts[state if state in counts else "pending"] += 1
        cells.append(
            {
                "cell_id": spec.cell_id,
                "state": state,
                "attempts": None if record is None else record.get("attempts"),
                "owner": None if lease is None else lease.owner,
                "token": None if lease is None else lease.token,
                "heartbeats": None if lease is None else lease.heartbeats,
                "elapsed_s": None if lease is None else lease.elapsed_s,
            }
        )
    return {
        "run_id": manifest["run_id"],
        "plan": manifest["plan"],
        "experiment": manifest["experiment"],
        "config_hash": manifest["config_hash"],
        "envelope": rd.envelope_path.exists(),
        "counts": counts,
        "cells": cells,
    }


def _sigterm_guard(work: Callable[[], Any]) -> Any:
    """Run ``work`` with SIGTERM mapped to KeyboardInterrupt.

    Supervisors (CI, schedulers, ``kill``) speak SIGTERM; mapping it to
    the same teardown path as Ctrl-C means workers are terminated and
    joined and the checkpoint stays consistent either way.
    """

    def _raise(signum, frame):
        raise KeyboardInterrupt

    installed = False
    try:
        previous = signal.signal(signal.SIGTERM, _raise)
        installed = True
    except ValueError:  # not the main thread; rely on KeyboardInterrupt alone
        previous = None
    try:
        return work()
    finally:
        if installed:
            signal.signal(signal.SIGTERM, previous)


def _resilient_envelope(
    plan: SweepPlan,
    result: Any,
    manifest: Dict[str, Any],
    records: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    failed = [
        records[spec.cell_id]["error"]
        for spec in plan.cells
        if spec.cell_id in records and records[spec.cell_id].get("status") != "ok"
    ]
    missing = [spec.cell_id for spec in plan.cells if spec.cell_id not in records]
    envelope = experiment_envelope(plan.experiment, result, plan.description)
    envelope["resilience"] = {
        "run_id": manifest["run_id"],
        "created": manifest["created"],
        "config_hash": manifest["config_hash"],
        "volatile": [f"resilience/{name}" for name in VOLATILE_FIELDS],
        "cells_total": len(plan.cells),
        "cells_failed": len(failed) + len(missing),
        "failures": failed + [
            CellError("cell record missing", cell_id=cid, kind="crash").to_dict()
            for cid in missing
        ],
    }
    return envelope


def canonical_envelope_bytes(envelope: Dict[str, Any], volatile: Optional[Sequence[str]] = None) -> bytes:
    """The envelope's canonical bytes with volatile fields removed.

    Two runs of the same sweep — uninterrupted, or killed and resumed —
    must produce identical bytes here; the kill-resume equivalence
    tests assert exactly that. ``volatile`` defaults to the paths the
    envelope itself declares — under ``resilience/volatile`` for
    sweep envelopes, plus any top-level ``volatile`` list (the
    ``repro.explore/v1`` convention).
    """
    doc = {k: v for k, v in envelope.items() if k != INTEGRITY_KEY}
    if volatile is None:
        top = doc.get("volatile")
        volatile = list(top) if isinstance(top, list) else []
        volatile += list(doc.get("resilience", {}).get("volatile", []))
    doc = copy.deepcopy(doc)
    for path in volatile:
        node = doc
        parts = path.split("/")
        for part in parts[:-1]:
            node = node.get(part, {}) if isinstance(node, dict) else {}
        if isinstance(node, dict):
            node.pop(parts[-1], None)
    return _canonical_dumps(doc).encode()
