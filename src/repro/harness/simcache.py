"""Persistent content-addressed cache of simulation cells (``simcache``).

The sweep verbs (``run``, ``compare``, ``faults``) are grids of pure
cells — one (accelerator config, network workload, quant config, fault
plan, seed) point each — and most cells are bit-identical across
invocations. This module memoizes them:

- **Key** — a SHA-256 digest of the cell's canonical JSON *components*
  (accelerator id + full config dataclass, layer specs, quant/outlier
  parameters, seed-relevant inputs, fault plan) mixed with a
  ``code_version`` salt (:data:`CODE_VERSION`); bump the salt whenever
  simulator semantics change and every old entry silently misses.
- **Value** — the cell's serialized result (``RunStats.to_dict`` /
  fault-sweep row), stored one file per key under
  ``<root>/<key[:2]>/<key>.json`` through the PR 4 artifact layer:
  atomic temp+fsync+rename writes with an embedded ``__integrity__``
  digest, verified on every read. A corrupt or truncated entry is a
  structured **miss** (``simcache/corrupt`` counter + a
  :class:`ChunkIntegrityError`-family warning naming the path and
  reason) and the cell recomputes — never a wrong result.
- **Layers** — every :class:`SimCache` holds a bounded in-process LRU
  of decoded-entry payloads in front of the optional disk root, so one
  invocation simulates each distinct cell at most once even without
  ``--cache-dir``. Concurrent ``--jobs`` workers share the disk root
  safely: writes are atomic renames and identical keys carry identical
  bytes.

Process-wide resolution (:func:`get_active`) honors the CLI flags via
environment variables — ``REPRO_CACHE_DIR`` (sets the disk root) and
``REPRO_NO_CACHE`` (every lookup bypasses) — so forked/spawned sweep
workers inherit the caller's cache configuration without any change to
run-dir manifests or cell params.

Observability lands under ``simcache/*`` and reconciles exactly::

    lookups == hits + misses + bypassed

(docs/PERFORMANCE.md documents the full counter set and key schema).
"""

from __future__ import annotations

import copy
import os
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..errors import ArtifactIntegrityError
from ..obs import Registry, get_registry
from .serialize import content_digest, load_json, save_json, to_jsonable

__all__ = [
    "SIMCACHE_SCHEMA",
    "CODE_VERSION",
    "CACHE_DIR_ENV",
    "NO_CACHE_ENV",
    "SimCache",
    "get_active",
    "set_active",
    "cache_key",
]

SIMCACHE_SCHEMA = "repro.simcache/v1"

#: Code-version salt folded into every key. Bump on any change to
#: simulator/quantizer semantics so stale entries become misses.
CODE_VERSION = "pr5-2026-08-05"

#: Environment variables the CLI sets so worker processes (fork or
#: spawn) resolve the same cache configuration as the parent.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: Default bound on the per-process in-memory entry layer.
MEMORY_ENTRIES_DEFAULT = 1024


def cache_key(components: Dict[str, Any], code_version: str = CODE_VERSION) -> str:
    """Canonical content digest of a cell's key components.

    ``components`` may contain dataclasses, numpy values, nested dicts —
    anything :func:`~repro.harness.serialize.to_jsonable` accepts. The
    ``code_version`` salt is folded in under its own key so semantic
    changes to the simulators invalidate every prior entry at once.
    """
    doc = dict(to_jsonable(components))
    doc["code_version"] = code_version
    return content_digest(doc)


class SimCache:
    """A two-layer (memory LRU + optional disk root) simulation cache.

    ``root=None`` keeps the cache memory-only (the default per-process
    behavior: each distinct cell simulates at most once per
    invocation). ``enabled=False`` turns every lookup into a counted
    bypass — the ``--no-cache`` semantics.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        enabled: bool = True,
        obs: Optional[Registry] = None,
        memory_entries: int = MEMORY_ENTRIES_DEFAULT,
    ):
        self.root = Path(root) if root else None
        self.enabled = enabled
        self.memory_entries = max(1, int(memory_entries))
        self._obs = obs
        self._memory: "OrderedDict[str, Any]" = OrderedDict()

    # -- observability ------------------------------------------------------

    @property
    def obs(self) -> Registry:
        """The registry counters land in (process-global unless pinned)."""
        return self._obs if self._obs is not None else get_registry()

    def _count(self, name: str, value: int = 1) -> None:
        self.obs.counter(f"simcache/{name}").add(value)

    # -- key/value plumbing -------------------------------------------------

    def key(self, components: Dict[str, Any]) -> str:
        return cache_key(components)

    def entry_path(self, key: str) -> Optional[Path]:
        """On-disk location for ``key`` (two-hex-char shard dirs)."""
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.json"

    def contains(self, components: Dict[str, Any]) -> bool:
        """Non-mutating probe: is this cell already stored?

        Checks the memory layer, then mere disk-file existence — no
        read, no integrity verification, and no lookup counters, so
        callers (the explorer's hit/miss accounting) can ask without
        perturbing ``simcache/*`` reconciliation. A corrupt entry can
        answer ``True`` here and still recompute in :meth:`memoize`.
        """
        if not self.enabled:
            return False
        key = self.key(components)
        if key in self._memory:
            return True
        path = self.entry_path(key)
        return path is not None and path.exists()

    def _memory_get(self, key: str) -> Optional[Any]:
        value = self._memory.get(key)
        if value is not None:
            self._memory.move_to_end(key)
        return value

    def _memory_put(self, key: str, encoded: Any) -> None:
        self._memory[key] = encoded
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self._count("evictions")

    def _disk_get(self, key: str) -> Optional[Any]:
        path = self.entry_path(key)
        if path is None or not path.exists():
            return None
        try:
            doc = load_json(path, verify=True)
        except ArtifactIntegrityError as exc:
            self._count("corrupt")
            warnings.warn(
                f"simcache entry {path} failed integrity verification "
                f"({exc.reason}); treating as a miss and recomputing",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if doc.get("schema") != SIMCACHE_SCHEMA or doc.get("key") != key:
            self._count("corrupt")
            warnings.warn(
                f"simcache entry {path} carries the wrong schema or key; "
                "treating as a miss and recomputing",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return doc.get("value")

    def _disk_put(self, key: str, encoded: Any, components: Dict[str, Any]) -> None:
        path = self.entry_path(key)
        if path is None:
            return
        doc = {
            "schema": SIMCACHE_SCHEMA,
            "key": key,
            "components": to_jsonable(components),
            "code_version": CODE_VERSION,
            "value": encoded,
        }
        save_json(doc, path)
        self._count("stores")

    # -- the memoization entry point ---------------------------------------

    def memoize(
        self,
        components: Dict[str, Any],
        compute: Callable[[], Any],
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
        kind: Optional[str] = None,
    ) -> Any:
        """Return the cell's result, computing and storing it on a miss.

        ``encode`` maps the computed value to its JSON-able stored form
        (default :func:`to_jsonable`); ``decode`` maps the stored form
        back to the caller's type. **Both the hit and the miss path
        return ``decode(stored)``**, so cold and warm results are
        identical by construction — a lossless ``encode``/``decode``
        pair (e.g. ``RunStats.to_dict``/``from_dict``) makes warm
        envelopes byte-identical to cold ones. ``decode`` receives a
        fresh copy each call; cached state is never aliased to callers.

        Every call counts one ``simcache/lookups`` plus exactly one of
        ``hits``/``misses``/``bypassed``. A non-default ``kind`` (e.g.
        ``"layer"`` for layer-granularity memoization) prefixes those
        four counters — ``simcache/layer_lookups`` etc. — so each
        granularity reconciles on its own; storage-side counters
        (``stores``, ``corrupt``, ``evictions``) stay shared since the
        entry files live in one pool.
        """
        encode = encode if encode is not None else to_jsonable
        decode = decode if decode is not None else (lambda doc: doc)
        prefix = f"{kind}_" if kind else ""
        self._count(prefix + "lookups")
        if not self.enabled:
            self._count(prefix + "bypassed")
            return decode(encode(compute()))
        key = self.key(components)
        encoded = self._memory_get(key)
        if encoded is None:
            encoded = self._disk_get(key)
            if encoded is not None:
                self._memory_put(key, encoded)
        if encoded is not None:
            self._count(prefix + "hits")
            return decode(copy.deepcopy(encoded))
        self._count(prefix + "misses")
        encoded = encode(compute())
        self._memory_put(key, encoded)
        self._disk_put(key, encoded, components)
        return decode(copy.deepcopy(encoded))

    # -- maintenance (the ``repro cache`` verb) -----------------------------

    def _entries(self):
        """Yield ``(path, stat)`` for every on-disk entry."""
        if self.root is None or not self.root.exists():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    yield path, path.stat()
                except OSError:
                    continue

    def stats(self) -> Dict[str, Any]:
        """Entry count and byte totals for ``repro cache stats``."""
        entries = 0
        nbytes = 0
        for _, st in self._entries():
            entries += 1
            nbytes += st.st_size
        return {
            "root": str(self.root) if self.root is not None else None,
            "enabled": self.enabled,
            "entries": entries,
            "bytes": nbytes,
            "memory_entries": len(self._memory),
        }

    def clear(self) -> int:
        """Delete every entry (disk and memory); returns files removed."""
        removed = 0
        for path, _ in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        if self.root is not None and self.root.exists():
            for shard in self.root.iterdir():
                if shard.is_dir():
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
        self._memory.clear()
        return removed

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-used entries until ≤ ``max_bytes`` remain.

        Recency is the entry file's mtime (reads do not touch it, so
        this is least-recently-*stored* on filesystems without atime).
        Returns ``(removed, remaining_bytes)``.

        Concurrent workers may clear or re-prune the same directory
        while this pass walks it, so an entry vanishing between listing
        and stat, or between stat and unlink, is an expected race — it
        is skipped (and its bytes no longer count as remaining) and
        tallied under ``simcache/prune_skipped``, never an error.
        """
        entries = []
        if self.root is not None and self.root.exists():
            for shard in sorted(self.root.iterdir()):
                if not shard.is_dir():
                    continue
                for path in sorted(shard.glob("*.json")):
                    try:
                        entries.append((path, path.stat()))
                    except OSError:
                        self._count("prune_skipped")
        entries.sort(key=lambda e: (e[1].st_mtime, e[0]))
        total = sum(st.st_size for _, st in entries)
        removed = 0
        for path, st in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                self._count("prune_skipped")
                total -= st.st_size
                continue
            except OSError:
                continue
            total -= st.st_size
            removed += 1
            self._count("evictions")
        return removed, total


# ---------------------------------------------------------------------------
# Process-wide active cache
# ---------------------------------------------------------------------------

_active: Optional[SimCache] = None
_env_cache: Optional[SimCache] = None
_env_snapshot: Optional[Tuple[str, str]] = None


def set_active(cache: Optional[SimCache]) -> None:
    """Pin the process-wide cache explicitly; ``None`` reverts to env."""
    global _active
    _active = cache


def get_active() -> SimCache:
    """The process-wide cache: explicit pin, else env-var resolution.

    Without ``REPRO_CACHE_DIR``/``REPRO_NO_CACHE`` this is a memory-only
    cache, so repeated cells within one invocation simulate once. The
    resolved instance is kept until the environment changes, preserving
    its memory layer across calls.
    """
    global _env_cache, _env_snapshot
    if _active is not None:
        return _active
    snapshot = (os.environ.get(NO_CACHE_ENV, ""), os.environ.get(CACHE_DIR_ENV, ""))
    if _env_cache is None or snapshot != _env_snapshot:
        no_cache, root = snapshot
        _env_cache = SimCache(root=root or None, enabled=not no_cache)
        _env_snapshot = snapshot
    return _env_cache
