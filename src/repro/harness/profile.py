"""``repro profile`` — wall-clock + simulated-cycle report for a network.

Profiles two distinct clocks for every accelerator in the comparison:

- **simulated time**: total modelled cycles at the paper's 250 MHz
  synthesis clock (Sec. IV), split into run/skip/idle where the model
  distinguishes them;
- **wall-clock time**: how long *our simulator* took to produce those
  numbers, from ``repro.obs`` timers — the number a perf PR must move.

A micro-trace section runs the cycle-stepped event simulator
(:class:`~repro.olaccel.event_sim.ClusterSim`) on passes synthesized
from the first sparse conv layer's measured density/outlier statistics
and reports the micro-op histogram (skip/bcast/stall) plus queue
pressure, exercising the tracing hooks end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..arch.stats import STATS_SCHEMA_VERSION, RunStats
from ..obs import Registry
from ..olaccel import ClusterSim, passes_from_levels
from .report import format_table
from .seeding import resolve_seed
from .workloads import paper_workload

__all__ = ["ProfileRow", "ProfileResult", "profile_network", "CLOCK_MHZ"]

#: The paper's synthesis clock (Sec. IV): 65 nm / 1.0 V / 250 MHz.
CLOCK_MHZ = 250.0


@dataclass
class ProfileRow:
    """One accelerator's cost on the profiled network."""

    accelerator: str
    layers: int
    sim_cycles: float
    sim_ms: float  # simulated time at CLOCK_MHZ
    wall_ms: float  # simulator wall-clock
    run_fraction: float
    skip_fraction: float
    idle_fraction: float


@dataclass
class ProfileResult:
    """Profile of every accelerator on one network, plus an event micro-trace."""

    network: str
    ratio: float
    rows: List[ProfileRow] = field(default_factory=list)
    #: event-sim micro-trace: micro-op counts and queue/backlog pressure
    event_trace: Dict[str, Any] = field(default_factory=dict)
    #: flat obs-counter snapshot (per accelerator/layer paths)
    counters: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        table_rows = [
            (
                r.accelerator,
                r.layers,
                f"{r.sim_cycles:.3e}",
                f"{r.sim_ms:.3f}",
                f"{r.wall_ms:.2f}",
                f"{r.run_fraction:.3f}",
                f"{r.skip_fraction:.3f}",
                f"{r.idle_fraction:.3f}",
            )
            for r in self.rows
        ]
        table = format_table(
            ["accelerator", "layers", "sim cycles", "sim ms", "wall ms", "run", "skip", "idle"],
            table_rows,
            title=(
                f"Profile — {self.network} (ratio {self.ratio}, "
                f"{CLOCK_MHZ:.0f} MHz clock; run/skip/idle as group-cycle fractions)"
            ),
        )
        trace = self.event_trace
        lines = [table]
        if trace:
            lines.append(
                "event-sim micro-trace ({passes} passes, layer {layer}): "
                "skip={skip} bcast={bcast} stall={stall} cycles={cycles} "
                "queue depth mean={queue_mean:.1f} max={queue_max}".format(**trace)
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Versioned plain-dict form of the profile (documented schema)."""
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "kind": "profile",
            "network": self.network,
            "ratio": self.ratio,
            "clock_mhz": CLOCK_MHZ,
            "rows": [
                {
                    "accelerator": r.accelerator,
                    "layers": r.layers,
                    "sim_cycles": r.sim_cycles,
                    "sim_ms": r.sim_ms,
                    "wall_ms": r.wall_ms,
                    "run_fraction": r.run_fraction,
                    "skip_fraction": r.skip_fraction,
                    "idle_fraction": r.idle_fraction,
                }
                for r in self.rows
            ],
            "event_trace": dict(self.event_trace),
            "counters": dict(self.counters),
        }


def _fractions(run: RunStats, n_lanes_cycles: float) -> tuple:
    """Run/skip/idle shares of the total lane-cycle budget."""
    if n_lanes_cycles <= 0:
        return 0.0, 0.0, 0.0
    return (
        run.total_run_cycles / n_lanes_cycles,
        run.total_skip_cycles / n_lanes_cycles,
        run.total_idle_cycles / n_lanes_cycles,
    )


def profile_network(
    network: str,
    ratio: float = 0.03,
    event_sim_passes: int = 512,
    seed: Optional[int] = None,
) -> ProfileResult:
    """Profile every accelerator on ``network``; see module docstring.

    ``seed`` drives the synthesized event-sim micro-trace; it defaults
    to the global ``--seed`` (when set) and then to the historical 0.
    """
    # Imported here (not at module top) to avoid a circular import with
    # experiments.py, which re-exports both modules via the package init.
    from .experiments import ALL_ACCELERATORS, _simulator

    seed = resolve_seed(seed, default=0)

    workload = paper_workload(network, ratio=ratio)
    result = ProfileResult(network=network, ratio=ratio)
    obs = Registry()
    for kind in ALL_ACCELERATORS:
        sim = _simulator(kind, network, ratio, obs=obs)
        with obs.timer(f"wall/{kind}"):
            run = sim.simulate_network(workload)
        wall_ms = obs.timers[f"wall/{kind}"].seconds * 1e3
        if kind.startswith("olaccel"):
            budget = run.total_cycles * sim.config.n_groups
        else:
            budget = run.total_cycles
        run_f, skip_f, idle_f = _fractions(run, budget)
        result.rows.append(
            ProfileRow(
                accelerator=kind,
                layers=len(run.layers),
                sim_cycles=run.total_cycles,
                sim_ms=run.total_cycles / (CLOCK_MHZ * 1e3),
                wall_ms=wall_ms,
                run_fraction=run_f,
                skip_fraction=skip_f,
                idle_fraction=idle_f,
            )
        )

    result.event_trace = _event_micro_trace(workload, event_sim_passes, seed)
    result.counters = obs.snapshot()
    return result


def _event_micro_trace(workload, n_passes: int, seed: int) -> Dict[str, Any]:
    """Cycle-step synthesized passes matching a real layer's statistics."""
    sparse = [layer for layer in workload.layers if not layer.is_first]
    if not sparse or n_passes <= 0:
        return {}
    layer = sparse[0]
    rng = np.random.default_rng(seed)
    density = layer.act_density * (1.0 - layer.act_outlier_ratio)
    levels = (rng.random((n_passes, 16)) < density) * rng.integers(1, 16, size=(n_passes, 16))
    flags = rng.random((n_passes, 16)) < layer.weight_outlier_ratio
    obs = Registry()
    sim = ClusterSim(n_groups=6, obs=obs)
    outcome = sim.run(passes_from_levels(levels, flags))
    queue = obs.histograms["queue_depth"]
    return {
        "layer": layer.name,
        "passes": outcome.passes,
        "cycles": outcome.cycles,
        "skip": outcome.skip_cycles,
        "bcast": outcome.bcast_cycles,
        "stall": outcome.stall_cycles,
        "queue_mean": queue.mean,
        "queue_max": queue.max,
    }
