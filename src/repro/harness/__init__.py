"""Experiment harness: workloads, pretrained cache, drivers, reporting."""

from .ablations import (
    AblationResult,
    ablate_outlier_mac,
    ablate_pipelined_accumulation,
    ablate_zero_skip,
    run_all_ablations,
    sweep_group_size,
)
from .experiments import (
    ALL_ACCELERATORS,
    breakdown_experiment,
    fig1_weight_distributions,
    fig2_accuracy_vs_ratio,
    fig3_accuracy_networks,
    fig14_ratio_sweep,
    fig15_scalability,
    fig16_outlier_histogram,
    fig17_multi_outlier,
    fig18_utilization,
    fig19_chunk_cycles,
    table1_configurations,
)
from .pretrained import default_dataset, trained_mini
from .report import bar, format_breakdown, format_series, format_table
from .scaling import NpuSpec, ScalingModel, ScalingPoint
from .workloads import MEMORY_TABLE, conv_only, from_quantized_model, memory_bytes, paper_workload

__all__ = [
    "AblationResult",
    "ablate_outlier_mac",
    "ablate_pipelined_accumulation",
    "ablate_zero_skip",
    "run_all_ablations",
    "sweep_group_size",
    "ALL_ACCELERATORS",
    "breakdown_experiment",
    "fig1_weight_distributions",
    "fig2_accuracy_vs_ratio",
    "fig3_accuracy_networks",
    "fig14_ratio_sweep",
    "fig15_scalability",
    "fig16_outlier_histogram",
    "fig17_multi_outlier",
    "fig18_utilization",
    "fig19_chunk_cycles",
    "table1_configurations",
    "default_dataset",
    "trained_mini",
    "bar",
    "format_breakdown",
    "format_series",
    "format_table",
    "NpuSpec",
    "ScalingModel",
    "ScalingPoint",
    "MEMORY_TABLE",
    "conv_only",
    "from_quantized_model",
    "memory_bytes",
    "paper_workload",
]
