"""One seed to rule the harness: the global ``--seed`` plumbing.

Every stochastic driver in the harness historically hard-coded its own
seed (``fig17`` used 0, ``fig19`` used 1, profiling 0), which kept runs
reproducible but made it impossible to re-roll an experiment without
editing code. The CLI's global ``--seed`` flag now funnels through this
module:

- :func:`set_global_seed` — called once by the CLI when ``--seed`` is
  given; stays ``None`` otherwise;
- :func:`resolve_seed` — the precedence rule every driver applies:
  an explicit ``seed=`` argument wins, else the global seed, else the
  driver's historical default — so library behaviour (and every
  deterministic test) is unchanged unless someone actually asks;
- :func:`get_rng` — the resolved seed as a ``numpy`` Generator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["set_global_seed", "global_seed", "resolve_seed", "get_rng"]

_GLOBAL_SEED: Optional[int] = None


def set_global_seed(seed: Optional[int]) -> None:
    """Install (or clear, with ``None``) the process-wide default seed."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = seed


def global_seed() -> Optional[int]:
    return _GLOBAL_SEED


def resolve_seed(seed: Optional[int] = None, default: int = 0) -> int:
    """Explicit argument > global ``--seed`` > the driver's own default."""
    if seed is not None:
        return seed
    if _GLOBAL_SEED is not None:
        return _GLOBAL_SEED
    return default


def get_rng(seed: Optional[int] = None, default: int = 0) -> np.random.Generator:
    """A Generator seeded by :func:`resolve_seed`'s precedence rule."""
    return np.random.default_rng(resolve_seed(seed, default))
