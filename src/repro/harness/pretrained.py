"""Trained-model cache for the accuracy experiments.

Figures 1-3, 14 and 16 need trained mini models. Training takes tens of
seconds per model, so this module trains once per (model, dataset seed)
and caches the weights on disk under ``.cache/repro`` in the repository
(or ``$REPRO_CACHE_DIR``). Experiments and benchmarks share the cache, so
repeated runs are fast and deterministic.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from ..nn.data import SyntheticImageDataset, make_dataset
from ..nn.layers import BatchNorm2d
from ..nn.model import Model
from ..nn.train import TrainConfig, train_model
from ..nn.zoo_mini import build_mini

__all__ = ["default_dataset", "trained_mini", "cache_dir", "TRAIN_EPOCHS"]

#: Hardness settings chosen so full-precision accuracy is high but 4-bit
#: linear quantization visibly degrades it (the regime of Figs. 2-3).
_DATASET_KWARGS = dict(
    num_classes=16,
    train_per_class=80,
    test_per_class=75,
    size=32,
    noise=0.8,
    jitter=5,
    seed=7,
)

TRAIN_EPOCHS = {"alexnet": 10, "vgg": 10, "resnet": 6, "densenet": 6}

_dataset_cache: Dict[int, SyntheticImageDataset] = {}
_model_cache: Dict[Tuple[str, int], Model] = {}


def cache_dir() -> Path:
    """Directory for cached trained weights."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / ".cache" / "repro"
    path.mkdir(parents=True, exist_ok=True)
    return path


def default_dataset(seed: int = 7) -> SyntheticImageDataset:
    """The shared synthetic dataset used by all accuracy experiments."""
    if seed not in _dataset_cache:
        kwargs = dict(_DATASET_KWARGS)
        kwargs["seed"] = seed
        _dataset_cache[seed] = make_dataset(**kwargs)
    return _dataset_cache[seed]


def _state_path(name: str, seed: int) -> Path:
    epochs = TRAIN_EPOCHS.get(name, 8)
    return cache_dir() / f"{name}-seed{seed}-ep{epochs}.npz"


def _save_state(model: Model, path: Path) -> None:
    arrays = {}
    for i, param in enumerate(model.parameters()):
        arrays[f"p{i}"] = param.value
    for i, layer in enumerate(_batchnorms(model)):
        arrays[f"bn{i}_mean"] = layer.running_mean
        arrays[f"bn{i}_var"] = layer.running_var
    np.savez_compressed(path, **arrays)


def _load_state(model: Model, path: Path) -> None:
    with np.load(path) as data:
        for i, param in enumerate(model.parameters()):
            param.value = data[f"p{i}"]
        for i, layer in enumerate(_batchnorms(model)):
            layer.running_mean = data[f"bn{i}_mean"]
            layer.running_var = data[f"bn{i}_var"]


def _batchnorms(model: Model):
    found = []

    def walk(layers):
        for layer in layers:
            if isinstance(layer, BatchNorm2d):
                found.append(layer)
            walk(list(layer.children()))

    walk(model.layers)
    return found


def trained_mini(name: str, seed: int = 7, force_retrain: bool = False) -> Model:
    """A trained mini model, from memory, disk cache, or fresh training."""
    key = (name, seed)
    if not force_retrain and key in _model_cache:
        return _model_cache[key]

    dataset = default_dataset(seed)
    model = build_mini(name, num_classes=dataset.num_classes)
    path = _state_path(name, seed)
    if path.exists() and not force_retrain:
        _load_state(model, path)
    else:
        config = TrainConfig(epochs=TRAIN_EPOCHS.get(name, 8), batch_size=64, lr=0.01, seed=seed)
        train_model(model, dataset.train_x, dataset.train_y, config)
        _save_state(model, path)
    _model_cache[key] = model
    return model
