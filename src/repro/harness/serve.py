"""``repro serve`` — the simulator as a long-running HTTP job service.

One asyncio process (stdlib only — ``asyncio.start_server``, no new
dependencies) accepts experiment requests as versioned ``repro.job/v1``
JSON documents and schedules them onto the existing coordination
substrate (docs/COORD.md):

- ``POST /jobs`` — submit a job (verb ``run``/``compare``/``faults``/
  ``explore`` + verb-specific params, seed, priority). Each accepted
  job immediately materializes a normal checkpointed run directory
  under the server's ``--spool``, so any external ``repro work DIR``
  process can join it, and a killed server recovers by rescanning the
  spool and re-draining unfinished jobs through the same resume path.
- ``GET /jobs/<id>`` — job state (QUEUED → RUNNING → DONE/FAILED/
  CANCELLED) plus per-cell progress pulled from the run dir's record
  and lease files.
- ``GET /jobs/<id>/result`` — the finished ``repro.experiment/v1`` /
  ``repro.explore/v1`` envelope, integrity digest intact (the exact
  bytes of ``envelope.json``).
- ``DELETE /jobs/<id>`` — cancel; a running drain is SIGTERMed so its
  leases are released through the normal teardown.
- ``GET /healthz`` / ``GET /stats`` — liveness and the obs counter
  snapshot; the ``serve/*`` counters reconcile exactly:
  ``submitted == completed + failed + cancelled + queued + running``.
- ``GET /status`` — every job's per-cell record/lease/owner table, the
  same document ``repro status`` renders locally, so ``repro status
  --connect`` works with no shared filesystem.
- ``POST /cells/claim`` + ``/cells/<id>/heartbeat`` / ``result`` /
  ``abandon`` — the remote work-dispatch protocol (docs/REMOTE.md):
  ``repro work --connect`` workers on other machines claim, renew and
  settle cells through :class:`repro.harness.remote.RemoteCellBroker`,
  which executes the ordinary lease protocol on their behalf against
  the same lease files local workers contend on.

Jobs are drained by an in-process pool of supervisor tasks, each
spawning one ``work_run`` / ``explore_resume`` worker process per job
(the drain). With ``--workers 0`` the server is a pure coordinator:
remote workers compute every cell, and a housekeeper finalizes each
job (envelope assembly through the same drain path) the moment its
last record lands. Overlapping jobs dedupe through the
content-addressed simcache (docs/PERFORMANCE.md) when the server runs
with ``--cache-dir``: the second identical job's cells replay as cache
hits.

The queue is bounded (``--queue-limit``): overflow answers 429 with a
``Retry-After`` header derived from the queue depth and the observed
drain rate. Request validation failures answer 400 with the
error-taxonomy class name (:class:`repro.errors.JobError` and
friends); a request that stalls past the read deadline answers 408 and
a truncated body 400, so slow-loris connections cannot pin the server.
See docs/SERVE.md for the endpoint reference, lifecycle diagram and a
curl-able worked example.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import math
import os
import signal
import sys
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ConfigError, JobError, ReproError
from .coord import DEFAULT_HEARTBEAT_S, default_owner_id
from .explore import (
    DesignSpace,
    ExploreRequest,
    STRATEGIES,
    _init_marker,
    explore_resume,
    is_explore_run,
)
from .parallel import pool_context
from .remote import RemoteCellBroker
from .resilience import (
    RetryPolicy,
    RunDir,
    breakdown_plan,
    effective_lease_ttl,
    faults_plan,
    status_run,
    work_run,
)
from .serialize import load_json, save_json
from ..faults.plan import FAULT_MODELS
from ..faults.validate import RECOVERY_POLICIES
from ..obs import Registry
from .workloads import MEMORY_TABLE

__all__ = [
    "JOB_SCHEMA",
    "STATE_SCHEMA",
    "SERVE_SCHEMA",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "VERBS",
    "JobRequest",
    "JobStore",
    "JobServer",
    "ServeConfig",
    "build_plan",
    "check_transition",
    "job_progress",
    "serve_forever",
]

JOB_SCHEMA = "repro.job/v1"
RECORD_SCHEMA = "repro.job-record/v1"
STATE_SCHEMA = "repro.job-state/v1"
OBS_SCHEMA = "repro.job-obs/v1"
ERROR_SCHEMA = "repro.job-error/v1"
SERVE_SCHEMA = "repro.serve/v1"
STATS_SCHEMA = "repro.serve-stats/v1"
STATUS_SCHEMA = "repro.job-status/v1"
SERVE_STATUS_SCHEMA = "repro.serve-status/v1"

#: Experiments a ``run`` job may name (the sweep-shaped subset).
SWEEPABLE_EXPERIMENTS = {
    "fig11": ("alexnet", "AlexNet cycle/energy breakdown"),
    "fig12": ("vgg16", "VGG-16 cycle/energy breakdown"),
    "fig13": ("resnet18", "ResNet-18 cycle/energy breakdown"),
}

VERBS = ("run", "compare", "faults", "explore")
ACCURACY_MODES = ("none", "proxy", "quant")

STATES = ("QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED")
TERMINAL_STATES = frozenset({"DONE", "FAILED", "CANCELLED"})
#: Legal state-machine edges. RUNNING → QUEUED is the restart-requeue
#: edge: a job found RUNNING while rescanning the spool lost its drain.
TRANSITIONS: Dict[str, frozenset] = {
    "QUEUED": frozenset({"RUNNING", "CANCELLED"}),
    "RUNNING": frozenset({"DONE", "FAILED", "CANCELLED", "QUEUED"}),
    "DONE": frozenset(),
    "FAILED": frozenset(),
    "CANCELLED": frozenset(),
}


def check_transition(old: str, new: str) -> None:
    """Raise :class:`JobError` unless ``old -> new`` is a legal edge."""
    if old not in TRANSITIONS:
        raise JobError(f"unknown job state {old!r}", field="state")
    if new not in TRANSITIONS:
        raise JobError(f"unknown job state {new!r}", field="state")
    if new not in TRANSITIONS[old]:
        raise JobError(f"illegal job state transition {old} -> {new}", field="state")


# ---------------------------------------------------------------------------
# repro.job/v1 — the request document
# ---------------------------------------------------------------------------

_TOP_KEYS = frozenset(
    {"schema", "verb", "experiment", "network", "params", "seed", "priority", "timeout_s"}
)
_PARAM_KEYS = {
    "run": frozenset(),
    "compare": frozenset({"ratio"}),
    "faults": frozenset({"rates", "widths", "policy", "model", "ratio"}),
    "explore": frozenset(
        {
            "budget",
            "strategy",
            "samples",
            "eta",
            "screen_layers",
            "max_candidates",
            "accuracy",
            "accuracy_samples",
            "space",
        }
    ),
}


def _require(condition: bool, message: str, field: Optional[str] = None) -> None:
    if not condition:
        raise JobError(message, field=field)


def _number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _integer(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


@dataclass(frozen=True)
class JobRequest:
    """One validated ``repro.job/v1`` document.

    Construction via :meth:`from_dict` rejects every malformed input
    with a :class:`JobError` naming the offending field — never a
    ``KeyError`` or assert — so the HTTP layer can answer 400 with the
    taxonomy name. ``to_dict``/``from_dict`` round-trip exactly.
    """

    verb: str
    experiment: Optional[str] = None
    network: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    priority: int = 0
    timeout_s: Optional[float] = None

    @classmethod
    def from_dict(cls, doc: Any) -> "JobRequest":
        _require(isinstance(doc, dict), "job request must be a JSON object")
        unknown = sorted(set(doc) - _TOP_KEYS)
        _require(not unknown, f"unknown request field(s): {', '.join(unknown)}",
                 field=unknown[0] if unknown else None)
        _require(
            doc.get("schema") == JOB_SCHEMA,
            f"request schema must be {JOB_SCHEMA!r}, got {doc.get('schema')!r}",
            field="schema",
        )
        verb = doc.get("verb")
        _require(
            isinstance(verb, str) and verb in VERBS,
            f"verb must be one of {', '.join(VERBS)}; got {verb!r}",
            field="verb",
        )

        experiment = doc.get("experiment")
        network = doc.get("network")
        if verb == "run":
            _require(
                network is None,
                "run jobs name an 'experiment', not a 'network'",
                field="network",
            )
            _require(
                isinstance(experiment, str) and experiment in SWEEPABLE_EXPERIMENTS,
                "run jobs need a sweep-shaped experiment: "
                f"{', '.join(sorted(SWEEPABLE_EXPERIMENTS))}; got {experiment!r}",
                field="experiment",
            )
        else:
            _require(
                experiment is None,
                f"{verb} jobs name a 'network', not an 'experiment'",
                field="experiment",
            )
            _require(
                isinstance(network, str) and network in MEMORY_TABLE,
                f"unknown network {network!r}; available: {', '.join(sorted(MEMORY_TABLE))}",
                field="network",
            )

        params = doc.get("params", {})
        _require(isinstance(params, dict), "params must be a JSON object", field="params")
        allowed = _PARAM_KEYS[verb]
        bad = sorted(set(params) - allowed)
        _require(
            not bad,
            f"unknown param(s) for verb {verb!r}: {', '.join(bad)}"
            + (f"; allowed: {', '.join(sorted(allowed))}" if allowed else ""),
            field=bad[0] if bad else None,
        )
        _validate_params(verb, params)

        seed = doc.get("seed")
        _require(seed is None or _integer(seed), "seed must be an integer", field="seed")
        priority = doc.get("priority", 0)
        _require(_integer(priority), "priority must be an integer", field="priority")
        timeout_s = doc.get("timeout_s")
        _require(
            timeout_s is None or (_number(timeout_s) and timeout_s > 0),
            "timeout_s must be a positive number",
            field="timeout_s",
        )
        return cls(
            verb=verb,
            experiment=experiment,
            network=network,
            params=dict(params),
            seed=seed,
            priority=priority,
            timeout_s=float(timeout_s) if timeout_s is not None else None,
        )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": JOB_SCHEMA, "verb": self.verb}
        if self.experiment is not None:
            doc["experiment"] = self.experiment
        if self.network is not None:
            doc["network"] = self.network
        doc["params"] = dict(self.params)
        doc["seed"] = self.seed
        doc["priority"] = self.priority
        doc["timeout_s"] = self.timeout_s
        return doc


def _validate_params(verb: str, params: Dict[str, Any]) -> None:
    """Domain checks for the verb-specific ``params`` block."""
    if "ratio" in params:
        _require(
            _number(params["ratio"]) and 0 < params["ratio"] < 1,
            "ratio must be a number in (0, 1)",
            field="ratio",
        )
    if verb == "faults":
        if "rates" in params:
            rates = params["rates"]
            _require(
                isinstance(rates, list)
                and rates
                and all(_number(r) and r >= 0 for r in rates),
                "rates must be a non-empty list of non-negative numbers",
                field="rates",
            )
        if "widths" in params:
            widths = params["widths"]
            _require(
                isinstance(widths, list)
                and widths
                and all(_integer(w) and w > 0 for w in widths),
                "widths must be a non-empty list of positive integers",
                field="widths",
            )
        if "policy" in params:
            _require(
                params["policy"] in RECOVERY_POLICIES,
                f"unknown policy {params['policy']!r}; "
                f"available: {', '.join(RECOVERY_POLICIES)}",
                field="policy",
            )
        if "model" in params:
            _require(
                params["model"] in FAULT_MODELS,
                f"unknown model {params['model']!r}; available: {', '.join(FAULT_MODELS)}",
                field="model",
            )
    if verb == "explore":
        if "budget" in params:
            _require(
                _number(params["budget"]) and params["budget"] > 0,
                "budget must be a positive number (mm^2)",
                field="budget",
            )
        if "strategy" in params:
            _require(
                params["strategy"] in STRATEGIES,
                f"unknown strategy {params['strategy']!r}; "
                f"available: {', '.join(sorted(STRATEGIES))}",
                field="strategy",
            )
        if "accuracy" in params:
            _require(
                params["accuracy"] in ACCURACY_MODES,
                f"accuracy must be one of {', '.join(ACCURACY_MODES)}",
                field="accuracy",
            )
        for key in ("samples", "eta", "screen_layers", "max_candidates", "accuracy_samples"):
            if key in params:
                _require(
                    _integer(params[key]) and params[key] > 0,
                    f"{key} must be a positive integer",
                    field=key,
                )
        if "space" in params:
            _require(
                isinstance(params["space"], dict),
                "space must be a JSON object of dimension lists",
                field="space",
            )


def build_plan(request: JobRequest):
    """Turn a validated request into its executable form.

    Returns ``("sweep", SweepPlan)`` for run/compare/faults jobs and
    ``("explore", ExploreRequest)`` for explore jobs. Deep domain
    errors (e.g. an impossible design space) surface as taxonomy
    errors from the underlying constructors.
    """
    p = request.params
    if request.verb == "run":
        network, description = SWEEPABLE_EXPERIMENTS[request.experiment]
        return "sweep", breakdown_plan(
            network,
            seed=request.seed,
            experiment=request.experiment,
            description=description,
        )
    if request.verb == "compare":
        return "sweep", breakdown_plan(
            request.network, ratio=p.get("ratio", 0.03), seed=request.seed
        )
    if request.verb == "faults":
        from .faults import DEFAULT_RATES, DEFAULT_WIDTHS

        return "sweep", faults_plan(
            request.network,
            rates=tuple(p.get("rates", DEFAULT_RATES)),
            widths=tuple(p.get("widths", DEFAULT_WIDTHS)),
            policy=p.get("policy", "degrade"),
            model=p.get("model", "bitflip"),
            ratio=p.get("ratio", 0.03),
            seed=request.seed,
        )
    space = p.get("space")
    return "explore", ExploreRequest(
        network=request.network,
        budget_mm2=p.get("budget"),
        strategy=p.get("strategy", "grid"),
        samples=p.get("samples", 64),
        eta=p.get("eta", 4),
        screen_layers=p.get("screen_layers", 2),
        max_candidates=p.get("max_candidates"),
        accuracy=p.get("accuracy", "proxy"),
        accuracy_samples=p.get("accuracy_samples", 256),
        seed=request.seed,
        space=DesignSpace.from_dict(space) if space else DesignSpace(),
    )


# ---------------------------------------------------------------------------
# The spool: one directory per job, drained through the resume path
# ---------------------------------------------------------------------------


class JobStore:
    """Durable job state under ``<spool>/jobs/<job_id>/``.

    ``job.json`` is the immutable accepted request, ``state.json`` the
    current state-machine position (every write checked against
    :data:`TRANSITIONS`), ``run/`` the ordinary checkpointed run
    directory, ``obs.json``/``error.json`` the drain's counter dump and
    structured failure. Everything is written through the atomic,
    digest-stamped :func:`save_json`, so a SIGKILL never leaves a
    half-written document.
    """

    def __init__(self, spool: Union[str, Path]):
        self.root = Path(spool)
        self.jobs_dir = self.root / "jobs"

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def run_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "run"

    def create(self, request: JobRequest) -> str:
        """Accept a request: materialize its run dir, then durably QUEUED.

        The run dir (manifest or explore marker) exists before the job
        is visible as QUEUED, so an external ``repro work`` process can
        join the moment the submitter learns the id.
        """
        shape, plan = build_plan(request)
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        job_dir = self.job_dir(job_id)
        run_dir = self.run_dir(job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        if shape == "sweep":
            RunDir(run_dir).init(plan)
        else:
            run_dir.mkdir(parents=True, exist_ok=True)
            _init_marker(run_dir, plan, verify=True)
        save_json(
            {"schema": RECORD_SCHEMA, "job_id": job_id, "request": request.to_dict()},
            job_dir / "job.json",
        )
        self._write_state(job_id, "QUEUED", "accepted")
        return job_id

    def read_request(self, job_id: str) -> Optional[JobRequest]:
        path = self.job_dir(job_id) / "job.json"
        if not path.exists():
            return None
        doc = load_json(path)
        if not isinstance(doc, dict):
            raise JobError(f"job record {path} is not an object")
        return JobRequest.from_dict(doc.get("request"))

    def read_state(self, job_id: str) -> Dict[str, Any]:
        path = self.job_dir(job_id) / "state.json"
        doc = load_json(path)
        if not isinstance(doc, dict) or doc.get("schema") != STATE_SCHEMA:
            raise JobError(f"job state file {path} is malformed", field="state")
        return doc

    def set_state(
        self, job_id: str, state: str, detail: str = "", force: bool = False
    ) -> Dict[str, Any]:
        if not force:
            check_transition(self.read_state(job_id)["state"], state)
        return self._write_state(job_id, state, detail)

    def _write_state(self, job_id: str, state: str, detail: str) -> Dict[str, Any]:
        doc = {"schema": STATE_SCHEMA, "job_id": job_id, "state": state, "detail": detail}
        save_json(doc, self.job_dir(job_id) / "state.json")
        return doc

    def read_obs(self, job_id: str) -> Optional[Dict[str, Any]]:
        path = self.job_dir(job_id) / "obs.json"
        if not path.exists():
            return None
        try:
            doc = load_json(path, verify=False)
        except ReproError:
            return None
        return doc if isinstance(doc, dict) else None

    def read_error(self, job_id: str) -> Optional[Dict[str, Any]]:
        path = self.job_dir(job_id) / "error.json"
        if not path.exists():
            return None
        try:
            doc = load_json(path, verify=False)
        except ReproError:
            return None
        return doc if isinstance(doc, dict) else None

    def list_ids(self) -> List[str]:
        if not self.jobs_dir.exists():
            return []
        return sorted(d.name for d in self.jobs_dir.iterdir() if d.is_dir())


def _scan_sweep_dir(sweep_dir: Path) -> Tuple[Optional[int], int, int, int]:
    """(total, ok, failed, leased) for one manifest-shaped directory."""
    total: Optional[int] = None
    manifest_path = sweep_dir / "manifest.json"
    if manifest_path.exists():
        try:
            manifest = load_json(manifest_path, verify=False)
            if isinstance(manifest, dict):
                total = len(manifest.get("cells") or [])
        except ReproError:
            pass
    ok = failed = 0
    cells_dir = sweep_dir / "cells"
    if cells_dir.exists():
        for record_path in cells_dir.glob("*.json"):
            try:
                record = load_json(record_path, verify=False)
            except ReproError:
                continue
            if isinstance(record, dict) and record.get("status") == "ok":
                ok += 1
            else:
                failed += 1
    leases_dir = sweep_dir / "leases"
    leased = len(list(leases_dir.glob("*.json"))) if leases_dir.exists() else 0
    return total, ok, failed, leased


def job_progress(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Per-cell progress counts straight from the run dir's files.

    For explore jobs the total is the sum over the rungs materialized
    so far (later rungs don't exist until earlier ones finish, so it
    grows as the search deepens).
    """
    run_dir = Path(run_dir)
    if is_explore_run(run_dir):
        total: Optional[int] = 0
        ok = failed = leased = 0
        rungs_dir = run_dir / "rungs"
        rungs = sorted(rungs_dir.iterdir()) if rungs_dir.exists() else []
        for rung in rungs:
            rung_total, rung_ok, rung_failed, rung_leased = _scan_sweep_dir(rung)
            total = None if (total is None or rung_total is None) else total + rung_total
            ok += rung_ok
            failed += rung_failed
            leased += rung_leased
    else:
        total, ok, failed, leased = _scan_sweep_dir(run_dir)
    return {
        "cells_total": total,
        "cells_ok": ok,
        "cells_failed": failed,
        "cells_leased": leased,
        "envelope": (run_dir / "envelope.json").exists(),
    }


# ---------------------------------------------------------------------------
# The drain: one worker process per running job, through the resume path
# ---------------------------------------------------------------------------


def _drain_job_entry(
    job_dir: str,
    jobs: int,
    retries: int,
    cell_timeout_s: Optional[float],
    lease_ttl: Optional[float],
    heartbeat_s: Optional[float],
) -> None:
    """Child-process entry: drain one job's run dir to completion.

    Runs the exact external-worker code path (``work_run`` /
    ``explore_resume``) under a fresh process-global registry, so the
    job's counters — including the simcache hits shipped back from each
    cell worker — land in ``obs.json`` for ``GET /jobs/<id>`` and
    ``/stats``. SIGTERM (cancel, shutdown, timeout) maps to
    ``KeyboardInterrupt``: the sweep teardown releases every held lease
    before the process exits 130.
    """
    from ..obs import set_registry

    def _interrupt(signum, frame):  # noqa: ARG001 - signal signature
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _interrupt)
    signal.signal(signal.SIGINT, _interrupt)
    try:
        signal.set_wakeup_fd(-1)  # detach the forked parent's asyncio wakeup pipe
    except (ValueError, OSError):  # pragma: no cover - non-main thread / closed fd
        pass

    obs = Registry()
    set_registry(obs)
    job_path = Path(job_dir)
    run_dir = job_path / "run"
    retry = RetryPolicy(max_attempts=retries, timeout_s=cell_timeout_s)
    code = 0
    try:
        if is_explore_run(run_dir):
            result, _ = explore_resume(
                run_dir,
                jobs=jobs,
                retry=retry,
                obs=obs,
                lease_ttl=lease_ttl,
                heartbeat_s=heartbeat_s,
            )
            code = 1 if result.failures else 0
        else:
            _, envelope, _, _ = work_run(
                run_dir,
                jobs=jobs,
                retry=retry,
                obs=obs,
                owner=default_owner_id(),
                lease_ttl=lease_ttl,
                heartbeat_s=heartbeat_s,
            )
            code = 1 if envelope["resilience"]["cells_failed"] else 0
    except KeyboardInterrupt:
        code = 130
    except BaseException as exc:  # noqa: BLE001 - report, then exit 2
        try:
            save_json(
                {
                    "schema": ERROR_SCHEMA,
                    "error": type(exc).__name__,
                    "message": str(exc),
                },
                job_path / "error.json",
            )
        except Exception:  # pragma: no cover - disk gone
            pass
        code = 2
    finally:
        try:
            save_json(
                {"schema": OBS_SCHEMA, "counters": dict(obs.snapshot())},
                job_path / "obs.json",
            )
        except Exception:  # pragma: no cover - disk gone
            pass
    sys.exit(code)


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs, parsed once at the CLI edge."""

    spool: Path
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in serve.json
    workers: int = 2  # 0 = pure coordinator: remote workers drain cells
    queue_limit: int = 16
    job_timeout_s: Optional[float] = None  # per-job wall clock default
    cell_jobs: int = 1
    retries: int = 3
    cell_timeout_s: Optional[float] = None
    lease_ttl: Optional[float] = None
    heartbeat_s: Optional[float] = None
    max_body_bytes: int = 1 << 20
    read_timeout_s: float = 10.0  # whole-request read deadline (-> 408)


class _JobRuntime:
    """In-memory mirror of one job: state, queue entry, drain handle."""

    __slots__ = ("job_id", "request", "state", "detail", "proc", "cancel_requested")

    def __init__(self, job_id: str, request: JobRequest, state: str, detail: str = ""):
        self.job_id = job_id
        self.request = request
        self.state = state
        self.detail = detail
        self.proc = None
        self.cancel_requested = False


class JobServer:
    """The asyncio HTTP job server (see the module docstring).

    Request routing (:meth:`handle_request`) is deliberately
    synchronous and side-effect-complete — the event loop is
    single-threaded, so every route observes and mutates a consistent
    state snapshot — while connection handling, the drain supervisors
    and shutdown are async tasks around it.
    """

    def __init__(self, config: ServeConfig, obs: Optional[Registry] = None):
        self.config = config
        self.store = JobStore(config.spool)
        self.obs = obs if obs is not None else Registry()
        self._jobs: Dict[str, _JobRuntime] = {}
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, job_id)
        self._seq = 0
        self._stopping = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._worker_tasks: List[asyncio.Task] = []
        self.port: Optional[int] = None
        #: wall-clock of recently finished drains, for adaptive Retry-After
        self._drain_durations: deque = deque(maxlen=32)
        retry = RetryPolicy(max_attempts=config.retries, timeout_s=config.cell_timeout_s)
        self.broker = RemoteCellBroker(
            self.store,
            self._claimable_job_ids,
            ttl_s=effective_lease_ttl(config.lease_ttl, config.heartbeat_s, retry),
            heartbeat_s=config.heartbeat_s or DEFAULT_HEARTBEAT_S,
            obs=self.obs,
        )

    # -- bookkeeping --------------------------------------------------------

    def _count(self, state: str) -> int:
        return sum(1 for rt in self._jobs.values() if rt.state == state)

    def _enqueue(self, job_id: str, priority: int) -> None:
        heapq.heappush(self._heap, (-priority, self._seq, job_id))
        self._seq += 1

    def _pop_next(self) -> Optional[_JobRuntime]:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            rt = self._jobs.get(job_id)
            if rt is not None and rt.state == "QUEUED" and not rt.cancel_requested:
                return rt
        return None

    def _claimable_job_ids(self) -> List[str]:
        """Jobs the remote protocol may hand cells from, best first.

        QUEUED and RUNNING jobs both qualify — remote workers race the
        local drain through the shared lease files, which is the point.
        Sort is stable, so equal priorities keep submission order.
        """
        live = [
            rt
            for rt in self._jobs.values()
            if rt.state in ("QUEUED", "RUNNING") and not rt.cancel_requested
        ]
        live.sort(key=lambda rt: -rt.request.priority)
        return [rt.job_id for rt in live]

    def _retry_after_s(self) -> int:
        """Adaptive 429 Retry-After: queue depth times the observed
        per-job drain time, spread over the drain workers."""
        if self._drain_durations:
            avg = sum(self._drain_durations) / len(self._drain_durations)
        else:
            avg = 1.0
        depth = self._count("QUEUED") + self._count("RUNNING")
        lanes = max(1, self.config.workers)
        return max(1, min(600, math.ceil(depth * avg / lanes)))

    def _finish(self, rt: _JobRuntime, state: str, detail: str) -> None:
        self.store.set_state(rt.job_id, state, detail)
        rt.state = state
        rt.detail = detail
        self.obs.counter(f"serve/jobs_{state.lower()}").add()
        if state in TERMINAL_STATES:
            self.broker.forget_job(rt.job_id)

    def stats_doc(self) -> Dict[str, Any]:
        counters = dict(self.obs.snapshot())
        jobs = {
            "submitted": int(counters.get("serve/jobs_submitted", 0)),
            "completed": int(counters.get("serve/jobs_done", 0)),
            "failed": int(counters.get("serve/jobs_failed", 0)),
            "cancelled": int(counters.get("serve/jobs_cancelled", 0)),
            "queued": self._count("QUEUED"),
            "running": self._count("RUNNING"),
        }
        jobs["reconciles"] = jobs["submitted"] == (
            jobs["completed"]
            + jobs["failed"]
            + jobs["cancelled"]
            + jobs["queued"]
            + jobs["running"]
        )
        return {
            "schema": STATS_SCHEMA,
            "jobs": jobs,
            "remote": self.broker.stats(),
            "counters": counters,
        }

    # -- the sync request core ----------------------------------------------

    def handle_request(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], bytes], Dict[str, str]]:
        """Route one request; returns (status, json-doc-or-raw-bytes, headers)."""
        self.obs.counter("serve/http_requests").add()
        try:
            return self._route(method, path, body)
        except JobError as exc:
            self.obs.counter("serve/http_errors").add()
            doc = {"error": "JobError", "message": str(exc)}
            if exc.field is not None:
                doc["field"] = exc.field
            return 400, doc, {}
        except ReproError as exc:
            self.obs.counter("serve/http_errors").add()
            return 400, {"error": type(exc).__name__, "message": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.obs.counter("serve/http_errors").add()
            return 500, {"error": type(exc).__name__, "message": str(exc)}, {}

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], bytes], Dict[str, str]]:
        path = path.split("?", 1)[0]
        if len(path) > 1:
            path = path.rstrip("/")
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, {"status": "ok", "schema": SERVE_SCHEMA, "pid": os.getpid()}, {}
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, self.stats_doc(), {}
        if path == "/status":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._status_all()
        if path == "/cells/claim":
            if method != "POST":
                return self._method_not_allowed("POST")
            if self._stopping:
                return 503, {"error": "ShuttingDown", "message": "server is draining"}, {}
            return self.broker.claim(self._json_body(body))
        if path.startswith("/cells/"):
            claim_id, _, op = path[len("/cells/"):].partition("/")
            if claim_id and op == "heartbeat" and method == "POST":
                return self.broker.heartbeat(claim_id, self._json_body(body))
            if claim_id and op == "result" and method == "PUT":
                return self.broker.result(claim_id, self._json_body(body))
            if claim_id and op == "abandon" and method == "POST":
                return self.broker.abandon(claim_id, self._json_body(body))
            if claim_id and op in ("heartbeat", "result", "abandon"):
                return self._method_not_allowed("PUT" if op == "result" else "POST")
            return 404, {"error": "NotFound", "message": f"no route {path!r}"}, {}
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return 200, {"jobs": [self._summary(rt) for rt in self._jobs.values()]}, {}
            return self._method_not_allowed("GET, POST")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/result"):
                job_id = rest[: -len("/result")]
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._result(job_id)
            job_id = rest
            if "/" in job_id:
                return 404, {"error": "NotFound", "message": f"no route {path!r}"}, {}
            if method == "GET":
                return self._status(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            return self._method_not_allowed("GET, DELETE")
        return 404, {"error": "NotFound", "message": f"no route {path!r}"}, {}

    def _method_not_allowed(self, allow: str):
        return 405, {"error": "MethodNotAllowed", "message": f"allowed: {allow}"}, {"Allow": allow}

    @staticmethod
    def _json_body(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobError(f"body is not valid JSON: {exc}")

    def _status_all(self):
        """``GET /status`` — every job's per-cell table, the document
        ``repro status --connect`` renders (docs/REMOTE.md)."""
        jobs = []
        for rt in self._jobs.values():
            entry = self._summary(rt)
            entry["detail"] = rt.detail
            run_dir = self.store.run_dir(rt.job_id)
            entry["progress"] = job_progress(run_dir)
            entry["cells"] = None
            if not is_explore_run(run_dir):
                try:
                    entry["cells"] = status_run(run_dir, verify=False)
                except ReproError:
                    pass
            jobs.append(entry)
        return 200, {"schema": SERVE_STATUS_SCHEMA, "jobs": jobs}, {}

    def _summary(self, rt: _JobRuntime) -> Dict[str, Any]:
        return {
            "job_id": rt.job_id,
            "state": rt.state,
            "verb": rt.request.verb,
            "priority": rt.request.priority,
        }

    def _submit(self, body: bytes):
        if self._stopping:
            return 503, {"error": "ShuttingDown", "message": "server is draining"}, {}
        if self._count("QUEUED") >= self.config.queue_limit:
            self.obs.counter("serve/jobs_rejected").add()
            retry_after = self._retry_after_s()
            return (
                429,
                {
                    "error": "QueueFull",
                    "message": f"queue limit {self.config.queue_limit} reached; retry later",
                    "retry_after_s": retry_after,
                },
                {"Retry-After": str(retry_after)},
            )
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.obs.counter("serve/jobs_invalid").add()
            self.obs.counter("serve/http_errors").add()
            return 400, {"error": "JobError", "message": f"body is not valid JSON: {exc}"}, {}
        try:
            request = JobRequest.from_dict(doc)
            job_id = self.store.create(request)
        except (JobError, ConfigError) as exc:
            self.obs.counter("serve/jobs_invalid").add()
            self.obs.counter("serve/http_errors").add()
            error = {"error": type(exc).__name__, "message": str(exc)}
            if getattr(exc, "field", None) is not None:
                error["field"] = exc.field
            return 400, error, {}
        rt = _JobRuntime(job_id, request, "QUEUED", "accepted")
        self._jobs[job_id] = rt
        self._enqueue(job_id, request.priority)
        self.obs.counter("serve/jobs_submitted").add()
        return 202, {"job_id": job_id, "state": "QUEUED", "run_dir": str(self.store.run_dir(job_id))}, {}

    def _status(self, job_id: str):
        rt = self._jobs.get(job_id)
        if rt is None:
            return 404, {"error": "NotFound", "message": f"unknown job {job_id!r}"}, {}
        doc: Dict[str, Any] = {
            "schema": STATUS_SCHEMA,
            "job_id": job_id,
            "state": rt.state,
            "detail": rt.detail,
            "request": rt.request.to_dict(),
            "run_dir": str(self.store.run_dir(job_id)),
            "progress": job_progress(self.store.run_dir(job_id)),
        }
        obs_doc = self.store.read_obs(job_id)
        if obs_doc is not None:
            doc["obs"] = obs_doc.get("counters")
        error_doc = self.store.read_error(job_id)
        if error_doc is not None:
            doc["error"] = {k: error_doc.get(k) for k in ("error", "message")}
        return 200, doc, {}

    def _result(self, job_id: str):
        rt = self._jobs.get(job_id)
        if rt is None:
            return 404, {"error": "NotFound", "message": f"unknown job {job_id!r}"}, {}
        if rt.state != "DONE":
            return (
                409,
                {
                    "error": "JobError",
                    "message": f"job {job_id} is {rt.state}; the result exists once DONE",
                    "state": rt.state,
                },
                {},
            )
        envelope_path = self.store.run_dir(job_id) / "envelope.json"
        # The exact bytes on disk: the embedded integrity digest stays
        # valid in the client's hands.
        return 200, envelope_path.read_bytes(), {}

    def _cancel(self, job_id: str):
        rt = self._jobs.get(job_id)
        if rt is None:
            return 404, {"error": "NotFound", "message": f"unknown job {job_id!r}"}, {}
        if rt.state in TERMINAL_STATES:
            return (
                409,
                {
                    "error": "JobError",
                    "message": f"job {job_id} already {rt.state}; cannot cancel",
                    "state": rt.state,
                },
                {},
            )
        rt.cancel_requested = True
        if rt.state == "QUEUED":
            self._finish(rt, "CANCELLED", "cancelled before start")
            return 200, {"job_id": job_id, "state": "CANCELLED"}, {}
        # RUNNING: SIGTERM the drain; its teardown releases the leases and
        # the supervisor records CANCELLED once the process is gone.
        if rt.proc is not None and rt.proc.is_alive():
            rt.proc.terminate()
        return 202, {"job_id": job_id, "state": rt.state, "cancelling": True}, {}

    # -- async plumbing -----------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.store.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._rescan()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        save_json(
            {
                "schema": SERVE_SCHEMA,
                "host": self.config.host,
                "port": self.port,
                "pid": os.getpid(),
                "spool": str(self.store.root),
            },
            self.store.root / "serve.json",
        )
        for _ in range(max(0, self.config.workers)):
            self._worker_tasks.append(asyncio.ensure_future(self._worker_loop()))
        # The housekeeper reaps silent remote claims and finalizes jobs
        # whose cells were all recorded by remote workers — with
        # ``--workers 0`` it is the only thing that completes a job.
        self._worker_tasks.append(asyncio.ensure_future(self._housekeeper_loop()))

    def _rescan(self) -> None:
        """Reload the spool after a restart: terminal jobs are counted,
        unfinished ones requeue through the normal resume path."""
        for job_id in self.store.list_ids():
            try:
                request = self.store.read_request(job_id)
                if request is None:
                    continue
                state_doc = self.store.read_state(job_id)
                state = state_doc["state"]
            except ReproError:
                self.obs.counter("serve/rescan_corrupt").add()
                continue
            self.obs.counter("serve/jobs_submitted").add()
            if state in TERMINAL_STATES:
                rt = _JobRuntime(job_id, request, state, state_doc.get("detail", ""))
                self._jobs[job_id] = rt
                self.obs.counter(f"serve/jobs_{state.lower()}").add()
                continue
            self.store.set_state(job_id, "QUEUED", "requeued after restart", force=True)
            rt = _JobRuntime(job_id, request, "QUEUED", "requeued after restart")
            self._jobs[job_id] = rt
            self._enqueue(job_id, request.priority)
            self.obs.counter("serve/jobs_requeued").add()

    async def serve(self) -> int:
        """Start, run until :meth:`request_stop`, shut down cleanly."""
        await self.start()
        try:
            await self._stop_event.wait()
        finally:
            await self.shutdown()
        return 0

    def request_stop(self) -> None:
        """Thread-safe stop signal (SIGTERM/SIGINT handler, tests)."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(self._stop_event.set)

    async def shutdown(self) -> None:
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        # Any job still RUNNING lost its supervisor mid-drain: stop the
        # drain (its teardown releases leases) and requeue durably so a
        # restart resumes it.
        for rt in self._jobs.values():
            if rt.state != "RUNNING":
                continue
            proc = rt.proc
            if proc is not None and proc.is_alive():
                proc.terminate()
                await self._loop.run_in_executor(None, proc.join, 10)
                if proc.is_alive():  # pragma: no cover - stuck drain
                    proc.kill()
                    await self._loop.run_in_executor(None, proc.join, 5)
            self.store.set_state(rt.job_id, "QUEUED", "requeued at shutdown")
            rt.state = "QUEUED"
        # Settle outstanding remote claims so the remote/* books balance;
        # reconnecting workers re-claim after the restart.
        self.broker.shutdown()
        try:
            (self.store.root / "serve.json").unlink()
        except OSError:
            pass

    async def _worker_loop(self) -> None:
        while not self._stopping:
            rt = self._pop_next()
            if rt is None:
                await asyncio.sleep(0.05)
                continue
            await self._run_job(rt)

    async def _housekeeper_loop(self) -> None:
        """Reap expired remote claims; finalize remotely-drained jobs.

        A QUEUED job whose every cell already has a durable record (all
        computed by remote workers) goes through the ordinary drain,
        which finds nothing pending, assembles the envelope and sweeps
        the leases — the server stays the single assembler. The
        fully-recorded check and :meth:`_run_job`'s synchronous
        QUEUED→RUNNING transition run without an ``await`` between
        them, so a concurrent :meth:`_worker_loop` cannot double-drain.
        """
        while not self._stopping:
            await asyncio.sleep(0.2)
            try:
                self.broker.reap()
            except Exception:  # noqa: BLE001 - keep the loop alive
                self.obs.counter("serve/housekeeper_errors").add()
            for rt in list(self._jobs.values()):
                if self._stopping:
                    break
                if rt.state != "QUEUED" or rt.cancel_requested:
                    continue
                try:
                    ready = self.broker.job_fully_recorded(rt.job_id)
                except ReproError:
                    continue
                if ready:
                    self.obs.counter("serve/jobs_finalized").add()
                    await self._run_job(rt)

    async def _run_job(self, rt: _JobRuntime) -> None:
        self.store.set_state(rt.job_id, "RUNNING", "draining")
        rt.state = "RUNNING"
        rt.detail = "draining"
        config = self.config
        ctx = pool_context()
        proc = ctx.Process(
            target=_drain_job_entry,
            args=(
                str(self.store.job_dir(rt.job_id)),
                config.cell_jobs,
                config.retries,
                config.cell_timeout_s,
                config.lease_ttl,
                config.heartbeat_s,
            ),
        )
        proc.start()
        rt.proc = proc
        started = time.monotonic()
        timeout = rt.request.timeout_s or config.job_timeout_s
        deadline = started + timeout if timeout else None
        timed_out = False
        kill_at: Optional[float] = None
        while proc.is_alive():
            await asyncio.sleep(0.05)
            now = time.monotonic()
            if deadline is not None and now > deadline and not timed_out:
                timed_out = True
                kill_at = now + 5.0
                proc.terminate()
                self.obs.counter("serve/jobs_timed_out").add()
            if kill_at is not None and now > kill_at and proc.is_alive():
                proc.kill()  # pragma: no cover - drain ignored SIGTERM
                kill_at = None
        proc.join()
        code = proc.exitcode
        rt.proc = None
        self._drain_durations.append(max(0.0, time.monotonic() - started))
        self._merge_job_obs(rt.job_id)
        if rt.cancel_requested:
            self._finish(rt, "CANCELLED", "cancelled while running")
        elif timed_out:
            self._finish(rt, "FAILED", f"job exceeded its {timeout:g}s timeout")
        elif code == 0:
            self._finish(rt, "DONE", "completed")
        elif code == 1:
            self._finish(rt, "FAILED", "one or more cells failed")
        else:
            self._finish(rt, "FAILED", f"drain exited with code {code}")

    def _merge_job_obs(self, job_id: str) -> None:
        """Aggregate a finished drain's counters into the server registry."""
        doc = self.store.read_obs(job_id)
        if doc is None:
            return
        counters = doc.get("counters")
        if not isinstance(counters, dict):
            return
        for path, value in counters.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool) and value > 0:
                self.obs.counter(path).add(value)

    # -- HTTP framing -------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            status, payload, headers = await self._read_and_route(reader)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
            writer.close()
            return
        body = payload if isinstance(payload, bytes) else (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
            410: "Gone", 413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        writer.close()

    async def _read_and_route(self, reader):
        """Frame one request under a single read deadline.

        The whole request — line, headers and body — must arrive within
        ``read_timeout_s``. A slow-loris connection that dribbles bytes
        to keep each individual read alive still hits the shared
        deadline and is answered 408; a body cut short of its declared
        Content-Length answers 400. Both are answers, not silent
        drops, so well-behaved clients can tell policy from partition.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.read_timeout_s

        def timed(awaitable):
            return asyncio.wait_for(awaitable, timeout=max(0.0, deadline - loop.time()))

        try:
            request_line = await timed(reader.readline())
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return 400, {"error": "BadRequest", "message": "malformed request line"}, {}
            method, path = parts[0], parts[1]
            content_length = 0
            headers_seen = 0
            while True:
                line = await timed(reader.readline())
                if line in (b"\r\n", b"\n", b""):
                    break
                headers_seen += 1
                if headers_seen > 256:
                    return 400, {"error": "BadRequest", "message": "too many headers"}, {}
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        return 400, {"error": "BadRequest", "message": "bad Content-Length"}, {}
            if content_length > self.config.max_body_bytes:
                return (
                    413,
                    {
                        "error": "JobError",
                        "message": f"body exceeds {self.config.max_body_bytes} bytes",
                    },
                    {},
                )
            body = await timed(reader.readexactly(content_length)) if content_length else b""
        except asyncio.TimeoutError:
            self.obs.counter("serve/http_timeouts").add()
            return (
                408,
                {
                    "error": "RequestTimeout",
                    "message": (
                        f"request not received within {self.config.read_timeout_s:g}s"
                    ),
                },
                {},
            )
        except asyncio.IncompleteReadError:
            self.obs.counter("serve/http_truncated").add()
            return 400, {"error": "BadRequest", "message": "request body truncated"}, {}
        return self.handle_request(method, path, body)


def serve_forever(config: ServeConfig, obs: Optional[Registry] = None) -> int:
    """Blocking entry point for ``repro serve``.

    Installs SIGTERM/SIGINT handlers when running in the main thread
    (tests drive :meth:`JobServer.request_stop` directly instead) and
    serves until stopped; returns the process exit code.
    """
    server = JobServer(config, obs=obs)

    async def _main() -> int:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_stop)
            except (ValueError, NotImplementedError, RuntimeError):
                pass  # non-main thread (tests) or platform without support
        await server.start()
        print(
            f"repro serve listening on http://{config.host}:{server.port} "
            f"(spool {server.store.root}, {config.workers} workers)",
            flush=True,
        )
        try:
            await server._stop_event.wait()
        finally:
            await server.shutdown()
        return 0

    return asyncio.run(_main())
