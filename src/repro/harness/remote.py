"""The HTTP work-dispatch protocol: remote workers with no shared filesystem.

``repro work --connect http://host:port`` joins a running ``repro
serve`` from another machine. Nothing is shared but the wire — the
protocol maps 1:1 onto the filesystem lease protocol (docs/COORD.md),
with the *server* executing every lease operation on the remote
worker's behalf against the same lease files local workers contend on:

- ``POST /cells/claim`` — the server scans its non-terminal jobs for a
  pending cell, claims it through a :class:`~repro.harness.coord.LeaseManager`
  bearing the remote worker's identity, and answers with a
  ``repro.cellspec/v1`` document: the cell's spec plus the lease and
  its fencing token.
- ``POST /cells/<claim>/heartbeat`` — renews the lease while the
  client simulates. A stale fencing token (or a lease lost to a local
  thief) answers a structured **409**; the client may still finish and
  upload — the first durable record wins.
- ``PUT /cells/<claim>/result`` — idempotent, at-least-once upload
  through :meth:`~repro.harness.resilience.RunDir.write_cell_exclusive`:
  a duplicate upload after a network retry is counted and discarded, a
  *diverging* one is an ``ArtifactIntegrityError(cell_conflict)`` 409.
- ``POST /cells/<claim>/abandon`` — clean client-side give-up; a
  vanished client is reclaimed by the server's TTL reaper instead.

Server-side accounting lands under ``remote/*`` and reconciles exactly:
``claims == completed + expired + abandoned + active`` (and once a
drain is over, ``active == 0``). The client is a resilient loop —
per-request timeouts, capped exponential backoff with jitter, a retry
budget, graceful degradation on partition: it abandons cleanly,
reconnects, and re-claims; fencing tokens fence off any zombie.
docs/REMOTE.md has the full protocol, lifecycle and failure matrix.
"""

from __future__ import annotations

import http.client
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import (
    ArtifactIntegrityError,
    CellError,
    JobError,
    LeaseError,
    RemoteProtocolError,
    StaleOwnerError,
)
from ..obs import NULL_REGISTRY, Registry
from .coord import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    KILL_AFTER_CLAIMS_ENV,
    KILL_AFTER_HEARTBEATS_ENV,
    SKEW_MARGIN_S,
    LeaseManager,
    default_owner_id,
    maybe_kill,
)
from .resilience import CELL_RUNNERS, KILL_AFTER_ENV, CellSpec, RunDir, SweepPlan
from .serialize import to_jsonable

__all__ = [
    "CELLSPEC_SCHEMA",
    "CLAIM_REQUEST_SCHEMA",
    "HEARTBEAT_SCHEMA",
    "RESULT_SCHEMA",
    "ABANDON_SCHEMA",
    "Backoff",
    "RemoteClient",
    "RemoteWorker",
    "RemoteCellBroker",
]

CLAIM_REQUEST_SCHEMA = "repro.claim/v1"
CELLSPEC_SCHEMA = "repro.cellspec/v1"
HEARTBEAT_SCHEMA = "repro.heartbeat/v1"
RESULT_SCHEMA = "repro.cellresult/v1"
ABANDON_SCHEMA = "repro.abandon/v1"

#: Settled claims kept around (as tombstones) so late/duplicate result
#: uploads still route idempotently; beyond this the oldest are dropped.
MAX_TOMBSTONES = 4096

#: Transport-level failures worth retrying — everything below an HTTP
#: status: refused/reset connections, timeouts, truncated responses.
_TRANSPORT_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
    OSError,
)


# ---------------------------------------------------------------------------
# Client plumbing: backoff + HTTP transport
# ---------------------------------------------------------------------------


class Backoff:
    """Capped exponential backoff with jitter, seeded for the tests."""

    def __init__(
        self,
        base_s: float = 0.25,
        factor: float = 2.0,
        cap_s: float = 10.0,
        jitter: float = 0.25,
        rng: Optional[random.Random] = None,
    ):
        self.base_s = float(base_s)
        self.factor = float(factor)
        self.cap_s = float(cap_s)
        self.jitter = float(jitter)
        self.rng = rng if rng is not None else random.Random()
        self.failures = 0

    def reset(self) -> None:
        self.failures = 0

    def next_delay(self) -> float:
        """The delay before the next attempt; grows per call until reset."""
        self.failures += 1
        raw = min(self.cap_s, self.base_s * self.factor ** (self.failures - 1))
        spread = raw * self.jitter
        return max(0.0, raw + self.rng.uniform(-spread, spread))


class RemoteClient:
    """Stdlib-urllib JSON transport with deadlines and bounded retry.

    Every request carries a per-request timeout. Transport failures
    (refused, reset, timed out, truncated mid-body) and 5xx answers are
    retried up to ``retries`` extra attempts behind :class:`Backoff`;
    exhausting the budget raises :class:`RemoteProtocolError`
    (``reason="unreachable"``). Any sub-500 HTTP answer — including the
    protocol's structured 4xx rejections — is returned to the caller as
    ``(status, parsed-body)``: those are answers, not failures.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        retries: int = 5,
        backoff: Optional[Backoff] = None,
        obs: Optional[Registry] = None,
    ):
        base_url = base_url.rstrip("/")
        if not base_url.startswith(("http://", "https://")):
            raise RemoteProtocolError(
                "server URL must start with http:// or https://",
                url=base_url,
                reason="bad_url",
            )
        self.base_url = base_url
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff = backoff if backoff is not None else Backoff()
        self.obs = obs if obs is not None else NULL_REGISTRY

    def request(
        self,
        method: str,
        path: str,
        doc: Optional[Dict[str, Any]] = None,
        retries: Optional[int] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        url = self.base_url + path
        payload = None if doc is None else json.dumps(to_jsonable(doc)).encode("utf-8")
        budget = self.retries if retries is None else int(retries)
        self.backoff.reset()
        last = "no attempt made"
        for attempt in range(budget + 1):
            if attempt:
                self.obs.counter("remote/http_retries").add()
                time.sleep(self.backoff.next_delay())
            self.obs.counter("remote/http_requests").add()
            try:
                status, raw = self._once(url, method, payload)
            except _TRANSPORT_ERRORS as exc:
                last = f"{type(exc).__name__}: {exc}"
                continue
            if status >= 500:
                last = f"server answered {status}"
                continue
            try:
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, ValueError) as exc:
                # A truncated or mangled body is a transport fault even
                # though a status line made it through.
                last = f"unparseable response body: {exc}"
                continue
            if not isinstance(body, dict):
                last = f"response body is {type(body).__name__}, not an object"
                continue
            return status, body
        raise RemoteProtocolError(
            f"{method} {path} failed after {budget + 1} attempt(s): {last}",
            url=url,
            reason="unreachable",
        )

    def _once(self, url: str, method: str, payload: Optional[bytes]) -> Tuple[int, bytes]:
        req = urllib.request.Request(
            url, data=payload, method=method, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, exc.read()


# ---------------------------------------------------------------------------
# The remote worker loop
# ---------------------------------------------------------------------------


class _Heartbeater(threading.Thread):
    """Renews one claim's lease every interval while the cell computes.

    A missed beat (transport fault) is counted and retried at the next
    interval — the TTL absorbs gaps. A structured rejection (409 stale
    token / stolen lease, 404/410 settled claim) sets ``lost`` and
    stops: the lease is gone for good, but the worker still finishes
    its attempt and uploads — the first durable record settles who won.
    """

    def __init__(self, worker: "RemoteWorker", claim_id: str, token: int, interval_s: float):
        super().__init__(daemon=True)
        self.worker = worker
        self.claim_id = claim_id
        self.token = token
        self.interval_s = max(0.05, float(interval_s))
        self.lost = threading.Event()
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        self.join()

    def run(self) -> None:
        body = {
            "schema": HEARTBEAT_SCHEMA,
            "worker": self.worker.owner,
            "token": self.token,
        }
        while not self._halt.wait(self.interval_s):
            try:
                status, _ = self.worker.client.request(
                    "POST", f"/cells/{self.claim_id}/heartbeat", body, retries=0
                )
            except RemoteProtocolError:
                self.worker.obs.counter("remote/heartbeat_misses").add()
                continue
            if status == 200:
                self.worker._note_heartbeat()
            else:
                self.worker.obs.counter("remote/lease_lost").add()
                self.lost.set()
                return


class RemoteWorker:
    """Drain a remote server's cells until it reports itself idle.

    The loop: claim → simulate locally (through the ordinary
    :data:`CELL_RUNNERS` registry, heartbeating in a side thread) →
    upload at-least-once → repeat. Partition tolerance is layered: each
    request retries behind the client's backoff; ``max_failures``
    *consecutive* failed claim rounds make the worker give up (exit 3).
    A lost lease or failed upload abandons the attempt cleanly — the
    server's TTL/steal machinery re-offers the cell, and
    ``write_cell_exclusive`` makes any zombie upload harmless.
    """

    def __init__(
        self,
        client: RemoteClient,
        owner: Optional[str] = None,
        obs: Optional[Registry] = None,
        attempts: int = 3,
        max_failures: int = 8,
        linger_s: float = 0.0,
        rng: Optional[random.Random] = None,
        stream=None,
    ):
        self.client = client
        self.owner = owner or default_owner_id()
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.attempts = max(1, int(attempts))
        self.max_failures = max(1, int(max_failures))
        self.linger_s = float(linger_s)
        self.rng = rng if rng is not None else random.Random()
        self.stream = stream if stream is not None else sys.stdout
        self._backoff = Backoff(base_s=0.5, cap_s=10.0, rng=self.rng)
        self._beats = 0
        self._claims = 0
        self._completed = 0
        self._abandoned = 0

    def _log(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def _note_heartbeat(self) -> None:
        self.obs.counter("remote/heartbeats").add()
        self._beats += 1
        maybe_kill(KILL_AFTER_HEARTBEATS_ENV, self._beats)

    # -- the loop ------------------------------------------------------------

    def run(self) -> int:
        """Claim/execute/upload until the server is idle (0), the server
        rejects us outright (2), or it stays unreachable (3)."""
        failures = 0
        idle_since: Optional[float] = None
        while True:
            try:
                status, doc = self.client.request(
                    "POST",
                    "/cells/claim",
                    {"schema": CLAIM_REQUEST_SCHEMA, "worker": self.owner},
                )
            except RemoteProtocolError as exc:
                failures += 1
                self.obs.counter("remote/claim_failures").add()
                if failures >= self.max_failures:
                    self._log(
                        f"giving up after {failures} consecutive failed claim "
                        f"rounds: {exc}"
                    )
                    return 3
                time.sleep(self._backoff.next_delay())
                continue
            if status == 400:
                # The server rejected the claim document itself — a
                # protocol bug, not a transient; retrying cannot help.
                self._log(f"server rejected claim request: {doc.get('message')}")
                return 2
            if status != 200:
                # 503 while draining, or anything unexpected: back off.
                failures += 1
                if failures >= self.max_failures:
                    self._log(f"giving up: server keeps answering {status}")
                    return 3
                time.sleep(self._backoff.next_delay())
                continue
            failures = 0
            self._backoff.reset()
            if not doc.get("cell"):
                if doc.get("idle"):
                    self.obs.counter("remote/idle_polls").add()
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if now - idle_since >= self.linger_s:
                        self._log(
                            f"server idle; worker {self.owner} done "
                            f"({self._completed} cells completed, "
                            f"{self._abandoned} abandoned)"
                        )
                        return 0
                else:
                    idle_since = None
                delay = float(doc.get("retry_after_s") or 0.5)
                time.sleep(delay * self.rng.uniform(0.8, 1.2))
                continue
            idle_since = None
            self._run_claim(doc)

    # -- one claim -----------------------------------------------------------

    def _run_claim(self, doc: Dict[str, Any]) -> None:
        spec = CellSpec.from_dict(doc["cell"])
        claim_id = doc["claim_id"]
        lease = doc.get("lease") or {}
        token = int(lease.get("token", 1))
        heartbeat_s = float(lease.get("heartbeat_s") or DEFAULT_HEARTBEAT_S)
        self.obs.counter("remote/cells_claimed").add()
        self._claims += 1
        maybe_kill(KILL_AFTER_CLAIMS_ENV, self._claims)
        beater = _Heartbeater(self, claim_id, token, interval_s=heartbeat_s)
        beater.start()
        try:
            status, payload, error, attempts = self._execute(spec)
        except BaseException:
            # Ctrl-C / SIGTERM mid-cell: release the lease promptly so
            # peers pick the cell up instead of waiting out the TTL.
            beater.stop()
            self._abandon(claim_id, token)
            raise
        beater.stop()
        # Upload even when the lease was lost mid-compute: the record
        # write is exclusive, so the first durable record wins and a
        # zombie's upload is counted, never corrupting.
        self._upload(claim_id, token, spec, status, payload, error, attempts)

    def _execute(self, spec: CellSpec) -> Tuple[str, Any, Optional[Dict[str, Any]], int]:
        runner = CELL_RUNNERS.get(spec.kind)
        if runner is None:
            error = CellError(
                f"no cell runner registered for kind {spec.kind!r}",
                cell_id=spec.cell_id,
                kind="exception",
            ).to_dict()
            return "failed", None, error, 1
        last: Optional[BaseException] = None
        for attempt in range(1, self.attempts + 1):
            self.obs.counter("remote/cell_attempts").add()
            try:
                return "ok", to_jsonable(runner(dict(spec.params))), None, attempt
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                last = exc
                self.obs.counter("remote/cell_errors").add()
                if attempt < self.attempts:
                    time.sleep(min(2.0, 0.25 * (2.0 ** (attempt - 1))))
        error = CellError(
            f"{type(last).__name__}: {last}",
            cell_id=spec.cell_id,
            kind="exception",
            attempts=self.attempts,
        ).to_dict()
        return "failed", None, error, self.attempts

    def _upload(
        self,
        claim_id: str,
        token: int,
        spec: CellSpec,
        status: str,
        payload: Any,
        error: Optional[Dict[str, Any]],
        attempts: int,
    ) -> bool:
        body = {
            "schema": RESULT_SCHEMA,
            "worker": self.owner,
            "token": token,
            "status": status,
            "result": payload,
            "error": error,
            "attempts": attempts,
        }
        try:
            code, doc = self.client.request("PUT", f"/cells/{claim_id}/result", body)
        except RemoteProtocolError:
            # Partition during upload: abandon cleanly. The server's TTL
            # reaper reclaims the lease and the cell is re-offered; a
            # duplicate of any record that does land later is counted.
            self._abandoned += 1
            self.obs.counter("remote/cells_abandoned").add()
            self._log(f"abandoning {spec.cell_id}: result upload unreachable")
            return False
        if code == 200:
            self._completed += 1
            self.obs.counter("remote/cells_completed").add()
            if doc.get("duplicate"):
                self.obs.counter("remote/duplicates").add()
            maybe_kill(KILL_AFTER_ENV, self._completed)
            return True
        self._abandoned += 1
        self.obs.counter("remote/cells_abandoned").add()
        self._log(
            f"abandoning {spec.cell_id}: upload rejected "
            f"({code} {doc.get('reason') or doc.get('error')})"
        )
        return False

    def _abandon(self, claim_id: str, token: int) -> None:
        try:
            self.client.request(
                "POST",
                f"/cells/{claim_id}/abandon",
                {"schema": ABANDON_SCHEMA, "worker": self.owner, "token": token},
                retries=0,
            )
        except RemoteProtocolError:
            pass  # best effort; the TTL reaper covers us


# ---------------------------------------------------------------------------
# The server-side broker
# ---------------------------------------------------------------------------


class _RemoteClaim:
    """One outstanding (or tombstoned) remote claim."""

    __slots__ = (
        "claim_id",
        "job_id",
        "cell_id",
        "worker",
        "token",
        "spec",
        "manager",
        "rundir",
        "last_seen",
        "state",  # active -> done | expired | abandoned
    )

    def __init__(self, claim_id, job_id, worker, token, spec, manager, rundir, now):
        self.claim_id = claim_id
        self.job_id = job_id
        self.cell_id = spec.cell_id
        self.worker = worker
        self.token = token
        self.spec = spec
        self.manager = manager
        self.rundir = rundir
        self.last_seen = now
        self.state = "active"


def _reject(status: int, reason: str, message: str, error: str = "RemoteProtocolError"):
    return status, {"error": error, "reason": reason, "message": message}, {}


class RemoteCellBroker:
    """Server-side end of the protocol: leases executed by proxy.

    Each (job, remote worker) pair gets its own
    :class:`~repro.harness.coord.LeaseManager` bearing the *remote
    worker's* owner id, rooted at the job's ordinary leases directory —
    so remote claims, local drain workers and filesystem ``repro work``
    processes all contend through the identical lease files and steal
    rules. Claims the client stops renewing are reaped on the server's
    monotonic clock after the TTL and settle as ``expired``; settled
    claims stay behind as tombstones so late and duplicate uploads
    still resolve idempotently. All methods are synchronous and called
    from the server's single event-loop thread.
    """

    def __init__(
        self,
        store: Any,
        jobs_view: Callable[[], Iterable[str]],
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        obs: Optional[Registry] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.store = store
        self.jobs_view = jobs_view
        self.ttl_s = float(ttl_s)
        self.heartbeat_s = float(heartbeat_s)
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.clock = clock
        self._claims: Dict[str, _RemoteClaim] = {}
        self._by_job: Dict[str, set] = {}
        self._managers: Dict[Tuple[str, str], LeaseManager] = {}
        self._plans: Dict[str, Optional[Tuple[RunDir, SweepPlan]]] = {}
        self._settled: deque = deque()
        self._claim_seq = 0

    # -- helpers -------------------------------------------------------------

    def _plan(self, job_id: str) -> Optional[Tuple[RunDir, SweepPlan]]:
        """The job's (RunDir, plan), cached — ``None`` for run dirs the
        network protocol does not dispatch (explore rungs; ROADMAP 2)."""
        if job_id not in self._plans:
            rundir = RunDir(self.store.run_dir(job_id))
            try:
                manifest = rundir.load_manifest(verify=True)
                self._plans[job_id] = (rundir, rundir.plan_from_manifest(manifest))
            except ArtifactIntegrityError:
                self._plans[job_id] = None
        return self._plans[job_id]

    def _manager(self, job_id: str, worker: str) -> LeaseManager:
        key = (job_id, worker)
        manager = self._managers.get(key)
        if manager is None:
            entry = self._plan(job_id)
            assert entry is not None  # callers claim only sweep-shaped jobs
            manager = LeaseManager(
                entry[0].leases_dir,
                owner=worker,
                ttl_s=self.ttl_s,
                heartbeat_s=self.heartbeat_s,
                obs=self.obs,
                clock=self.clock,
            )
            self._managers[key] = manager
        return manager

    def _worker_field(self, doc: Any, schema: str) -> str:
        if not isinstance(doc, dict):
            raise JobError("request body must be a JSON object")
        if doc.get("schema") != schema:
            raise JobError(
                f"request schema must be {schema!r}, got {doc.get('schema')!r}",
                field="schema",
            )
        worker = doc.get("worker")
        if not isinstance(worker, str) or not worker or len(worker) > 200:
            raise JobError("worker must be a non-empty string", field="worker")
        return worker

    def _token_field(self, doc: Dict[str, Any]) -> int:
        token = doc.get("token")
        if not isinstance(token, int) or isinstance(token, bool):
            raise JobError("token must be an integer fencing token", field="token")
        return token

    def _settle(self, claim: _RemoteClaim, outcome: str, release: bool = True) -> None:
        """Move an active claim into exactly one terminal bucket.

        ``release=False`` supersedes the claim on the books without
        touching the lease file — used when a re-delivered claim for
        the same (cell, worker) continues under the same lease.
        """
        if claim.state != "active":
            return
        claim.state = "done" if outcome == "completed" else outcome
        if release:
            claim.manager.release(
                claim.cell_id,
                {"completed": "completed", "expired": "expired", "abandoned": "released"}[
                    outcome
                ],
            )
        self.obs.counter(f"remote/{outcome}").add()
        self._settled.append(claim.claim_id)
        while len(self._settled) > MAX_TOMBSTONES:
            old_id = self._settled.popleft()
            old = self._claims.get(old_id)
            if old is not None and old.state != "active":
                self._claims.pop(old_id, None)
                self._by_job.get(old.job_id, set()).discard(old_id)

    def _lookup(self, claim_id: str, worker: str, token: int):
        """The claim, or a ready-to-return rejection tuple."""
        claim = self._claims.get(claim_id)
        if claim is None:
            return None, _reject(
                410, "unknown_claim", f"claim {claim_id!r} is unknown or forgotten"
            )
        if claim.worker != worker or claim.token != token:
            self.obs.counter("remote/stale_tokens").add()
            return None, _reject(
                409,
                "stale_token",
                f"fencing token {token} for worker {worker!r} does not match "
                f"claim {claim_id!r} (token {claim.token})",
            )
        return claim, None

    # -- protocol operations -------------------------------------------------

    def claim(self, doc: Any):
        """``POST /cells/claim`` — find and lease one pending cell."""
        worker = self._worker_field(doc, CLAIM_REQUEST_SCHEMA)
        jobs = list(self.jobs_view())
        for job_id in jobs:
            entry = self._plan(job_id)
            if entry is None:
                continue
            rundir, plan = entry
            for spec in rundir.pending_cells(plan, retry_failed=False):
                manager = self._manager(job_id, worker)
                lease = manager.try_claim(spec.cell_id)
                if lease is None:
                    continue
                now = self.clock()
                # A re-delivered claim (our earlier answer was lost in
                # transit) returns the same still-held lease: supersede
                # the orphaned claim on the books, keep the lease live.
                for old_id in list(self._by_job.get(job_id, ())):
                    old = self._claims.get(old_id)
                    if (
                        old is not None
                        and old.state == "active"
                        and old.cell_id == spec.cell_id
                        and old.worker == worker
                    ):
                        self._settle(old, "expired", release=False)
                self._claim_seq += 1
                claim_id = f"cl-{self._claim_seq:06d}-{lease.token}"
                claim = _RemoteClaim(
                    claim_id, job_id, worker, lease.token, spec, manager, rundir, now
                )
                self._claims[claim_id] = claim
                self._by_job.setdefault(job_id, set()).add(claim_id)
                self.obs.counter("remote/claims").add()
                return (
                    200,
                    {
                        "schema": CELLSPEC_SCHEMA,
                        "claim_id": claim_id,
                        "job_id": job_id,
                        "cell": spec.to_dict(),
                        "seed": plan.seed,
                        "lease": {
                            "owner": worker,
                            "token": lease.token,
                            "ttl_s": self.ttl_s,
                            "heartbeat_s": self.heartbeat_s,
                        },
                    },
                    {},
                )
        idle = not jobs
        if idle:
            self.obs.counter("remote/idle_polls").add()
        return (
            200,
            {
                "schema": CELLSPEC_SCHEMA,
                "claim_id": None,
                "cell": None,
                "idle": idle,
                "retry_after_s": round(min(2.0, max(0.1, self.heartbeat_s / 2)), 3),
            },
            {},
        )

    def heartbeat(self, claim_id: str, doc: Any):
        """``POST /cells/<id>/heartbeat`` — renew, 409 on stale fencing."""
        worker = self._worker_field(doc, HEARTBEAT_SCHEMA)
        token = self._token_field(doc)
        claim, rejection = self._lookup(claim_id, worker, token)
        if rejection is not None:
            return rejection
        if claim.state != "active":
            return _reject(
                410, "claim_settled", f"claim {claim_id!r} already settled ({claim.state})"
            )
        try:
            lease = claim.manager.heartbeat(claim.cell_id)
        except StaleOwnerError as exc:
            self._settle(claim, "expired")
            return _reject(409, "stale_lease", str(exc), error="StaleOwnerError")
        except LeaseError as exc:  # lease swept by a finished drain
            self._settle(claim, "expired")
            return _reject(409, "stale_lease", str(exc), error="LeaseError")
        claim.last_seen = self.clock()
        self.obs.counter("remote/heartbeats").add()
        return 200, {"ok": True, "token": lease.token, "heartbeats": lease.heartbeats}, {}

    def result(self, claim_id: str, doc: Any):
        """``PUT /cells/<id>/result`` — idempotent first-record-wins."""
        worker = self._worker_field(doc, RESULT_SCHEMA)
        token = self._token_field(doc)
        status = doc.get("status")
        if status not in ("ok", "failed"):
            raise JobError("status must be 'ok' or 'failed'", field="status")
        attempts = doc.get("attempts", 1)
        if not isinstance(attempts, int) or isinstance(attempts, bool) or attempts < 1:
            raise JobError("attempts must be a positive integer", field="attempts")
        error = doc.get("error")
        if error is not None and not isinstance(error, dict):
            raise JobError("error must be an object or null", field="error")
        claim, rejection = self._lookup(claim_id, worker, token)
        if rejection is not None:
            return rejection
        try:
            record, wrote = claim.rundir.write_cell_exclusive(
                claim.spec, status, result=doc.get("result"), error=error, attempts=attempts
            )
        except ArtifactIntegrityError as exc:
            # Diverging double completion — deterministic cells cannot
            # disagree unless something is broken. Fence the claim off.
            self.obs.counter("remote/conflicts").add()
            self._settle(claim, "expired")
            return _reject(409, "cell_conflict", str(exc), error="ArtifactIntegrityError")
        if not wrote:
            self.obs.counter("coord/duplicates").add()
            self.obs.counter("remote/duplicates").add()
        if claim.state == "active":
            self._settle(claim, "completed")
        elif claim.state in ("expired", "abandoned"):
            self.obs.counter("remote/late_results").add()
        claim.last_seen = self.clock()
        return 200, {"recorded": True, "duplicate": not wrote, "state": claim.state}, {}

    def abandon(self, claim_id: str, doc: Any):
        """``POST /cells/<id>/abandon`` — clean client-side give-up."""
        worker = self._worker_field(doc, ABANDON_SCHEMA)
        token = self._token_field(doc)
        claim, rejection = self._lookup(claim_id, worker, token)
        if rejection is not None:
            return rejection
        released = claim.state == "active"
        if released:
            self._settle(claim, "abandoned")
        return 200, {"released": released, "state": claim.state}, {}

    # -- housekeeping --------------------------------------------------------

    def reap(self) -> int:
        """Expire active claims whose client stopped renewing (TTL on
        the server's own monotonic clock); returns claims reaped."""
        now = self.clock()
        reaped = 0
        for claim in list(self._claims.values()):
            if claim.state != "active":
                continue
            if now - claim.last_seen > self.ttl_s + SKEW_MARGIN_S:
                self._settle(claim, "expired")
                reaped += 1
        return reaped

    def job_fully_recorded(self, job_id: str) -> bool:
        """True when every cell of a sweep-shaped job has a durable
        record — the moment a remote-only drain can be finalized."""
        entry = self._plan(job_id)
        if entry is None:
            return False
        rundir, plan = entry
        return not rundir.pending_cells(plan, retry_failed=False)

    def forget_job(self, job_id: str) -> None:
        """Drop a terminal job's claims, managers and cached plan.

        Any still-active claim is settled ``expired`` first so the
        ``remote/*`` books keep balancing; its lease file (if one
        remains) is released through the normal path.
        """
        for claim_id in list(self._by_job.get(job_id, ())):
            claim = self._claims.pop(claim_id, None)
            if claim is not None:
                self._settle(claim, "expired")
        self._by_job.pop(job_id, None)
        self._plans.pop(job_id, None)
        for key in [key for key in self._managers if key[0] == job_id]:
            del self._managers[key]

    def shutdown(self) -> None:
        """Settle every active claim (server-initiated teardown)."""
        for claim in list(self._claims.values()):
            self._settle(claim, "expired")

    def stats(self) -> Dict[str, Any]:
        """The ``remote`` reconciliation block for ``GET /stats``."""
        counters = dict(self.obs.snapshot())
        active = sum(1 for claim in self._claims.values() if claim.state == "active")
        doc = {
            "claims": int(counters.get("remote/claims", 0)),
            "completed": int(counters.get("remote/completed", 0)),
            "expired": int(counters.get("remote/expired", 0)),
            "abandoned": int(counters.get("remote/abandoned", 0)),
            "active": active,
        }
        doc["reconciles"] = doc["claims"] == (
            doc["completed"] + doc["expired"] + doc["abandoned"] + doc["active"]
        )
        return doc
