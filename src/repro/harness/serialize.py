"""Serialization of experiment results to JSON/CSV.

The figure drivers return rich dataclasses; this module flattens them to
plain dictionaries and writes JSON or CSV so results can be archived,
diffed across runs, or plotted outside Python. Round-trip tested for the
structures the benchmarks produce.

Two documented, versioned schemas live here (full field reference in
docs/EXPERIMENTS.md):

- the **experiment envelope** (``experiment_envelope``) wrapping any
  experiment result under ``{"schema": "repro.experiment/v1", ...}`` —
  what ``repro run --json`` writes;
- the **run-stats document** (``RunStats.to_dict`` in
  ``repro.arch.stats``) — one accelerator x network simulation with
  per-layer rows, lossless through ``run_stats_from_dict``.

All writers here are **atomic and checksummed** (docs/RESILIENCE.md):
content goes to a temp file in the target directory, is fsync'd, then
renamed over the destination, so an interrupt never leaves a
half-written artifact. JSON documents embed a SHA-256 content digest
under ``"__integrity__"`` which :func:`load_json` verifies (and strips)
on read; CSV files get a ``<name>.sha256`` sidecar. A truncated or
tampered artifact is rejected with a structured
:class:`~repro.errors.ArtifactIntegrityError` naming the path and the
failed check, never a raw ``JSONDecodeError``.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

import numpy as np

from ..arch.stats import LayerStats, RunStats, STATS_SCHEMA_VERSION
from ..errors import ArtifactIntegrityError

__all__ = [
    "EXPERIMENT_SCHEMA",
    "SCHEMA_VERSION",
    "INTEGRITY_KEY",
    "to_jsonable",
    "atomic_write_text",
    "content_digest",
    "save_json",
    "load_json",
    "run_stats_rows",
    "run_stats_from_dict",
    "save_csv",
    "load_csv",
    "experiment_envelope",
    "experiment_csv_rows",
]

#: Version of the experiment-envelope schema written by ``repro run --json``.
SCHEMA_VERSION = 1
EXPERIMENT_SCHEMA = f"repro.experiment/v{SCHEMA_VERSION}"

#: Key under which JSON documents carry their embedded content digest.
INTEGRITY_KEY = "__integrity__"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert results (dataclasses, numpy, dicts) to JSON types."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if is_dataclass(obj) and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in asdict(obj).items()}
    if isinstance(obj, dict):
        return {_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def _key(key: Any) -> str:
    """JSON object keys must be strings; tuples join with '/'."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def atomic_write_text(text: str, path: Union[str, Path]) -> Path:
    """Write ``text`` to ``path`` with write-to-temp + fsync + rename.

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename: readers see
    either the previous complete artifact or the new complete one,
    never a truncated intermediate. The directory entry is fsync'd
    best-effort afterwards so the rename itself survives a crash.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", newline="") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:  # persist the rename; not all filesystems allow dir fsync
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    return path


def _canonical_dumps(doc: Any) -> str:
    return json.dumps(doc, indent=2, sort_keys=True)


def content_digest(doc: Any) -> str:
    """SHA-256 hex digest of a document's canonical JSON form.

    For dicts the embedded ``__integrity__`` block is excluded, so the
    digest of a loaded document reproduces the digest it was saved with.
    """
    if isinstance(doc, dict):
        doc = {k: v for k, v in doc.items() if k != INTEGRITY_KEY}
    return hashlib.sha256(_canonical_dumps(doc).encode()).hexdigest()


def save_json(obj: Any, path: Union[str, Path], digest: bool = True) -> Path:
    """Atomically serialize a result object to a JSON file.

    Dict documents additionally embed ``{"__integrity__": {"algo":
    "sha256", "digest": ...}}`` over their canonical content, which
    :func:`load_json` verifies and strips. Non-dict payloads (bare
    lists/scalars) have nowhere to embed a digest and are written
    plain.
    """
    doc = to_jsonable(obj)
    if digest and isinstance(doc, dict):
        doc = dict(doc)
        doc[INTEGRITY_KEY] = {"algo": "sha256", "digest": content_digest(doc)}
    return atomic_write_text(_canonical_dumps(doc), path)


def load_json(path: Union[str, Path], verify: bool = True) -> Any:
    """Load a JSON artifact, verifying (and stripping) its digest.

    A file that does not parse — the signature of a torn non-atomic
    write — raises :class:`ArtifactIntegrityError` with the path and
    parse position rather than a raw ``JSONDecodeError``; a digest
    mismatch likewise. ``verify=False`` (the CLI's ``--no-verify``)
    skips the digest check but still strips the key.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ArtifactIntegrityError(
            f"cannot read artifact: {exc}", path=str(path), reason="unreadable"
        ) from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactIntegrityError(
            f"artifact is not valid JSON (truncated or torn write?): {exc}",
            path=str(path),
            reason="truncated",
        ) from exc
    if isinstance(doc, dict) and INTEGRITY_KEY in doc:
        declared = doc.pop(INTEGRITY_KEY)
        if verify:
            expected = declared.get("digest") if isinstance(declared, dict) else None
            actual = content_digest(doc)
            if expected != actual:
                raise ArtifactIntegrityError(
                    f"content digest mismatch: declared {expected!r}, computed {actual!r}",
                    path=str(path),
                    reason="digest_mismatch",
                )
    return doc


def run_stats_rows(run: RunStats) -> List[Dict[str, Any]]:
    """Flatten a :class:`RunStats` into one row per layer (CSV-friendly)."""
    rows: List[Dict[str, Any]] = []
    for layer in run.layers:
        rows.append(
            {
                "accelerator": run.accelerator,
                "network": run.network,
                "layer": layer.layer_name,
                "cycles": layer.cycles,
                "macs": layer.macs,
                "ops_issued": layer.ops_issued,
                "run_cycles": layer.run_cycles,
                "skip_cycles": layer.skip_cycles,
                "idle_cycles": layer.idle_cycles,
                "energy_dram_pj": layer.energy.dram,
                "energy_buffer_pj": layer.energy.buffer,
                "energy_local_pj": layer.energy.local,
                "energy_logic_pj": layer.energy.logic,
                "energy_total_pj": layer.energy.total,
            }
        )
    return rows


def run_stats_from_dict(data: Dict[str, Any]) -> RunStats:
    """Rebuild a :class:`RunStats` from its ``to_dict`` document."""
    return RunStats.from_dict(data)


def experiment_envelope(experiment_id: str, result: Any, description: str = "") -> Dict[str, Any]:
    """Wrap one experiment result in the versioned JSON envelope.

    The envelope is self-describing: ``schema`` names the format,
    ``experiment`` the id (``fig11``, ``tab1``, ``profile``, ...), and
    ``result`` holds the JSON-converted driver output. :class:`RunStats`
    values found inside the result are serialized through their own
    versioned ``to_dict`` so they round-trip losslessly.
    """
    return {
        "schema": EXPERIMENT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "stats_schema_version": STATS_SCHEMA_VERSION,
        "experiment": experiment_id,
        "description": description,
        "result": to_jsonable(_expand_run_stats(result)),
    }


def _expand_run_stats(obj: Any) -> Any:
    """Swap embedded RunStats for their versioned dict form, recursively."""
    if isinstance(obj, RunStats):
        return obj.to_dict()
    if isinstance(obj, dict):
        return {k: _expand_run_stats(v) for k, v in obj.items()}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            name: _expand_run_stats(getattr(obj, name))
            for name in obj.__dataclass_fields__
        }
    if isinstance(obj, (list, tuple)):
        return [_expand_run_stats(v) for v in obj]
    return obj


def experiment_csv_rows(result: Any) -> List[Dict[str, Any]]:
    """Per-layer CSV rows for any result that exposes ``.runs`` of RunStats.

    Breakdown-style experiments (fig11/12/13, ``compare``) carry one
    :class:`RunStats` per accelerator; other experiments have no natural
    tabular layer form and yield no rows.
    """
    rows: List[Dict[str, Any]] = []
    runs = getattr(result, "runs", None)
    if isinstance(runs, dict):
        for run in runs.values():
            if isinstance(run, RunStats):
                rows.extend(run_stats_rows(run))
    return rows


def save_csv(rows: Iterable[Dict[str, Any]], path: Union[str, Path], digest: bool = True) -> Path:
    """Atomically write uniform dict rows as CSV; returns the path.

    CSV has no in-band place for metadata, so the SHA-256 content
    digest goes to a ``<name>.sha256`` sidecar (``sha256sum`` format)
    that :func:`load_csv` verifies when present.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to write")
    path = Path(path)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    text = buffer.getvalue()
    atomic_write_text(text, path)
    if digest:
        checksum = hashlib.sha256(text.encode()).hexdigest()
        atomic_write_text(f"{checksum}  {path.name}\n", path.with_suffix(path.suffix + ".sha256"))
    return path


def load_csv(path: Union[str, Path], verify: bool = True) -> List[Dict[str, str]]:
    """Read a CSV artifact back as dict rows, checking its sidecar digest."""
    path = Path(path)
    try:
        # bytes, not read_text(): universal-newline translation would
        # change the \r\n the csv writer emits and break the digest
        text = path.read_bytes().decode()
    except OSError as exc:
        raise ArtifactIntegrityError(
            f"cannot read artifact: {exc}", path=str(path), reason="unreadable"
        ) from exc
    sidecar = path.with_suffix(path.suffix + ".sha256")
    if verify and sidecar.exists():
        declared = sidecar.read_text().split()[0] if sidecar.read_text().split() else ""
        actual = hashlib.sha256(text.encode()).hexdigest()
        if declared != actual:
            raise ArtifactIntegrityError(
                f"content digest mismatch: declared {declared!r}, computed {actual!r}",
                path=str(path),
                reason="digest_mismatch",
            )
    return list(csv.DictReader(io.StringIO(text)))
