"""Serialization of experiment results to JSON/CSV.

The figure drivers return rich dataclasses; this module flattens them to
plain dictionaries and writes JSON or CSV so results can be archived,
diffed across runs, or plotted outside Python. Round-trip tested for the
structures the benchmarks produce.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

import numpy as np

from ..arch.stats import LayerStats, RunStats

__all__ = ["to_jsonable", "save_json", "load_json", "run_stats_rows", "save_csv"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert results (dataclasses, numpy, dicts) to JSON types."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if is_dataclass(obj) and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in asdict(obj).items()}
    if isinstance(obj, dict):
        return {_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def _key(key: Any) -> str:
    """JSON object keys must be strings; tuples join with '/'."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def save_json(obj: Any, path: Union[str, Path]) -> Path:
    """Serialize a result object to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(to_jsonable(obj), handle, indent=2, sort_keys=True)
    return path


def load_json(path: Union[str, Path]) -> Any:
    with open(path) as handle:
        return json.load(handle)


def run_stats_rows(run: RunStats) -> List[Dict[str, Any]]:
    """Flatten a :class:`RunStats` into one row per layer (CSV-friendly)."""
    rows: List[Dict[str, Any]] = []
    for layer in run.layers:
        rows.append(
            {
                "accelerator": run.accelerator,
                "network": run.network,
                "layer": layer.layer_name,
                "cycles": layer.cycles,
                "macs": layer.macs,
                "ops_issued": layer.ops_issued,
                "run_cycles": layer.run_cycles,
                "skip_cycles": layer.skip_cycles,
                "idle_cycles": layer.idle_cycles,
                "energy_dram_pj": layer.energy.dram,
                "energy_buffer_pj": layer.energy.buffer,
                "energy_local_pj": layer.energy.local,
                "energy_logic_pj": layer.energy.logic,
                "energy_total_pj": layer.energy.total,
            }
        )
    return rows


def save_csv(rows: Iterable[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write an iterable of uniform dict rows as CSV; returns the path."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to write")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path
