"""Serialization of experiment results to JSON/CSV.

The figure drivers return rich dataclasses; this module flattens them to
plain dictionaries and writes JSON or CSV so results can be archived,
diffed across runs, or plotted outside Python. Round-trip tested for the
structures the benchmarks produce.

Two documented, versioned schemas live here (full field reference in
docs/EXPERIMENTS.md):

- the **experiment envelope** (``experiment_envelope``) wrapping any
  experiment result under ``{"schema": "repro.experiment/v1", ...}`` —
  what ``repro run --json`` writes;
- the **run-stats document** (``RunStats.to_dict`` in
  ``repro.arch.stats``) — one accelerator x network simulation with
  per-layer rows, lossless through ``run_stats_from_dict``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

import numpy as np

from ..arch.stats import LayerStats, RunStats, STATS_SCHEMA_VERSION

__all__ = [
    "EXPERIMENT_SCHEMA",
    "SCHEMA_VERSION",
    "to_jsonable",
    "save_json",
    "load_json",
    "run_stats_rows",
    "run_stats_from_dict",
    "save_csv",
    "experiment_envelope",
    "experiment_csv_rows",
]

#: Version of the experiment-envelope schema written by ``repro run --json``.
SCHEMA_VERSION = 1
EXPERIMENT_SCHEMA = f"repro.experiment/v{SCHEMA_VERSION}"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert results (dataclasses, numpy, dicts) to JSON types."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if is_dataclass(obj) and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in asdict(obj).items()}
    if isinstance(obj, dict):
        return {_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def _key(key: Any) -> str:
    """JSON object keys must be strings; tuples join with '/'."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def save_json(obj: Any, path: Union[str, Path]) -> Path:
    """Serialize a result object to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(to_jsonable(obj), handle, indent=2, sort_keys=True)
    return path


def load_json(path: Union[str, Path]) -> Any:
    with open(path) as handle:
        return json.load(handle)


def run_stats_rows(run: RunStats) -> List[Dict[str, Any]]:
    """Flatten a :class:`RunStats` into one row per layer (CSV-friendly)."""
    rows: List[Dict[str, Any]] = []
    for layer in run.layers:
        rows.append(
            {
                "accelerator": run.accelerator,
                "network": run.network,
                "layer": layer.layer_name,
                "cycles": layer.cycles,
                "macs": layer.macs,
                "ops_issued": layer.ops_issued,
                "run_cycles": layer.run_cycles,
                "skip_cycles": layer.skip_cycles,
                "idle_cycles": layer.idle_cycles,
                "energy_dram_pj": layer.energy.dram,
                "energy_buffer_pj": layer.energy.buffer,
                "energy_local_pj": layer.energy.local,
                "energy_logic_pj": layer.energy.logic,
                "energy_total_pj": layer.energy.total,
            }
        )
    return rows


def run_stats_from_dict(data: Dict[str, Any]) -> RunStats:
    """Rebuild a :class:`RunStats` from its ``to_dict`` document."""
    return RunStats.from_dict(data)


def experiment_envelope(experiment_id: str, result: Any, description: str = "") -> Dict[str, Any]:
    """Wrap one experiment result in the versioned JSON envelope.

    The envelope is self-describing: ``schema`` names the format,
    ``experiment`` the id (``fig11``, ``tab1``, ``profile``, ...), and
    ``result`` holds the JSON-converted driver output. :class:`RunStats`
    values found inside the result are serialized through their own
    versioned ``to_dict`` so they round-trip losslessly.
    """
    return {
        "schema": EXPERIMENT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "stats_schema_version": STATS_SCHEMA_VERSION,
        "experiment": experiment_id,
        "description": description,
        "result": to_jsonable(_expand_run_stats(result)),
    }


def _expand_run_stats(obj: Any) -> Any:
    """Swap embedded RunStats for their versioned dict form, recursively."""
    if isinstance(obj, RunStats):
        return obj.to_dict()
    if isinstance(obj, dict):
        return {k: _expand_run_stats(v) for k, v in obj.items()}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            name: _expand_run_stats(getattr(obj, name))
            for name in obj.__dataclass_fields__
        }
    if isinstance(obj, (list, tuple)):
        return [_expand_run_stats(v) for v in obj]
    return obj


def experiment_csv_rows(result: Any) -> List[Dict[str, Any]]:
    """Per-layer CSV rows for any result that exposes ``.runs`` of RunStats.

    Breakdown-style experiments (fig11/12/13, ``compare``) carry one
    :class:`RunStats` per accelerator; other experiments have no natural
    tabular layer form and yield no rows.
    """
    rows: List[Dict[str, Any]] = []
    runs = getattr(result, "runs", None)
    if isinstance(runs, dict):
        for run in runs.values():
            if isinstance(run, RunStats):
                rows.extend(run_stats_rows(run))
    return rows


def save_csv(rows: Iterable[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write an iterable of uniform dict rows as CSV; returns the path."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to write")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path
