"""Ablation studies for OLAccel's design choices.

DESIGN.md calls out four load-bearing mechanisms; each ablation disables
or re-sizes one and measures the cost on the paper workloads:

- :func:`ablate_outlier_mac` — remove the 17th MAC per group (Fig. 7):
  every chunk containing *any* outlier now pays the two-cycle path, which
  is exactly the naive-SIMD overhead the paper motivates in Sec. III-A.
- :func:`ablate_zero_skip` — disable quad zero-skipping (Fig. 6).
- :func:`ablate_pipelined_accumulation` — serialize the outlier
  accumulation behind the dense one instead of pipelining (Fig. 10).
- :func:`sweep_group_size` — re-run Fig. 17's group-width decision at the
  system level: same total MAC count arranged as 8/16/32-wide groups.

Each returns cycles relative to the full design, so "1.12" reads as "12%
slower without this mechanism".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

from ..olaccel import OLAccelSimulator, olaccel16
from .report import format_table
from .workloads import memory_bytes, paper_workload

__all__ = [
    "AblationResult",
    "ablate_outlier_mac",
    "ablate_zero_skip",
    "ablate_pipelined_accumulation",
    "sweep_group_size",
    "run_all_ablations",
]


@dataclass
class AblationResult:
    """Relative cost of removing one mechanism."""

    name: str
    network: str
    baseline_cycles: float
    ablated_cycles: float
    description: str = ""

    @property
    def slowdown(self) -> float:
        """Ablated cycles / full-design cycles (>= 1 means the feature helps)."""
        return self.ablated_cycles / self.baseline_cycles

    def format(self) -> str:
        return (
            f"{self.name} ({self.network}): x{self.slowdown:.3f} cycles without it"
            + (f" — {self.description}" if self.description else "")
        )


def _run(network: str, ratio: float, **config_overrides) -> float:
    config = replace(olaccel16(memory_bytes(network, 16), ratio), **config_overrides)
    workload = paper_workload(network, ratio=ratio)
    return OLAccelSimulator(config).simulate_network(workload).total_cycles


def ablate_outlier_mac(network: str = "alexnet", ratio: float = 0.03) -> AblationResult:
    """Cost of dropping the per-group outlier MAC unit."""
    return AblationResult(
        name="outlier-mac",
        network=network,
        baseline_cycles=_run(network, ratio),
        ablated_cycles=_run(network, ratio, has_outlier_mac=False),
        description="single outlier weights now cost the 2-cycle spill path",
    )


def ablate_zero_skip(network: str = "alexnet", ratio: float = 0.03) -> AblationResult:
    """Cost of dropping quad-based zero-activation skipping."""
    return AblationResult(
        name="zero-skip",
        network=network,
        baseline_cycles=_run(network, ratio),
        ablated_cycles=_run(network, ratio, zero_skip=False),
        description="every zero activation is broadcast like a nonzero one",
    )


def ablate_pipelined_accumulation(network: str = "alexnet", ratio: float = 0.03) -> AblationResult:
    """Cost of serializing outlier accumulation after the dense pass."""
    return AblationResult(
        name="pipelined-accumulation",
        network=network,
        baseline_cycles=_run(network, ratio),
        ablated_cycles=_run(network, ratio, pipelined_accumulation=False),
        description="outlier partial sums no longer overlap the dense pass",
    )


@dataclass
class GroupSizeSweep:
    """Cycles vs PE-group width at constant total MAC count."""

    network: str
    ratio: float
    cycles: Dict[int, float] = field(default_factory=dict)  # lanes -> cycles

    def normalized(self) -> Dict[int, float]:
        base = self.cycles[16]
        return {lanes: c / base for lanes, c in self.cycles.items()}

    def format(self) -> str:
        norm = self.normalized()
        rows = [(lanes, f"{norm[lanes]:.3f}") for lanes in sorted(norm)]
        return format_table(["MACs per group", "cycles (vs 16)"], rows,
                            title=f"group-size sweep ({self.network}, ratio={self.ratio})")


def sweep_group_size(
    network: str = "alexnet",
    ratio: float = 0.05,
    lane_options: Sequence[int] = (8, 16, 32),
) -> GroupSizeSweep:
    """Fig. 17's width decision, measured in end-to-end cycles.

    Total MACs are held at 768 by trading group width against group count
    (96 MACs per cluster). Wider groups amortize broadcasts less well and
    hit multi-outlier spills more often; the paper picks 16.
    """
    result = GroupSizeSweep(network=network, ratio=ratio)
    for lanes in lane_options:
        if 96 % lanes:
            raise ValueError(f"lane width {lanes} does not tile the 96-MAC cluster")
        result.cycles[lanes] = _run(
            network, ratio, lanes=lanes, groups_per_cluster=96 // lanes
        )
    return result


def run_all_ablations(network: str = "alexnet", ratio: float = 0.03) -> List[AblationResult]:
    """All single-mechanism ablations for one network."""
    return [
        ablate_outlier_mac(network, ratio),
        ablate_zero_skip(network, ratio),
        ablate_pipelined_accumulation(network, ratio),
    ]
