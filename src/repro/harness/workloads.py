"""Workload construction for the performance experiments.

Builds :class:`~repro.arch.workload.NetworkWorkload` objects from either
the paper-shape specs (Figs. 11-15, 18, 19) or a measured quantized mini
model, applies the paper's evaluation conventions (conv layers only, as in
Eyeriss/ZeNA-era comparisons — Figs. 11/13 label layers C1..C5 and Fig. 18
covers "the convolutional layers"), and carries Table I's per-network
on-chip memory sizes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.workload import LayerWorkload, NetworkWorkload, from_spec
from ..nn.layers import Conv2d, Linear
from ..nn.model import Model
from ..nn.zoo_paper import build_paper
from ..quant.qmodel import LayerQuantStats

__all__ = [
    "MEMORY_TABLE",
    "memory_bytes",
    "conv_only",
    "paper_workload",
    "from_quantized_model",
]

#: Table I on-chip activation memory per network: (16-bit, 8-bit) bytes.
#: The deeper extension networks reuse the VGG/ResNet-18 budget.
MEMORY_TABLE: Dict[str, Tuple[int, int]] = {
    "alexnet": (393 * 1024, 196 * 1024),
    "vgg16": (4800 * 1024, 2400 * 1024),
    "resnet18": (4800 * 1024, 2400 * 1024),
    "resnet101": (4800 * 1024, 2400 * 1024),
    "densenet121": (4800 * 1024, 2400 * 1024),
}


def memory_bytes(network: str, bits: int) -> int:
    """On-chip memory budget for a network at a comparison precision."""
    if network not in MEMORY_TABLE:
        raise KeyError(f"no memory budget recorded for network {network!r}")
    mem16, mem8 = MEMORY_TABLE[network]
    if bits == 16:
        return mem16
    if bits == 8:
        return mem8
    raise ValueError(f"comparison precision must be 16 or 8, got {bits}")


def conv_only(network: NetworkWorkload) -> NetworkWorkload:
    """Restrict a workload to its convolutional layers (the paper's scope)."""
    layers = tuple(layer for layer in network.layers if layer.kind == "conv")
    if not layers:
        raise ValueError(f"network {network.name!r} has no conv layers")
    return NetworkWorkload(network.name, layers)


def paper_workload(
    name: str,
    ratio: float = 0.03,
    include_fc: bool = False,
) -> NetworkWorkload:
    """Build the evaluation workload for a paper network.

    ``ratio`` sets both activation and weight outlier ratios (the paper's
    default 3%); pass ``include_fc=True`` to extend beyond the paper's
    conv-only scope.
    """
    net = from_spec(build_paper(name), act_outlier_ratio=ratio, weight_outlier_ratio=ratio)
    return net if include_fc else conv_only(net)


def from_quantized_model(
    model: Model,
    stats: List[LayerQuantStats],
    sample_input: np.ndarray,
    name: Optional[str] = None,
) -> NetworkWorkload:
    """Build a workload from a trained mini model's measured statistics.

    ``stats`` comes from :meth:`repro.quant.QuantizedModel.measure_layer_stats`;
    geometry is read off the model's layers and a single forward pass over
    ``sample_input`` (which provides each layer's input tensor shape).
    """
    compute = model.compute_layers()
    if len(stats) != len(compute):
        raise ValueError(f"stats cover {len(stats)} layers but the model has {len(compute)}")
    captured = model.record_activations(sample_input[:1])

    layers: List[LayerWorkload] = []
    for index, layer in enumerate(compute):
        shape = captured[index].shape
        stat = stats[index]
        if isinstance(layer, Conv2d):
            _, in_c, in_h, in_w = shape
            out_h = (in_h + 2 * layer.pad - layer.kernel) // layer.stride + 1
            out_w = (in_w + 2 * layer.pad - layer.kernel) // layer.stride + 1
            weight_count = layer.weight.value.size  # correct for grouped convs too
            layers.append(
                LayerWorkload(
                    name=stat.layer_name,
                    kind="conv",
                    macs=out_h * out_w * weight_count,
                    weight_count=weight_count,
                    input_count=in_c * in_h * in_w,
                    output_count=layer.out_channels * out_h * out_w,
                    out_channels=layer.out_channels,
                    kernel=layer.kernel,
                    stride=layer.stride,
                    act_density=stat.act_density,
                    weight_density=stat.weight_density,
                    act_outlier_ratio=stat.act_outlier_ratio,
                    weight_outlier_ratio=stat.weight_outlier_ratio,
                    is_first=stat.is_first,
                )
            )
        elif isinstance(layer, Linear):
            layers.append(
                LayerWorkload(
                    name=stat.layer_name,
                    kind="fc",
                    macs=layer.out_features * layer.in_features,
                    weight_count=layer.out_features * layer.in_features,
                    input_count=layer.in_features,
                    output_count=layer.out_features,
                    out_channels=layer.out_features,
                    act_density=stat.act_density,
                    weight_density=stat.weight_density,
                    act_outlier_ratio=stat.act_outlier_ratio,
                    weight_outlier_ratio=stat.weight_outlier_ratio,
                    is_first=stat.is_first,
                )
            )
        else:  # pragma: no cover - compute_layers only yields Conv2d/Linear
            raise TypeError(f"unsupported compute layer {type(layer).__name__}")
    return NetworkWorkload(name or model.name, tuple(layers))
