"""Wall-clock benchmark harness: `repro bench` (and tools/bench_runner.py).

Times the simulator's hot paths — chunk packing, the 80-bit bit codec,
activation packing, OAQ quantization, the analytic per-layer/network
simulators, and an end-to-end functional AlexNet-style conv stack — and,
wherever a vectorized path keeps a ``slow_reference`` twin, times both
and reports the speedup. The result serializes through the standard
``repro.experiment/v1`` envelope into a versioned ``BENCH_<date>.json``,
so the performance trajectory is recorded next to the accuracy numbers
(docs/PERFORMANCE.md explains how to read it).

All inputs are seeded (``--seed`` / the global seed precedence of
:mod:`repro.harness.seeding`), so two runs on the same machine time the
same work. ``smoke=True`` shrinks every case for CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs import Registry
from .report import format_table
from .seeding import resolve_seed

__all__ = ["BenchCase", "BenchResult", "run_benchmarks", "default_bench_path", "BENCH_SEED_DEFAULT"]

#: Default RNG seed for benchmark inputs (overridden by --seed).
BENCH_SEED_DEFAULT = 1808


@dataclass
class BenchCase:
    """One timed case; ``baseline_best_s``/``speedup`` only for paired
    fast-vs-slow_reference cases."""

    name: str
    repeats: int
    best_s: float
    mean_s: float
    baseline_best_s: Optional[float] = None
    baseline_repeats: int = 0
    speedup: Optional[float] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Envelope form. Timing-only cases omit the baseline fields
        entirely (absent, not null) — a paired case always carries all
        three, so consumers can distinguish "never had a baseline" from
        "paired but degenerate" without sniffing nulls."""
        doc: Dict[str, object] = {
            "name": self.name,
            "repeats": self.repeats,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
        }
        if self.baseline_best_s is not None:
            doc["baseline_best_s"] = self.baseline_best_s
            doc["baseline_repeats"] = self.baseline_repeats
            doc["speedup"] = self.speedup
        doc["meta"] = dict(self.meta)
        return doc


@dataclass
class BenchResult:
    """All cases of one ``repro bench`` invocation."""

    smoke: bool
    seed: int
    cases: List[BenchCase] = field(default_factory=list)
    obs: Registry = field(default_factory=Registry, repr=False)

    def case(self, name: str) -> BenchCase:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(name)

    def speedup(self, name: str) -> Optional[float]:
        return self.case(name).speedup

    def format(self) -> str:
        rows = []
        for c in self.cases:
            rows.append(
                (
                    c.name,
                    f"{c.best_s * 1e3:.2f}",
                    f"{c.mean_s * 1e3:.2f}",
                    f"{c.baseline_best_s * 1e3:.2f}" if c.baseline_best_s is not None else "-",
                    f"{c.speedup:.1f}x" if c.speedup is not None else "-",
                )
            )
        title = "repro bench — vectorized vs slow_reference" + (" (smoke)" if self.smoke else "")
        return format_table(["case", "best ms", "mean ms", "slow ms", "speedup"], rows, title=title)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "bench",
            "smoke": self.smoke,
            "seed": self.seed,
            "cases": [c.to_dict() for c in self.cases],
            "obs": self.obs.to_dict(),
        }


def default_bench_path() -> str:
    import datetime

    return f"BENCH_{datetime.date.today().isoformat()}.json"


def _time(fn: Callable[[], object], repeats: int, obs: Registry, name: str) -> Tuple[float, float]:
    times = []
    for _ in range(max(1, repeats)):
        with obs.timer(f"bench/{name}"):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    return min(times), sum(times) / len(times)


def _weight_levels(rng: np.random.Generator, out_c: int, reduction: int, ratio: float) -> np.ndarray:
    """OAQ-shaped integer levels: 4-bit normals + ``ratio`` 8-bit outliers."""
    levels = rng.integers(-7, 8, size=(out_c, reduction))
    outliers = rng.random(size=levels.shape) < ratio
    magnitudes = rng.integers(8, 128, size=levels.shape)
    signs = rng.choice(np.array([-1, 1]), size=levels.shape)
    return np.where(outliers, signs * magnitudes, levels).astype(np.int64)


def _act_levels(rng: np.random.Generator, c: int, h: int, w: int, ratio: float = 0.02) -> np.ndarray:
    levels = rng.integers(0, 16, size=(c, h, w))
    outliers = rng.random(size=levels.shape) < ratio
    return np.where(outliers, rng.integers(16, 256, size=levels.shape), levels).astype(np.int64)


def run_benchmarks(smoke: bool = False, seed: Optional[int] = None) -> BenchResult:
    """Run every benchmark case and return the collected timings."""
    from ..arch.act_packing import pack_activations, unpack_activations
    from ..arch.bitcodec import decode_packed, encode_packed
    from ..arch.packing import pack_weights
    from ..olaccel.functional import olaccel_conv2d
    from ..quant.outlier import quantize_weights
    from .experiments import _simulator
    from .workloads import paper_workload

    seed = resolve_seed(seed, default=BENCH_SEED_DEFAULT)
    rng = np.random.default_rng(seed)
    result = BenchResult(smoke=smoke, seed=seed)
    obs = result.obs

    def paired(name: str, fast: Callable, slow: Callable, fast_reps: int, slow_reps: int, meta: dict) -> None:
        best, mean = _time(fast, fast_reps, obs, name)
        slow_best, _ = _time(slow, slow_reps, obs, f"{name}/slow_reference")
        result.cases.append(
            BenchCase(
                name=name,
                repeats=fast_reps,
                best_s=best,
                mean_s=mean,
                baseline_best_s=slow_best,
                baseline_repeats=slow_reps,
                speedup=slow_best / best if best > 0 else None,
                meta=meta,
            )
        )

    def single(name: str, fn: Callable, reps: int, meta: dict) -> None:
        best, mean = _time(fn, reps, obs, name)
        result.cases.append(BenchCase(name=name, repeats=reps, best_s=best, mean_s=mean, meta=meta))

    # -- chunk packing ----------------------------------------------------
    out_c, reduction = (64, 400) if smoke else (384, 2304)
    levels = _weight_levels(rng, out_c, reduction, ratio=0.03)
    paired(
        "pack_weights",
        lambda: pack_weights(levels),
        lambda: pack_weights(levels, slow_reference=True),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"shape": [out_c, reduction], "outlier_ratio": 0.03},
    )

    packed_fast = pack_weights(levels)
    packed_slow = pack_weights(levels, slow_reference=True)
    paired(
        "packed_unpack",
        lambda: packed_fast.unpack(),
        lambda: packed_slow.unpack(slow_reference=True),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"shape": [out_c, reduction]},
    )

    # -- 80-bit codec (spill count must fit the 8-bit OLptr space) --------
    codec_shape = (64, 200) if smoke else (256, 1152)
    codec_levels = _weight_levels(rng, *codec_shape, ratio=0.005)
    codec_packed = pack_weights(codec_levels)
    codec_packed.base_chunks  # materialize once so the slow path times encoding only
    base_words, spill_words = encode_packed(codec_packed)
    decode_kwargs = dict(
        n_groups=codec_packed.n_groups,
        reduction=codec_packed.reduction,
        out_channels=codec_packed.out_channels,
    )
    paired(
        "bitcodec_encode",
        lambda: encode_packed(codec_packed),
        lambda: encode_packed(codec_packed, slow_reference=True),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"shape": list(codec_shape), "n_spill": codec_packed.n_spill},
    )
    paired(
        "bitcodec_decode",
        lambda: decode_packed(base_words, spill_words, **decode_kwargs),
        lambda: decode_packed(base_words, spill_words, slow_reference=True, **decode_kwargs),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"n_base": len(base_words), "n_spill": len(spill_words)},
    )

    # -- activation packing ----------------------------------------------
    act_shape = (64, 8, 8) if smoke else (256, 16, 16)
    acts = _act_levels(rng, *act_shape)
    paired(
        "pack_activations",
        lambda: pack_activations(acts),
        lambda: pack_activations(acts, slow_reference=True),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"shape": list(act_shape)},
    )
    packed_acts = pack_activations(acts)
    paired(
        "unpack_activations",
        lambda: unpack_activations(packed_acts),
        lambda: unpack_activations(packed_acts, slow_reference=True),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"shape": list(act_shape), "outliers": len(packed_acts.outliers)},
    )

    # -- quantization (timing only — already vectorized) ------------------
    weights = rng.standard_normal(20_000 if smoke else 1_000_000)
    single(
        "quantize_weights",
        lambda: quantize_weights(weights, ratio=0.03),
        reps=3,
        meta={"elements": weights.size},
    )

    # -- analytic simulators (timing only) --------------------------------
    workload = paper_workload("alexnet", ratio=0.03)
    simulator = _simulator("olaccel16", "alexnet", 0.03)
    single(
        "simulate_layer",
        lambda: simulator.simulate_layer(workload.layers[1]),
        reps=5,
        meta={"accelerator": "olaccel16", "layer": workload.layers[1].name},
    )
    single(
        "simulate_network",
        lambda: simulator.simulate_network(workload),
        reps=5,
        meta={"accelerator": "olaccel16", "network": "alexnet"},
    )

    # -- end-to-end functional AlexNet conv stack -------------------------
    if smoke:
        convs = [(32, 16, 3, 1), (48, 32, 3, 1)]
        spatial = 6
    else:
        # AlexNet convs 2-5 channel/kernel shapes at a reduced spatial size
        convs = [(256, 96, 5, 2), (384, 256, 3, 1), (384, 384, 3, 1), (256, 384, 3, 1)]
        spatial = 8
    stack = []
    for out_c, in_c, k, pad in convs:
        layer_acts = _act_levels(rng, in_c, spatial, spatial).reshape(1, in_c, spatial, spatial)
        layer_weights = _weight_levels(rng, out_c, in_c * k * k, ratio=0.03).reshape(out_c, in_c, k, k)
        stack.append((layer_acts, layer_weights, pad))

    def run_stack(slow: bool) -> None:
        for layer_acts, layer_weights, pad in stack:
            olaccel_conv2d(layer_acts, layer_weights, pad=pad, slow_reference=slow)

    paired(
        "e2e_alexnet_functional",
        lambda: run_stack(False),
        lambda: run_stack(True),
        fast_reps=2 if smoke else 3,
        slow_reps=1,
        meta={"convs": [list(c) for c in convs], "spatial": spatial},
    )

    # -- event-driven cluster sim: vectorized vs scalar stepper -----------
    from ..olaccel.event_sim import ClusterSim, passes_from_levels

    n_passes = 200 if smoke else 2000
    ev_levels = rng.integers(0, 16, size=(n_passes, 16))
    ev_levels[rng.random(ev_levels.shape) < 0.5] = 0
    ev_spills = rng.random(ev_levels.shape) < 0.1
    ev_passes = passes_from_levels(ev_levels, ev_spills)
    ev_outliers = n_passes // 4
    paired(
        "event_sim_cluster",
        lambda: ClusterSim(n_groups=6).run(ev_passes, outlier_broadcasts=ev_outliers),
        lambda: ClusterSim(n_groups=6).run(
            ev_passes, outlier_broadcasts=ev_outliers, slow_reference=True
        ),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"passes": n_passes, "n_groups": 6, "outlier_broadcasts": ev_outliers},
    )

    # -- PE-pass cycle kernel: batched vs per-chunk scalar spec -----------
    from ..olaccel.pe_group import batch_pass_cycles

    paired(
        "pe_group_pass",
        lambda: batch_pass_cycles(ev_levels, ev_spills),
        lambda: batch_pass_cycles(ev_levels, ev_spills, slow_reference=True),
        fast_reps=3 if smoke else 5,
        slow_reps=2,
        meta={"passes": n_passes, "spill_rate": 0.1},
    )

    # -- col2im scatter-add (conv backward dx) ----------------------------
    # A small-slice shape, where the indexed scatter branch is active
    # (larger slices fall back to the slice-add loop, which IS the
    # slow_reference algorithm — a pair there would time itself).
    from ..nn.functional import col2im, conv_out_size

    c2i_n, c2i_c, c2i_h, c2i_k, c2i_s, c2i_p = (1, 2, 6, 5, 1, 2) if smoke else (1, 3, 8, 5, 2, 2)
    c2i_oh = conv_out_size(c2i_h, c2i_k, c2i_s, c2i_p)
    c2i_cols = rng.standard_normal((c2i_n * c2i_oh * c2i_oh, c2i_c * c2i_k * c2i_k))
    c2i_shape = (c2i_n, c2i_c, c2i_h, c2i_h)
    paired(
        "col2im_backward",
        lambda: col2im(c2i_cols, c2i_shape, c2i_k, c2i_k, c2i_s, c2i_p),
        lambda: col2im(c2i_cols, c2i_shape, c2i_k, c2i_k, c2i_s, c2i_p, slow_reference=True),
        fast_reps=20,
        slow_reps=10,
        meta={"x_shape": list(c2i_shape), "kernel": c2i_k, "stride": c2i_s, "pad": c2i_p},
    )

    # -- simcache: disk-warm sweep replay vs cold compute -----------------
    # Fault cells are the expensive sweep cells (integer conv + golden
    # reference per cell), so they give the honest warm-vs-cold ratio.
    # Warm timings use a FRESH SimCache per repeat so they measure the
    # verified disk reads, not the in-memory layer.
    import shutil
    import tempfile

    from .faults import fault_rate_cell
    from .simcache import SimCache

    cache_rates = (0.0,) if smoke else (0.0, 1e-3, 1e-2)
    cache_root = tempfile.mkdtemp(prefix="repro-bench-simcache-")
    try:

        def cache_sweep(cache: SimCache) -> None:
            for rate in cache_rates:
                fault_rate_cell("alexnet", rate, seed=seed, cache=cache)

        cold_best, _ = _time(
            lambda: cache_sweep(SimCache(root=cache_root)), 1, obs, "simcache_warm_sweep/cold"
        )
        warm_reps = 3
        warm_best, warm_mean = _time(
            lambda: cache_sweep(SimCache(root=cache_root)), warm_reps, obs, "simcache_warm_sweep"
        )
        result.cases.append(
            BenchCase(
                name="simcache_warm_sweep",
                repeats=warm_reps,
                best_s=warm_best,
                mean_s=warm_mean,
                baseline_best_s=cold_best,
                baseline_repeats=1,
                speedup=cold_best / warm_best if warm_best > 0 else None,
                meta={"cells": len(cache_rates), "cell": "fault_rate", "network": "alexnet"},
            )
        )
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    # -- layer-granularity memo: warm replay vs cold populate -------------
    # Cold pays every layer's compute plus the fsynced entry stores; warm
    # replays the network from verified per-layer disk reads with a fresh
    # SimCache (memory layer empty). Like simcache_warm_sweep, this gates
    # the replay machinery's cost, not raw simulation speed — the layer
    # tier's real win is incremental re-simulation (docs/PERFORMANCE.md).
    from .experiments import simulate_network_layered

    memo_net = "alexnet" if smoke else "resnet101"
    memo_layers = len(paper_workload(memo_net, ratio=0.03).layers)
    memo_root = tempfile.mkdtemp(prefix="repro-bench-layermemo-")
    try:
        memo_cold, _ = _time(
            lambda: simulate_network_layered("olaccel16", memo_net, cache=SimCache(root=memo_root)),
            1,
            obs,
            "layer_memo_warm_network/cold",
        )
        memo_reps = 3
        memo_best, memo_mean = _time(
            lambda: simulate_network_layered("olaccel16", memo_net, cache=SimCache(root=memo_root)),
            memo_reps,
            obs,
            "layer_memo_warm_network",
        )
        result.cases.append(
            BenchCase(
                name="layer_memo_warm_network",
                repeats=memo_reps,
                best_s=memo_best,
                mean_s=memo_mean,
                baseline_best_s=memo_cold,
                baseline_repeats=1,
                speedup=memo_cold / memo_best if memo_best > 0 else None,
                meta={"accelerator": "olaccel16", "network": memo_net, "layers": memo_layers},
            )
        )
    finally:
        shutil.rmtree(memo_root, ignore_errors=True)

    return result
