"""Plain-text report formatting for experiment results.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["FAILED", "format_table", "format_series", "format_breakdown", "format_failures", "bar"]

#: Marker rendered in place of a value whose cell failed (docs/RESILIENCE.md).
FAILED = "FAILED"


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float], x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series as the rows behind a figure curve."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>10}  {_fmt(y)}")
    return "\n".join(lines)


def format_breakdown(label: str, components: Dict[str, float], total: float = None) -> str:
    """Render an energy/cycle component breakdown on one line."""
    total = sum(components.values()) if total is None else total
    parts = ", ".join(f"{k}={v:.4f}" for k, v in components.items())
    return f"{label}: total={total:.4f} [{parts}]"


def format_failures(failures: Iterable[Dict]) -> str:
    """Render structured CellError dicts as the FAILED section of a report.

    Partial results stay useful: the sweep's tables carry the cells
    that succeeded and this table names exactly which cells did not,
    how they died, and after how many attempts.
    """
    rows = [
        (
            f.get("cell_id", "?"),
            f.get("kind", "?"),
            f.get("attempts", "?"),
            str(f.get("message", ""))[:72],
        )
        for f in failures
    ]
    return format_table(["cell", "failure", "attempts", "detail"], rows,
                        title=f"{FAILED} cells ({len(rows)})")


def bar(value: float, scale: float = 1.0, width: int = 40) -> str:
    """A crude ASCII bar for quick visual comparison in benchmark output."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(0, min(width, int(round(value / scale * width))))
    return "#" * n


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)
