"""Multi-NPU scalability model (paper Fig. 15).

One NPU is a full OLAccel instance (768 4-bit MACs, 16-bit outliers) or a
ZeNA instance (168 16-bit PEs). The paper scales 1-16 NPUs at batch sizes
1, 4 and 16, normalizing speedup to ZeNA at batch 1, and observes:

- near-linear scaling at batch 4 and 16 (image-level parallelism);
- saturation around 16 NPUs at batch 1 (intra-image parallelism has
  diminishing returns);
- OLAccel slightly better at batch 4 than batch 16, because batch 16's
  higher aggregate off-chip demand hits the shared DRAM bandwidth limit.

The model: ``min(N, B)`` images run concurrently; the ``k = N/B`` NPUs
sharing one image lose efficiency to halo exchange and partial-sum merging
(``1 / (1 + alpha (k-1))``); aggregate DRAM demand is throughput x traffic
per image, plus a small per-concurrent-stream contention overhead that
penalizes many independent streams, and the achieved speedup is scaled
down when demand exceeds the shared bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..arch.stats import RunStats

__all__ = ["NpuSpec", "ScalingModel", "ScalingPoint"]

#: Intra-image split inefficiency per extra NPU on the same image
#: (halo exchange and partial-sum merging overheads).
_ALPHA = 0.04
#: Extra bandwidth demand per additional concurrent image stream.
_STREAM_CONTENTION = 0.015


@dataclass(frozen=True)
class NpuSpec:
    """One NPU's single-image cost: cycles and DRAM traffic."""

    name: str
    cycles_per_image: float
    dram_bits_per_image: float

    @classmethod
    def from_run(cls, run: RunStats) -> "NpuSpec":
        dram_pj_per_bit = 20.0  # matches EnergyParams default
        return cls(
            name=run.accelerator,
            cycles_per_image=run.total_cycles,
            dram_bits_per_image=run.total_energy.dram / dram_pj_per_bit,
        )


@dataclass(frozen=True)
class ScalingPoint:
    """Speedup of one (NPU count, batch) configuration."""

    n_npus: int
    batch: int
    speedup: float  # relative to one NPU of the same kind, batch 1
    bandwidth_bound: bool


class ScalingModel:
    """Throughput scaling of identical NPUs under a shared DRAM channel."""

    def __init__(
        self,
        spec: NpuSpec,
        dram_bandwidth_bits_per_cycle: float = 216.0,
        alpha: float = _ALPHA,
        stream_contention: float = _STREAM_CONTENTION,
    ):
        if dram_bandwidth_bits_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        self.spec = spec
        self.bandwidth = dram_bandwidth_bits_per_cycle
        self.alpha = alpha
        self.stream_contention = stream_contention

    def intra_image_efficiency(self, k: int) -> float:
        """Efficiency of ``k`` NPUs cooperating on a single image."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return 1.0 / (1.0 + self.alpha * (k - 1))

    def speedup(self, n_npus: int, batch: int) -> ScalingPoint:
        """Throughput speedup vs one NPU at batch 1."""
        if n_npus < 1 or batch < 1:
            raise ValueError("n_npus and batch must be >= 1")
        images_in_flight = min(n_npus, batch)
        npus_per_image = max(1, n_npus // batch)
        compute_speedup = images_in_flight * npus_per_image * self.intra_image_efficiency(npus_per_image)
        compute_speedup = min(compute_speedup, float(n_npus))

        # Aggregate DRAM demand at that throughput, with per-stream contention.
        traffic_rate = (
            compute_speedup
            * self.spec.dram_bits_per_image
            / self.spec.cycles_per_image
            * (1.0 + self.stream_contention * (images_in_flight - 1))
        )
        if traffic_rate > self.bandwidth:
            achieved = compute_speedup * self.bandwidth / traffic_rate
            return ScalingPoint(n_npus, batch, achieved, bandwidth_bound=True)
        return ScalingPoint(n_npus, batch, compute_speedup, bandwidth_bound=False)

    def sweep(self, npu_counts: Sequence[int], batches: Sequence[int]) -> List[ScalingPoint]:
        """Speedups over a (NPU count x batch) grid (the Fig. 15 series)."""
        return [self.speedup(n, b) for b in batches for n in npu_counts]
