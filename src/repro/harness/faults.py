"""Fault-rate and accumulator-width sweeps (the ``repro faults`` verb).

For one paper network the driver builds a synthetic conv case whose
sparsity and outlier statistics match the network's first non-input
conv layer (from :func:`repro.harness.workloads.paper_workload`), then:

1. **rate sweep** — runs the fault-injected datapath
   (:func:`repro.faults.faulty_olaccel_conv2d`) at each fault rate under
   the chosen recovery policy, reporting injected / detected /
   undetected / masked counters (which reconcile exactly:
   ``injected == detected + undetected``) and output corruption vs the
   clean golden reference;
2. **accumulator-width sweep** — runs the clean datapath through
   :class:`~repro.faults.accumulator.AccumulatorModel` at each width,
   reporting overflow counts and error vs the infinite-width reference,
   alongside the guaranteed-overflow-avoidance bound
   :func:`~repro.faults.accumulator.required_accumulator_bits` for the
   case.

Results carry ``format()`` for the terminal and serialize through the
standard ``repro.experiment/v1`` envelope (docs/EXPERIMENTS.md).

Each rate point and each width point is an independent **cell**
(:func:`fault_rate_cell` / :func:`fault_width_cell`): a pure function of
(network, parameters, seed) returning one JSON-able row. ``fault_sweep``
runs the cells serially; ``repro.harness.resilience`` runs the same
cells through the checkpointed supervised pool, so an interrupted sweep
resumes bit-identically (docs/RESILIENCE.md). Cells that fail under the
resilient path land in ``FaultSweepResult.failures`` and render as a
FAILED section instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..faults import AccumulatorModel, FaultPlan, faulty_olaccel_conv2d, required_accumulator_bits
from ..faults.plan import FAULT_MODELS
from ..faults.validate import RECOVERY_POLICIES
from ..obs import Registry
from .report import format_failures, format_table
from .seeding import resolve_seed
from .workloads import paper_workload

__all__ = [
    "DEFAULT_RATES",
    "DEFAULT_WIDTHS",
    "FaultSweepResult",
    "fault_sweep",
    "fault_case",
    "fault_rate_cell",
    "fault_width_cell",
]

#: Default per-word strike probabilities swept by ``repro faults``.
DEFAULT_RATES = (0.0, 1e-4, 1e-3, 1e-2)
#: Default accumulator widths swept (paper's 24-bit in the middle).
DEFAULT_WIDTHS = (16, 20, 24, 32)

#: Synthetic case geometry — big enough for spill chunks and swarm
#: entries to appear at 3% outliers, small enough to sweep in seconds.
_CASE = dict(in_c=32, out_c=32, kernel=3, size=8, batch=2)


@dataclass
class FaultSweepResult:
    """Outcome of one ``repro faults`` sweep."""

    network: str
    policy: str
    model: str
    seed: int
    case: Dict[str, float]
    required_bits: int
    rate_rows: List[Dict[str, float]] = field(default_factory=list)
    width_rows: List[Dict[str, float]] = field(default_factory=list)
    #: Structured CellError dicts for cells the resilient path gave up on.
    failures: List[Dict[str, object]] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            f"fault sweep — {self.network} "
            f"(policy={self.policy}, model={self.model}, seed={self.seed})",
            f"case: {self.case['in_c']:.0f}x{self.case['size']:.0f}x{self.case['size']:.0f} "
            f"-> {self.case['out_c']:.0f} ch, k={self.case['kernel']:.0f}, "
            f"act outliers {self.case['act_outlier_ratio']:.1%}, "
            f"weight outliers {self.case['weight_outlier_ratio']:.1%}",
            "",
            format_table(
                ["rate", "injected", "detected", "undetected", "masked", "mismatch", "max|err|"],
                [
                    [
                        f"{row['rate']:g}",
                        f"{row['injected']:.0f}",
                        f"{row['detected']:.0f}",
                        f"{row['undetected']:.0f}",
                        f"{row['masked']:.0f}",
                        f"{row['mismatch_fraction']:.1%}",
                        f"{row['max_abs_error']:.0f}",
                    ]
                    for row in self.rate_rows
                ],
            ),
            "",
            f"accumulator sweep (guaranteed-avoidance bound: {self.required_bits} bits)",
            format_table(
                ["width", "mode", "overflows", "mismatch", "max|err|"],
                [
                    [
                        f"{row['width_bits']:.0f}",
                        row["mode"],
                        f"{row['overflows']:.0f}",
                        f"{row['mismatch_fraction']:.1%}",
                        f"{row['max_abs_error']:.0f}",
                    ]
                    for row in self.width_rows
                ],
            ),
        ]
        if self.failures:
            lines += ["", format_failures(self.failures)]
        return "\n".join(lines)


def _synthetic_case(network: str, ratio: float, seed: int):
    """Integer conv operands mirroring the network's first sparse layer."""
    workload = paper_workload(network, ratio=ratio)
    layer = next((l for l in workload.layers if not l.is_first), workload.layers[0])
    rng = np.random.default_rng([seed, 0xFA17])

    c_in, c_out = _CASE["in_c"], _CASE["out_c"]
    k, size, batch = _CASE["kernel"], _CASE["size"], _CASE["batch"]

    acts = rng.integers(1, 16, size=(batch, c_in, size, size))
    acts[rng.random(acts.shape) >= layer.act_density] = 0
    nonzero = acts > 0
    act_out = nonzero & (rng.random(acts.shape) < layer.act_outlier_ratio)
    acts[act_out] = rng.integers(16, 256, size=int(act_out.sum()))

    weights = rng.integers(-7, 8, size=(c_out, c_in, k, k))
    w_out = rng.random(weights.shape) < layer.weight_outlier_ratio
    magnitudes = rng.integers(8, 128, size=int(w_out.sum()))
    weights[w_out] = magnitudes * rng.choice([-1, 1], size=magnitudes.shape)

    stats = dict(
        _CASE,
        act_density=float(layer.act_density),
        act_outlier_ratio=float(layer.act_outlier_ratio),
        weight_outlier_ratio=float(layer.weight_outlier_ratio),
    )
    return acts, weights, stats


def fault_case(network: str, ratio: float, seed: int):
    """The sweep's shared operands: (acts, weights, stats, required_bits).

    A pure function of its arguments, so every cell (and the final
    assembly) recomputes identical operands instead of shipping arrays
    between processes.
    """
    acts, weights, stats = _synthetic_case(network, ratio, seed)
    act_max = int(acts.max(initial=1))
    weight_max = int(np.abs(weights).max(initial=1))
    reduction = weights.shape[1] * weights.shape[2] * weights.shape[3]
    required = required_accumulator_bits(reduction, act_max, weight_max)
    return acts, weights, stats, required


def fault_rate_cell(
    network: str,
    rate: float,
    policy: str = "degrade",
    model: str = "bitflip",
    ratio: float = 0.03,
    seed: int = 0,
    cache=None,
) -> Dict[str, float]:
    """One rate-sweep row — an independent, checkpointable cell.

    Memoized through the simcache: the key covers the full fault plan
    (rate, model, seed), the recovery policy, the synthetic case
    geometry and the network statistics it mirrors, so changing any of
    them recomputes while a repeated sweep reuses the stored row.
    """
    from .simcache import get_active

    cache = cache if cache is not None else get_active()
    components = {
        "cell": "fault_rate",
        "network": network,
        "ratio": float(ratio),
        "case": dict(_CASE),
        "fault_plan": {"rate": float(rate), "model": model, "seed": int(seed)},
        "policy": policy,
    }

    def compute() -> Dict[str, float]:
        acts, weights, _, _ = fault_case(network, ratio, seed)
        run = faulty_olaccel_conv2d(
            acts,
            weights,
            pad=1,
            plan=FaultPlan(rate=float(rate), seed=seed, model=model),
            policy=policy,
        )
        return {
            "rate": float(rate),
            "injected": run.injected,
            "detected": run.detected,
            "undetected": run.undetected,
            "masked": run.masked,
            "skipped": run.skipped,
            "mismatch_fraction": run.mismatch_fraction,
            "max_abs_error": run.max_abs_error,
            "bit_exact": run.bit_exact,
        }

    return cache.memoize(components, compute)


def fault_width_cell(
    network: str,
    width: int,
    ratio: float = 0.03,
    seed: int = 0,
    cache=None,
) -> Dict[str, float]:
    """One accumulator-width row — an independent, checkpointable cell.

    Memoized like :func:`fault_rate_cell`; the accumulator width and
    mode take the fault plan's place in the key.
    """
    from .simcache import get_active

    cache = cache if cache is not None else get_active()
    components = {
        "cell": "fault_width",
        "network": network,
        "ratio": float(ratio),
        "case": dict(_CASE),
        "accumulator": {"width_bits": int(width), "mode": "saturate"},
        "seed": int(seed),
    }

    def compute() -> Dict[str, float]:
        acts, weights, _, _ = fault_case(network, ratio, seed)
        run = faulty_olaccel_conv2d(
            acts,
            weights,
            pad=1,
            acc=AccumulatorModel(width_bits=int(width), mode="saturate"),
            obs=Registry(),
        )
        return {
            "width_bits": int(width),
            "mode": "saturate",
            "overflows": run.acc_overflows,
            "mismatch_fraction": run.mismatch_fraction,
            "max_abs_error": run.max_abs_error,
            "bit_exact": run.bit_exact,
        }

    return cache.memoize(components, compute)


def fault_sweep(
    network: str,
    rates: Sequence[float] = DEFAULT_RATES,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    policy: str = "degrade",
    model: str = "bitflip",
    ratio: float = 0.03,
    seed: Optional[int] = None,
) -> FaultSweepResult:
    """Sweep fault rates and accumulator widths on one network's statistics."""
    if policy not in RECOVERY_POLICIES:
        raise ValueError(f"unknown recovery policy {policy!r}; one of {RECOVERY_POLICIES}")
    if model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {model!r}; one of {FAULT_MODELS}")
    seed = resolve_seed(seed, default=0)
    _, _, stats, required = fault_case(network, ratio, seed)

    rate_rows = [
        fault_rate_cell(network, rate, policy=policy, model=model, ratio=ratio, seed=seed)
        for rate in rates
    ]
    width_rows = [
        fault_width_cell(network, width, ratio=ratio, seed=seed) for width in widths
    ]

    return FaultSweepResult(
        network=network,
        policy=policy,
        model=model,
        seed=seed,
        case=stats,
        required_bits=required,
        rate_rows=rate_rows,
        width_rows=width_rows,
    )
