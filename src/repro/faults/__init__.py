"""Fault injection, chunk-integrity validation and graceful degradation.

The subsystem has four parts (see docs/FAULTS.md):

- :mod:`repro.faults.plan` — deterministic seeded fault injectors
  (:class:`FaultPlan`: bit-flip / stuck-at / burst) striking packed
  weight words, activation streams, swarm entries and memory transfers;
- :mod:`repro.faults.validate` — chunk-invariant audits with the three
  recovery policies (``raise`` / ``degrade`` / ``skip``);
- :mod:`repro.faults.accumulator` — configurable-width partial-sum
  accumulators (``saturate`` / ``wrap`` / ``infinite``) and the
  guaranteed-overflow-avoidance width bound;
- :mod:`repro.faults.datapath` — the end-to-end harness tying them into
  the OLAccel conv datapath against the golden reference.

The error taxonomy these raise lives in :mod:`repro.errors` (kept out of
this package so ``repro.arch`` can use it without an import cycle).
"""

from .accumulator import ACC_MODES, AccumulatorModel, required_accumulator_bits
from .datapath import FaultInjectionResult, corrupt_packed_weights, faulty_olaccel_conv2d
from .plan import FAULT_MODELS, FAULT_SURFACES, FaultPlan
from .validate import RECOVERY_POLICIES, validate_packed, validate_swarm

__all__ = [
    "ACC_MODES",
    "AccumulatorModel",
    "required_accumulator_bits",
    "FaultInjectionResult",
    "corrupt_packed_weights",
    "faulty_olaccel_conv2d",
    "FAULT_MODELS",
    "FAULT_SURFACES",
    "FaultPlan",
    "RECOVERY_POLICIES",
    "validate_packed",
    "validate_swarm",
]
