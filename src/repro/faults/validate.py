"""Chunk-invariant validation and the three recovery policies.

The 80-bit weight chunk and the swarm buffer carry the metadata OLAccel's
correctness hinges on. This module audits the invariants a healthy table
satisfies and applies one of three recovery policies to every violation:

========== =============================================================
policy     behaviour on a detected violation
========== =============================================================
``raise``  surface a :class:`~repro.errors.ChunkIntegrityError` naming
           the chunk coordinates (group, reduction index, field)
``degrade``repair in place and keep going: clamp lane nibbles to the
           4-bit grid, drop corrupt outlier metadata so the lane's
           4-bit normal value stands alone (the OverQ-style graceful
           degradation — outlier LSBs are still correct), drop swarm
           entries whose coordinates left the tensor
``skip``   discard the offending chunk/entry entirely (zero lanes)
========== =============================================================

Weight-chunk invariants audited, in order:

1. lane nibbles on the 4-bit sign-magnitude grid (|level| <= 7; spill
   MSB magnitudes <= 15);
2. ``ol_idx`` within the 16 lanes;
3. ``ol_msb`` within its 4-bit magnitude field;
4. ``ol_ptr`` neither dangling (past the spill table) nor duplicated
   (two base chunks claiming the same spill chunk — packing emits
   exactly one owner per spill).

Swarm entries are audited against the activation tensor extent and the
16-bit value grid.

Counting contract (see docs/FAULTS.md): each offending chunk/entry
increments ``faults/detected`` exactly once; under ``degrade``/``skip``
it also increments ``faults/masked`` (and ``skip`` adds
``faults/skipped``). A clean table increments nothing, so with fault
rate 0 validation is a provable no-op.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple

from ..arch.chunks import LANES, OutlierActivation, WeightChunk
from ..arch.packing import PackedWeights, normal_max_level
from ..errors import ChunkIntegrityError, ConfigError
from ..obs import NULL_REGISTRY, Registry

__all__ = ["RECOVERY_POLICIES", "validate_packed", "validate_swarm"]

#: Recovery policies, in docs order.
RECOVERY_POLICIES = ("raise", "degrade", "skip")

_ZERO_LANES = tuple([0] * LANES)


def _check_policy(policy: str) -> None:
    if policy not in RECOVERY_POLICIES:
        raise ConfigError(f"unknown recovery policy {policy!r}; one of {RECOVERY_POLICIES}")


def _chunk_violations(chunk: WeightChunk, n_spills: int, seen_ptrs: set) -> List[str]:
    """Every violated invariant of a base chunk (empty when healthy)."""
    fields: List[str] = []
    if any(abs(v) > normal_max_level for v in chunk.lanes):
        fields.append("lanes")
    if not 0 <= chunk.ol_idx < LANES:
        fields.append("ol_idx")
    if abs(chunk.ol_msb) > 15:
        fields.append("ol_msb")
    if chunk.ol_ptr is not None and (
        not 0 <= chunk.ol_ptr < n_spills or chunk.ol_ptr in seen_ptrs
    ):
        fields.append("ol_ptr")
    return fields


def _degrade_chunk(chunk: WeightChunk, fields: List[str]) -> WeightChunk:
    """Repair a corrupt chunk so the 4-bit normal path can proceed.

    Corrupt outlier metadata is dropped — the lane keeps its LSB nibble,
    i.e. the outlier is treated as its 4-bit normal value — and
    out-of-range lanes are clamped onto the normal grid.
    """
    lanes = tuple(max(-normal_max_level, min(normal_max_level, v)) for v in chunk.lanes)
    if fields == ["lanes"]:
        return replace(chunk, lanes=lanes)
    return WeightChunk(lanes=lanes, is_spill=chunk.is_spill)


def validate_packed(
    packed: PackedWeights,
    policy: str = "raise",
    obs: Registry = NULL_REGISTRY,
) -> PackedWeights:
    """Audit a packed weight table; returns the (possibly repaired) table.

    Under ``raise`` the first violation aborts with a
    :class:`ChunkIntegrityError` naming the chunk coordinates; under
    ``degrade``/``skip`` every violation is repaired/discarded and
    counted, and a new :class:`PackedWeights` is returned (the input is
    never mutated).
    """
    _check_policy(policy)
    n_spills = len(packed.spill_chunks)
    seen_ptrs: set = set()
    base: List[WeightChunk] = []
    dirty = False

    for index, chunk in enumerate(packed.base_chunks):
        group, red = divmod(index, packed.reduction) if packed.reduction else (0, index)
        fields = _chunk_violations(chunk, n_spills, seen_ptrs)
        if fields:
            obs.counter("faults/detected").add(1)
            if policy == "raise":
                raise ChunkIntegrityError(
                    f"weight chunk violates the {fields[0]!r} invariant",
                    group=group,
                    reduction=red,
                    chunk_index=index,
                    field=fields[0],
                )
            obs.counter("faults/masked").add(1)
            if policy == "skip":
                obs.counter("faults/skipped").add(1)
                chunk = WeightChunk(lanes=_ZERO_LANES)
            else:
                chunk = _degrade_chunk(chunk, fields)
            dirty = True
        if chunk.ol_ptr is not None:
            seen_ptrs.add(chunk.ol_ptr)
        base.append(chunk)

    spill: List[WeightChunk] = []
    for index, chunk in enumerate(packed.spill_chunks):
        if any(abs(v) > 15 for v in chunk.lanes):
            obs.counter("faults/detected").add(1)
            if policy == "raise":
                raise ChunkIntegrityError(
                    "spill chunk MSB magnitude beyond the 4-bit field",
                    chunk_index=index,
                    field="lanes",
                    is_spill=True,
                )
            obs.counter("faults/masked").add(1)
            if policy == "skip":
                obs.counter("faults/skipped").add(1)
            chunk = WeightChunk(lanes=_ZERO_LANES, is_spill=True)
            dirty = True
        spill.append(chunk)

    if not dirty:
        return packed
    return PackedWeights(
        base_chunks=base,
        spill_chunks=spill,
        n_groups=packed.n_groups,
        reduction=packed.reduction,
        out_channels=packed.out_channels,
    )


def validate_swarm(
    entries: Sequence[OutlierActivation],
    shape: Tuple[int, int, int],
    policy: str = "raise",
    obs: Registry = NULL_REGISTRY,
    normal_max: int = 15,
) -> List[OutlierActivation]:
    """Audit swarm-buffer entries against their (C, H, W) tensor extent.

    An entry is corrupt when its coordinates left the (channel-padded)
    tensor, its value is negative or exceeds the 16-bit grid, or its
    value fell *below* the outlier threshold (a true outlier is by
    definition above ``normal_max`` — a smaller value means the 16-bit
    field was struck down into normal range, which the hardware can
    detect for free at the comparator). ``degrade``/``skip`` both drop
    the entry (its dense-stream slot already holds 0, the normal-path
    value); ``raise`` names the entry.
    """
    _check_policy(policy)
    c, h, w = shape
    padded_c = -(-c // LANES) * LANES
    kept: List[OutlierActivation] = []
    for index, entry in enumerate(entries):
        bad = (
            not 0 <= entry.c_idx < padded_c
            or not 0 <= entry.h_idx < h
            or not 0 <= entry.w_idx < w
            or not normal_max < entry.value <= 0xFFFF
        )
        if not bad:
            kept.append(entry)
            continue
        obs.counter("faults/detected").add(1)
        if policy == "raise":
            raise ChunkIntegrityError(
                f"swarm entry (value={entry.value}, c={entry.c_idx}, "
                f"h={entry.h_idx}, w={entry.w_idx}) is corrupt",
                chunk_index=index,
                field="swarm",
            )
        obs.counter("faults/masked").add(1)
        if policy == "skip":
            obs.counter("faults/skipped").add(1)
    return kept
