"""Configurable-width partial-sum accumulator model.

The seed datapath assumed infinite-width accumulators and merely
*flagged* when a partial sum exceeded the paper's 24-bit limit
(``FunctionalResult.saturated``). This module models the accumulator
explicitly, with the two overflow behaviours real adders exhibit:

- ``saturate`` — clamp to the symmetric two's-complement range
  ``[-(2^(w-1)) + 1, 2^(w-1) - 1]`` on write-back (the paper's Sec.
  III-B accumulator, ``w = 24``);
- ``wrap`` — two's-complement wraparound. Because modular reduction
  commutes with addition, wrapping the final sum is *bit-exact* to
  wrapping after every MAC — the model is not an approximation for
  this mode;
- ``infinite`` — the seed behaviour, a provable no-op.

:func:`required_accumulator_bits` is the static guaranteed-overflow-
avoidance bound in the style of Colbert et al. (A2Q): an accumulator of
that width can never overflow for the given reduction depth and operand
magnitudes, so ``AccumulatorModel(required_accumulator_bits(...))`` is
exact by construction — tests assert this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..obs import NULL_REGISTRY, Registry

__all__ = ["ACC_MODES", "AccumulatorModel", "required_accumulator_bits"]

#: Supported overflow behaviours.
ACC_MODES = ("saturate", "wrap", "infinite")


@dataclass(frozen=True)
class AccumulatorModel:
    """A ``width_bits``-wide signed accumulator with a chosen overflow mode."""

    width_bits: int = 24
    mode: str = "saturate"

    def __post_init__(self):
        if self.width_bits < 2:
            raise ConfigError(f"accumulator width must be >= 2 bits, got {self.width_bits}")
        if self.mode not in ACC_MODES:
            raise ConfigError(f"unknown accumulator mode {self.mode!r}; one of {ACC_MODES}")

    @property
    def limit(self) -> int:
        """Largest magnitude representable: ``2^(w-1) - 1``."""
        return (1 << (self.width_bits - 1)) - 1

    def overflows(self, psums: np.ndarray) -> int:
        """How many values exceed the representable range."""
        if self.mode == "infinite" or self.width_bits >= 64:
            # int64 partial sums cannot exceed a >= 64-bit accumulator.
            return 0
        return int((np.abs(np.asarray(psums, dtype=np.int64)) > self.limit).sum())

    def apply(self, psums: np.ndarray, obs: Registry = NULL_REGISTRY) -> np.ndarray:
        """Reduce ideal partial sums to what this accumulator would hold.

        Counts every overflowed value on ``acc/overflow`` (and returns
        the input untouched in ``infinite`` mode).
        """
        psums = np.asarray(psums, dtype=np.int64)
        if self.mode == "infinite" or self.width_bits >= 64:
            return psums
        n_over = self.overflows(psums)
        if n_over:
            obs.counter("acc/overflow").add(n_over)
        if self.mode == "saturate":
            return np.clip(psums, -self.limit, self.limit)
        span = 1 << self.width_bits
        half = 1 << (self.width_bits - 1)
        return ((psums + half) % span) - half


def required_accumulator_bits(reduction: int, act_max: int, weight_max: int) -> int:
    """Smallest signed width that provably cannot overflow.

    ``reduction`` MACs of operands bounded by ``act_max`` (unsigned) and
    ``weight_max`` (magnitude) sum to at most ``reduction * act_max *
    weight_max`` in magnitude; one sign bit on top guarantees avoidance
    (the Colbert et al. accumulator-aware bound, specialized to known
    operand ranges).
    """
    if reduction < 1 or act_max < 1 or weight_max < 1:
        raise ConfigError("reduction and operand maxima must be positive")
    return math.ceil(math.log2(reduction * act_max * weight_max + 1)) + 1
