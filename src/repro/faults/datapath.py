"""End-to-end fault injection through the OLAccel datapath.

:func:`faulty_olaccel_conv2d` runs one convolution the way
:func:`repro.olaccel.functional.olaccel_conv2d` does, but routes every
operand through its on-chip encoding with a :class:`FaultPlan` striking
at the boundaries the hardware actually crosses:

1. **weights** — pack → :func:`encode_packed` to literal 80-bit words →
   strike (surface ``weight_chunks``) → :func:`transfer_words` across
   the DRAM/SRAM channel (surface ``memory``) → decode with
   ``strict=False`` → :func:`validate_packed` under the recovery policy
   → unpack to (possibly degraded) integer levels;
2. **activations** — per-sample :func:`pack_activations` → strike the
   dense 4-bit stream (surface ``activations``) and the 16-bit swarm
   values (surface ``outliers``) → :func:`validate_swarm` → unpack;
3. run the normal/outlier datapath on the surviving levels, with an
   optional finite-width :class:`AccumulatorModel`, and compare against
   the clean golden reference.

The counting contract (docs/FAULTS.md) is closed here: after validation
the harness computes ``faults/undetected = injected - detected``, so the
three counters reconcile exactly on the registry carried by the result.

Detectability falls out of the encoding, not a simulation switch: a
4-bit dense-stream strike always lands back on the legal [0, 15] grid
(silent data corruption, *undetected*), while an ``OLptr`` strike that
dangles past the spill table is structurally impossible in a healthy
encoding and is *detected* — exactly the asymmetry real hardware has.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from ..arch.act_packing import pack_activations, unpack_activations
from ..arch.bitcodec import decode_table, encode_packed
from ..arch.chunks import WEIGHT_CHUNK_BITS
from ..arch.memory import transfer_words
from ..arch.packing import PackedWeights, pack_weights
from ..obs import NULL_REGISTRY, Registry
from ..olaccel.functional import FunctionalResult, olaccel_conv2d, reference_conv2d_int
from .accumulator import AccumulatorModel
from .plan import FaultPlan
from .validate import validate_packed, validate_swarm

__all__ = ["FaultInjectionResult", "corrupt_packed_weights", "faulty_olaccel_conv2d"]

#: Dense activation stream nibble width (Fig. 5 / Sec. III-A).
_ACT_STREAM_BITS = 4
#: Swarm-buffer outlier value width (Fig. 9).
_SWARM_VALUE_BITS = 16


@dataclass
class FaultInjectionResult:
    """Outcome of one fault-injected convolution vs the clean reference."""

    result: FunctionalResult  #: the faulty datapath's FunctionalResult
    reference: np.ndarray  #: clean ideal golden psums (infinite accumulator)
    injected: int  #: value-changing strikes across all surfaces
    detected: int  #: violations caught by the validators
    masked: int  #: detected violations recovered under degrade/skip
    skipped: int  #: detected violations discarded under skip
    acc_overflows: int  #: psums clipped/wrapped by the accumulator model
    obs: Registry = field(repr=False, default=NULL_REGISTRY)

    @property
    def undetected(self) -> int:
        """Silent corruptions: ``injected - detected`` by construction."""
        return self.injected - self.detected

    @property
    def psum(self) -> np.ndarray:
        return self.result.psum

    @property
    def bit_exact(self) -> bool:
        """Did the faulty datapath still produce the clean psums?"""
        return bool(np.array_equal(self.result.psum, self.reference))

    @property
    def mismatch_fraction(self) -> float:
        """Fraction of output psums that differ from the reference."""
        total = self.reference.size
        if total == 0:
            return 0.0
        return float((self.result.psum != self.reference).sum() / total)

    @property
    def max_abs_error(self) -> int:
        if self.reference.size == 0:
            return 0
        return int(np.abs(self.result.psum - self.reference).max())


def corrupt_packed_weights(
    packed: PackedWeights,
    plan: FaultPlan,
    policy: str = "degrade",
    obs: Registry = NULL_REGISTRY,
) -> PackedWeights:
    """Round-trip a packed table through faulty encode/transfer/decode.

    The table is lowered to its literal 80-bit words, struck on the
    ``weight_chunks`` surface, carried across the memory channel
    (``memory`` surface), decoded leniently, and validated under
    ``policy``. With a disabled plan the same words decode back to an
    identical table — the bit-level round trip is exact.
    """
    base_words, spill_words = encode_packed(packed)
    base_words, _ = plan.corrupt_words(base_words, WEIGHT_CHUNK_BITS, surface="weight_chunks", obs=obs)
    spill_words, _ = plan.corrupt_words(spill_words, WEIGHT_CHUNK_BITS, surface="weight_chunks", obs=obs)
    base_words = transfer_words(base_words, WEIGHT_CHUNK_BITS, plan=plan, obs=obs)
    spill_words = transfer_words(spill_words, WEIGHT_CHUNK_BITS, plan=plan, obs=obs)
    base_chunks, spill_chunks = decode_table(base_words, spill_words, strict=False)
    rebuilt = PackedWeights(
        base_chunks=base_chunks,
        spill_chunks=spill_chunks,
        n_groups=packed.n_groups,
        reduction=packed.reduction,
        out_channels=packed.out_channels,
    )
    return validate_packed(rebuilt, policy=policy, obs=obs)


def _corrupt_activations(
    act_levels: np.ndarray,
    plan: FaultPlan,
    policy: str,
    act_normal_max: int,
    obs: Registry,
) -> np.ndarray:
    """Strike each sample's dense stream and swarm entries, then rebuild."""
    out = np.empty_like(act_levels)
    for sample in range(act_levels.shape[0]):
        packed = pack_activations(act_levels[sample], normal_max=act_normal_max)
        dense, _ = plan.corrupt_levels(packed.dense, _ACT_STREAM_BITS, surface="activations", obs=obs)
        entries = packed.outliers
        if entries:
            values = packed._coord_table()[:, 3]
            values, _ = plan.corrupt_levels(values, _SWARM_VALUE_BITS, surface="outliers", obs=obs)
            entries = [replace(e, value=int(v)) for e, v in zip(entries, values)]
        entries = validate_swarm(
            entries, packed.shape, policy=policy, obs=obs, normal_max=act_normal_max
        )
        struck = packed.replace_streams(dense=dense, outliers=entries)
        out[sample] = unpack_activations(struck)
    return out


def faulty_olaccel_conv2d(
    act_levels: np.ndarray,
    weight_levels: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    act_normal_max: int = 15,
    plan: Optional[FaultPlan] = None,
    policy: str = "degrade",
    acc: Optional[AccumulatorModel] = None,
    obs: Optional[Registry] = None,
) -> FaultInjectionResult:
    """Run a convolution through the fault-injected OLAccel datapath.

    With ``plan=None`` (or rate 0) and a full-width accumulator this is
    bit-exact to :func:`reference_conv2d_int` — the no-op proof the
    tests pin down. ``obs`` defaults to a fresh enabled registry so the
    returned counters always reconcile; pass your own to aggregate
    across calls.
    """
    if obs is None:
        obs = Registry()
    if plan is None:
        plan = FaultPlan(rate=0.0)

    act_levels = np.asarray(act_levels, dtype=np.int64)
    weight_levels = np.asarray(weight_levels, dtype=np.int64)
    out_c = weight_levels.shape[0]
    w_mat = weight_levels.reshape(out_c, -1)

    packed = corrupt_packed_weights(pack_weights(w_mat), plan, policy=policy, obs=obs)
    faulty_weights = packed.unpack().reshape(weight_levels.shape)
    faulty_acts = _corrupt_activations(act_levels, plan, policy, act_normal_max, obs)

    result = olaccel_conv2d(
        faulty_acts,
        faulty_weights,
        stride=stride,
        pad=pad,
        act_normal_max=act_normal_max,
        packed=packed,
        acc=acc,
        obs=obs,
    )
    reference = reference_conv2d_int(act_levels, weight_levels, stride=stride, pad=pad)

    counters = obs.snapshot()
    injected = int(counters.get("faults/injected", 0))
    detected = int(counters.get("faults/detected", 0))
    undetected = injected - detected
    if undetected and obs.enabled:
        obs.counter("faults/undetected").add(undetected)

    return FaultInjectionResult(
        result=result,
        reference=reference,
        injected=injected,
        detected=detected,
        masked=int(counters.get("faults/masked", 0)),
        skipped=int(counters.get("faults/skipped", 0)),
        acc_overflows=result.acc_overflows,
        obs=obs,
    )
