"""Deterministic, seeded fault injection plans.

A :class:`FaultPlan` describes *where* and *how often* hardware faults
strike, and deterministically reproduces the same strikes for the same
seed. It is pluggable: the datapath (:mod:`repro.faults.datapath`) and
the memory channel (:func:`repro.arch.memory.transfer_words`) both call
the same two primitives —

- :meth:`FaultPlan.corrupt_words` for packed bit-level words (the
  80-bit weight chunks moving through SRAM/DRAM);
- :meth:`FaultPlan.corrupt_levels` for integer level arrays (the dense
  4-bit activation stream, 16-bit swarm-buffer values, coordinate
  fields).

Fault models (per struck word/element, one site each):

- ``bitflip`` — invert one uniformly chosen bit;
- ``stuck0`` / ``stuck1`` — force one uniformly chosen bit to 0/1 (a
  strike on a bit already at that value is a no-op and is *not*
  counted as injected — it cannot be detected or change a result);
- ``burst`` — invert ``burst_length`` contiguous bits (clipped at the
  word edge), modelling a multi-bit upset on a bus beat.

Every counted strike increments ``faults/injected`` (and a per-surface
``faults/injected/<surface>``) on the supplied ``repro.obs`` registry,
which is what the reconciliation invariant in docs/FAULTS.md audits:
``injected == detected + undetected``.

Determinism: each (seed, surface) pair owns an independent
``numpy`` Generator stream, so enabling one surface never perturbs the
strikes on another.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..errors import ConfigError
from ..obs import NULL_REGISTRY, Registry

__all__ = ["FAULT_MODELS", "FAULT_SURFACES", "FaultPlan"]

#: Supported fault models.
FAULT_MODELS = ("bitflip", "stuck0", "stuck1", "burst")

#: Injectable surfaces of the datapath.
FAULT_SURFACES = (
    "weight_chunks",  # packed 80-bit weight/spill words at the encode boundary
    "activations",  # the dense 4-bit normal activation stream
    "outliers",  # swarm-buffer entries (value + coordinates)
    "memory",  # words in flight through arch.memory.transfer_words
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of which faults strike which surfaces.

    ``rate`` is the per-word (or per-element) strike probability;
    ``targets`` restricts injection to a subset of
    :data:`FAULT_SURFACES` (default: all of them). ``rate = 0`` is the
    provable no-op plan: no generator is even consulted, so a disabled
    plan is bit-identical to no plan at all.
    """

    rate: float = 0.0
    seed: int = 0
    model: str = "bitflip"
    targets: Tuple[str, ...] = field(default=FAULT_SURFACES)
    burst_length: int = 4

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.model not in FAULT_MODELS:
            raise ConfigError(f"unknown fault model {self.model!r}; one of {FAULT_MODELS}")
        unknown = [t for t in self.targets if t not in FAULT_SURFACES]
        if unknown:
            raise ConfigError(f"unknown fault target(s) {unknown}; one of {FAULT_SURFACES}")
        if self.burst_length < 1:
            raise ConfigError(f"burst_length must be >= 1, got {self.burst_length}")

    # -- streams -------------------------------------------------------------

    def enabled(self, surface: str) -> bool:
        return self.rate > 0.0 and surface in self.targets

    def rng(self, surface: str) -> np.random.Generator:
        """The deterministic generator stream for one surface."""
        return np.random.default_rng([self.seed, zlib.crc32(surface.encode())])

    # -- primitives ----------------------------------------------------------

    def _strike(self, values: np.ndarray, width_bits: int, rng: np.random.Generator) -> Tuple[np.ndarray, int]:
        """Apply the fault model elementwise; returns (struck, n_changed).

        ``values`` may be any integer dtype wide enough for
        ``width_bits`` (object dtype works for 80-bit words). At most
        one fault site per element; only elements whose value actually
        changed count as injected.
        """
        out = values.copy()
        hit = np.flatnonzero(rng.random(out.shape) < self.rate)
        if hit.size == 0:
            return out, 0
        positions = rng.integers(0, width_bits, size=hit.size)
        changed = 0
        flat = out.reshape(-1)
        for index, pos in zip(hit, positions):
            old = flat[index]
            value = int(old)
            pos = int(pos)
            if self.model == "bitflip":
                value ^= 1 << pos
            elif self.model == "stuck0":
                value &= ~(1 << pos)
            elif self.model == "stuck1":
                value |= 1 << pos
            else:  # burst
                span = min(self.burst_length, width_bits - pos)
                value ^= ((1 << span) - 1) << pos
            if value != int(old):
                flat[index] = flat.dtype.type(value) if flat.dtype != object else value
                changed += 1
        return out, changed

    def corrupt_words(
        self,
        words,
        width_bits: int,
        surface: str = "weight_chunks",
        obs: Registry = NULL_REGISTRY,
    ) -> Tuple[list, int]:
        """Corrupt a list of packed integer words; returns (words, injected).

        Words are Python ints of up to ``width_bits`` bits (the 80-bit
        chunk words exceed int64, hence the object array underneath).
        """
        if not self.enabled(surface) or not words:
            return list(words), 0
        arr = np.array(list(words), dtype=object)
        struck, injected = self._strike(arr, width_bits, self.rng(surface))
        if injected:
            obs.counter("faults/injected").add(injected)
            obs.counter(f"faults/injected/{surface}").add(injected)
        return [int(w) for w in struck], injected

    def corrupt_levels(
        self,
        levels: np.ndarray,
        width_bits: int,
        surface: str = "activations",
        obs: Registry = NULL_REGISTRY,
    ) -> Tuple[np.ndarray, int]:
        """Corrupt an integer level array in its ``width_bits`` encoding."""
        levels = np.asarray(levels)
        if not self.enabled(surface) or levels.size == 0:
            return levels.copy(), 0
        struck, injected = self._strike(levels.astype(np.int64), width_bits, self.rng(surface))
        if injected:
            obs.counter("faults/injected").add(injected)
            obs.counter(f"faults/injected/{surface}").add(injected)
        return struck, injected
