"""Static activation-threshold calibration (Sec. II).

Computing activation histograms at runtime would be expensive, so the paper
runs ~100 sample inputs through the network offline, records each layer's
input-activation distribution, and fixes a per-layer magnitude threshold at
the (1 - outlier_ratio) quantile of the *nonzero* activations. At runtime an
activation is an outlier iff it exceeds the stored threshold — a single
compare. Fig. 16 then checks that the *effective* runtime outlier ratio on
held-out inputs clusters around the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..nn.model import Model
from .outlier import magnitude_threshold

__all__ = ["LayerCalibration", "CalibrationResult", "calibrate_activation_thresholds", "effective_outlier_ratios"]


@dataclass(frozen=True)
class LayerCalibration:
    """Calibrated statistics for one compute layer's input activations."""

    layer_index: int
    layer_name: str
    threshold: float
    signed: bool  # True when the layer sees raw (not post-ReLU) input
    nonzero_density: float


@dataclass
class CalibrationResult:
    """Per-layer thresholds plus the target ratio they were calibrated for."""

    ratio: float
    layers: List[LayerCalibration] = field(default_factory=list)

    def threshold(self, layer_index: int) -> float:
        return self.layers[layer_index].threshold

    def by_name(self) -> Dict[str, LayerCalibration]:
        return {cal.layer_name: cal for cal in self.layers}


def calibrate_activation_thresholds(
    model: Model,
    sample_inputs: np.ndarray,
    ratio: float = 0.03,
    batch_size: int = 32,
) -> CalibrationResult:
    """Derive per-layer activation thresholds from sample inputs.

    ``sample_inputs`` plays the role of the paper's 100 randomly sampled
    images. Quantiles are computed over the activations pooled across all
    sample batches.
    """
    compute = model.compute_layers()
    pooled: Dict[int, List[np.ndarray]] = {i: [] for i in range(len(compute))}
    for start in range(0, sample_inputs.shape[0], batch_size):
        captured = model.record_activations(sample_inputs[start : start + batch_size])
        for index, act in captured.items():
            pooled[index].append(act.ravel())

    result = CalibrationResult(ratio=ratio)
    for index, layer in enumerate(compute):
        acts = np.concatenate(pooled[index]) if pooled[index] else np.zeros(0)
        signed = bool(np.any(acts < 0))
        threshold = magnitude_threshold(acts, ratio, over_nonzero=True)
        density = float(np.count_nonzero(acts) / acts.size) if acts.size else 0.0
        result.layers.append(
            LayerCalibration(
                layer_index=index,
                layer_name=getattr(layer, "name", f"layer{index}"),
                threshold=threshold,
                signed=signed,
                nonzero_density=density,
            )
        )
    return result


def effective_outlier_ratios(
    model: Model,
    calibration: CalibrationResult,
    inputs: np.ndarray,
    batch_size: int = 32,
) -> Dict[str, float]:
    """Measure the runtime outlier ratio per layer on held-out inputs.

    Returns, per layer, outliers / nonzero activations — the quantity
    Fig. 16 histograms (it should cluster near the calibration target).
    """
    compute = model.compute_layers()
    outliers = np.zeros(len(compute))
    nonzeros = np.zeros(len(compute))
    for start in range(0, inputs.shape[0], batch_size):
        captured = model.record_activations(inputs[start : start + batch_size])
        for index, act in captured.items():
            threshold = calibration.layers[index].threshold
            mags = np.abs(act)
            outliers[index] += int((mags > threshold).sum())
            nonzeros[index] += int(np.count_nonzero(act))

    ratios: Dict[str, float] = {}
    for cal in calibration.layers:
        denom = nonzeros[cal.layer_index]
        ratios[cal.layer_name] = float(outliers[cal.layer_index] / denom) if denom else 0.0
    return ratios
