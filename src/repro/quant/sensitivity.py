"""Per-layer quantization sensitivity analysis.

The paper asserts (Sec. II) that "a larger bitwidth is needed for the
weights of the first layer(s), as it is more sensitive to such
optimizations as quantization than the other layers" — and builds the
8-bit first-layer path on that claim. This module measures the claim
directly on a trained model, two ways:

- :func:`layer_sensitivity` — quantize exactly one layer at a time (all
  others stay full precision) and record the accuracy drop;
- :func:`leave_one_out` — quantize the whole network *except* one layer
  and record the accuracy recovered by sparing it.

Both return per-layer scores the experiments can rank; the bench asserts
the paper's ordering (the first layer is among the most sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..nn.model import Model
from .calibrate import CalibrationResult
from .qmodel import QuantConfig, QuantizedModel

__all__ = ["LayerSensitivity", "SensitivityReport", "layer_sensitivity", "leave_one_out"]


@dataclass(frozen=True)
class LayerSensitivity:
    """Accuracy impact of quantizing (or sparing) one layer."""

    layer_index: int
    layer_name: str
    accuracy: float
    delta_vs_reference: float  # negative = this configuration is worse


@dataclass
class SensitivityReport:
    """Ranked per-layer sensitivities."""

    mode: str  # "only-this-layer" or "all-but-this-layer"
    reference_accuracy: float
    rows: List[LayerSensitivity] = field(default_factory=list)

    def ranked(self) -> List[LayerSensitivity]:
        """Most damaging (only-mode) / most protective (loo-mode) first."""
        return sorted(self.rows, key=lambda r: r.delta_vs_reference)

    def most_sensitive(self) -> LayerSensitivity:
        return self.ranked()[0]

    def format(self) -> str:
        lines = [f"layer sensitivity ({self.mode}); reference accuracy {self.reference_accuracy:.3f}"]
        for row in self.ranked():
            lines.append(f"  {row.layer_name:12s} acc={row.accuracy:.3f} delta={row.delta_vs_reference:+.3f}")
        return "\n".join(lines)


class _SelectiveQuantizedModel(QuantizedModel):
    """Fake-quant executor that only quantizes a chosen subset of layers."""

    def __init__(self, model, calibration, config, active: Callable[[int], bool]):
        self._active = active
        super().__init__(model, calibration, config)

    def _prepare_weights(self) -> None:
        super()._prepare_weights()
        for index, layer in enumerate(self._compute):
            if not self._active(index):
                # Keep this layer full precision.
                self._quantized_weights[index] = layer.weight.value

    def _quantize_input(self, index: int, x: np.ndarray) -> np.ndarray:
        if not self._active(index):
            return x
        return super()._quantize_input(index, x)


def _evaluate(model: Model, calibration: CalibrationResult, config: QuantConfig,
              active: Callable[[int], bool], x: np.ndarray, y: np.ndarray) -> float:
    return _SelectiveQuantizedModel(model, calibration, config, active).accuracy(x, y)


def layer_sensitivity(
    model: Model,
    calibration: CalibrationResult,
    x: np.ndarray,
    y: np.ndarray,
    config: Optional[QuantConfig] = None,
) -> SensitivityReport:
    """Quantize one layer at a time; reference = full-precision accuracy."""
    config = config or QuantConfig()
    reference = model.accuracy(x, y)
    report = SensitivityReport(mode="only-this-layer", reference_accuracy=reference)
    for index, layer in enumerate(model.compute_layers()):
        acc = _evaluate(model, calibration, config, lambda i, k=index: i == k, x, y)
        report.rows.append(
            LayerSensitivity(
                layer_index=index,
                layer_name=getattr(layer, "name", f"layer{index}"),
                accuracy=acc,
                delta_vs_reference=acc - reference,
            )
        )
    return report


def leave_one_out(
    model: Model,
    calibration: CalibrationResult,
    x: np.ndarray,
    y: np.ndarray,
    config: Optional[QuantConfig] = None,
) -> SensitivityReport:
    """Quantize everything except one layer; reference = fully quantized."""
    config = config or QuantConfig()
    reference = _evaluate(model, calibration, config, lambda i: True, x, y)
    report = SensitivityReport(mode="all-but-this-layer", reference_accuracy=reference)
    for index, layer in enumerate(model.compute_layers()):
        acc = _evaluate(model, calibration, config, lambda i, k=index: i != k, x, y)
        report.rows.append(
            LayerSensitivity(
                layer_index=index,
                layer_name=getattr(layer, "name", f"layer{index}"),
                accuracy=acc,
                # positive delta = sparing this layer recovers accuracy,
                # i.e. the layer is sensitive; rank most sensitive first
                # by negating.
                delta_vs_reference=-(acc - reference),
            )
        )
    return report
