"""Linear (uniform) quantization on sign-magnitude integer grids.

This is both the conventional baseline the paper argues against (Fig. 1b:
4-bit linear quantization over the full range, wasted levels because of
outliers) and the building block of outlier-aware quantization (Sec. II):
OLAccel's arithmetic is integer, so every quantizer here maps real values to
integers on a shared step size ``delta`` and back.

Conventions (matching the OLAccel datapath, Sec. III):

- *Weights* are signed and use a sign-magnitude grid: ``b``-bit weights
  occupy ``[-(2^(b-1) - 1), 2^(b-1) - 1]`` (e.g. [-7, 7] for 4 bits). The
  symmetric grid is what lets an 8-bit outlier weight be split into an MSB
  nibble (handled by the outlier MAC) and an LSB nibble (handled by the
  normal MAC) with exact integer arithmetic.
- *Activations* are post-ReLU, hence unsigned: ``b``-bit activations occupy
  ``[0, 2^b - 1]`` (e.g. [0, 15] for 4 bits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "signed_levels",
    "unsigned_levels",
    "LinearQuantizer",
    "quantize_linear",
]


def signed_levels(bits: int) -> int:
    """Largest magnitude representable by a ``bits``-bit sign-magnitude int."""
    if bits < 2:
        raise ValueError(f"signed grids need at least 2 bits, got {bits}")
    return 2 ** (bits - 1) - 1


def unsigned_levels(bits: int) -> int:
    """Largest value representable by a ``bits``-bit unsigned int."""
    if bits < 1:
        raise ValueError(f"unsigned grids need at least 1 bit, got {bits}")
    return 2**bits - 1


@dataclass(frozen=True)
class LinearQuantizer:
    """A fixed-step integer grid.

    Attributes:
        delta: real-valued step size; 0 values are representable exactly.
        bits: grid bitwidth.
        signed: sign-magnitude grid (weights) vs unsigned grid (activations).
    """

    delta: float
    bits: int
    signed: bool = True

    @property
    def max_level(self) -> int:
        return signed_levels(self.bits) if self.signed else unsigned_levels(self.bits)

    @property
    def min_level(self) -> int:
        return -self.max_level if self.signed else 0

    @property
    def max_value(self) -> float:
        """Largest representable real magnitude."""
        return self.max_level * self.delta

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Real values -> clipped integer levels (round-to-nearest)."""
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        levels = np.rint(np.asarray(x) / self.delta)
        return np.clip(levels, self.min_level, self.max_level).astype(np.int64)

    def dequantize(self, levels: np.ndarray) -> np.ndarray:
        """Integer levels -> real values."""
        return np.asarray(levels, dtype=np.float64) * self.delta

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """Quantize and dequantize in one step."""
        return self.dequantize(self.quantize(x))

    @classmethod
    def from_range(cls, max_abs: float, bits: int, signed: bool = True) -> "LinearQuantizer":
        """Grid whose largest level lands on ``max_abs``.

        This is conventional linear quantization *without truncation*: the
        full observed range is covered, so outliers consume the dynamic
        range and squeeze the step size available to small values (the
        failure mode of Fig. 1b).
        """
        levels = signed_levels(bits) if signed else unsigned_levels(bits)
        if max_abs <= 0:
            # Degenerate all-zero data: any positive step represents it.
            return cls(delta=1.0, bits=bits, signed=signed)
        delta = max_abs / levels
        if delta <= 0.0:
            # max_abs is a subnormal so small the step underflows to zero;
            # treat it like the all-zero case (error stays within delta/2).
            return cls(delta=1.0, bits=bits, signed=signed)
        return cls(delta=delta, bits=bits, signed=signed)


def quantize_linear(x: np.ndarray, bits: int, signed: bool = True) -> np.ndarray:
    """One-shot full-range linear quantization round-trip of ``x``."""
    max_abs = float(np.abs(x).max()) if x.size else 0.0
    return LinearQuantizer.from_range(max_abs, bits, signed).roundtrip(x)
