"""Quantization error metrics and distribution summaries.

Used by the Fig. 1 reproduction (weight distributions under full precision,
linear, and outlier-aware quantization) and by tests asserting that OAQ
strictly improves on full-range linear quantization for heavy-tailed data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["mse", "sqnr_db", "max_abs_error", "level_occupancy", "DistributionSummary", "summarize"]


def mse(original: np.ndarray, quantized: np.ndarray) -> float:
    """Mean squared quantization error."""
    diff = np.asarray(original, dtype=np.float64) - np.asarray(quantized, dtype=np.float64)
    return float(np.mean(diff**2))


def sqnr_db(original: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (inf for exact match)."""
    signal = float(np.mean(np.asarray(original, dtype=np.float64) ** 2))
    noise = mse(original, quantized)
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal / noise)


def max_abs_error(original: np.ndarray, quantized: np.ndarray) -> float:
    return float(np.max(np.abs(np.asarray(original) - np.asarray(quantized)))) if np.asarray(original).size else 0.0


def level_occupancy(levels: np.ndarray, max_level: int) -> np.ndarray:
    """Histogram of integer levels over [-max_level, max_level].

    Shows the failure mode of Fig. 1b: full-range linear quantization leaves
    most levels empty because the range is dictated by a few outliers.
    """
    clipped = np.clip(np.asarray(levels).ravel(), -max_level, max_level)
    return np.bincount((clipped + max_level).astype(np.int64), minlength=2 * max_level + 1)


@dataclass(frozen=True)
class DistributionSummary:
    """Compact description of a value distribution (for Fig. 1 style plots)."""

    count: int
    mean: float
    std: float
    max_abs: float
    p99_abs: float
    kurtosis: float

    @property
    def tail_spread(self) -> float:
        """max|x| / p99|x| — how far the outlier tail extends past the bulk."""
        return self.max_abs / self.p99_abs if self.p99_abs > 0 else float("inf")


def summarize(x: np.ndarray) -> DistributionSummary:
    flat = np.asarray(x, dtype=np.float64).ravel()
    if flat.size == 0:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    std = float(flat.std())
    centered = flat - flat.mean()
    kurt = float(np.mean(centered**4) / (std**4)) if std > 0 else 0.0
    return DistributionSummary(
        count=flat.size,
        mean=float(flat.mean()),
        std=std,
        max_abs=float(np.abs(flat).max()),
        p99_abs=float(np.quantile(np.abs(flat), 0.99)),
        kurtosis=kurt,
    )


def histogram_log_counts(x: np.ndarray, bins: int = 61) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of values with log10(1 + count) heights, Fig. 1 style."""
    flat = np.asarray(x, dtype=np.float64).ravel()
    counts, edges = np.histogram(flat, bins=bins)
    return np.log10(1.0 + counts), edges
