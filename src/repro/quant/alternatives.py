"""Alternative quantizers from the paper's Related Work (Sec. VI).

The paper positions OAQ against several quantization families; this
module implements the ones that need no retraining, so the repository can
reproduce the *comparison* and not just the winner:

- :func:`quantize_clipped` — linear quantization over a clipped range
  (the truncation many conventional pipelines apply, and the range-
  clipping idea behind DoReFa's bounded activations);
- :func:`quantize_log` — logarithmic (power-of-two level) quantization
  (Miyashita et al. [23]);
- :func:`quantize_balanced` — percentile-balanced levels that equalize
  level populations (Zhou et al. [24]), implemented as quantile bins;
- :class:`QuantizerSpec` + :func:`compare_quantizers` — a small registry
  so experiments can sweep families uniformly.

All operate per-tensor, return round-tripped real values, and are pitted
against OAQ in ``benchmarks/bench_ext_quantizers.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from .linear import LinearQuantizer
from .metrics import mse, sqnr_db
from .outlier import quantize_weights

__all__ = [
    "quantize_clipped",
    "quantize_log",
    "quantize_balanced",
    "QuantizerSpec",
    "QUANTIZER_REGISTRY",
    "compare_quantizers",
]


def quantize_clipped(x: np.ndarray, bits: int = 4, clip_quantile: float = 0.99) -> np.ndarray:
    """Linear quantization over a clipped range.

    Values beyond the ``clip_quantile`` magnitude are saturated to the
    grid edge — the conventional way to stop outliers from wasting levels,
    at the price of distorting exactly the large values OAQ preserves.
    """
    if not 0.0 < clip_quantile <= 1.0:
        raise ValueError(f"clip_quantile must be in (0, 1], got {clip_quantile}")
    flat = np.abs(np.asarray(x, dtype=np.float64)).ravel()
    if flat.size == 0:
        return np.asarray(x, dtype=np.float64).copy()
    clip = float(np.quantile(flat, clip_quantile))
    return LinearQuantizer.from_range(clip, bits=bits).roundtrip(x)


def quantize_log(x: np.ndarray, bits: int = 4) -> np.ndarray:
    """Logarithmic quantization: levels are signed powers of two.

    ``bits`` budgets one sign bit, one zero code, and ``2^(bits-1) - 1``
    exponent steps below the maximum magnitude. Matches Miyashita et
    al.'s observation that log grids cover wide dynamic ranges cheaply
    but space levels coarsely near the top.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy()
    max_abs = float(np.abs(x).max())
    if max_abs == 0.0:
        return np.zeros_like(x)
    n_exponents = 2 ** (bits - 1) - 1
    top = np.ceil(np.log2(max_abs))
    exponents = top - np.arange(n_exponents)  # descending powers of two

    mags = np.abs(x)
    out = np.zeros_like(x)
    nonzero = mags > 0
    # Round magnitude to the nearest representable power of two (in log space).
    log_mags = np.log2(mags[nonzero])
    idx = np.clip(np.rint(top - log_mags), 0, n_exponents - 1).astype(np.int64)
    out[nonzero] = np.sign(x[nonzero]) * 2.0 ** exponents[idx]
    # The smallest exponent also acts as the underflow-to-zero boundary.
    underflow = nonzero & (mags < 2.0 ** (exponents[-1] - 1))
    out[underflow] = 0.0
    return out


def quantize_balanced(x: np.ndarray, bits: int = 4) -> np.ndarray:
    """Percentile-balanced quantization: equal-population levels.

    Level boundaries are value quantiles, so every level represents the
    same number of elements (Zhou et al.'s "balanced" histogram). Each
    level reconstructs to the mean of its bin.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy()
    n_levels = 2**bits
    edges = np.quantile(x.ravel(), np.linspace(0.0, 1.0, n_levels + 1))
    # Degenerate distributions can produce duplicate edges.
    edges = np.unique(edges)
    if edges.size < 2:
        return np.full_like(x, float(edges[0]) if edges.size else 0.0)
    bins = np.clip(np.searchsorted(edges, x.ravel(), side="right") - 1, 0, edges.size - 2)
    centers = np.empty(edges.size - 1)
    flat = x.ravel()
    for b in range(edges.size - 1):
        members = flat[bins == b]
        centers[b] = members.mean() if members.size else 0.5 * (edges[b] + edges[b + 1])
    return centers[bins].reshape(x.shape)


def _oaq_roundtrip(x: np.ndarray, bits: int = 4) -> np.ndarray:
    return quantize_weights(x, ratio=0.03, normal_bits=bits).dequantize()


def _linear_roundtrip(x: np.ndarray, bits: int = 4) -> np.ndarray:
    max_abs = float(np.abs(x).max()) if np.asarray(x).size else 0.0
    return LinearQuantizer.from_range(max_abs, bits=bits).roundtrip(x)


@dataclass(frozen=True)
class QuantizerSpec:
    """A named quantizer for comparison sweeps."""

    name: str
    fn: Callable[[np.ndarray, int], np.ndarray]
    description: str


QUANTIZER_REGISTRY: Dict[str, QuantizerSpec] = {
    "linear": QuantizerSpec("linear", _linear_roundtrip, "full-range linear (no truncation)"),
    "clipped": QuantizerSpec("clipped", quantize_clipped, "linear over the 99th-percentile range"),
    "log": QuantizerSpec("log", quantize_log, "power-of-two levels (Miyashita et al.)"),
    "balanced": QuantizerSpec("balanced", quantize_balanced, "equal-population levels (Zhou et al.)"),
    "oaq": QuantizerSpec("oaq", _oaq_roundtrip, "outlier-aware, 3% high-precision outliers"),
}


def compare_quantizers(x: np.ndarray, bits: int = 4, names: List[str] = None) -> Dict[str, Dict[str, float]]:
    """MSE and SQNR of each registered quantizer on one tensor."""
    results: Dict[str, Dict[str, float]] = {}
    for name in names or list(QUANTIZER_REGISTRY):
        spec = QUANTIZER_REGISTRY[name]
        quantized = spec.fn(x, bits)
        results[name] = {"mse": mse(x, quantized), "sqnr_db": sqnr_db(x, quantized)}
    return results
