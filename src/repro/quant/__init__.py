"""Outlier-aware quantization library (paper Sec. II).

- :mod:`repro.quant.linear` — sign-magnitude integer grids, linear baseline;
- :mod:`repro.quant.outlier` — outlier-aware quantization of weights and
  activations on a shared integer step;
- :mod:`repro.quant.calibrate` — static per-layer activation thresholds
  from sample inputs;
- :mod:`repro.quant.qmodel` — fake-quant inference over a trained model;
- :mod:`repro.quant.metrics` — quantization error metrics.
"""

from .alternatives import (
    QUANTIZER_REGISTRY,
    QuantizerSpec,
    compare_quantizers,
    quantize_balanced,
    quantize_clipped,
    quantize_log,
)
from .calibrate import (
    CalibrationResult,
    LayerCalibration,
    calibrate_activation_thresholds,
    effective_outlier_ratios,
)
from .linear import LinearQuantizer, quantize_linear, signed_levels, unsigned_levels
from .metrics import DistributionSummary, level_occupancy, max_abs_error, mse, sqnr_db, summarize
from .outlier import (
    OutlierQuantConfig,
    QuantizedTensor,
    magnitude_threshold,
    quantize_activations,
    quantize_weights,
)
from .finetune import FinetuneConfig, finetune_quantized, quantized_weight_view
from .qmodel import LayerQuantStats, QuantConfig, QuantizedModel
from .sensitivity import LayerSensitivity, SensitivityReport, layer_sensitivity, leave_one_out

__all__ = [
    "QUANTIZER_REGISTRY",
    "QuantizerSpec",
    "compare_quantizers",
    "quantize_balanced",
    "quantize_clipped",
    "quantize_log",
    "FinetuneConfig",
    "finetune_quantized",
    "quantized_weight_view",
    "LayerSensitivity",
    "SensitivityReport",
    "layer_sensitivity",
    "leave_one_out",
    "CalibrationResult",
    "LayerCalibration",
    "calibrate_activation_thresholds",
    "effective_outlier_ratios",
    "LinearQuantizer",
    "quantize_linear",
    "signed_levels",
    "unsigned_levels",
    "DistributionSummary",
    "level_occupancy",
    "max_abs_error",
    "mse",
    "sqnr_db",
    "summarize",
    "OutlierQuantConfig",
    "QuantizedTensor",
    "magnitude_threshold",
    "quantize_activations",
    "quantize_weights",
    "LayerQuantStats",
    "QuantConfig",
    "QuantizedModel",
]
