"""Quantized model execution (fake-quant inference).

Runs a trained float model exactly as OLAccel would see it numerically:
every compute layer's weights are replaced by their OAQ round-trip values,
and every compute layer's input activations are OAQ-quantized on entry
using the statically calibrated per-layer thresholds. Non-compute layers
(pooling, batch-norm with frozen statistics, residual adds) run in float,
matching the paper's accelerator which re-quantizes activations at each
convolution boundary.

The first layer is special (Sec. II): it consumes raw network input at
16/8 bits (signed linear grid over the calibrated range) and, for
ResNet-style networks, uses 8-bit weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.model import Model
from .calibrate import CalibrationResult
from .linear import LinearQuantizer
from .outlier import OutlierQuantConfig, QuantizedTensor, _quantize, quantize_weights

__all__ = ["QuantConfig", "LayerQuantStats", "QuantizedModel"]


@dataclass(frozen=True)
class QuantConfig:
    """Network-level quantization settings.

    ``act_outlier_bits`` is 16 in the paper's 16-bit comparison and 8 in the
    8-bit comparison; ``first_layer_act_bits`` tracks the raw-input
    precision the same way. ``first_layer_weight_bits`` is 8 for
    ResNet-18/101 and 4 otherwise (Sec. II).
    """

    ratio: float = 0.03
    weight_bits: int = 4
    weight_outlier_bits: int = 8
    act_bits: int = 4
    act_outlier_bits: int = 16
    first_layer_act_bits: int = 16
    first_layer_weight_bits: int = 4


@dataclass
class LayerQuantStats:
    """Measured quantization statistics for one compute layer.

    These feed the accelerator simulators: weight outlier ratio drives the
    multi-outlier cycle penalty, activation densities drive zero-skipping,
    and the effective activation outlier ratio drives the outlier PE group
    load.
    """

    layer_index: int
    layer_name: str
    weight_outlier_ratio: float
    weight_density: float
    act_threshold: float
    act_density: float = 0.0
    act_outlier_ratio: float = 0.0
    is_first: bool = False


class QuantizedModel:
    """Fake-quant view over a trained float :class:`~repro.nn.model.Model`.

    The wrapped model is never mutated permanently: weights are swapped in
    and layer forwards wrapped only for the duration of a ``forward`` call.
    """

    def __init__(self, model: Model, calibration: CalibrationResult, config: Optional[QuantConfig] = None):
        self.model = model
        self.calibration = calibration
        self.config = config or QuantConfig()
        self._compute = model.compute_layers()
        if len(calibration.layers) != len(self._compute):
            raise ValueError(
                f"calibration covers {len(calibration.layers)} layers but the model has {len(self._compute)}"
            )
        self.weight_q: List[QuantizedTensor] = []
        self._quantized_weights: List[np.ndarray] = []
        self._act_stats_accum: Optional[List[dict]] = None
        self._prepare_weights()

    # -- weight quantization ------------------------------------------------

    def _prepare_weights(self) -> None:
        cfg = self.config
        for index, layer in enumerate(self._compute):
            assert isinstance(layer, (Conv2d, Linear))
            if index == 0 and cfg.first_layer_weight_bits > cfg.weight_bits:
                # Dense high-precision first layer: plain linear grid.
                qt = quantize_weights(
                    layer.weight.value,
                    ratio=0.0,
                    normal_bits=cfg.first_layer_weight_bits,
                    outlier_bits=cfg.first_layer_weight_bits,
                )
            else:
                qt = quantize_weights(
                    layer.weight.value,
                    ratio=cfg.ratio,
                    normal_bits=cfg.weight_bits,
                    outlier_bits=cfg.weight_outlier_bits,
                )
            self.weight_q.append(qt)
            self._quantized_weights.append(qt.dequantize())

    # -- activation quantization ----------------------------------------------

    def _quantize_input(self, index: int, x: np.ndarray) -> np.ndarray:
        cfg = self.config
        cal = self.calibration.layers[index]
        if index == 0 or cal.signed:
            # Raw (or otherwise signed) input: linear grid over the full range.
            max_abs = float(np.abs(x).max()) if x.size else 0.0
            bits = cfg.first_layer_act_bits if index == 0 else cfg.act_outlier_bits
            quantizer = LinearQuantizer.from_range(max_abs, bits=bits, signed=True)
            quantized = quantizer.roundtrip(x)
            if self._act_stats_accum is not None:
                self._act_stats_accum[index]["nonzero"] += int(np.count_nonzero(x))
                self._act_stats_accum[index]["total"] += x.size
            return quantized

        oa_config = OutlierQuantConfig(
            ratio=cfg.ratio, normal_bits=cfg.act_bits, outlier_bits=cfg.act_outlier_bits, signed=False
        )
        qt = _quantize(np.maximum(x, 0.0), cal.threshold, oa_config)
        if self._act_stats_accum is not None:
            acc = self._act_stats_accum[index]
            acc["nonzero"] += int(np.count_nonzero(qt.levels))
            acc["total"] += qt.levels.size
            acc["outliers"] += qt.outlier_count
        return qt.dequantize()

    # -- execution ------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantized inference over a batch."""
        originals: List[Callable] = []
        saved_weights: List[np.ndarray] = []

        def make_wrapper(index: int, layer, fwd: Callable) -> Callable:
            def wrapped(inp: np.ndarray, train: bool = False) -> np.ndarray:
                return fwd(self._quantize_input(index, inp), train=train)

            return wrapped

        for index, layer in enumerate(self._compute):
            saved_weights.append(layer.weight.value)
            layer.weight.value = self._quantized_weights[index]
            originals.append(layer.forward)
            layer.forward = make_wrapper(index, layer, layer.forward)  # type: ignore[method-assign]
        try:
            return self.model.forward(x, train=False)
        finally:
            for layer, fwd, weight in zip(self._compute, originals, saved_weights):
                layer.forward = fwd  # type: ignore[method-assign]
                layer.weight.value = weight

    __call__ = forward

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        preds = []
        for start in range(0, x.shape[0], batch_size):
            preds.append(self.forward(x[start : start + batch_size]).argmax(axis=1))
        return np.concatenate(preds)

    def accuracy(self, x: np.ndarray, labels: np.ndarray, batch_size: int = 64) -> float:
        return float((self.predict(x, batch_size) == labels).mean())

    def topk_accuracy(self, x: np.ndarray, labels: np.ndarray, k: int = 5, batch_size: int = 64) -> float:
        hits = 0
        for start in range(0, x.shape[0], batch_size):
            batch_labels = labels[start : start + batch_size]
            logits = self.forward(x[start : start + batch_size])
            topk = np.argpartition(-logits, min(k, logits.shape[1] - 1), axis=1)[:, :k]
            hits += int((topk == batch_labels[:, None]).any(axis=1).sum())
        return hits / x.shape[0]

    # -- statistics for the simulators -----------------------------------------

    def measure_layer_stats(self, sample_inputs: np.ndarray, batch_size: int = 64) -> List[LayerQuantStats]:
        """Run samples and collect per-layer quantization statistics."""
        self._act_stats_accum = [
            {"nonzero": 0, "total": 0, "outliers": 0} for _ in self._compute
        ]
        try:
            for start in range(0, sample_inputs.shape[0], batch_size):
                self.forward(sample_inputs[start : start + batch_size])
        finally:
            accum = self._act_stats_accum
            self._act_stats_accum = None

        stats: List[LayerQuantStats] = []
        for index, layer in enumerate(self._compute):
            qt = self.weight_q[index]
            acc = accum[index]
            total = acc["total"] or 1
            nonzero = acc["nonzero"]
            stats.append(
                LayerQuantStats(
                    layer_index=index,
                    layer_name=getattr(layer, "name", f"layer{index}"),
                    weight_outlier_ratio=qt.outlier_ratio,
                    weight_density=float(np.count_nonzero(qt.levels) / qt.levels.size),
                    act_threshold=self.calibration.layers[index].threshold,
                    act_density=nonzero / total,
                    act_outlier_ratio=(acc["outliers"] / nonzero) if nonzero else 0.0,
                    is_first=(index == 0),
                )
            )
        return stats
