"""Outlier-aware quantization (OAQ), the paper's Sec. II.

OAQ splits a value distribution at a magnitude threshold ``T`` placed so
that only a small *outlier ratio* of the data lies above it. Values below
``T`` (the vast majority) are quantized on a fine low-precision grid whose
step is ``T / max_level``; values above ``T`` keep high precision on the
*same step size*, just with more integer levels. Because the two regions
share one step, OLAccel can process an outlier weight as an LSB nibble (on
the normal MAC) plus an MSB nibble (on the outlier MAC) with exact integer
arithmetic — see Figs. 7–8 and :mod:`repro.olaccel.functional`.

Grids follow the hardware (Sec. III-A):

- weights: 4-bit sign-magnitude normal grid [-7, 7]; 8-bit outliers
  [-127, 127];
- activations: 4-bit unsigned normal grid [0, 15] (post-ReLU); 16-bit
  outliers [0, 65535] (or 8-bit in the 8-bit comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, QuantRangeError
from .linear import LinearQuantizer, signed_levels, unsigned_levels

__all__ = [
    "OutlierQuantConfig",
    "QuantizedTensor",
    "magnitude_threshold",
    "quantize_weights",
    "quantize_activations",
]


@dataclass(frozen=True)
class OutlierQuantConfig:
    """Bitwidths and outlier ratio for one tensor.

    ``ratio`` is the target fraction of data in the high-precision region:
    for weights, a fraction of all weights; for activations, a fraction of
    *nonzero* activations (Sec. II — ReLU zeros are never outliers).
    ``ratio = 0`` degenerates to conventional full-range linear
    quantization without truncation, exactly the paper's 0%-outlier
    baseline in Figs. 2 and 14.
    """

    ratio: float = 0.03
    normal_bits: int = 4
    outlier_bits: int = 8
    signed: bool = True

    def __post_init__(self):
        if not 0.0 <= self.ratio < 1.0:
            raise ConfigError(f"outlier ratio must be in [0, 1), got {self.ratio}")
        if self.normal_bits < 1 or self.outlier_bits < 1:
            raise ConfigError(
                f"bit widths must be positive, got normal_bits={self.normal_bits}, "
                f"outlier_bits={self.outlier_bits}"
            )
        if self.outlier_bits < self.normal_bits:
            raise ConfigError("outlier grid cannot be narrower than the normal grid")


@dataclass
class QuantizedTensor:
    """An OAQ-quantized tensor in the integer domain.

    Attributes:
        levels: integer levels on the shared step (int64, full tensor).
        delta: real step size.
        threshold: magnitude threshold ``T`` that defined the grid.
        config: the quantizer configuration used.
    """

    levels: np.ndarray
    delta: float
    threshold: float
    config: OutlierQuantConfig

    @property
    def normal_max(self) -> int:
        bits = self.config.normal_bits
        return signed_levels(bits) if self.config.signed else unsigned_levels(bits)

    @property
    def outlier_mask(self) -> np.ndarray:
        """True where the level does not fit the normal low-precision grid."""
        return np.abs(self.levels) > self.normal_max

    @property
    def outlier_count(self) -> int:
        return int(self.outlier_mask.sum())

    @property
    def outlier_ratio(self) -> float:
        """Achieved outlier fraction (of all elements)."""
        return self.outlier_count / self.levels.size if self.levels.size else 0.0

    def effective_outlier_ratio(self) -> float:
        """Outliers as a fraction of *nonzero* elements (activation metric)."""
        nonzero = int(np.count_nonzero(self.levels))
        return self.outlier_count / nonzero if nonzero else 0.0

    def dequantize(self) -> np.ndarray:
        return self.levels.astype(np.float64) * self.delta


def magnitude_threshold(x: np.ndarray, ratio: float, over_nonzero: bool = False) -> float:
    """Magnitude quantile placing ``ratio`` of the data above the threshold.

    With ``over_nonzero`` the quantile is taken over nonzero magnitudes only
    (the activation convention). Returns the maximum magnitude when
    ``ratio`` is 0, i.e. full-range linear quantization.
    """
    mags = np.abs(np.asarray(x, dtype=np.float64)).ravel()
    if over_nonzero:
        mags = mags[mags > 0]
    if mags.size == 0:
        return 0.0
    if ratio <= 0.0:
        return float(mags.max())
    return float(np.quantile(mags, 1.0 - ratio))


def _quantize(x: np.ndarray, threshold: float, config: OutlierQuantConfig) -> QuantizedTensor:
    normal_max = signed_levels(config.normal_bits) if config.signed else unsigned_levels(config.normal_bits)
    outlier_max = signed_levels(config.outlier_bits) if config.signed else unsigned_levels(config.outlier_bits)
    if threshold <= 0:
        # All-zero (or empty) data: any positive step represents it exactly.
        delta = 1.0
    else:
        delta = threshold / normal_max
    quantizer = LinearQuantizer(delta=delta, bits=config.outlier_bits, signed=config.signed)
    levels = np.clip(quantizer.quantize(x), -outlier_max if config.signed else 0, outlier_max)
    return QuantizedTensor(levels=levels, delta=delta, threshold=threshold, config=config)


def quantize_weights(
    weights: np.ndarray,
    ratio: float = 0.03,
    normal_bits: int = 4,
    outlier_bits: int = 8,
) -> QuantizedTensor:
    """OAQ a weight tensor (signed, threshold over all weights)."""
    config = OutlierQuantConfig(ratio=ratio, normal_bits=normal_bits, outlier_bits=outlier_bits, signed=True)
    threshold = magnitude_threshold(weights, ratio, over_nonzero=False)
    return _quantize(weights, threshold, config)


def quantize_activations(
    activations: np.ndarray,
    threshold: float,
    normal_bits: int = 4,
    outlier_bits: int = 16,
    ratio: float = 0.03,
) -> QuantizedTensor:
    """OAQ a (post-ReLU, non-negative) activation tensor.

    Unlike weights, the threshold is *given*: it was calibrated offline from
    sample inputs (Sec. II, :mod:`repro.quant.calibrate`) so the runtime
    only performs a compare. ``ratio`` is recorded for bookkeeping.
    """
    if np.any(np.asarray(activations) < 0):
        raise QuantRangeError("activation quantization expects non-negative (post-ReLU) data")
    config = OutlierQuantConfig(ratio=ratio, normal_bits=normal_bits, outlier_bits=outlier_bits, signed=False)
    return _quantize(activations, threshold, config)
