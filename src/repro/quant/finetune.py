"""Quantization-aware fine-tuning with a straight-through estimator.

The paper applies *retraining-free* quantization but notes twice
(footnotes 1 and 6) that fine-tuning would let the first convolutional
layer drop from 8-bit to 4-bit weights, removing the dense high-precision
pass that dominates OLAccel's ResNet-18 cycle count. This module
implements that optional feature: a training loop whose forward pass sees
OAQ-quantized weights (and, optionally, quantized activations) while
gradients update the full-precision master weights — the standard
straight-through estimator (STE).

Used by ``benchmarks/bench_ext_finetune.py`` to reproduce the footnote's
claim: fine-tuned 4-bit first-layer weights recover accuracy and cut the
first layer's dense-pass factor in half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.model import Model
from ..nn.train import SGD, TrainConfig
from .outlier import quantize_weights
from .qmodel import QuantConfig

__all__ = ["FinetuneConfig", "finetune_quantized", "quantized_weight_view"]


@dataclass(frozen=True)
class FinetuneConfig:
    """STE fine-tuning hyper-parameters (gentler than from-scratch training)."""

    epochs: int = 3
    batch_size: int = 64
    lr: float = 0.002
    momentum: float = 0.9
    grad_clip: float = 5.0
    seed: int = 0


def quantized_weight_view(model: Model, quant: QuantConfig) -> List[np.ndarray]:
    """OAQ round-tripped weights for every compute layer, first layer at
    ``quant.first_layer_weight_bits`` when that exceeds the base width."""
    views: List[np.ndarray] = []
    for index, layer in enumerate(model.compute_layers()):
        if index == 0 and quant.first_layer_weight_bits > quant.weight_bits:
            qt = quantize_weights(
                layer.weight.value,
                ratio=0.0,
                normal_bits=quant.first_layer_weight_bits,
                outlier_bits=quant.first_layer_weight_bits,
            )
        else:
            qt = quantize_weights(
                layer.weight.value,
                ratio=quant.ratio,
                normal_bits=quant.weight_bits,
                outlier_bits=quant.weight_outlier_bits,
            )
        views.append(qt.dequantize())
    return views


def finetune_quantized(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    quant: Optional[QuantConfig] = None,
    config: Optional[FinetuneConfig] = None,
) -> List[float]:
    """Fine-tune ``model`` in place so it tolerates ``quant``'s grids.

    Each forward/backward runs with weights snapped to their quantization
    grid; the optimizer step applies the resulting gradients to the
    full-precision master weights (STE). Returns the per-epoch loss trace.
    """
    quant = quant or QuantConfig()
    config = config or FinetuneConfig()
    rng = np.random.default_rng(config.seed)
    compute = model.compute_layers()
    optimizer = SGD(
        model.parameters(), config.lr, config.momentum, weight_decay=0.0, grad_clip=config.grad_clip
    )

    losses: List[float] = []
    n = x.shape[0]
    for _ in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            xb, yb = x[idx], y[idx]

            # Snap weights to the grid for this step's forward/backward.
            masters = [layer.weight.value for layer in compute]
            views = quantized_weight_view(model, quant)
            for layer, view in zip(compute, views):
                layer.weight.value = view
            try:
                optimizer.zero_grad()
                logits = model.forward(xb, train=True)
                loss = F.cross_entropy(logits, yb)
                model.backward(F.cross_entropy_backward(logits, yb))
            finally:
                for layer, master in zip(compute, masters):
                    layer.weight.value = master

            # STE: gradients computed at the quantized point update the
            # full-precision masters.
            optimizer.step()
            epoch_loss += loss * xb.shape[0]
        losses.append(epoch_loss / n)
    return losses
