"""ZeNA baseline model (Kim, Ahn, Yoo, IEEE D&T 2018; paper Sec. IV).

The paper's strongest baseline: a 168-PE zero-aware accelerator that skips
multiply-accumulates whenever the weight *or* the activation is zero, at
16-bit or 8-bit precision. The paper chose it because it "provides the best
speedup for AlexNet by skipping both zero weights and activations".

Cycle model: only MACs with both operands nonzero are issued; sparsity-
induced load imbalance across PEs (ZeNA's known weakness) is captured by a
skip efficiency below Eyeriss' mapping efficiency. Like Eyeriss, cycle
counts are identical at 16 and 8 bits (same PE count).

Energy: weights are stored sparse (value + 4-bit zero-run index per nonzero,
Deep-Compression style), activations dense plus a one-bit zero mask used by
the skip logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..arch.energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel
from ..arch.stats import LayerStats, RunStats
from ..arch.workload import LayerWorkload, NetworkWorkload
from ..obs import NULL_REGISTRY, Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.accumulator import AccumulatorModel

__all__ = ["ZenaConfig", "ZenaSimulator", "zena16", "zena8"]

_SPAD_BITS = 512 * 8
_PSUM_SPAD_FRACTION = 0.25
#: index bits per stored nonzero weight (zero-run-length encoding)
_WEIGHT_INDEX_BITS = 4


@dataclass(frozen=True)
class ZenaConfig:
    """Structural parameters (Table I)."""

    name: str = "zena16"
    n_pes: int = 168
    bits: int = 16
    acc_bits: int = 32
    #: PE utilization under zero-skipping (work imbalance between PEs)
    skip_efficiency: float = 0.65
    buffer_bytes: int = 393 * 1024


def zena16(buffer_bytes: int = 393 * 1024) -> ZenaConfig:
    return ZenaConfig(name="zena16", bits=16, buffer_bytes=buffer_bytes)


def zena8(buffer_bytes: int = 196 * 1024) -> ZenaConfig:
    return ZenaConfig(name="zena8", bits=8, buffer_bytes=buffer_bytes)


class ZenaSimulator:
    """Cycle + energy model of the ZeNA baseline.

    ``obs`` hooks mirror the OLAccel simulator's: per-layer cycle and
    skipped-MAC counters under ``<config name>/<layer name>/…`` plus a
    wall-clock timer per network; disabled by default.

    ``acc`` optionally swaps the config's 32-bit accumulator for an
    explicit :class:`~repro.faults.accumulator.AccumulatorModel`: its
    width drives the partial-sum energy terms, and layers whose
    reduction depth could overflow it are counted under
    ``acc/overflow_risk_layers``.
    """

    def __init__(
        self,
        config: ZenaConfig = None,
        energy: EnergyModel = DEFAULT_ENERGY,
        obs: Registry = None,
        acc: Optional["AccumulatorModel"] = None,
    ):
        self.config = config or zena16()
        self.energy = energy
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.acc = acc

    def _acc_bits(self) -> int:
        return self.acc.width_bits if self.acc is not None else self.config.acc_bits

    def _note_overflow_risk(self, layer: LayerWorkload) -> None:
        """Count layers whose worst-case reduction exceeds the accumulator."""
        if self.acc is None:
            return
        from ..faults.accumulator import required_accumulator_bits

        cfg = self.config
        reduction = max(1, round(layer.weight_count / layer.out_channels))
        required = required_accumulator_bits(
            reduction, (1 << cfg.bits) - 1, (1 << (cfg.bits - 1)) - 1
        )
        if required > self.acc.width_bits:
            self.obs.counter("acc/overflow_risk_layers").add(1)

    def simulate_layer(self, layer: LayerWorkload) -> LayerStats:
        cfg = self.config
        em = self.energy
        acc_bits = self._acc_bits()

        effective_macs = layer.macs * layer.weight_density * layer.act_density
        cycles = effective_macs / cfg.n_pes / cfg.skip_efficiency

        energy = EnergyBreakdown()
        nonzero_weights = layer.weight_count * layer.weight_density
        weight_bits = nonzero_weights * (cfg.bits + _WEIGHT_INDEX_BITS)
        in_bits = layer.input_count * (cfg.bits + 1)  # dense acts + zero mask
        out_bits = layer.output_count * (cfg.bits + 1)

        dram_bits = weight_bits
        spill = max(0.0, in_bits + out_bits - cfg.buffer_bytes * 8)
        dram_bits += 2.0 * spill
        if layer.is_first:
            dram_bits += in_bits
        energy.dram = em.dram_energy(dram_bits)

        reuse = max(1.0, layer.kernel / layer.stride)
        energy.buffer = em.sram_energy(cfg.buffer_bytes * 8, in_bits * reuse + out_bits + 2.0 * weight_bits)

        per_op_local = 2 * cfg.bits + _WEIGHT_INDEX_BITS + 2 * acc_bits * _PSUM_SPAD_FRACTION
        energy.local = em.sram_energy(_SPAD_BITS, effective_macs * per_op_local)

        energy.logic = effective_macs * em.mac_energy(cfg.bits, cfg.bits, acc_bits)
        skipped = layer.macs - effective_macs
        energy.logic += skipped * 0.1 * em.params.ctrl_pj_per_op  # skip bookkeeping

        self._note_overflow_risk(layer)
        with self.obs.scope(layer.name):
            self.obs.counter("cycles").add(cycles)
            self.obs.counter("run_cycles").add(cycles)
            self.obs.counter("macs").add(layer.macs)
            self.obs.counter("skipped_macs").add(skipped)
            self.obs.counter("energy_pj").add(energy.total)

        return LayerStats(
            layer_name=layer.name,
            cycles=cycles,
            energy=energy,
            macs=layer.macs,
            ops_issued=effective_macs,
            run_cycles=cycles,
        )

    def simulate_network(self, network: NetworkWorkload) -> RunStats:
        stats = RunStats(accelerator=self.config.name, network=network.name)
        with self.obs.timer(f"simulate/{network.name}"), self.obs.scope(self.config.name):
            for layer in network.layers:
                stats.add(self.simulate_layer(layer))
        return self.finalize_network(stats, network)

    def finalize_network(self, stats: RunStats, network: NetworkWorkload) -> RunStats:
        """Charge the final output's DRAM write (shared with the
        layer-parallel driver, which assembles RunStats itself)."""
        if stats.layers:
            last = network.layers[-1]
            stats.layers[-1].energy.dram += self.energy.dram_energy(
                last.output_count * self.config.bits
            )
        return stats
