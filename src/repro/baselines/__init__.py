"""Baseline accelerator models the paper compares against (Sec. IV)."""

from .eyeriss import EyerissConfig, EyerissSimulator, eyeriss16, eyeriss8
from .zena import ZenaConfig, ZenaSimulator, zena16, zena8

__all__ = [
    "EyerissConfig",
    "EyerissSimulator",
    "eyeriss16",
    "eyeriss8",
    "ZenaConfig",
    "ZenaSimulator",
    "zena16",
    "zena8",
]
