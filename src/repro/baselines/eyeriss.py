"""Eyeriss baseline model (Chen et al., ISCA 2016; paper Sec. IV).

The paper's dense baseline: a 165-PE row-stationary accelerator at 16-bit
or 8-bit precision. For zero input activations Eyeriss does **not** save
cycles — it clock-gates the MAC, saving only the datapath switching energy.
Hence its cycle count is sparsity-independent (identical for the 16- and
8-bit variants, as the paper notes), while its logic energy scales with the
nonzero ratio.

Energy accounting mirrors the component split of Figs. 11-13:

- **DRAM** — dense weights at full precision, network input/output, and
  activation overflow past the on-chip buffer (a real effect for VGG-scale
  activations at 16 bits);
- **Buffer** — the global buffer: activation reads with row reuse,
  activation writes, weights streamed through once;
- **Local** — PE scratchpads: activation + weight operand per MAC and a
  fraction of partial-sum read/writes (row-stationary keeps most psum
  movement inside the PE array);
- **Logic** — full-precision MACs for nonzero activations, clock-gated
  control energy for zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..arch.energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel
from ..arch.stats import LayerStats, RunStats
from ..arch.workload import LayerWorkload, NetworkWorkload
from ..obs import NULL_REGISTRY, Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.accumulator import AccumulatorModel

__all__ = ["EyerissConfig", "EyerissSimulator", "eyeriss16", "eyeriss8"]

#: PE scratchpad capacity used for local-access energy (0.5 KiB spads).
_SPAD_BITS = 512 * 8
#: Fraction of MAC ops whose partial sum makes a spad round trip
#: (row-stationary accumulates mostly in the PE register chain).
_PSUM_SPAD_FRACTION = 0.25


@dataclass(frozen=True)
class EyerissConfig:
    """Structural parameters (Table I)."""

    name: str = "eyeriss16"
    n_pes: int = 165
    bits: int = 16
    acc_bits: int = 32
    #: row-stationary mapping efficiency (PE-array utilization)
    mapping_efficiency: float = 0.9
    #: on-chip activation buffer in bytes (per-network, Table I)
    buffer_bytes: int = 393 * 1024


def eyeriss16(buffer_bytes: int = 393 * 1024) -> EyerissConfig:
    return EyerissConfig(name="eyeriss16", bits=16, buffer_bytes=buffer_bytes)


def eyeriss8(buffer_bytes: int = 196 * 1024) -> EyerissConfig:
    return EyerissConfig(name="eyeriss8", bits=8, buffer_bytes=buffer_bytes)


class EyerissSimulator:
    """Cycle + energy model of the Eyeriss baseline.

    ``obs`` hooks mirror the OLAccel simulator's: per-layer cycle and
    gated-op counters under ``<config name>/<layer name>/…`` plus a
    wall-clock timer per network; disabled by default.

    ``acc`` optionally swaps the config's 32-bit accumulator for an
    explicit :class:`~repro.faults.accumulator.AccumulatorModel`: its
    width drives the partial-sum energy terms, and layers whose
    reduction depth could overflow it are counted under
    ``acc/overflow_risk_layers``.
    """

    def __init__(
        self,
        config: EyerissConfig = None,
        energy: EnergyModel = DEFAULT_ENERGY,
        obs: Registry = None,
        acc: Optional["AccumulatorModel"] = None,
    ):
        self.config = config or eyeriss16()
        self.energy = energy
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.acc = acc

    def _acc_bits(self) -> int:
        return self.acc.width_bits if self.acc is not None else self.config.acc_bits

    def _note_overflow_risk(self, layer: LayerWorkload) -> None:
        """Count layers whose worst-case reduction exceeds the accumulator."""
        if self.acc is None:
            return
        from ..faults.accumulator import required_accumulator_bits

        cfg = self.config
        reduction = max(1, round(layer.weight_count / layer.out_channels))
        required = required_accumulator_bits(
            reduction, (1 << cfg.bits) - 1, (1 << (cfg.bits - 1)) - 1
        )
        if required > self.acc.width_bits:
            self.obs.counter("acc/overflow_risk_layers").add(1)

    def simulate_layer(self, layer: LayerWorkload) -> LayerStats:
        cfg = self.config
        em = self.energy
        acc_bits = self._acc_bits()

        # Cycles: dense — every MAC slot is issued, zeros are gated not skipped.
        cycles = layer.macs / cfg.n_pes / cfg.mapping_efficiency

        energy = EnergyBreakdown()
        weight_bits = layer.weight_count * cfg.bits
        in_bits = layer.input_count * cfg.bits
        out_bits = layer.output_count * cfg.bits

        dram_bits = weight_bits
        spill = max(0.0, in_bits + out_bits - cfg.buffer_bytes * 8)
        dram_bits += 2.0 * spill
        if layer.is_first:
            dram_bits += in_bits
        energy.dram = em.dram_energy(dram_bits)

        reuse = max(1.0, layer.kernel / layer.stride)
        energy.buffer = em.sram_energy(cfg.buffer_bytes * 8, in_bits * reuse + out_bits + 2.0 * weight_bits)

        per_op_local = 2 * cfg.bits + 2 * acc_bits * _PSUM_SPAD_FRACTION
        energy.local = em.sram_energy(_SPAD_BITS, layer.macs * per_op_local)

        nonzero_ops = layer.macs * layer.act_density
        gated_ops = layer.macs - nonzero_ops
        energy.logic = nonzero_ops * em.mac_energy(cfg.bits, cfg.bits, acc_bits)
        energy.logic += gated_ops * em.params.ctrl_pj_per_op

        self._note_overflow_risk(layer)
        with self.obs.scope(layer.name):
            self.obs.counter("cycles").add(cycles)
            self.obs.counter("run_cycles").add(cycles)
            self.obs.counter("macs").add(layer.macs)
            self.obs.counter("gated_ops").add(gated_ops)
            self.obs.counter("energy_pj").add(energy.total)

        return LayerStats(
            layer_name=layer.name,
            cycles=cycles,
            energy=energy,
            macs=layer.macs,
            ops_issued=layer.macs,
            run_cycles=cycles,
        )

    def simulate_network(self, network: NetworkWorkload) -> RunStats:
        stats = RunStats(accelerator=self.config.name, network=network.name)
        with self.obs.timer(f"simulate/{network.name}"), self.obs.scope(self.config.name):
            for layer in network.layers:
                stats.add(self.simulate_layer(layer))
        return self.finalize_network(stats, network)

    def finalize_network(self, stats: RunStats, network: NetworkWorkload) -> RunStats:
        """Charge the final output's DRAM write (shared with the
        layer-parallel driver, which assembles RunStats itself)."""
        if stats.layers:
            last = network.layers[-1]
            stats.layers[-1].energy.dram += self.energy.dram_energy(last.output_count * self.config.bits)
        return stats
