"""Black-box protocol battery for ``repro serve``.

Every test here drives the real server: a ``python -m repro serve``
subprocess on an ephemeral port, spoken to with ``urllib`` only. The
suite covers the happy path per verb, the 400/404/429 error surface,
cancellation releasing leases, cross-job dedup through the simcache,
and the headline recovery guarantee: SIGKILL the server mid-job, start
a fresh one on the same spool, and every accepted job completes with an
envelope byte-identical to a cold serial run and zero leases left.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.harness.resilience import canonical_envelope_bytes
from repro.harness.serialize import load_json

REPO = Path(__file__).resolve().parents[1]
JOB_SCHEMA = "repro.job/v1"

#: A job slow enough (~25 cells, each its own worker process) to be
#: observed RUNNING, cancelled mid-drain, or SIGKILLed mid-drain.
SLOW_RATES = [round(i * 1e-4, 6) for i in range(24)]
SLOW_FAULTS = {
    "schema": JOB_SCHEMA,
    "verb": "faults",
    "network": "alexnet",
    "params": {"rates": SLOW_RATES, "widths": [24]},
    "seed": 7,
}
TINY_FAULTS = {
    "schema": JOB_SCHEMA,
    "verb": "faults",
    "network": "alexnet",
    "params": {"rates": [0.0, 1e-4, 1e-3], "widths": [16, 24]},
    "seed": 7,
}
EXPLORE_SPACE = {
    "clusters": [4, 8],
    "groups": [6],
    "buffers_kib": [96],
    "ratios": [0.01],
    "acc_bits": [16],
}
TINY_EXPLORE = {
    "schema": JOB_SCHEMA,
    "verb": "explore",
    "network": "alexnet",
    "params": {"space": EXPLORE_SPACE},
    "seed": 7,
}
TERMINAL = {"DONE", "FAILED", "CANCELLED"}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_NO_CACHE", None)
    return env


def repro_cli(*args):
    """Run one `python -m repro ...` to completion; returns the exit code."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(),
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
        timeout=600,
    ).returncode


class Server:
    """One `repro serve` subprocess in its own session (killpg-safe)."""

    def __init__(self, spool: Path, *extra_args: str):
        self.spool = Path(spool)
        self.log = open(self.spool.parent / f"{self.spool.name}.log", "ab")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--spool", str(self.spool), "--port", "0", *extra_args,
            ],
            env=_env(),
            cwd=REPO,
            stdout=self.log,
            stderr=subprocess.STDOUT,
            start_new_session=True,
        )
        self.port = None

    def wait_ready(self, timeout=60.0):
        """Poll the spool's discovery file until *this* process owns it."""
        discovery = self.spool / "serve.json"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(f"server exited early with {self.proc.returncode}")
            if discovery.exists():
                try:
                    doc = json.loads(discovery.read_text())
                except (ValueError, OSError):
                    doc = {}
                if doc.get("pid") == self.proc.pid:
                    self.port = doc["port"]
                    return self
            time.sleep(0.05)
        raise TimeoutError("server never published serve.json")

    def request(self, method, path, doc=None, raw=False):
        data = json.dumps(doc).encode() if doc is not None else None
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                body = resp.read()
                return resp.status, body if raw else json.loads(body), dict(resp.headers)
        except urllib.error.HTTPError as err:
            body = err.read()
            return err.code, body if raw else json.loads(body), dict(err.headers)

    def submit(self, doc):
        status, body, _ = self.request("POST", "/jobs", doc)
        assert status == 202, body
        return body["job_id"]

    def wait_job(self, job_id, timeout=300.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, doc, _ = self.request("GET", f"/jobs/{job_id}")
            if doc["state"] in TERMINAL:
                return doc
            time.sleep(0.1)
        raise TimeoutError(f"job {job_id} never settled")

    def wait_running(self, job_id, min_leased=0, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, doc, _ = self.request("GET", f"/jobs/{job_id}")
            if doc["state"] in TERMINAL:
                raise AssertionError(f"job settled early: {doc['state']} ({doc['detail']})")
            if doc["state"] == "RUNNING" and doc["progress"]["cells_leased"] >= min_leased:
                return doc
            time.sleep(0.05)
        raise TimeoutError(f"job {job_id} never reached RUNNING")

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung server
                self.proc.kill()
                self.proc.wait()
        self.log.close()

    def kill9(self):
        """SIGKILL the whole server session: server, drains, cell workers."""
        os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
        self.proc.wait()
        self.log.close()


@pytest.fixture
def spool(tmp_path):
    spool = tmp_path / "spool"
    spool.mkdir()
    return spool


@pytest.fixture(scope="module")
def shared_server(tmp_path_factory):
    spool = tmp_path_factory.mktemp("serve") / "spool"
    spool.mkdir()
    server = Server(spool, "--workers", "2").wait_ready()
    yield server
    server.stop()


def run_dir_of(server, job_id):
    _, doc, _ = server.request("GET", f"/jobs/{job_id}")
    return Path(doc["run_dir"])


def canonical_result(server, job_id):
    _, body, _ = server.request("GET", f"/jobs/{job_id}/result", raw=True)
    return canonical_envelope_bytes(json.loads(body))


class TestHappyPaths:
    def test_healthz(self, shared_server):
        status, doc, _ = shared_server.request("GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["pid"] == shared_server.proc.pid

    def test_run_job_matches_cli_reference(self, shared_server, tmp_path):
        job_id = shared_server.submit(
            {"schema": JOB_SCHEMA, "verb": "run", "experiment": "fig11", "seed": 7}
        )
        final = shared_server.wait_job(job_id)
        assert final["state"] == "DONE", final
        assert final["progress"]["cells_ok"] == final["progress"]["cells_total"]
        assert final["progress"]["cells_leased"] == 0

        reference = tmp_path / "reference"
        assert repro_cli("run", "fig11", "--run-dir", str(reference), "--seed", "7") == 0
        assert canonical_result(shared_server, job_id) == canonical_envelope_bytes(
            load_json(reference / "envelope.json")
        )

    def test_compare_job(self, shared_server):
        job_id = shared_server.submit(
            {"schema": JOB_SCHEMA, "verb": "compare", "network": "alexnet",
             "params": {"ratio": 0.05}, "seed": 3}
        )
        final = shared_server.wait_job(job_id)
        assert final["state"] == "DONE", final
        _, body, _ = shared_server.request("GET", f"/jobs/{job_id}/result", raw=True)
        envelope = json.loads(body)
        assert envelope["schema"].startswith("repro.experiment/")
        assert "__integrity__" in envelope

    def test_faults_job(self, shared_server):
        job_id = shared_server.submit(TINY_FAULTS)
        final = shared_server.wait_job(job_id)
        assert final["state"] == "DONE", final
        assert final["progress"]["cells_ok"] == 5  # 3 rates + 2 widths
        assert final["obs"]["resilience/cells_succeeded"] == 5

    def test_explore_job_matches_cli_reference(self, shared_server, tmp_path):
        job_id = shared_server.submit(TINY_EXPLORE)
        final = shared_server.wait_job(job_id)
        assert final["state"] == "DONE", final

        reference = tmp_path / "explore-ref"
        assert repro_cli(
            "explore", "alexnet", "--seed", "7", "--run-dir", str(reference),
            "--clusters", "4", "8", "--groups", "6", "--buffers-kib", "96",
            "--ratios", "0.01", "--acc-bits", "16",
        ) == 0
        assert canonical_result(shared_server, job_id) == canonical_envelope_bytes(
            load_json(reference / "envelope.json")
        )

    def test_external_worker_can_join_a_server_job(self, shared_server):
        """The spool's run dirs speak the ordinary coord protocol."""
        job_id = shared_server.submit(TINY_FAULTS)
        # join immediately: whichever side claims first, both converge
        assert repro_cli("work", str(run_dir_of(shared_server, job_id))) == 0
        final = shared_server.wait_job(job_id)
        assert final["state"] == "DONE"
        assert final["progress"]["cells_leased"] == 0


class TestErrorSurface:
    def test_malformed_json_is_400(self, shared_server):
        req = urllib.request.Request(
            f"http://127.0.0.1:{shared_server.port}/jobs",
            data=b"{not json", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"] == "JobError"

    def test_invalid_request_is_400_with_taxonomy_name(self, shared_server):
        status, doc, _ = shared_server.request(
            "POST", "/jobs", {"schema": JOB_SCHEMA, "verb": "faults",
                              "network": "alexnet", "params": {"policy": "panic"}}
        )
        assert status == 400
        assert doc["error"] == "JobError"
        assert doc["field"] == "policy"

    def test_unknown_job_is_404(self, shared_server):
        for path in ("/jobs/job-000000000000", "/jobs/job-000000000000/result"):
            status, doc, _ = shared_server.request("GET", path)
            assert status == 404
            assert doc["error"] == "NotFound"

    def test_unknown_route_is_404_and_wrong_method_405(self, shared_server):
        assert shared_server.request("GET", "/nope")[0] == 404
        status, _, headers = shared_server.request("PUT", "/jobs")
        assert status == 405
        assert "Allow" in headers


class TestQueueOverflow:
    def test_429_with_retry_after(self, spool):
        server = Server(spool, "--workers", "1", "--queue-limit", "1").wait_ready()
        try:
            first = server.submit(SLOW_FAULTS)
            server.wait_running(first)  # drains; the queue is empty again
            server.submit(TINY_FAULTS)  # fills the single queue slot
            status, doc, headers = server.request("POST", "/jobs", TINY_FAULTS)
            assert status == 429
            assert doc["error"] == "QueueFull"
            assert headers["Retry-After"]
            # overflow never counts as submitted; the books still balance
            stats = server.request("GET", "/stats")[1]
            assert stats["jobs"]["submitted"] == 2
            assert stats["jobs"]["reconciles"]
            assert stats["counters"]["serve/jobs_rejected"] == 1
        finally:
            server.stop()


class TestCancel:
    def test_cancel_mid_run_releases_leases(self, spool):
        server = Server(spool, "--workers", "1").wait_ready()
        try:
            job_id = server.submit(SLOW_FAULTS)
            server.wait_running(job_id, min_leased=1)
            status, doc, _ = server.request("DELETE", f"/jobs/{job_id}")
            assert status == 202
            assert doc["cancelling"]
            final = server.wait_job(job_id, timeout=60)
            assert final["state"] == "CANCELLED"
            assert final["progress"]["cells_leased"] == 0
            leases = run_dir_of(server, job_id) / "leases"
            assert not leases.exists() or not list(leases.iterdir())
            # cancelling a settled job is an illegal transition
            status, doc, _ = server.request("DELETE", f"/jobs/{job_id}")
            assert status == 409
            assert doc["error"] == "JobError"
            stats = server.request("GET", "/stats")[1]["jobs"]
            assert stats["cancelled"] == 1
            assert stats["reconciles"]
        finally:
            server.stop()


class TestSimcacheDedup:
    def test_duplicate_submissions_pay_each_cell_once(self, spool, tmp_path):
        cache_dir = tmp_path / "cache"
        server = Server(
            spool, "--workers", "1", "--cache-dir", str(cache_dir)
        ).wait_ready()
        try:
            # both jobs are queued concurrently; the single worker
            # serializes them, so the second must replay from the cache
            first = server.submit(TINY_FAULTS)
            second = server.submit(TINY_FAULTS)
            final_first = server.wait_job(first)
            final_second = server.wait_job(second)
            assert final_first["state"] == final_second["state"] == "DONE"

            assert final_first["obs"]["simcache/misses"] > 0
            assert final_second["obs"].get("simcache/misses", 0) == 0
            assert final_second["obs"]["simcache/hits"] >= 5  # every cell
            assert final_second["obs"]["simcache/lookups"] == (
                final_second["obs"]["simcache/hits"]
                + final_second["obs"].get("simcache/misses", 0)
                + final_second["obs"].get("simcache/bypassed", 0)
            )
            # identical bytes, and identical to an uncached serial run
            assert canonical_result(server, first) == canonical_result(server, second)
            reference = tmp_path / "reference"
            assert repro_cli(
                "faults", "alexnet", "--rates", "0", "0.0001", "0.001",
                "--widths", "16", "24", "--seed", "7", "--run-dir", str(reference),
            ) == 0
            assert canonical_result(server, first) == canonical_envelope_bytes(
                load_json(reference / "envelope.json")
            )
        finally:
            server.stop()


class TestKillRecovery:
    def test_sigkill_mid_job_then_restart_completes(self, spool, tmp_path):
        server = Server(spool, "--workers", "1").wait_ready()
        job_id = server.submit(SLOW_FAULTS)
        queued_id = server.submit(TINY_FAULTS)  # never starts before the kill
        # let it record at least one cell so the restart genuinely resumes
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            doc = server.request("GET", f"/jobs/{job_id}")[1]
            if doc["progress"]["cells_ok"] >= 1 and doc["state"] == "RUNNING":
                break
            time.sleep(0.05)
        else:  # pragma: no cover - hang guard
            pytest.fail("job never made progress")
        server.kill9()

        # the dead drain's leases are still on disk — the restart must
        # steal them (dead-owner fast path) and finish the job
        restarted = Server(spool, "--workers", "1").wait_ready()
        try:
            final = restarted.wait_job(job_id)
            assert final["state"] == "DONE", final
            assert restarted.wait_job(queued_id)["state"] == "DONE"
            for finished in (job_id, queued_id):
                progress = restarted.request("GET", f"/jobs/{finished}")[1]["progress"]
                assert progress["cells_leased"] == 0
                leases = run_dir_of(restarted, finished) / "leases"
                assert not leases.exists() or not list(leases.iterdir())

            reference = tmp_path / "reference"
            rates = [str(r) for r in SLOW_RATES]
            assert repro_cli(
                "faults", "alexnet", "--rates", *rates, "--widths", "24",
                "--seed", "7", "--run-dir", str(reference),
            ) == 0
            assert canonical_result(restarted, job_id) == canonical_envelope_bytes(
                load_json(reference / "envelope.json")
            )
            stats = restarted.request("GET", "/stats")[1]["jobs"]
            assert stats["submitted"] == 2
            assert stats["completed"] == 2
            assert stats["reconciles"]
        finally:
            restarted.stop()
