"""Tests for the model -> layer-program compiler (repro.olaccel.mapper)."""

import numpy as np
import pytest

from repro.olaccel import olaccel_conv2d, reference_conv2d_int
from repro.olaccel.mapper import compile_model
from repro.quant import QuantConfig, QuantizedModel, calibrate_activation_thresholds


@pytest.fixture(scope="module")
def program(tiny_trained_model, small_dataset):
    cal = calibrate_activation_thresholds(tiny_trained_model, small_dataset.train_x[:60], ratio=0.03)
    return compile_model(tiny_trained_model, cal, QuantConfig(ratio=0.03)), small_dataset


class TestCompile:
    def test_one_program_per_compute_layer(self, program, tiny_trained_model):
        prog, _ = program
        assert len(prog.layers) == len(tiny_trained_model.compute_layers())

    def test_first_layer_flagged(self, program):
        prog, _ = program
        assert prog.layers[0].is_first
        assert not prog.layers[1].is_first

    def test_packed_tables_unpack_to_levels(self, program):
        prog, _ = program
        for layer_prog in prog.layers:
            levels = layer_prog.weight_levels.reshape(layer_prog.weight_levels.shape[0], -1)
            np.testing.assert_array_equal(layer_prog.packed.unpack(), levels)

    def test_words_serialized_when_spills_fit(self, program):
        prog, _ = program
        for layer_prog in prog.layers:
            if len(layer_prog.packed.spill_chunks) <= 254:
                assert len(layer_prog.base_words) == len(layer_prog.packed.base_chunks)
                assert layer_prog.weight_buffer_bits > 0

    def test_conv_programs_have_tiling(self, program):
        prog, _ = program
        convs = [p for p in prog.layers if p.kind == "conv"]
        fcs = [p for p in prog.layers if p.kind == "fc"]
        assert convs and fcs
        assert all(p.tiling is not None for p in convs)
        assert all(p.tiling is None for p in fcs)

    def test_summary_mentions_all_layers(self, program):
        prog, _ = program
        text = prog.summary()
        for layer_prog in prog.layers:
            assert layer_prog.name in text


class TestProgramExecution:
    def test_program_matches_fake_quant(self, program, tiny_trained_model):
        """ModelProgram.run == the fake-quant executor's logits."""
        prog, data = program
        cal = prog.calibration
        reference = QuantizedModel(tiny_trained_model, cal, prog.quant)
        x = data.test_x[:12]
        np.testing.assert_allclose(prog.run(x), reference.forward(x), atol=1e-10)

    def test_program_conv_layer_bit_exact_on_datapath(self, program):
        """A compiled conv layer's packed table drives the integer datapath
        to reference-exact partial sums."""
        prog, _ = program
        conv = next(p for p in prog.layers[1:] if p.kind == "conv")
        rng = np.random.default_rng(3)
        c_in = conv.weight_levels.shape[1]
        acts = rng.integers(0, 20, size=(1, c_in, 6, 6))
        result = olaccel_conv2d(acts, conv.weight_levels, stride=conv.stride, pad=conv.pad,
                                packed=conv.packed)
        expected = reference_conv2d_int(acts, conv.weight_levels, stride=conv.stride, pad=conv.pad)
        np.testing.assert_array_equal(result.psum, expected)

    def test_program_accuracy_close_to_float(self, program, tiny_trained_model):
        prog, data = program
        logits = prog.run(data.test_x)
        acc = (logits.argmax(axis=1) == data.test_y).mean()
        fp = tiny_trained_model.accuracy(data.test_x, data.test_y)
        assert acc >= fp - 0.25
