"""Tests for calibration and quantized-model execution (Sec. II runtime)."""

import numpy as np
import pytest

from repro.quant import (
    CalibrationResult,
    QuantConfig,
    QuantizedModel,
    calibrate_activation_thresholds,
    effective_outlier_ratios,
)


@pytest.fixture(scope="module")
def calibrated(tiny_trained_model, small_dataset):
    cal = calibrate_activation_thresholds(tiny_trained_model, small_dataset.train_x[:60], ratio=0.03)
    return tiny_trained_model, small_dataset, cal


class TestCalibration:
    def test_one_threshold_per_compute_layer(self, calibrated):
        model, _, cal = calibrated
        assert len(cal.layers) == len(model.compute_layers())

    def test_first_layer_signed(self, calibrated):
        _, _, cal = calibrated
        assert cal.layers[0].signed  # raw images have negative values
        # post-ReLU layers are unsigned
        assert not any(layer.signed for layer in cal.layers[1:])

    def test_thresholds_positive(self, calibrated):
        _, _, cal = calibrated
        assert all(layer.threshold > 0 for layer in cal.layers)

    def test_effective_ratio_near_target(self, calibrated):
        model, data, cal = calibrated
        ratios = effective_outlier_ratios(model, cal, data.test_x[:40])
        non_first = [r for name, r in ratios.items() if name != cal.layers[0].layer_name]
        mean_ratio = float(np.mean(non_first))
        # Fig. 16: runtime ratio clusters near the calibrated target.
        assert 0.01 < mean_ratio < 0.08

    def test_by_name_lookup(self, calibrated):
        _, _, cal = calibrated
        names = cal.by_name()
        assert cal.layers[0].layer_name in names


class TestQuantizedModel:
    def test_forward_shape_and_restoration(self, calibrated, rng):
        model, data, cal = calibrated
        qm = QuantizedModel(model, cal, QuantConfig(ratio=0.03))
        x = data.test_x[:4]
        before = model.forward(x)
        out = qm.forward(x)
        after = model.forward(x)
        assert out.shape == before.shape
        np.testing.assert_allclose(before, after)  # wrapper fully undone

    def test_quantized_close_to_float(self, calibrated):
        model, data, cal = calibrated
        qm = QuantizedModel(model, cal, QuantConfig(ratio=0.03))
        fp = model.accuracy(data.test_x, data.test_y)
        q = qm.accuracy(data.test_x, data.test_y)
        assert q >= fp - 0.25  # 4-bit OAQ keeps most of the accuracy

    def test_oaq_at_least_as_good_as_linear(self, calibrated):
        """The headline accuracy claim at the model level."""
        model, data, cal = calibrated
        from repro.quant import calibrate_activation_thresholds

        cal0 = calibrate_activation_thresholds(model, data.train_x[:60], ratio=0.0)
        linear = QuantizedModel(model, cal0, QuantConfig(ratio=0.0))
        oaq = QuantizedModel(model, cal, QuantConfig(ratio=0.03))
        top5_linear = linear.topk_accuracy(data.test_x, data.test_y, k=3)
        top5_oaq = oaq.topk_accuracy(data.test_x, data.test_y, k=3)
        assert top5_oaq >= top5_linear - 0.02

    def test_mismatched_calibration_raises(self, calibrated):
        model, _, cal = calibrated
        broken = CalibrationResult(ratio=0.03, layers=cal.layers[:-1])
        with pytest.raises(ValueError, match="calibration covers"):
            QuantizedModel(model, broken)

    def test_first_layer_8bit_weights(self, calibrated):
        model, _, cal = calibrated
        qm = QuantizedModel(model, cal, QuantConfig(ratio=0.03, first_layer_weight_bits=8))
        first = qm.weight_q[0]
        assert first.config.normal_bits == 8
        assert first.outlier_count == 0  # dense high-precision grid

    def test_weight_outlier_ratio_near_target(self, calibrated):
        model, _, cal = calibrated
        qm = QuantizedModel(model, cal, QuantConfig(ratio=0.03))
        for qt in qm.weight_q[1:]:
            assert qt.outlier_ratio <= 0.06

    def test_measure_layer_stats(self, calibrated):
        model, data, cal = calibrated
        qm = QuantizedModel(model, cal, QuantConfig(ratio=0.03))
        stats = qm.measure_layer_stats(data.test_x[:20])
        assert len(stats) == len(model.compute_layers())
        first = stats[0]
        assert first.is_first
        assert first.act_density == pytest.approx(1.0, abs=0.05)  # raw input dense
        for stat in stats[1:]:
            assert 0.0 <= stat.act_density <= 1.0
            assert 0.0 <= stat.act_outlier_ratio <= 0.2
            assert stat.act_threshold > 0

    def test_predict_matches_forward_argmax(self, calibrated):
        model, data, cal = calibrated
        qm = QuantizedModel(model, cal)
        x = data.test_x[:10]
        np.testing.assert_array_equal(qm.predict(x, batch_size=3), qm.forward(x).argmax(axis=1))
