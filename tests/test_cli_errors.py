"""CLI error-path coverage: unknown ids, bad flag values, refused
overwrites, and the resilience verbs' usage errors. Everything here
must exit 2 (usage/diagnosed error) without a traceback."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.harness.workloads import MEMORY_TABLE


class TestUnknownIds:
    def test_run_unknown_experiment_lists_available(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig11" in err

    @pytest.mark.parametrize("verb", ["compare", "profile", "faults"])
    def test_unknown_network_lists_available(self, verb, capsys):
        assert main([verb, "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown network" in err
        for network in MEMORY_TABLE:
            assert network in err

    def test_export_unknown_network(self, capsys, tmp_path):
        assert main(["export", "nonesuch", "--out", str(tmp_path)]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestBadFlagValues:
    """--jobs/--retries are validated at parse time (argparse exits 2)."""

    @pytest.mark.parametrize("bad", ["0", "-1", "1.5", "two"])
    def test_bad_jobs_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["run", "fig11", "--jobs", bad])
        assert exit_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0", "-3", "x"])
    def test_bad_retries_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["faults", "alexnet", "--retries", bad])
        assert exit_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_good_jobs_parse(self):
        args = build_parser().parse_args(["run", "fig11", "--jobs", "4"])
        assert args.jobs == 4


class TestRunDirUsage:
    def test_run_dir_requires_sweepable_experiment(self, capsys, tmp_path):
        assert main(["run", "fig1", "--run-dir", str(tmp_path / "r")]) == 2
        assert "sweep-shaped" in capsys.readouterr().err

    def test_run_dir_requires_single_experiment(self, capsys, tmp_path):
        assert main(["run", "fig11", "fig12", "--run-dir", str(tmp_path / "r")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_resume_missing_manifest(self, capsys, tmp_path):
        assert main(["resume", str(tmp_path / "empty")]) == 2
        assert "manifest" in capsys.readouterr().err


class TestExportOverwrite:
    def test_export_refuses_then_forces(self, capsys, tmp_path):
        out = str(tmp_path / "results")
        assert main(["export", "alexnet", "--out", out]) == 0
        capsys.readouterr()
        # second run without --force must refuse and name the files
        assert main(["export", "alexnet", "--out", out]) == 2
        err = capsys.readouterr().err
        assert "refusing to overwrite" in err
        assert "alexnet_layers.csv" in err
        assert "--force" in err
        # --force replaces them
        assert main(["export", "alexnet", "--out", out, "--force"]) == 0
