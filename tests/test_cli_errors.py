"""CLI error-path coverage: unknown ids, bad flag values, refused
overwrites, and the resilience verbs' usage errors. Everything here
must exit 2 (usage/diagnosed error) without a traceback."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.harness.workloads import MEMORY_TABLE


class TestUnknownIds:
    def test_run_unknown_experiment_lists_available(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig11" in err

    @pytest.mark.parametrize("verb", ["compare", "profile", "faults"])
    def test_unknown_network_lists_available(self, verb, capsys):
        assert main([verb, "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown network" in err
        for network in MEMORY_TABLE:
            assert network in err

    def test_export_unknown_network(self, capsys, tmp_path):
        assert main(["export", "nonesuch", "--out", str(tmp_path)]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestBadFlagValues:
    """--jobs/--retries are validated at parse time (argparse exits 2)."""

    @pytest.mark.parametrize("bad", ["0", "-1", "1.5", "two"])
    def test_bad_jobs_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["run", "fig11", "--jobs", bad])
        assert exit_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0", "-3", "x"])
    def test_bad_retries_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["faults", "alexnet", "--retries", bad])
        assert exit_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_good_jobs_parse(self):
        args = build_parser().parse_args(["run", "fig11", "--jobs", "4"])
        assert args.jobs == 4


class TestRunDirUsage:
    def test_run_dir_requires_sweepable_experiment(self, capsys, tmp_path):
        assert main(["run", "fig1", "--run-dir", str(tmp_path / "r")]) == 2
        assert "sweep-shaped" in capsys.readouterr().err

    def test_run_dir_requires_single_experiment(self, capsys, tmp_path):
        assert main(["run", "fig11", "fig12", "--run-dir", str(tmp_path / "r")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_resume_missing_manifest(self, capsys, tmp_path):
        assert main(["resume", str(tmp_path / "empty")]) == 2
        assert "manifest" in capsys.readouterr().err


class TestNotARunDir:
    """status/work/resume on malformed run dirs: structured exit 2,
    never a raw traceback (AttributeError/KeyError)."""

    @pytest.mark.parametrize("verb", ["status", "work", "resume"])
    def test_missing_manifest(self, verb, capsys, tmp_path):
        assert main([verb, str(tmp_path / "empty")]) == 2
        assert "not a run directory" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["status", "work"])
    def test_non_object_manifest(self, verb, capsys, tmp_path):
        """A manifest holding valid JSON that is not an object used to
        surface a raw AttributeError traceback."""
        run = tmp_path / "run"
        run.mkdir()
        (run / "manifest.json").write_text("[1, 2, 3]\n")
        assert main([verb, str(run), "--no-verify"]) == 2
        err = capsys.readouterr().err
        assert "not a JSON object" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("verb", ["work", "resume"])
    def test_explore_marker_without_request(self, verb, capsys, tmp_path):
        """An explore marker missing its request body used to surface a
        raw KeyError traceback through explore_resume."""
        from repro.harness.explore import EXPLORE_MARKER, MARKER_SCHEMA
        from repro.harness.serialize import save_json

        run = tmp_path / "run"
        run.mkdir()
        save_json(
            {"schema": MARKER_SCHEMA, "schema_version": 1, "config_hash": "0" * 12},
            run / EXPLORE_MARKER,
        )
        assert main([verb, str(run)]) == 2
        err = capsys.readouterr().err
        assert "no request object" in err
        assert "Traceback" not in err

    def test_non_object_explore_marker(self, capsys, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        (run / "explore.json").write_text('"just a string"\n')
        assert main(["resume", str(run), "--no-verify"]) == 2
        assert "not a JSON object" in capsys.readouterr().err


class TestServeArgs:
    """serve argument validation: rejected at parse time or exit 2."""

    def test_spool_is_required(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve"])
        assert exit_info.value.code == 2
        assert "--spool" in capsys.readouterr().err

    @pytest.mark.parametrize("port", ["-1", "65536"])
    def test_out_of_range_port(self, port, capsys, tmp_path):
        assert main(["serve", "--spool", str(tmp_path), "--port", port]) == 2
        assert "--port" in capsys.readouterr().err

    def test_non_positive_queue_limit_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--spool", str(tmp_path), "--queue-limit", "0"])
        assert exit_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_negative_workers_rejected(self, capsys, tmp_path):
        # 0 is valid (pure coordinator, docs/REMOTE.md); below that is not
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--spool", str(tmp_path), "--workers", "-1"])
        assert exit_info.value.code == 2
        assert "non-negative integer" in capsys.readouterr().err

    def test_zero_workers_parses_as_pure_coordinator(self):
        args = build_parser().parse_args(["serve", "--spool", "s", "--workers", "0"])
        assert args.workers == 0

    @pytest.mark.parametrize("flag", ["--timeout", "--cell-timeout", "--heartbeat"])
    def test_non_positive_seconds_rejected(self, flag, capsys, tmp_path):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--spool", str(tmp_path), flag, "-2"])
        assert exit_info.value.code == 2
        assert "positive number" in capsys.readouterr().err

    def test_inconsistent_lease_ttl_rejected(self, capsys, tmp_path):
        assert main(
            ["serve", "--spool", str(tmp_path), "--lease-ttl", "1", "--heartbeat", "2"]
        ) == 2
        assert "--lease-ttl" in capsys.readouterr().err

    def test_good_serve_args_parse(self):
        args = build_parser().parse_args(
            ["serve", "--spool", "s", "--port", "0", "--workers", "3", "--timeout", "60"]
        )
        assert args.port == 0
        assert args.workers == 3
        assert args.job_timeout == 60.0


class TestExportOverwrite:
    def test_export_refuses_then_forces(self, capsys, tmp_path):
        out = str(tmp_path / "results")
        assert main(["export", "alexnet", "--out", out]) == 0
        capsys.readouterr()
        # second run without --force must refuse and name the files
        assert main(["export", "alexnet", "--out", out]) == 2
        err = capsys.readouterr().err
        assert "refusing to overwrite" in err
        assert "alexnet_layers.csv" in err
        assert "--force" in err
        # --force replaces them
        assert main(["export", "alexnet", "--out", out, "--force"]) == 0
