"""``repro.job/v1`` protocol properties and the in-process server core.

Two layers:

- seeded property tests over the request codec (valid documents
  round-trip exactly; random single-field corruptions raise taxonomy
  errors, never KeyError/AssertionError) and the job state machine;
- the synchronous request core (`JobServer.handle_request`) and the
  async lifecycle driven in-process, so the serve module's routing,
  spool, rescan and drain paths are exercised under coverage without
  subprocesses (tests/test_serve.py is the black-box battery).
"""

from __future__ import annotations

import asyncio
import json
import random
import select
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import JobError, ReproError
from repro.harness.serialize import save_json
from repro.harness.serve import (
    JOB_SCHEMA,
    JobRequest,
    JobServer,
    JobStore,
    STATES,
    ServeConfig,
    TERMINAL_STATES,
    TRANSITIONS,
    SWEEPABLE_EXPERIMENTS,
    build_plan,
    check_transition,
    job_progress,
)
from repro.harness.workloads import MEMORY_TABLE

NETWORKS = sorted(MEMORY_TABLE)


# ---------------------------------------------------------------------------
# seeded generators
# ---------------------------------------------------------------------------


def make_valid_doc(rng: random.Random) -> dict:
    verb = rng.choice(["run", "compare", "faults", "explore"])
    doc = {"schema": JOB_SCHEMA, "verb": verb}
    if verb == "run":
        doc["experiment"] = rng.choice(sorted(SWEEPABLE_EXPERIMENTS))
    else:
        doc["network"] = rng.choice(NETWORKS)
    params = {}
    if verb == "compare" and rng.random() < 0.7:
        params["ratio"] = rng.choice([0.01, 0.03, 0.25])
    if verb == "faults":
        if rng.random() < 0.7:
            params["rates"] = [rng.choice([0.0, 1e-4, 0.01]) for _ in range(rng.randint(1, 3))]
        if rng.random() < 0.7:
            params["widths"] = [rng.choice([16, 24, 32])]
        if rng.random() < 0.3:
            params["policy"] = "degrade"
        if rng.random() < 0.3:
            params["model"] = "bitflip"
    if verb == "explore":
        if rng.random() < 0.5:
            params["budget"] = rng.choice([1.0, 2.5])
        if rng.random() < 0.5:
            params["strategy"] = "grid"
        if rng.random() < 0.5:
            params["samples"] = rng.randint(1, 64)
        if rng.random() < 0.5:
            params["accuracy"] = rng.choice(["none", "proxy", "quant"])
        if rng.random() < 0.5:
            params["space"] = {"clusters": [4, 8]}
    if params or rng.random() < 0.5:
        doc["params"] = params
    if rng.random() < 0.5:
        doc["seed"] = rng.randint(-100, 100)
    if rng.random() < 0.5:
        doc["priority"] = rng.randint(-5, 5)
    if rng.random() < 0.3:
        doc["timeout_s"] = rng.choice([0.5, 30, 3600])
    return doc


#: One corruption per entry: (name, mutate(doc, rng) -> doc).
CORRUPTIONS = [
    ("not_an_object", lambda d, r: ["not", "an", "object"]),
    ("missing_schema", lambda d, r: {k: v for k, v in d.items() if k != "schema"}),
    ("wrong_schema", lambda d, r: {**d, "schema": "repro.job/v0"}),
    ("unknown_top_key", lambda d, r: {**d, "jobz": 1}),
    ("missing_verb", lambda d, r: {k: v for k, v in d.items() if k != "verb"}),
    ("unknown_verb", lambda d, r: {**d, "verb": "bench"}),
    ("non_string_verb", lambda d, r: {**d, "verb": 7}),
    ("bool_seed", lambda d, r: {**d, "seed": True}),
    ("string_seed", lambda d, r: {**d, "seed": "7"}),
    ("float_priority", lambda d, r: {**d, "priority": 1.5}),
    ("negative_timeout", lambda d, r: {**d, "timeout_s": -1}),
    ("params_not_object", lambda d, r: {**d, "params": [1]}),
    (
        "network_for_run",
        lambda d, r: {**{k: v for k, v in d.items() if k != "experiment"},
                      "verb": "run", "network": "alexnet"},
    ),
    (
        "experiment_for_compare",
        lambda d, r: {**{k: v for k, v in d.items() if k != "network"},
                      "verb": "compare", "experiment": "fig11"},
    ),
    ("unknown_network", lambda d, r: {**d, "verb": "compare", "network": "nonesuch",
                                      **({} if "experiment" not in d else {"experiment": None})}),
    ("unsweepable_experiment", lambda d, r: {**{k: v for k, v in d.items() if k != "network"},
                                             "verb": "run", "experiment": "fig1"}),
    ("foreign_param", lambda d, r: {**d, "verb": "compare", "network": "alexnet",
                                    "experiment": None, "params": {"rates": [0.1]}}),
    ("bad_ratio", lambda d, r: {**d, "verb": "compare", "network": "alexnet",
                                "experiment": None, "params": {"ratio": 1.5}}),
    ("empty_rates", lambda d, r: {**d, "verb": "faults", "network": "alexnet",
                                  "experiment": None, "params": {"rates": []}}),
    ("negative_rate", lambda d, r: {**d, "verb": "faults", "network": "alexnet",
                                    "experiment": None, "params": {"rates": [-0.1]}}),
    ("zero_width", lambda d, r: {**d, "verb": "faults", "network": "alexnet",
                                 "experiment": None, "params": {"widths": [0]}}),
    ("bad_policy", lambda d, r: {**d, "verb": "faults", "network": "alexnet",
                                 "experiment": None, "params": {"policy": "panic"}}),
    ("bad_strategy", lambda d, r: {**d, "verb": "explore", "network": "alexnet",
                                   "experiment": None, "params": {"strategy": "dowse"}}),
    ("bad_accuracy", lambda d, r: {**d, "verb": "explore", "network": "alexnet",
                                   "experiment": None, "params": {"accuracy": "vibes"}}),
    ("zero_samples", lambda d, r: {**d, "verb": "explore", "network": "alexnet",
                                   "experiment": None, "params": {"samples": 0}}),
    ("space_not_object", lambda d, r: {**d, "verb": "explore", "network": "alexnet",
                                       "experiment": None, "params": {"space": [4]}}),
]


def _strip_nones(doc):
    """The corruption helpers mark removed fields with None; drop them."""
    if not isinstance(doc, dict):
        return doc
    return {k: v for k, v in doc.items() if v is not None or k in ("seed", "timeout_s")}


class TestRequestRoundTrip:
    def test_valid_documents_round_trip(self):
        rng = random.Random(20260808)
        for _ in range(300):
            doc = make_valid_doc(rng)
            request = JobRequest.from_dict(doc)
            encoded = request.to_dict()
            again = JobRequest.from_dict(encoded)
            assert again == request
            assert again.to_dict() == encoded  # fixed point
            # the canonical form survives a JSON wire trip
            assert JobRequest.from_dict(json.loads(json.dumps(encoded))) == request

    def test_defaults_are_canonical(self):
        request = JobRequest.from_dict({"schema": JOB_SCHEMA, "verb": "run",
                                        "experiment": "fig11"})
        assert request.params == {}
        assert request.seed is None
        assert request.priority == 0
        assert request.timeout_s is None

    def test_invalid_documents_raise_taxonomy_errors_only(self):
        rng = random.Random(20260809)
        for _ in range(300):
            name, mutate = rng.choice(CORRUPTIONS)
            doc = _strip_nones(mutate(make_valid_doc(rng), rng))
            try:
                JobRequest.from_dict(doc)
            except JobError as exc:
                assert isinstance(exc, ReproError)
                assert isinstance(exc, ValueError)
                assert str(exc)
            except Exception as exc:  # noqa: BLE001 - the property under test
                pytest.fail(f"corruption {name!r} raised {type(exc).__name__}: {exc}")
            else:
                pytest.fail(f"corruption {name!r} was accepted: {doc!r}")

    def test_error_names_the_field(self):
        with pytest.raises(JobError) as err:
            JobRequest.from_dict({"schema": JOB_SCHEMA, "verb": "faults",
                                  "network": "alexnet", "params": {"widths": [0]}})
        assert err.value.field == "widths"

    def test_build_plan_matches_cli_plans(self):
        """serve's sweep table stays in lock-step with the CLI's."""
        from repro.cli import EXPERIMENTS, SWEEPABLE

        assert {k: v[0] for k, v in SWEEPABLE_EXPERIMENTS.items()} == SWEEPABLE
        for experiment, (network, description) in SWEEPABLE_EXPERIMENTS.items():
            assert description == EXPERIMENTS[experiment][1]
            shape, plan = build_plan(JobRequest.from_dict(
                {"schema": JOB_SCHEMA, "verb": "run", "experiment": experiment, "seed": 7}
            ))
            assert shape == "sweep"
            assert plan.experiment == experiment
            assert plan.params["network"] == network


class TestStateMachine:
    def test_every_edge_matches_the_table(self):
        for old in STATES:
            for new in STATES:
                if new in TRANSITIONS[old]:
                    check_transition(old, new)  # must not raise
                else:
                    with pytest.raises(JobError):
                        check_transition(old, new)

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert not TRANSITIONS[state]

    def test_unknown_states_rejected(self):
        with pytest.raises(JobError):
            check_transition("QUEUED", "EXPLODED")
        with pytest.raises(JobError):
            check_transition("EXPLODED", "QUEUED")

    def test_random_walks_never_escape_the_table(self):
        rng = random.Random(99)
        for _ in range(200):
            state = "QUEUED"
            while TRANSITIONS[state]:
                candidate = rng.choice(STATES)
                try:
                    check_transition(state, candidate)
                except JobError:
                    assert candidate not in TRANSITIONS[state]
                else:
                    state = candidate
            assert state in TERMINAL_STATES


FAULTS_DOC = {
    "schema": JOB_SCHEMA,
    "verb": "faults",
    "network": "alexnet",
    "params": {"rates": [0.0], "widths": [24]},
    "seed": 7,
}


class TestJobStore:
    def test_create_materializes_a_joinable_run_dir(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        assert (store.run_dir(job_id) / "manifest.json").exists()
        assert store.read_state(job_id)["state"] == "QUEUED"
        assert store.read_request(job_id) == JobRequest.from_dict(FAULTS_DOC)
        progress = job_progress(store.run_dir(job_id))
        assert progress["cells_total"] == 2
        assert progress["cells_ok"] == 0
        assert not progress["envelope"]

    def test_state_writes_respect_the_machine(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        store.set_state(job_id, "RUNNING")
        store.set_state(job_id, "DONE")
        with pytest.raises(JobError):
            store.set_state(job_id, "RUNNING")
        # the restart path may force a rewrite without an edge
        store.set_state(job_id, "QUEUED", "requeued after restart", force=True)
        assert store.read_state(job_id)["state"] == "QUEUED"

    def test_external_worker_completes_the_run_dir(self, tmp_path):
        """The materialized run dir is an ordinary `repro work` target."""
        from repro.harness.resilience import work_run

        store = JobStore(tmp_path)
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        _, envelope, _, _ = work_run(store.run_dir(job_id))
        assert envelope["resilience"]["cells_failed"] == 0
        progress = job_progress(store.run_dir(job_id))
        assert progress["cells_ok"] == progress["cells_total"] == 2
        assert progress["cells_leased"] == 0
        assert progress["envelope"]


# ---------------------------------------------------------------------------
# the sync request core, no sockets
# ---------------------------------------------------------------------------


def _post(server, doc):
    return server.handle_request("POST", "/jobs", json.dumps(doc).encode())


class TestRequestCore:
    @pytest.fixture
    def server(self, tmp_path):
        return JobServer(ServeConfig(spool=tmp_path / "spool", queue_limit=2))

    def test_healthz_and_stats(self, server):
        status, doc, _ = server.handle_request("GET", "/healthz", b"")
        assert status == 200 and doc["status"] == "ok"
        status, doc, _ = server.handle_request("GET", "/stats", b"")
        assert status == 200
        assert doc["jobs"]["reconciles"]

    def test_submit_status_cancel_and_conflicts(self, server):
        status, doc, _ = _post(server, FAULTS_DOC)
        assert status == 202
        job_id = doc["job_id"]

        status, doc, _ = server.handle_request("GET", f"/jobs/{job_id}", b"")
        assert status == 200
        assert doc["state"] == "QUEUED"
        assert doc["progress"]["cells_total"] == 2

        status, doc, _ = server.handle_request("GET", f"/jobs/{job_id}/result", b"")
        assert status == 409 and doc["error"] == "JobError"

        status, doc, _ = server.handle_request("DELETE", f"/jobs/{job_id}", b"")
        assert status == 200 and doc["state"] == "CANCELLED"

        status, doc, _ = server.handle_request("DELETE", f"/jobs/{job_id}", b"")
        assert status == 409 and doc["error"] == "JobError"

        stats = server.stats_doc()["jobs"]
        assert stats["submitted"] == stats["cancelled"] == 1
        assert stats["reconciles"]

    def test_malformed_json_is_400_with_taxonomy_name(self, server):
        status, doc, _ = server.handle_request("POST", "/jobs", b"{nope")
        assert status == 400 and doc["error"] == "JobError"

    def test_invalid_request_is_400_naming_the_field(self, server):
        status, doc, _ = _post(server, {**FAULTS_DOC, "network": "nonesuch"})
        assert status == 400
        assert doc["error"] == "JobError"
        assert doc["field"] == "network"

    def test_unknown_job_and_route_are_404(self, server):
        for path in ("/jobs/nonesuch", "/jobs/nonesuch/result", "/nope", "/jobs/a/b/c"):
            method = "GET"
            status, doc, _ = server.handle_request(method, path, b"")
            assert status == 404, path
            assert doc["error"] == "NotFound"

    def test_wrong_method_is_405_with_allow(self, server):
        status, doc, headers = server.handle_request("PUT", "/jobs", b"")
        assert status == 405 and "Allow" in headers
        status, _, _ = server.handle_request("POST", "/healthz", b"")
        assert status == 405

    def test_queue_overflow_is_429_with_retry_after(self, server):
        assert _post(server, FAULTS_DOC)[0] == 202
        assert _post(server, FAULTS_DOC)[0] == 202
        status, doc, headers = _post(server, FAULTS_DOC)
        assert status == 429
        assert headers["Retry-After"]
        assert doc["error"] == "QueueFull"
        # overflow rejections never count as submitted
        assert server.stats_doc()["jobs"]["submitted"] == 2
        assert server.stats_doc()["jobs"]["reconciles"]

    def test_retry_after_adapts_to_queue_depth_and_drain_rate(self, server):
        _post(server, FAULTS_DOC)
        _post(server, FAULTS_DOC)
        status, doc, headers = _post(server, FAULTS_DOC)
        assert status == 429
        # no drain history yet: the depth alone sets the hint
        assert headers["Retry-After"] == "1"
        assert doc["retry_after_s"] == 1
        # recent drains averaged 40s: two queued jobs over two lanes
        server._drain_durations.extend([30.0, 50.0])
        _, doc, headers = _post(server, FAULTS_DOC)
        assert headers["Retry-After"] == "40"
        assert doc["retry_after_s"] == 40
        # the hint is clamped to something a client can sanely honour
        server._drain_durations.append(1e6)
        assert int(_post(server, FAULTS_DOC)[2]["Retry-After"]) == 600

    def test_priority_orders_the_queue(self, server):
        low = _post(server, {**FAULTS_DOC, "priority": -1})[1]["job_id"]
        high = _post(server, {**FAULTS_DOC, "priority": 5})[1]["job_id"]
        assert server._pop_next().job_id == high
        assert server._pop_next().job_id == low

    def test_jobs_listing(self, server):
        job_id = _post(server, FAULTS_DOC)[1]["job_id"]
        status, doc, _ = server.handle_request("GET", "/jobs", b"")
        assert status == 200
        assert [j["job_id"] for j in doc["jobs"]] == [job_id]


class TestHttpFraming:
    def _roundtrip(self, server, raw: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await server._read_and_route(reader)

        return asyncio.run(go())

    @pytest.fixture
    def server(self, tmp_path):
        return JobServer(ServeConfig(spool=tmp_path / "spool", max_body_bytes=64))

    def test_get_without_body(self, server):
        status, doc, _ = self._roundtrip(server, b"GET /healthz HTTP/1.1\r\n\r\n")
        assert status == 200 and doc["status"] == "ok"

    def test_post_with_content_length(self, server):
        body = json.dumps({"schema": JOB_SCHEMA}).encode()
        raw = (
            b"POST /jobs HTTP/1.1\r\nContent-Length: " + str(len(body)).encode()
            + b"\r\n\r\n" + body
        )
        status, doc, _ = self._roundtrip(server, raw)
        assert status == 400 and doc["error"] == "JobError"  # verb missing

    def test_oversized_body_is_413(self, server):
        raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"
        status, doc, _ = self._roundtrip(server, raw)
        assert status == 413

    def test_malformed_request_line_is_400(self, server):
        status, doc, _ = self._roundtrip(server, b"garbage\r\n\r\n")
        assert status == 400

    def test_bad_content_length_is_400(self, server):
        raw = b"POST /jobs HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
        status, doc, _ = self._roundtrip(server, raw)
        assert status == 400

    def test_body_shorter_than_content_length_is_400(self, server):
        raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 40\r\n\r\n{\"schema\""
        status, doc, _ = self._roundtrip(server, raw)
        assert status == 400
        assert "truncated" in doc["message"]
        assert server.obs.snapshot()["serve/http_truncated"] == 1

    def test_unbounded_header_count_is_400(self, server):
        raw = (
            b"GET /healthz HTTP/1.1\r\n"
            + b"".join(b"X-H%d: v\r\n" % i for i in range(300))
            + b"\r\n"
        )
        status, doc, _ = self._roundtrip(server, raw)
        assert status == 400
        assert "headers" in doc["message"]


def _recv_http_response(sock, timeout=10.0):
    """Read one Connection: close HTTP response to EOF."""
    sock.settimeout(timeout)
    data = b""
    while True:
        chunk = sock.recv(4096)
        if not chunk:
            return data
        data += chunk


class TestFramingHardening:
    """Raw-socket regressions: slow-loris and truncated uploads get
    structured answers instead of pinning (or crashing) the server."""

    @pytest.fixture
    def live(self, tmp_path):
        config = ServeConfig(spool=tmp_path / "spool", workers=0, read_timeout_s=0.5)
        with _LiveServer(config) as live:
            yield live

    def test_stalled_request_line_is_answered_408(self, live):
        with socket.create_connection(("127.0.0.1", live.server.port)) as sock:
            sock.sendall(b"GET /heal")  # ...and never finish the line
            data = _recv_http_response(sock)
        assert data.startswith(b"HTTP/1.1 408 Request Timeout")
        assert b"RequestTimeout" in data

    def test_dribbled_headers_hit_the_shared_deadline(self, live):
        """A slow-loris that keeps each individual read alive still runs
        out of the whole-request budget: per-read timers would reset."""
        with socket.create_connection(("127.0.0.1", live.server.port)) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n")
            data = b""
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                readable, _, _ = select.select([sock], [], [], 0.05)
                if readable:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                else:
                    try:
                        sock.sendall(b"X-Drip: y\r\n")  # never the blank line
                    except OSError:
                        pass
        assert data.startswith(b"HTTP/1.1 408 Request Timeout")

    def test_truncated_body_is_answered_400(self, live):
        with socket.create_connection(("127.0.0.1", live.server.port)) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n" + b'{"schema"'
            )
            sock.shutdown(socket.SHUT_WR)  # the other 41 bytes never come
            data = _recv_http_response(sock)
        assert data.startswith(b"HTTP/1.1 400 Bad Request")
        assert b"truncated" in data

    def test_well_formed_request_still_flows(self, live):
        """The deadline rejects stallers, not normal clients."""
        status, doc = live.request("GET", "/healthz")
        assert status == 200 and doc["status"] == "ok"


# ---------------------------------------------------------------------------
# the async lifecycle, in-process (one real drain)
# ---------------------------------------------------------------------------


class _LiveServer:
    """A JobServer on its own event loop in a thread, plus a tiny client."""

    def __init__(self, config: ServeConfig):
        self.server = JobServer(config)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 30
        while self.server.port is None:
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                raise TimeoutError("server never bound")
            time.sleep(0.02)
        return self

    def __exit__(self, *exc):
        self.server.request_stop()
        self.thread.join(timeout=30)

    def request(self, method, path, doc=None):
        data = json.dumps(doc).encode() if doc is not None else None
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.server.port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def wait_state(self, job_id, timeout=120):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, doc = self.request("GET", f"/jobs/{job_id}")
            if doc["state"] in TERMINAL_STATES:
                return doc
            time.sleep(0.05)
        raise TimeoutError(f"job {job_id} never settled")  # pragma: no cover


class TestLifecycleInProcess:
    def test_drain_to_done_and_result_integrity(self, tmp_path):
        from repro.harness.serialize import load_json

        config = ServeConfig(spool=tmp_path / "spool", workers=1)
        with _LiveServer(config) as live:
            status, doc = live.request("POST", "/jobs", FAULTS_DOC)
            assert status == 202
            job_id = doc["job_id"]
            final = live.wait_state(job_id)
            assert final["state"] == "DONE"
            assert final["progress"]["cells_ok"] == 2
            assert final["progress"]["cells_leased"] == 0
            assert final["obs"]["resilience/cells_succeeded"] == 2
            # the result is the envelope with its digest intact: the
            # served bytes re-verify like the artifact on disk
            status, envelope = live.request("GET", f"/jobs/{job_id}/result")
            assert status == 200
            assert "__integrity__" in envelope
            served = tmp_path / "served.json"
            served.write_text(json.dumps(envelope))
            assert load_json(served, verify=True) == load_json(
                tmp_path / "spool" / "jobs" / job_id / "run" / "envelope.json",
                verify=True,
            )
            stats = live.request("GET", "/stats")[1]["jobs"]
            assert stats["reconciles"]
            assert stats["completed"] == 1
        # graceful shutdown removes the discovery file
        assert not (tmp_path / "spool" / "serve.json").exists()

    def test_rescan_requeues_and_counts_terminals(self, tmp_path):
        spool = tmp_path / "spool"
        store = JobStore(spool)
        unfinished = store.create(JobRequest.from_dict(FAULTS_DOC))
        finished = store.create(JobRequest.from_dict(FAULTS_DOC))
        store.set_state(finished, "RUNNING")
        store.set_state(finished, "DONE")
        with _LiveServer(ServeConfig(spool=spool, workers=1)) as live:
            final = live.wait_state(unfinished)
            assert final["state"] == "DONE"
            assert final["detail"] != "accepted"  # went through the requeue path
            stats = live.request("GET", "/stats")[1]
            assert stats["jobs"]["submitted"] == 2
            assert stats["jobs"]["completed"] == 2
            assert stats["jobs"]["reconciles"]
            assert stats["counters"]["serve/jobs_requeued"] == 1


# ---------------------------------------------------------------------------
# plan building, spool tolerance, and the drain entry run in-process
# ---------------------------------------------------------------------------


EXPLORE_DOC = {
    "schema": JOB_SCHEMA,
    "verb": "explore",
    "network": "alexnet",
    "params": {
        "space": {
            "clusters": [4, 8],
            "groups": [6],
            "buffers_kib": [96],
            "ratios": [0.01],
            "acc_bits": [16],
        },
        "accuracy": "none",
    },
    "seed": 7,
}


class TestBuildPlanShapes:
    def test_compare_defaults_and_explicit_ratio(self):
        shape, plan = build_plan(
            JobRequest.from_dict(
                {"schema": JOB_SCHEMA, "verb": "compare", "network": "alexnet",
                 "params": {"ratio": 0.05}, "seed": 3}
            )
        )
        assert shape == "sweep"
        assert plan.seed == 3
        assert all(cell.params["ratio"] == 0.05 for cell in plan.cells)

    def test_explore_knobs_reach_the_request(self):
        shape, request = build_plan(
            JobRequest.from_dict(
                {"schema": JOB_SCHEMA, "verb": "explore", "network": "alexnet",
                 "params": {"strategy": "random", "samples": 4, "budget": 60.0,
                            "space": {"clusters": [4, 8]}},
                 "seed": 11}
            )
        )
        assert shape == "explore"
        assert request.strategy == "random"
        assert request.samples == 4
        assert request.budget_mm2 == 60.0
        assert request.seed == 11
        assert request.space.clusters == (4, 8)

    def test_explore_without_space_uses_the_default(self):
        shape, request = build_plan(
            JobRequest.from_dict(
                {"schema": JOB_SCHEMA, "verb": "explore", "network": "alexnet"}
            )
        )
        assert shape == "explore"
        assert request.space.clusters  # the full default design space


class TestStoreTolerance:
    """Corrupt spool entries degrade to None/JobError, never tracebacks."""

    def test_read_request_missing_and_corrupt(self, tmp_path):
        store = JobStore(tmp_path / "spool")
        assert store.read_request("job-nope") is None
        assert store.list_ids() == []
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        assert store.list_ids() == [job_id]
        save_json([1, 2], store.job_dir(job_id) / "job.json")
        with pytest.raises(JobError):
            store.read_request(job_id)

    def test_read_state_malformed(self, tmp_path):
        store = JobStore(tmp_path / "spool")
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        save_json({"schema": "something/else"}, store.job_dir(job_id) / "state.json")
        with pytest.raises(JobError):
            store.read_state(job_id)

    def test_obs_and_error_docs_tolerate_garbage(self, tmp_path):
        store = JobStore(tmp_path / "spool")
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        assert store.read_obs(job_id) is None
        assert store.read_error(job_id) is None
        (store.job_dir(job_id) / "obs.json").write_text("{truncated")
        (store.job_dir(job_id) / "error.json").write_text('"a string"')
        assert store.read_obs(job_id) is None
        assert store.read_error(job_id) is None

    def test_progress_tolerates_corrupt_manifest_and_records(self, tmp_path):
        store = JobStore(tmp_path / "spool")
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        run = store.run_dir(job_id)
        (run / "cells").mkdir(exist_ok=True)
        (run / "cells" / "bad.json").write_text("{nope")
        (run / "manifest.json").write_text("[]")
        progress = job_progress(run)
        assert progress["cells_total"] is None  # manifest unreadable
        assert progress["cells_ok"] == 0


class _restored_signals:
    """The drain entry installs its own SIGTERM/SIGINT handlers and a
    process-global registry; running it in-process must not leak either
    into the rest of the suite."""

    def __enter__(self):
        import signal as _signal

        from repro.obs import get_registry

        self._term = _signal.getsignal(_signal.SIGTERM)
        self._int = _signal.getsignal(_signal.SIGINT)
        self._registry = get_registry()
        return self

    def __exit__(self, *exc):
        import signal as _signal

        from repro.obs import set_registry

        _signal.signal(_signal.SIGTERM, self._term)
        _signal.signal(_signal.SIGINT, self._int)
        set_registry(self._registry)
        return False


class TestDrainEntry:
    """`_drain_job_entry` run in this process (it is an ordinary
    function; the server merely hosts it in a child)."""

    def test_drains_a_sweep_job_to_done(self, tmp_path):
        from repro.harness.serve import _drain_job_entry

        store = JobStore(tmp_path / "spool")
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        with _restored_signals(), pytest.raises(SystemExit) as exit_info:
            _drain_job_entry(str(store.job_dir(job_id)), 1, 3, None, None, None)
        assert exit_info.value.code == 0
        progress = job_progress(store.run_dir(job_id))
        assert progress["cells_ok"] == progress["cells_total"]
        assert progress["envelope"]
        obs_doc = store.read_obs(job_id)
        assert obs_doc["counters"]["resilience/cells_succeeded"] == progress["cells_ok"]

    def test_drains_an_explore_job_to_done(self, tmp_path):
        from repro.harness.serve import _drain_job_entry

        store = JobStore(tmp_path / "spool")
        job_id = store.create(JobRequest.from_dict(EXPLORE_DOC))
        with _restored_signals(), pytest.raises(SystemExit) as exit_info:
            _drain_job_entry(str(store.job_dir(job_id)), 1, 3, None, None, None)
        assert exit_info.value.code == 0
        progress = job_progress(store.run_dir(job_id))
        assert progress["cells_ok"] >= 2  # both rung-0 candidates simulated
        assert progress["cells_leased"] == 0
        assert progress["envelope"]

    def test_structural_error_exits_2_with_error_doc(self, tmp_path):
        from repro.harness.serve import _drain_job_entry

        store = JobStore(tmp_path / "spool")
        job_id = store.create(JobRequest.from_dict(FAULTS_DOC))
        (store.run_dir(job_id) / "manifest.json").unlink()
        with _restored_signals(), pytest.raises(SystemExit) as exit_info:
            _drain_job_entry(str(store.job_dir(job_id)), 1, 3, None, None, None)
        assert exit_info.value.code == 2
        error = store.read_error(job_id)
        assert error["error"]
        assert error["message"]
