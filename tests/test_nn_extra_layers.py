"""Tests for grouped convolution, Dropout and LocalResponseNorm."""

import numpy as np
import pytest

from repro.nn import Conv2d, Dropout, LocalResponseNorm
from repro.nn import functional as F


class TestGroupedConv:
    def test_weight_shape(self, rng):
        layer = Conv2d(8, 12, kernel=3, groups=2, rng=rng)
        assert layer.weight.value.shape == (12, 4, 3, 3)

    def test_invalid_groups(self, rng):
        with pytest.raises(ValueError, match="groups"):
            Conv2d(8, 12, kernel=3, groups=5, rng=rng)
        with pytest.raises(ValueError, match="groups"):
            Conv2d(8, 12, kernel=3, groups=0, rng=rng)

    def test_matches_blockwise_dense_conv(self, rng):
        """Grouped conv == dense conv with a block-diagonal weight tensor."""
        layer = Conv2d(4, 6, kernel=3, pad=1, groups=2, rng=rng)
        x = rng.normal(size=(2, 4, 5, 5))
        y = layer.forward(x)

        dense_w = np.zeros((6, 4, 3, 3))
        dense_w[:3, :2] = layer.weight.value[:3]
        dense_w[3:, 2:] = layer.weight.value[3:]
        expected, _ = F.conv2d(x, dense_w, layer.bias.value, 1, 1)
        np.testing.assert_allclose(y, expected, atol=1e-12)

    def test_groups_isolate_channels(self, rng):
        """Group 0's output never depends on group 1's input channels."""
        layer = Conv2d(4, 4, kernel=1, groups=2, bias=False, rng=rng)
        x = rng.normal(size=(1, 4, 3, 3))
        base = layer.forward(x)
        perturbed = x.copy()
        perturbed[:, 2:] += 100.0  # only group 1's inputs
        out = layer.forward(perturbed)
        np.testing.assert_allclose(out[:, :2], base[:, :2])
        assert not np.allclose(out[:, 2:], base[:, 2:])

    def test_backward_gradients(self, rng):
        layer = Conv2d(4, 4, kernel=3, pad=1, groups=2, rng=rng)
        x = rng.normal(size=(2, 4, 4, 4))
        y = layer.forward(x, train=True)
        dy = rng.normal(size=y.shape)
        for p in layer.parameters():
            p.zero_grad()
        dx = layer.backward(dy)
        assert dx.shape == x.shape

        eps = 1e-6
        for idx in [(0, 0, 0, 0), (3, 1, 2, 2)]:
            orig = layer.weight.value[idx]
            layer.weight.value[idx] = orig + eps
            yp = layer.forward(x)
            layer.weight.value[idx] = orig - eps
            ym = layer.forward(x)
            layer.weight.value[idx] = orig
            num = ((yp - ym) * dy).sum() / (2 * eps)
            assert abs(num - layer.weight.grad[idx]) < 1e-4

    def test_trains_in_a_model(self, rng, small_dataset):
        from repro.nn import Flatten, Linear, MaxPool2d, Model, ReLU, TrainConfig, train_model

        model = Model([
            Conv2d(3, 12, kernel=3, pad=1, name="c1", rng=rng),
            ReLU(),
            MaxPool2d(4),
            Conv2d(12, 12, kernel=3, pad=1, groups=3, name="c2", rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(12 * 4 * 4, small_dataset.num_classes, rng=rng),
        ])
        result = train_model(model, small_dataset.train_x[:120], small_dataset.train_y[:120],
                             TrainConfig(epochs=2, lr=0.01))
        assert result.losses[-1] < result.losses[0]


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5)
        x = rng.normal(size=(4, 10))
        np.testing.assert_allclose(layer.forward(x, train=False), x)

    def test_expected_value_preserved(self, rng):
        layer = Dropout(0.3, seed=1)
        x = np.ones((200, 200))
        y = layer.forward(x, train=True)
        assert y.mean() == pytest.approx(1.0, abs=0.02)  # inverted scaling

    def test_mask_reused_in_backward(self):
        layer = Dropout(0.5, seed=2)
        x = np.ones((8, 8))
        y = layer.forward(x, train=True)
        dx = layer.backward(np.ones_like(x))
        np.testing.assert_allclose((y == 0), (dx == 0))

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_p_zero_is_identity_in_training(self, rng):
        layer = Dropout(0.0)
        x = rng.normal(size=(3, 3))
        np.testing.assert_allclose(layer.forward(x, train=True), x)


class TestLocalResponseNorm:
    def test_shrinks_high_energy_channels(self, rng):
        layer = LocalResponseNorm(size=5, alpha=1.0, beta=0.75, k=1.0)
        x = np.ones((1, 8, 2, 2)) * 3.0
        y = layer.forward(x)
        assert (np.abs(y) < np.abs(x)).all()

    def test_identity_when_alpha_zero(self, rng):
        layer = LocalResponseNorm(size=5, alpha=0.0, beta=0.75, k=1.0)
        x = rng.normal(size=(2, 6, 3, 3))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_input_gradient_numerically(self, rng):
        layer = LocalResponseNorm(size=3, alpha=0.1, beta=0.75, k=2.0)
        x = rng.normal(size=(1, 5, 2, 2))
        y = layer.forward(x, train=True)
        dy = rng.normal(size=y.shape)
        dx = layer.backward(dy)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 2, 1, 1), (0, 4, 0, 1)]:
            xp = x.copy()
            xp[idx] += eps
            xm = x.copy()
            xm[idx] -= eps
            num = ((layer.forward(xp) - layer.forward(xm)) * dy).sum() / (2 * eps)
            assert abs(num - dx[idx]) < 1e-5

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=0)
