"""Unit tests for trainable layers and composite blocks (repro.nn.layers)."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    DenseBlock,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)


def numeric_grad_check(layer, x, param, indices, rng, eps=1e-6, tol=1e-4, eval_train=False):
    """Central-difference check of a parameter gradient through a layer.

    ``eval_train`` re-evaluates perturbed forwards in training mode, needed
    for layers (BatchNorm) whose train/eval forward paths differ.
    """
    y = layer.forward(x, train=True)
    dy = rng.normal(size=y.shape)
    for p in layer.parameters():
        p.zero_grad()
    layer.backward(dy)
    for idx in indices:
        orig = param.value[idx]
        param.value[idx] = orig + eps
        yp = layer.forward(x, train=eval_train)
        param.value[idx] = orig - eps
        ym = layer.forward(x, train=eval_train)
        param.value[idx] = orig
        num = ((yp - ym) * dy).sum() / (2 * eps)
        assert abs(num - param.grad[idx]) < tol, f"grad mismatch at {idx}"


class TestConv2dLayer:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, kernel=3, stride=2, pad=1, rng=rng)
        y = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert y.shape == (2, 8, 4, 4)

    def test_weight_gradients(self, rng):
        layer = Conv2d(2, 3, kernel=3, pad=1, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        numeric_grad_check(layer, x, layer.weight, [(0, 0, 0, 0), (2, 1, 2, 1)], rng)

    def test_backward_without_forward_raises(self, rng):
        layer = Conv2d(2, 3, kernel=3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 3, 2, 2)))

    def test_gradient_accumulates(self, rng):
        layer = Conv2d(2, 2, kernel=1, rng=rng)
        x = rng.normal(size=(1, 2, 3, 3))
        y = layer.forward(x, train=True)
        layer.backward(np.ones_like(y))
        g1 = layer.weight.grad.copy()
        layer.forward(x, train=True)
        layer.backward(np.ones_like(y))
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)

    def test_no_bias(self, rng):
        layer = Conv2d(2, 2, kernel=1, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1


class TestLinearLayer:
    def test_gradients(self, rng):
        layer = Linear(6, 4, rng=rng)
        x = rng.normal(size=(3, 6))
        numeric_grad_check(layer, x, layer.weight, [(0, 0), (3, 5)], rng)
        numeric_grad_check(layer, x, layer.bias, [(0,), (3,)], rng)


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        layer = BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        y = layer.forward(x, train=True)
        assert abs(y.mean()) < 1e-8
        assert abs(y.std() - 1.0) < 1e-2

    def test_running_stats_used_in_eval(self, rng):
        layer = BatchNorm2d(2, momentum=0.0)  # running stats = last batch
        x = rng.normal(loc=1.0, size=(16, 2, 4, 4))
        layer.forward(x, train=True)
        y = layer.forward(x, train=False)
        assert abs(y.mean()) < 0.05

    def test_gamma_beta_gradients(self, rng):
        layer = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 4, 4))
        numeric_grad_check(layer, x, layer.gamma, [(0,), (2,)], rng, tol=1e-3, eval_train=True)
        numeric_grad_check(layer, x, layer.beta, [(1,)], rng, tol=1e-3, eval_train=True)

    def test_input_gradient_numerically(self, rng):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 3, 3))
        y = layer.forward(x, train=True)
        dy = rng.normal(size=y.shape)
        dx = layer.backward(dy)
        eps = 1e-5
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2)]:
            xp = x.copy()
            xp[idx] += eps
            xm = x.copy()
            xm[idx] -= eps
            num = ((layer.forward(xp, train=True) - layer.forward(xm, train=True)) * dy).sum() / (2 * eps)
            assert abs(num - dx[idx]) < 1e-3


class TestComposites:
    def test_residual_identity_path(self, rng):
        body = [Conv2d(4, 4, kernel=3, pad=1, rng=rng)]
        block = ResidualBlock(body)
        x = rng.normal(size=(2, 4, 6, 6))
        y = block.forward(x, train=True)
        assert y.shape == x.shape
        assert (y >= 0).all()  # final ReLU

    def test_residual_projection_shapes(self, rng):
        body = [Conv2d(4, 8, kernel=3, stride=2, pad=1, rng=rng)]
        shortcut = [Conv2d(4, 8, kernel=1, stride=2, rng=rng)]
        block = ResidualBlock(body, shortcut)
        y = block.forward(rng.normal(size=(2, 4, 6, 6)), train=True)
        assert y.shape == (2, 8, 3, 3)
        dy = rng.normal(size=y.shape)
        dx = block.backward(dy)
        assert dx.shape == (2, 4, 6, 6)

    def test_residual_gradient_flow_through_both_paths(self, rng):
        """Zero body weights: output = relu(x), gradient flows via skip."""
        conv = Conv2d(2, 2, kernel=1, bias=False, rng=rng)
        conv.weight.value[...] = 0.0
        block = ResidualBlock([conv])
        x = np.abs(rng.normal(size=(1, 2, 3, 3)))
        y = block.forward(x, train=True)
        np.testing.assert_allclose(y, x)
        dx = block.backward(np.ones_like(y))
        np.testing.assert_allclose(dx, np.ones_like(x))

    def test_residual_parameters_include_shortcut(self, rng):
        block = ResidualBlock([Conv2d(2, 4, 3, pad=1, rng=rng)], [Conv2d(2, 4, 1, rng=rng)])
        assert len(list(block.parameters())) == 4  # two weights + two biases

    def test_dense_block_concat_width(self, rng):
        stages = [[Conv2d(4, 3, kernel=1, rng=rng)], [Conv2d(7, 3, kernel=1, rng=rng)]]
        block = DenseBlock(stages)
        y = block.forward(rng.normal(size=(2, 4, 5, 5)), train=True)
        assert y.shape == (2, 10, 5, 5)  # 4 + 3 + 3

    def test_dense_block_backward_numeric(self, rng):
        stages = [[Conv2d(2, 2, kernel=1, rng=rng)], [Conv2d(4, 2, kernel=1, rng=rng)]]
        block = DenseBlock(stages)
        x = rng.normal(size=(1, 2, 3, 3))
        y = block.forward(x, train=True)
        dy = rng.normal(size=y.shape)
        dx = block.backward(dy)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 2, 1)]:
            xp = x.copy()
            xp[idx] += eps
            xm = x.copy()
            xm[idx] -= eps
            num = ((block.forward(xp, train=True) - block.forward(xm, train=True)) * dy).sum() / (2 * eps)
            assert abs(num - dx[idx]) < 1e-4

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        y = layer.forward(x, train=True)
        assert y.shape == (2, 48)
        np.testing.assert_allclose(layer.backward(y), x)

    def test_global_avg_pool(self, rng):
        layer = GlobalAvgPool()
        x = rng.normal(size=(2, 3, 4, 4))
        y = layer.forward(x, train=True)
        np.testing.assert_allclose(y, x.mean(axis=(2, 3)))
        dx = layer.backward(np.ones_like(y))
        np.testing.assert_allclose(dx, np.full_like(x, 1 / 16))

    def test_maxpool_relu_layers(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        pooled = MaxPool2d(2).forward(x, train=True)
        assert pooled.shape == (1, 2, 2, 2)
        activated = ReLU().forward(x, train=True)
        assert (activated >= 0).all()
