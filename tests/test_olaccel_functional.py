"""Bit-exactness tests for the OLAccel functional datapath (Figs. 7-9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arch import pack_weights
from repro.olaccel import (
    ACC_LIMIT,
    olaccel_conv2d,
    reference_conv2d_int,
    split_activation_levels,
    split_weight_levels,
)


def random_case(rng, n=1, c=8, h=7, w=7, out_c=16, k=3, act_density=0.5, outlier=0.05):
    acts = rng.integers(0, 16, size=(n, c, h, w))
    acts[rng.random(acts.shape) >= act_density] = 0
    act_outliers = rng.random(acts.shape) < outlier
    acts[act_outliers] = rng.integers(16, 200, size=int(act_outliers.sum()))
    weights = rng.integers(-7, 8, size=(out_c, c, k, k))
    w_outliers = rng.random(weights.shape) < outlier
    weights[w_outliers] = rng.integers(8, 128, size=int(w_outliers.sum())) * rng.choice(
        [-1, 1], size=int(w_outliers.sum())
    )
    return acts, weights


class TestWeightSplit:
    @given(hnp.arrays(np.int64, 50, elements=st.integers(-127, 127)))
    @settings(max_examples=50, deadline=None)
    def test_lsb_plus_8msb_reconstructs(self, levels):
        lsb, msb = split_weight_levels(levels)
        np.testing.assert_array_equal(lsb + 8 * msb, levels)
        assert np.abs(lsb).max(initial=0) <= 7
        assert np.abs(msb).max(initial=0) <= 15

    def test_normal_weights_untouched(self):
        levels = np.arange(-7, 8)
        lsb, msb = split_weight_levels(levels)
        np.testing.assert_array_equal(lsb, levels)
        assert (msb == 0).all()


class TestActivationSplit:
    def test_streams_sum_to_original(self, rng):
        levels = rng.integers(0, 100, size=200)
        normal, outlier = split_activation_levels(levels)
        np.testing.assert_array_equal(normal + outlier, levels)

    def test_outliers_removed_from_dense_stream(self, rng):
        levels = np.array([0, 5, 15, 16, 100])
        normal, outlier = split_activation_levels(levels)
        np.testing.assert_array_equal(normal, [0, 5, 15, 0, 0])
        np.testing.assert_array_equal(outlier, [0, 0, 0, 16, 100])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            split_activation_levels(np.array([-1]))


class TestBitExactness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        acts, weights = random_case(rng)
        result = olaccel_conv2d(acts, weights, stride=1, pad=1)
        reference = reference_conv2d_int(acts, weights, stride=1, pad=1)
        np.testing.assert_array_equal(result.psum, reference)

    @pytest.mark.parametrize("stride,pad", [(1, 0), (2, 1), (2, 0)])
    def test_strides_and_padding(self, stride, pad, rng):
        acts, weights = random_case(rng, h=9, w=9)
        result = olaccel_conv2d(acts, weights, stride=stride, pad=pad)
        reference = reference_conv2d_int(acts, weights, stride=stride, pad=pad)
        np.testing.assert_array_equal(result.psum, reference)

    def test_decomposition_paths(self, rng):
        """normal + outlier partial sums == total (the Fig. 10 merge)."""
        acts, weights = random_case(rng)
        result = olaccel_conv2d(acts, weights, pad=1)
        np.testing.assert_array_equal(result.normal_psum + result.outlier_psum, result.psum)

    def test_no_outliers_means_outlier_path_idle(self, rng):
        acts = rng.integers(0, 16, size=(1, 8, 5, 5))
        weights = rng.integers(-7, 8, size=(16, 8, 3, 3))
        result = olaccel_conv2d(acts, weights, pad=1)
        assert (result.outlier_psum == 0).all()
        assert result.outlier_broadcasts == 0

    def test_prepacked_weights_accepted(self, rng):
        acts, weights = random_case(rng)
        packed = pack_weights(weights.reshape(weights.shape[0], -1))
        result = olaccel_conv2d(acts, weights, pad=1, packed=packed)
        reference = reference_conv2d_int(acts, weights, pad=1)
        np.testing.assert_array_equal(result.psum, reference)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            olaccel_conv2d(np.zeros((1, 4, 5, 5), dtype=np.int64), np.zeros((8, 5, 3, 3), dtype=np.int64))

    def test_saturation_flag(self):
        # 16-bit outlier activations at full scale against 8-bit outlier
        # weights overflow the 24-bit partial-sum accumulator.
        acts = np.full((1, 16, 4, 4), 60000, dtype=np.int64)
        weights = np.full((16, 16, 3, 3), 127, dtype=np.int64)
        result = olaccel_conv2d(acts, weights, pad=0, act_normal_max=65535)
        assert result.saturated
        assert ACC_LIMIT == 2**23 - 1

    def test_no_saturation_in_normal_range(self, rng):
        acts, weights = random_case(rng)
        assert not olaccel_conv2d(acts, weights, pad=1).saturated

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_bit_exact_property(self, seed):
        rng = np.random.default_rng(seed)
        acts, weights = random_case(rng, c=4, h=5, w=5, out_c=8, outlier=0.1)
        result = olaccel_conv2d(acts, weights, pad=1)
        np.testing.assert_array_equal(result.psum, reference_conv2d_int(acts, weights, pad=1))


class TestExactCycles:
    def test_dense_no_outliers(self):
        """All-nonzero activations, no weight outliers: 1 cycle per lane op."""
        acts = np.ones((1, 16, 3, 3), dtype=np.int64)
        weights = np.ones((16, 16, 1, 1), dtype=np.int64)
        result = olaccel_conv2d(acts, weights)
        # 9 pixels x 1 out-group x 1 in-chunk x 16 nonzero = 144 cycles
        assert result.cycles == 144

    def test_all_zero_chunks_cost_skip_cycles(self):
        acts = np.zeros((1, 16, 2, 2), dtype=np.int64)
        weights = np.ones((16, 16, 1, 1), dtype=np.int64)
        result = olaccel_conv2d(acts, weights)
        # 4 pixels x 4 zero quads = 16 skip cycles
        assert result.cycles == 16

    def test_multi_outlier_chunk_costs_double(self):
        """A chunk spans 16 *output* channels for one input position; two
        outliers there spill (Fig. 8) and that broadcast takes 2 cycles."""
        acts = np.ones((1, 16, 1, 1), dtype=np.int64)
        weights = np.ones((16, 16, 1, 1), dtype=np.int64)
        weights[3, 0, 0, 0] = 100  # out-channels 3 and 7, input channel 0
        weights[7, 0, 0, 0] = 100
        base = olaccel_conv2d(acts, np.ones_like(weights)).cycles
        cost = olaccel_conv2d(acts, weights).cycles
        assert cost == base + 1  # only input channel 0's broadcast doubles

    def test_single_outlier_is_free(self):
        acts = np.ones((1, 16, 1, 1), dtype=np.int64)
        weights = np.ones((16, 16, 1, 1), dtype=np.int64)
        weights[5, 2, 0, 0] = 100  # one outlier: handled by the outlier MAC
        base = olaccel_conv2d(acts, np.ones_like(weights)).cycles
        assert olaccel_conv2d(acts, weights).cycles == base

    def test_outlier_broadcast_count(self):
        acts = np.zeros((1, 16, 1, 1), dtype=np.int64)
        acts[0, 4, 0, 0] = 100  # one outlier activation
        weights = np.ones((32, 16, 1, 1), dtype=np.int64)  # 2 out-groups
        result = olaccel_conv2d(acts, weights)
        assert result.outlier_broadcasts == 2  # one per output-channel group
