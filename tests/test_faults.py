"""Tests for the fault-injection subsystem (repro.faults + repro.errors).

Covers the acceptance properties of docs/FAULTS.md:

- rate-0 plans and full-width accumulators are provably bit-exact no-ops;
- the obs counters reconcile exactly: ``injected == detected +
  undetected`` and ``masked <= detected`` under every recovery policy;
- a corrupted ``OLptr`` raises a :class:`ChunkIntegrityError` naming the
  chunk coordinates under ``raise`` and completes the layer (counted as
  masked) under ``degrade``;
- the error taxonomy stays ``ValueError``-compatible at every migrated
  call site.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.arch.bitcodec import decode_table, encode_table
from repro.arch.chunks import LANES, WeightChunk
from repro.arch.memory import transfer_words
from repro.arch.packing import PackedWeights, pack_weights
from repro.errors import (
    CapacityError,
    ChunkIntegrityError,
    ConfigError,
    QuantRangeError,
    ReproError,
)
from repro.faults import (
    AccumulatorModel,
    FaultPlan,
    faulty_olaccel_conv2d,
    required_accumulator_bits,
    validate_packed,
    validate_swarm,
)
from repro.obs import Registry
from repro.olaccel.functional import olaccel_conv2d, reference_conv2d_int
from repro.quant import OutlierQuantConfig


def random_conv_case(seed: int, outlier: float = 0.05):
    rng = np.random.default_rng(seed)
    acts = rng.integers(0, 16, size=(2, 8, 6, 6))
    hot = rng.random(acts.shape) < outlier
    acts[hot] = rng.integers(16, 4096, size=int(hot.sum()))
    weights = rng.integers(-7, 8, size=(12, 8, 3, 3))
    hot_w = rng.random(weights.shape) < outlier
    weights[hot_w] = rng.integers(8, 128, size=int(hot_w.sum())) * rng.choice(
        [-1, 1], size=int(hot_w.sum())
    )
    return acts, weights


# ---------------------------------------------------------------- taxonomy


def test_taxonomy_is_valueerror_compatible():
    for exc in (ConfigError, QuantRangeError, CapacityError, ChunkIntegrityError):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, ValueError)


def test_chunk_integrity_error_renders_coordinates():
    err = ChunkIntegrityError("bad chunk", group=2, reduction=7, chunk_index=25, field="ol_ptr")
    message = str(err)
    assert "group=2" in message and "chunk=25" in message and "ol_ptr" in message


def test_migrated_call_sites_still_raise_valueerror():
    with pytest.raises(ValueError):
        pack_weights(np.array([[1000]]))  # beyond the 8-bit outlier grid
    with pytest.raises(ValueError):
        WeightChunk(lanes=(0,) * 3)  # wrong lane count
    with pytest.raises(ValueError):
        OutlierQuantConfig(ratio=1.5)


def test_outlier_quant_config_rejects_nonpositive_bits():
    with pytest.raises(ConfigError):
        OutlierQuantConfig(normal_bits=0)
    with pytest.raises(ConfigError):
        OutlierQuantConfig(normal_bits=-4, outlier_bits=8)


# ---------------------------------------------------------------- FaultPlan


def test_fault_plan_validates_configuration():
    with pytest.raises(ConfigError):
        FaultPlan(rate=1.5)
    with pytest.raises(ConfigError):
        FaultPlan(model="meteor")
    with pytest.raises(ConfigError):
        FaultPlan(targets=("weight_chunks", "bogus"))
    with pytest.raises(ConfigError):
        FaultPlan(burst_length=0)


def test_fault_plan_is_deterministic_per_surface():
    words = list(range(1, 200))
    plan = FaultPlan(rate=0.2, seed=42)
    first, n_first = plan.corrupt_words(words, 80)
    second, n_second = plan.corrupt_words(words, 80)
    assert first == second and n_first == n_second
    other_surface, _ = plan.corrupt_words(words, 80, surface="memory")
    assert other_surface != first  # independent streams per surface


def test_rate_zero_plan_is_noop():
    words = [0xDEADBEEF, 2**79 - 1]
    plan = FaultPlan(rate=0.0)
    obs = Registry()
    out, injected = plan.corrupt_words(words, 80, obs=obs)
    assert out == words and injected == 0
    assert obs.snapshot() == {}


def test_injected_counts_only_changed_values():
    # stuck0 on all-zero words can never change anything.
    plan = FaultPlan(rate=1.0, model="stuck0", seed=1)
    obs = Registry()
    out, injected = plan.corrupt_words([0, 0, 0, 0], 80, obs=obs)
    assert out == [0, 0, 0, 0]
    assert injected == 0
    assert "faults/injected" not in obs.snapshot()


# ---------------------------------------------------------------- validators


def _spilled_packed() -> PackedWeights:
    """A 16x2 weight matrix whose first column has two outlier lanes."""
    levels = np.zeros((LANES, 2), dtype=np.int64)
    levels[0, 0] = 100
    levels[5, 0] = -90
    levels[3, 1] = 2
    packed = pack_weights(levels)
    assert len(packed.spill_chunks) == 1
    return packed


def test_validate_packed_clean_table_is_identity():
    packed = _spilled_packed()
    obs = Registry()
    assert validate_packed(packed, policy="degrade", obs=obs) is packed
    assert obs.snapshot() == {}


def test_dangling_olptr_raise_names_coordinates():
    packed = _spilled_packed()
    corrupt = [replace_ptr(packed.base_chunks[0], 9)] + packed.base_chunks[1:]
    broken = PackedWeights(corrupt, packed.spill_chunks, packed.n_groups, packed.reduction, packed.out_channels)
    with pytest.raises(ChunkIntegrityError) as excinfo:
        validate_packed(broken, policy="raise")
    message = str(excinfo.value)
    assert "ol_ptr" in message and "group=0" in message and "chunk=0" in message


def replace_ptr(chunk: WeightChunk, ptr: int) -> WeightChunk:
    return WeightChunk(lanes=chunk.lanes, ol_ptr=ptr)


def test_dangling_olptr_degrade_masks_and_completes_layer():
    acts, weights = random_conv_case(7)
    packed = pack_weights(weights.reshape(weights.shape[0], -1))
    spilled = [i for i, c in enumerate(packed.base_chunks) if c.has_multi_outlier]
    if not spilled:  # force one
        weights[0, 0, 0, 0], weights[1, 0, 0, 0] = 100, -100
        packed = pack_weights(weights.reshape(weights.shape[0], -1))
        spilled = [i for i, c in enumerate(packed.base_chunks) if c.has_multi_outlier]
    index = spilled[0]
    base = list(packed.base_chunks)
    base[index] = replace_ptr(base[index], len(packed.spill_chunks) + 3)
    broken = PackedWeights(base, packed.spill_chunks, packed.n_groups, packed.reduction, packed.out_channels)

    obs = Registry()
    repaired = validate_packed(broken, policy="degrade", obs=obs)
    counters = obs.snapshot()
    assert counters["faults/detected"] == 1
    assert counters["faults/masked"] == 1
    # the repaired table unpacks and the layer completes
    levels = repaired.unpack().reshape(weights.shape)
    result = olaccel_conv2d(acts, levels, pad=1)
    assert result.psum.shape == reference_conv2d_int(acts, weights, pad=1).shape


def test_duplicate_olptr_detected():
    packed = _spilled_packed()
    base = list(packed.base_chunks)
    base[1] = replace_ptr(base[1], base[0].ol_ptr)  # second claimant
    broken = PackedWeights(base, packed.spill_chunks, packed.n_groups, packed.reduction, packed.out_channels)
    obs = Registry()
    validate_packed(broken, policy="degrade", obs=obs)
    assert obs.snapshot()["faults/detected"] == 1


def test_validate_packed_skip_zeroes_chunk():
    packed = _spilled_packed()
    base = [replace_ptr(packed.base_chunks[0], 9)] + packed.base_chunks[1:]
    broken = PackedWeights(base, packed.spill_chunks, packed.n_groups, packed.reduction, packed.out_channels)
    obs = Registry()
    repaired = validate_packed(broken, policy="skip", obs=obs)
    assert repaired.base_chunks[0].lanes == (0,) * LANES
    counters = obs.snapshot()
    assert counters["faults/skipped"] == 1 and counters["faults/masked"] == 1


def test_validate_swarm_policies():
    from repro.arch.chunks import OutlierActivation

    good = OutlierActivation(value=100, w_idx=1, h_idx=1, c_idx=1)
    off_tensor = OutlierActivation(value=100, w_idx=99, h_idx=1, c_idx=1)
    below_threshold = OutlierActivation(value=3, w_idx=0, h_idx=0, c_idx=0)
    shape = (16, 4, 4)

    obs = Registry()
    kept = validate_swarm([good, off_tensor, below_threshold], shape, policy="degrade", obs=obs)
    assert kept == [good]
    counters = obs.snapshot()
    assert counters["faults/detected"] == 2 and counters["faults/masked"] == 2

    with pytest.raises(ChunkIntegrityError):
        validate_swarm([off_tensor], shape, policy="raise")


# ---------------------------------------------------------------- bitcodec + memory


def test_decode_table_strict_flags_dangling_ptr():
    packed = _spilled_packed()
    base_words, spill_words = encode_table(packed.base_chunks, packed.spill_chunks)
    with pytest.raises(ChunkIntegrityError):
        decode_table(base_words, [])  # spill table lost in transfer
    bases, _ = decode_table(base_words, [], strict=False)
    assert bases[0].has_multi_outlier  # decoded as-is for the validator


def test_transfer_words_identity_without_plan():
    words = [1, 2, 3]
    assert transfer_words(words) == words


def test_transfer_words_strikes_with_plan():
    words = list(range(100))
    obs = Registry()
    out = transfer_words(words, plan=FaultPlan(rate=1.0, seed=0), obs=obs)
    assert out != words
    assert obs.snapshot()["faults/injected/memory"] == obs.snapshot()["faults/injected"] > 0


# ---------------------------------------------------------------- accumulator


def test_accumulator_validates_configuration():
    with pytest.raises(ConfigError):
        AccumulatorModel(width_bits=1)
    with pytest.raises(ConfigError):
        AccumulatorModel(mode="melt")


def test_accumulator_wrap_matches_per_mac_wraparound():
    # modular reduction commutes with addition: wrapping the final sum
    # equals wrapping after every MAC.
    rng = np.random.default_rng(3)
    terms = rng.integers(-500, 500, size=200)
    acc = AccumulatorModel(width_bits=10, mode="wrap")
    span, half = 1 << 10, 1 << 9
    stepwise = 0
    for t in terms:
        stepwise = ((stepwise + int(t) + half) % span) - half
    assert acc.apply(np.array([terms.sum()]))[0] == stepwise


def test_accumulator_saturate_clamps_and_counts():
    acc = AccumulatorModel(width_bits=8, mode="saturate")
    obs = Registry()
    out = acc.apply(np.array([1000, -1000, 5]), obs=obs)
    assert list(out) == [127, -127, 5]
    assert obs.snapshot()["acc/overflow"] == 2


def test_accumulator_infinite_and_wide_are_noops():
    psums = np.array([2**40, -(2**40)])
    for acc in (AccumulatorModel(mode="infinite"), AccumulatorModel(width_bits=64, mode="wrap")):
        assert np.array_equal(acc.apply(psums), psums)
        assert acc.overflows(psums) == 0


def test_required_accumulator_bits_guarantees_avoidance():
    acts, weights = random_conv_case(11)
    reduction = weights.shape[1] * weights.shape[2] * weights.shape[3]
    bits = required_accumulator_bits(reduction, int(acts.max()), int(np.abs(weights).max()))
    acc = AccumulatorModel(width_bits=bits, mode="saturate")
    reference = reference_conv2d_int(acts, weights, pad=1)
    assert np.array_equal(reference_conv2d_int(acts, weights, pad=1, acc=acc), reference)


# ---------------------------------------------------------------- datapath properties


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_rate_zero_datapath_is_bit_exact(seed):
    acts, weights = random_conv_case(seed)
    run = faulty_olaccel_conv2d(acts, weights, pad=1, plan=FaultPlan(rate=0.0))
    assert run.bit_exact
    assert run.injected == run.detected == run.masked == 0
    assert np.array_equal(run.psum, reference_conv2d_int(acts, weights, pad=1))


@pytest.mark.parametrize("policy", ["degrade", "skip"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_counters_reconcile_under_recovery_policies(policy, seed):
    acts, weights = random_conv_case(seed)
    run = faulty_olaccel_conv2d(
        acts, weights, pad=1, plan=FaultPlan(rate=0.03, seed=seed), policy=policy
    )
    assert run.injected == run.detected + run.undetected
    assert 0 <= run.masked <= run.detected
    counters = run.obs.snapshot()
    assert counters.get("faults/injected", 0) == run.injected
    if run.undetected:
        assert counters["faults/undetected"] == run.undetected


def test_faulty_datapath_raise_policy_surfaces_integrity_error():
    acts, weights = random_conv_case(0)
    # High rate so a structural (detectable) violation is all but certain;
    # scan seeds until one produces a detection to keep the test stable.
    for seed in range(20):
        plan = FaultPlan(rate=0.3, seed=seed, targets=("weight_chunks",))
        try:
            run = faulty_olaccel_conv2d(acts, weights, pad=1, plan=plan, policy="degrade")
        except ChunkIntegrityError:  # pragma: no cover - degrade never raises
            pytest.fail("degrade policy must not raise")
        if run.detected:
            with pytest.raises(ChunkIntegrityError):
                faulty_olaccel_conv2d(acts, weights, pad=1, plan=plan, policy="raise")
            return
    pytest.skip("no detectable fault in 20 seeds (rate too low for this case)")


def test_faulty_datapath_same_plan_is_reproducible():
    acts, weights = random_conv_case(5)
    plan = FaultPlan(rate=0.02, seed=99)
    a = faulty_olaccel_conv2d(acts, weights, pad=1, plan=plan)
    b = faulty_olaccel_conv2d(acts, weights, pad=1, plan=plan)
    assert np.array_equal(a.psum, b.psum)
    assert a.injected == b.injected and a.detected == b.detected


# ---------------------------------------------------------------- sweep + CLI


def test_fault_sweep_envelope_and_reconciliation(tmp_path):
    from repro.cli import main

    out = tmp_path / "faults.json"
    code = main(
        [
            "faults",
            "alexnet",
            "--rates", "0", "0.005",
            "--widths", "24",
            "--seed", "3",
            "--json", str(out),
        ]
    )
    assert code == 0
    envelope = json.loads(out.read_text())
    assert envelope["schema"] == "repro.experiment/v1"
    assert envelope["experiment"] == "faults"
    rows = envelope["result"]["rate_rows"]
    assert rows[0]["rate"] == 0 and rows[0]["bit_exact"] is True
    for row in rows:
        assert row["injected"] == row["detected"] + row["undetected"]
        assert row["masked"] <= row["detected"]
    assert envelope["result"]["width_rows"][0]["width_bits"] == 24


def test_cli_rejects_unknown_network_for_faults(capsys):
    from repro.cli import main

    assert main(["faults", "nosuchnet"]) == 2
    assert "unknown network" in capsys.readouterr().err


def test_seeding_precedence():
    from repro.harness import resolve_seed, set_global_seed

    try:
        assert resolve_seed(None, default=4) == 4
        set_global_seed(17)
        assert resolve_seed(None, default=4) == 17
        assert resolve_seed(2, default=4) == 2
    finally:
        set_global_seed(None)


def test_baseline_simulators_accept_accumulator_model():
    from repro.baselines import EyerissSimulator, ZenaSimulator
    from repro.harness.workloads import paper_workload

    workload = paper_workload("alexnet")
    acc = AccumulatorModel(width_bits=16, mode="saturate")
    for sim_cls in (EyerissSimulator, ZenaSimulator):
        obs = Registry()
        narrow = sim_cls(obs=obs, acc=acc).simulate_network(workload)
        wide = sim_cls().simulate_network(workload)
        # a narrower accumulator strictly lowers psum-movement energy...
        assert narrow.total_energy.total < wide.total_energy.total
        # ...and every layer's reduction is flagged as overflow risk at 16 bits
        risky = [v for k, v in obs.snapshot().items() if k.endswith("acc/overflow_risk_layers")]
        assert risky and risky[0] == len(workload.layers)
