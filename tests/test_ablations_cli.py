"""Tests for the ablation harness and the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.harness import (
    ablate_outlier_mac,
    ablate_pipelined_accumulation,
    ablate_zero_skip,
    run_all_ablations,
    sweep_group_size,
)


class TestAblations:
    def test_outlier_mac_pays_off(self):
        """Without the 17th MAC, the multi-outlier path fires on every
        chunk with >= 1 outlier — the Sec. III-A naive-SIMD overhead."""
        result = ablate_outlier_mac("alexnet", ratio=0.03)
        assert result.slowdown > 1.05

    def test_outlier_mac_worth_grows_with_ratio(self):
        low = ablate_outlier_mac("alexnet", ratio=0.01).slowdown
        high = ablate_outlier_mac("alexnet", ratio=0.05).slowdown
        assert high > low

    def test_zero_skip_pays_off(self):
        assert ablate_zero_skip("alexnet").slowdown > 1.15

    def test_zero_skip_worth_larger_on_sparser_network(self):
        """ResNet-18 activations are sparser than AlexNet's on average."""
        alexnet = ablate_zero_skip("alexnet").slowdown
        resnet = ablate_zero_skip("resnet18").slowdown
        assert resnet > alexnet

    def test_pipelined_accumulation_pays_off(self):
        assert ablate_pipelined_accumulation("alexnet").slowdown > 1.0

    def test_run_all_covers_three_mechanisms(self):
        results = run_all_ablations("vgg16")
        assert {r.name for r in results} == {"outlier-mac", "zero-skip", "pipelined-accumulation"}
        assert all(r.network == "vgg16" for r in results)

    def test_group_size_wide_groups_lose(self):
        sweep = sweep_group_size("alexnet", ratio=0.05)
        normalized = sweep.normalized()
        assert normalized[16] == pytest.approx(1.0)
        assert normalized[32] > normalized[16]

    def test_group_size_invalid_width(self):
        with pytest.raises(ValueError, match="tile"):
            sweep_group_size("alexnet", lane_options=(10,))

    def test_format_strings(self):
        result = ablate_outlier_mac("alexnet")
        assert "outlier-mac" in result.format()
        assert "cycles" in sweep_group_size("alexnet").format()


class TestCli:
    def test_experiment_registry_covers_every_figure(self):
        expected = {"fig1", "fig2", "fig3", "tab1", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19"}
        assert set(EXPERIMENTS) == expected

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "tab1" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "tab1"]) == 0
        out = capsys.readouterr().out
        assert "768" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_compare_command(self, capsys):
        assert main(["compare", "alexnet"]) == 0
        assert "OLAccel16 vs ZeNA16" in capsys.readouterr().out

    def test_compare_unknown_network(self, capsys):
        assert main(["compare", "lenet"]) == 2

    def test_ablations_command(self, capsys):
        assert main(["ablations", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "outlier-mac" in out and "group-size" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliExport:
    def test_export_writes_files(self, tmp_path, capsys):
        assert main(["export", "alexnet", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "alexnet_layers.csv").exists()
        assert (tmp_path / "alexnet_summary.json").exists()

    def test_export_unknown_network(self, tmp_path):
        assert main(["export", "lenet", "--out", str(tmp_path)]) == 2
