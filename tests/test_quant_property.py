"""Seeded property-style round-trip tests for ``repro.quant.linear`` and
``repro.quant.outlier``: quantize→dequantize error bounds, sign-magnitude
grid symmetry, and outlier-ratio invariants across 200 random tensors per
configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant.linear import LinearQuantizer, quantize_linear, signed_levels, unsigned_levels
from repro.quant.outlier import (
    magnitude_threshold,
    quantize_activations,
    quantize_weights,
)

N_TENSORS = 200


def _random_tensor(rng):
    """Heavy-tailed values (normal + occasional large spikes), random size."""
    size = int(rng.integers(8, 400))
    x = rng.standard_normal(size) * float(rng.uniform(0.01, 3.0))
    spikes = rng.random(size) < 0.05
    x = np.where(spikes, x * float(rng.uniform(5.0, 40.0)), x)
    return x


# ---------------------------------------------------------------------------
# linear quantizer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bits,signed", [(4, True), (8, True), (4, False), (8, False)])
def test_linear_roundtrip_error_bound(bits, signed):
    rng = np.random.default_rng(bits * 1000 + signed)
    for _ in range(N_TENSORS):
        x = _random_tensor(rng)
        if not signed:
            x = np.abs(x)
        quantizer = LinearQuantizer.from_range(float(np.abs(x).max()), bits, signed)
        error = np.abs(quantizer.roundtrip(x) - x)
        # full-range grid: every in-range value lands within half a step
        assert error.max(initial=0.0) <= quantizer.delta / 2 + 1e-12


@pytest.mark.parametrize("bits", [2, 4, 8])
def test_linear_sign_symmetry(bits):
    # sign-magnitude grid: quantize(-x) == -quantize(x), exactly
    rng = np.random.default_rng(bits)
    for _ in range(N_TENSORS):
        x = _random_tensor(rng)
        quantizer = LinearQuantizer.from_range(float(np.abs(x).max()), bits, signed=True)
        assert np.array_equal(quantizer.quantize(-x), -quantizer.quantize(x))


def test_linear_idempotent_on_grid():
    rng = np.random.default_rng(77)
    for _ in range(N_TENSORS):
        x = _random_tensor(rng)
        quantizer = LinearQuantizer.from_range(float(np.abs(x).max()), 4, signed=True)
        once = quantizer.roundtrip(x)
        assert np.array_equal(quantizer.roundtrip(once), once)


def test_linear_levels_within_grid():
    rng = np.random.default_rng(78)
    for _ in range(N_TENSORS):
        x = _random_tensor(rng)
        for bits, signed in ((4, True), (4, False)):
            values = np.abs(x) if not signed else x
            quantizer = LinearQuantizer.from_range(float(np.abs(x).max()), bits, signed)
            levels = quantizer.quantize(values)
            assert levels.max(initial=0) <= quantizer.max_level
            assert levels.min(initial=0) >= quantizer.min_level


def test_quantize_linear_all_zero_and_empty():
    assert np.array_equal(quantize_linear(np.zeros(5), bits=4), np.zeros(5))
    assert quantize_linear(np.array([]), bits=4).size == 0


# ---------------------------------------------------------------------------
# outlier-aware quantization (OAQ)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("ratio", [0.0, 0.01, 0.03, 0.1])
def test_oaq_weight_levels_within_outlier_grid(ratio):
    rng = np.random.default_rng(int(ratio * 1000))
    for _ in range(N_TENSORS):
        w = _random_tensor(rng)
        qt = quantize_weights(w, ratio=ratio)
        assert np.abs(qt.levels).max(initial=0) <= signed_levels(qt.config.outlier_bits)


@pytest.mark.parametrize("ratio", [0.01, 0.03, 0.1])
def test_oaq_achieved_ratio_bounded_by_target(ratio):
    # the threshold is the (1 - ratio) magnitude quantile, and rounding can
    # only pull borderline values back onto the normal grid — so the
    # achieved outlier fraction never exceeds the target (plus quantile
    # interpolation slack of one element)
    rng = np.random.default_rng(int(ratio * 10_000))
    for _ in range(N_TENSORS):
        w = _random_tensor(rng)
        qt = quantize_weights(w, ratio=ratio)
        assert qt.outlier_count <= int(np.ceil(ratio * w.size)) + 1


def test_oaq_ratio_zero_has_no_outliers():
    rng = np.random.default_rng(42)
    for _ in range(N_TENSORS):
        w = _random_tensor(rng)
        qt = quantize_weights(w, ratio=0.0)
        assert qt.outlier_count == 0


def test_oaq_sign_symmetry():
    rng = np.random.default_rng(43)
    for _ in range(N_TENSORS):
        w = _random_tensor(rng)
        plus = quantize_weights(w, ratio=0.03)
        minus = quantize_weights(-w, ratio=0.03)
        assert plus.delta == minus.delta
        assert np.array_equal(minus.levels, -plus.levels)


def test_oaq_normal_region_error_bound():
    rng = np.random.default_rng(44)
    for _ in range(N_TENSORS):
        w = _random_tensor(rng)
        qt = quantize_weights(w, ratio=0.03)
        outlier_cap = signed_levels(qt.config.outlier_bits) * qt.delta
        in_range = np.abs(w) <= outlier_cap
        error = np.abs(qt.dequantize() - w)
        # every value inside the 8-bit grid is within half a shared step
        assert error[in_range].max(initial=0.0) <= qt.delta / 2 + 1e-12


def test_oaq_activation_invariants():
    rng = np.random.default_rng(45)
    for _ in range(N_TENSORS):
        a = np.abs(_random_tensor(rng))
        threshold = magnitude_threshold(a, 0.03, over_nonzero=True)
        qt = quantize_activations(a, threshold=threshold)
        assert qt.levels.min(initial=0) >= 0  # post-ReLU grid is unsigned
        assert qt.levels.max(initial=0) <= unsigned_levels(qt.config.outlier_bits)
        # zeros stay exactly zero (ReLU zeros are never outliers)
        assert np.all(qt.levels[a == 0.0] == 0)


def test_magnitude_threshold_places_ratio_above():
    rng = np.random.default_rng(46)
    for _ in range(N_TENSORS):
        x = _random_tensor(rng)
        threshold = magnitude_threshold(x, 0.1)
        above = (np.abs(x) > threshold).mean()
        assert above <= 0.1 + 1.0 / x.size
