"""Unit tests for the numpy tensor operations (repro.nn.functional)."""

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(x, w, b, stride, pad):
    """Direct 6-loop convolution used as the golden reference."""
    n, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (wdt + 2 * pad - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    y = np.zeros((n, c_out, out_h, out_w))
    for ni in range(n):
        for oc in range(c_out):
            for oh in range(out_h):
                for ow in range(out_w):
                    patch = xp[ni, :, oh * stride : oh * stride + kh, ow * stride : ow * stride + kw]
                    y[ni, oc, oh, ow] = (patch * w[oc]).sum() + (b[oc] if b is not None else 0.0)
    return y


class TestConvForward:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_naive(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        y, _ = F.conv2d(x, w, b, stride, pad)
        np.testing.assert_allclose(y, naive_conv2d(x, w, b, stride, pad), atol=1e-10)

    def test_kernel_1x1(self, rng):
        x = rng.normal(size=(1, 5, 4, 4))
        w = rng.normal(size=(7, 5, 1, 1))
        y, _ = F.conv2d(x, w, None, 1, 0)
        assert y.shape == (1, 7, 4, 4)
        np.testing.assert_allclose(y, naive_conv2d(x, w, None, 1, 0), atol=1e-10)

    def test_rectangular_input(self, rng):
        x = rng.normal(size=(2, 2, 11, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        y, _ = F.conv2d(x, w, None, 2, 1)
        assert y.shape == (2, 3, 6, 3)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        w = rng.normal(size=(4, 5, 3, 3))
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(x, w)

    def test_nonpositive_output_raises(self):
        with pytest.raises(ValueError):
            F.conv_out_size(2, 5, 1, 0)


class TestConvBackward:
    def test_gradients_numerically(self, rng):
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        y, cache = F.conv2d(x, w, b, stride=1, pad=1)
        dy = rng.normal(size=y.shape)
        dx, dw, db = F.conv2d_backward(dy, cache)

        eps = 1e-6
        # Spot-check a handful of coordinates against central differences.
        for idx in [(0, 0, 0, 0), (1, 1, 3, 2), (0, 1, 5, 5)]:
            xp = x.copy()
            xp[idx] += eps
            xm = x.copy()
            xm[idx] -= eps
            num = ((F.conv2d(xp, w, b, 1, 1)[0] - F.conv2d(xm, w, b, 1, 1)[0]) * dy).sum() / (2 * eps)
            assert abs(num - dx[idx]) < 1e-4

        for idx in [(0, 0, 0, 0), (2, 1, 2, 2)]:
            wp = w.copy()
            wp[idx] += eps
            wm = w.copy()
            wm[idx] -= eps
            num = ((F.conv2d(x, wp, b, 1, 1)[0] - F.conv2d(x, wm, b, 1, 1)[0]) * dy).sum() / (2 * eps)
            assert abs(num - dw[idx]) < 1e-4

        num_db = dy.sum(axis=(0, 2, 3))
        np.testing.assert_allclose(db, num_db, atol=1e-10)


class TestIm2col:
    def test_col2im_adjoint(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(2, 3, 7, 7))
        cols = F.im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * F.col2im(y, x.shape, 3, 3, 2, 1)).sum()
        assert abs(lhs - rhs) < 1e-9

    def test_row_ordering(self):
        """Rows follow (n, oh, ow); columns follow (c, kh, kw)."""
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = F.im2col(x, 2, 2, 2, 0)
        np.testing.assert_allclose(cols[0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[1], [2, 3, 6, 7])
        np.testing.assert_allclose(cols[3], [10, 11, 14, 15])


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, _ = F.maxpool2d(x, 2)
        np.testing.assert_allclose(y[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        y, cache = F.maxpool2d(x, 2)
        dy = np.ones_like(y)
        dx = F.maxpool2d_backward(dy, cache)
        assert dx.sum() == pytest.approx(dy.sum())
        # Gradient lands only on max positions.
        assert ((dx != 0).sum(axis=(2, 3)) == 4).all()

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, _ = F.avgpool2d(x, 2)
        np.testing.assert_allclose(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward_uniform(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        y, cache = F.avgpool2d(x, 2)
        dx = F.avgpool2d_backward(np.ones_like(y), cache)
        np.testing.assert_allclose(dx, np.full_like(x, 0.25))

    def test_strided_maxpool(self, rng):
        x = rng.normal(size=(1, 1, 7, 7))
        y, _ = F.maxpool2d(x, 3, stride=2)
        assert y.shape == (1, 1, 3, 3)


class TestActivationsAndLoss:
    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        y, mask = F.relu(x)
        np.testing.assert_allclose(y, [[0, 0, 2]])
        np.testing.assert_allclose(F.relu_backward(np.ones_like(x), mask), [[0, 0, 1]])

    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(5, 9)) * 50  # large values: stability check
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)
        assert (probs >= 0).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        assert F.cross_entropy(logits, np.array([0])) < 1e-6

    def test_cross_entropy_gradient(self, rng):
        logits = rng.normal(size=(4, 6))
        labels = np.array([0, 2, 5, 1])
        grad = F.cross_entropy_backward(logits, labels)
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (3, 5)]:
            lp = logits.copy()
            lp[idx] += eps
            lm = logits.copy()
            lm[idx] -= eps
            num = (F.cross_entropy(lp, labels) - F.cross_entropy(lm, labels)) / (2 * eps)
            assert abs(num - grad[idx]) < 1e-6

    def test_linear_backward(self, rng):
        x = rng.normal(size=(3, 5))
        w = rng.normal(size=(4, 5))
        b = rng.normal(size=4)
        y, cache = F.linear(x, w, b)
        dy = rng.normal(size=y.shape)
        dx, dw, db = F.linear_backward(dy, cache)
        np.testing.assert_allclose(dx, dy @ w)
        np.testing.assert_allclose(dw, dy.T @ x)
        np.testing.assert_allclose(db, dy.sum(axis=0))
