"""Tests for the design-space explorer (docs/EXPLORE.md).

Covers the search space and area budget, the strategy interface, the
Pareto archive, the simcache-keyed candidate/accuracy cells, the exact
``explore/*`` counter reconciliation, and the headline guarantee:
cold, warm-cache and kill+resume searches emit byte-identical
``repro.explore/v1`` envelopes, with warm re-exploration much faster
than cold.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.arch.area import olaccel_area, olaccel_design_area, swarm_buffer_area
from repro.cli import main
from repro.errors import ArtifactIntegrityError, ConfigError
from repro.harness.explore import (
    EXPLORE_MARKER,
    EXPLORE_SCHEMA,
    Candidate,
    DesignSpace,
    ExploreRequest,
    ParetoArchive,
    STRATEGIES,
    accuracy_cell,
    default_budget,
    dominates,
    explore_cell,
    explore_csv_rows,
    explore_resume,
    explore_run,
    is_explore_run,
)
from repro.harness.resilience import KILL_AFTER_ENV, canonical_envelope_bytes
from repro.harness.serialize import load_json
from repro.harness.simcache import SimCache, set_active
from repro.obs import Registry

REPO = Path(__file__).resolve().parents[1]
CLI_ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
for var in (KILL_AFTER_ENV, "REPRO_CACHE_DIR", "REPRO_NO_CACHE"):
    CLI_ENV.pop(var, None)

#: A small space (8 points, two precision coordinates) shared by the
#: driver-level tests to keep them fast.
SMALL_SPACE = DesignSpace(
    clusters=(4, 8),
    groups=(6,),
    buffers_kib=(96, 384),
    ratios=(0.01,),
    acc_bits=(16,),
    act_bits=(4, 8),
    weight_bits=(4,),
)


def _repro(*argv, env=None, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env or CLI_ENV,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture()
def fresh_cache():
    """Pin a private memory-only simcache so tests don't share hits."""
    cache = SimCache()
    set_active(cache)
    yield cache
    set_active(None)


# ---------------------------------------------------------------------------
# Space, candidates, area, budget
# ---------------------------------------------------------------------------


class TestSpaceAndArea:
    def test_space_size_and_roundtrip(self):
        space = DesignSpace()
        assert space.size() == 4 * 3 * 3 * 3 * 2 * 1 * 1
        assert DesignSpace.from_dict(space.to_dict()) == space

    def test_space_rejects_unknown_and_empty_dimensions(self):
        with pytest.raises(ConfigError):
            DesignSpace.from_dict({"voltage": [1]})
        with pytest.raises(ConfigError):
            DesignSpace.from_dict({"clusters": []})

    def test_candidate_id_is_deterministic_and_fs_safe(self):
        cand = Candidate(8, 6, 384, 0.03, 24, 4, 4)
        assert cand.cand_id == "c8g6b384r0.03a24w4x4"
        assert "/" not in cand.cand_id and " " not in cand.cand_id
        assert Candidate.from_dict(cand.to_dict()) == cand

    def test_accel_config_carries_every_dimension(self):
        cfg = Candidate(6, 4, 192, 0.05, 16, 4, 4).accel_config()
        assert cfg.n_clusters == 6
        assert cfg.groups_per_cluster == 4
        assert cfg.swarm_buffer_bytes == 192 * 1024
        assert cfg.outlier_ratio == 0.05
        assert cfg.acc_bits == 16

    def test_design_area_matches_table1_model_at_paper_point(self):
        # At the paper's design point the generalized model must agree
        # with the calibrated Table I datapath model exactly.
        datapath = olaccel_design_area(8, 6, acc_bits=24)
        assert datapath == pytest.approx(olaccel_area(8, 16))
        with_buffer = olaccel_design_area(8, 6, swarm_buffer_bytes=393 * 1024)
        assert with_buffer == pytest.approx(datapath + swarm_buffer_area(393 * 1024))

    def test_design_area_monotone_in_each_dimension(self):
        base = Candidate(8, 6, 192, 0.03, 24, 4, 4).area_mm2()
        assert Candidate(10, 6, 192, 0.03, 24, 4, 4).area_mm2() > base
        assert Candidate(8, 8, 192, 0.03, 24, 4, 4).area_mm2() > base
        assert Candidate(8, 6, 384, 0.03, 24, 4, 4).area_mm2() > base
        assert Candidate(8, 6, 192, 0.03, 24, 8, 4).area_mm2() > base
        assert Candidate(8, 6, 192, 0.03, 16, 4, 4).area_mm2() < base

    def test_default_budget_admits_the_paper_design(self):
        budget = default_budget("alexnet")
        paper = Candidate(8, 6, 384, 0.03, 24, 4, 4)
        assert paper.area_mm2() <= budget
        with pytest.raises(ConfigError):
            default_budget("lenet5")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


class TestStrategies:
    def test_registry_has_the_documented_strategies(self):
        assert {"grid", "random", "halving"} <= set(STRATEGIES)

    def test_grid_enumerates_the_full_space_deterministically(self):
        import numpy as np

        grid = STRATEGIES["grid"]
        req = ExploreRequest(network="alexnet", space=SMALL_SPACE)
        a = grid.candidates(SMALL_SPACE, req, np.random.default_rng(0))
        b = grid.candidates(SMALL_SPACE, req, np.random.default_rng(99))
        assert a == b
        assert len(a) == SMALL_SPACE.size()
        assert len({c.cand_id for c in a}) == len(a)

    def test_random_is_a_seeded_subset_of_the_grid(self):
        import numpy as np

        rand = STRATEGIES["random"]
        req = ExploreRequest(network="alexnet", strategy="random", samples=5, space=SMALL_SPACE)
        a = rand.candidates(SMALL_SPACE, req, np.random.default_rng(7))
        b = rand.candidates(SMALL_SPACE, req, np.random.default_rng(7))
        c = rand.candidates(SMALL_SPACE, req, np.random.default_rng(8))
        assert a == b
        assert len(a) == 5
        assert a != c  # a different seed draws a different subset
        grid_ids = {g.cand_id for g in STRATEGIES["grid"].candidates(SMALL_SPACE, req, None)}
        assert {x.cand_id for x in a} <= grid_ids

    def test_halving_schedules_a_screen_rung(self):
        req = ExploreRequest(network="alexnet", strategy="halving", screen_layers=2)
        assert STRATEGIES["halving"].rungs(req) == [2, None]
        assert STRATEGIES["grid"].rungs(req) == [None]


# ---------------------------------------------------------------------------
# Pareto dominance
# ---------------------------------------------------------------------------


class TestPareto:
    def test_dominates_minimizes_cost_maximizes_accuracy(self):
        a = {"cycles": 10, "energy_total": 10, "accuracy": 0.9}
        b = {"cycles": 20, "energy_total": 10, "accuracy": 0.9}
        c = {"cycles": 20, "energy_total": 5, "accuracy": 0.9}
        d = {"cycles": 10, "energy_total": 10, "accuracy": 0.95}
        assert dominates(a, b)
        assert not dominates(b, a)
        assert not dominates(a, c) and not dominates(c, a)  # incomparable
        assert dominates(d, a) and not dominates(a, d)

    def test_dominates_ignores_missing_accuracy(self):
        a = {"cycles": 10, "energy_total": 10, "accuracy": None}
        b = {"cycles": 20, "energy_total": 20, "accuracy": None}
        assert dominates(a, b)

    def test_archive_prunes_incrementally(self):
        archive = ParetoArchive()
        rows = [
            {"cand_id": "a", "cycles": 10, "energy_total": 30, "accuracy": None},
            {"cand_id": "b", "cycles": 30, "energy_total": 10, "accuracy": None},
            {"cand_id": "c", "cycles": 20, "energy_total": 20, "accuracy": None},
            {"cand_id": "d", "cycles": 5, "energy_total": 5, "accuracy": None},  # dominates all
            {"cand_id": "e", "cycles": 40, "energy_total": 40, "accuracy": None},  # dominated
        ]
        admitted = [archive.offer(r) for r in rows]
        assert admitted == [True, True, True, True, False]
        assert [r["cand_id"] for r in archive.frontier()] == ["d"]

    def test_frontier_order_is_deterministic(self):
        archive = ParetoArchive()
        archive.offer({"cand_id": "z", "cycles": 1, "energy_total": 9, "accuracy": None})
        archive.offer({"cand_id": "a", "cycles": 9, "energy_total": 1, "accuracy": None})
        assert [r["cand_id"] for r in archive.frontier()] == ["z", "a"]


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------


class TestCells:
    def test_explore_cell_reports_cache_provenance(self, fresh_cache):
        cand = Candidate(4, 6, 96, 0.03, 24, 4, 4)
        cold = explore_cell("alexnet", cand, cache=fresh_cache)
        warm = explore_cell("alexnet", cand, cache=fresh_cache)
        assert cold["cached"] is False and warm["cached"] is True
        stripped = lambda row: {k: v for k, v in row.items() if k != "cached"}
        assert stripped(cold) == stripped(warm)
        assert cold["cycles"] > 0
        assert cold["energy_total"] == pytest.approx(
            sum(v for k, v in cold.items() if k.startswith("energy_") and k != "energy_total")
        )

    def test_explore_cell_fidelity_truncates_the_workload(self, fresh_cache):
        cand = Candidate(4, 6, 96, 0.03, 24, 4, 4)
        full = explore_cell("alexnet", cand, cache=fresh_cache)
        screen = explore_cell("alexnet", cand, fidelity_layers=2, cache=fresh_cache)
        assert screen["cached"] is False  # a different fidelity is a different key
        assert screen["cycles"] < full["cycles"]

    def test_explore_cell_accepts_param_dicts(self, fresh_cache):
        cand = Candidate(4, 6, 96, 0.03, 24, 4, 4)
        via_dict = explore_cell("alexnet", cand.to_dict(), cache=fresh_cache)
        via_obj = explore_cell("alexnet", cand, cache=fresh_cache)
        assert via_dict["cycles"] == via_obj["cycles"]
        with pytest.raises(ConfigError):
            explore_cell("lenet5", cand, cache=fresh_cache)

    def test_accuracy_proxy_is_deterministic_and_orders_precision(self, fresh_cache):
        a = accuracy_cell("alexnet", 4, 4, 0.03, mode="proxy", seed=7, cache=fresh_cache)
        b = accuracy_cell("alexnet", 4, 4, 0.03, mode="proxy", seed=7, cache=SimCache())
        assert a == b
        assert a["metric"] == "sqnr_db"
        wide = accuracy_cell("alexnet", 8, 8, 0.03, mode="proxy", seed=7, cache=fresh_cache)
        assert wide["accuracy"] > a["accuracy"]  # more bits, higher SQNR

    def test_accuracy_modes_none_and_unknown(self, fresh_cache):
        assert accuracy_cell("alexnet", 4, 4, 0.03, mode="none")["accuracy"] is None
        with pytest.raises(ConfigError):
            accuracy_cell("alexnet", 4, 4, 0.03, mode="oracle", cache=fresh_cache)


# ---------------------------------------------------------------------------
# The driver: counters, budget, envelopes, resume
# ---------------------------------------------------------------------------


def _request(**overrides):
    kwargs = dict(network="alexnet", seed=7, space=SMALL_SPACE)
    kwargs.update(overrides)
    return ExploreRequest(**kwargs)


def _counter(obs, name):
    counter = obs.counters.get(name)
    return counter.value if counter is not None else 0.0


def _assert_reconciles(obs):
    assert _counter(obs, "explore/candidates") == (
        _counter(obs, "explore/evaluated")
        + _counter(obs, "explore/pruned")
        + _counter(obs, "explore/cache_hits")
    )


class TestExploreRun:
    def test_counters_reconcile_with_pruning(self, fresh_cache):
        obs = Registry()
        result, envelope = explore_run(_request(budget_mm2=2.5), obs=obs)
        _assert_reconciles(obs)
        assert _counter(obs, "explore/pruned") > 0  # budget actually bites
        assert result.candidates == SMALL_SPACE.size()
        assert result.pruned + len(result.evaluated) == result.candidates
        assert envelope["schema"] == EXPLORE_SCHEMA

    def test_max_candidates_counts_as_pruned(self, fresh_cache):
        obs = Registry()
        result, _ = explore_run(_request(max_candidates=3), obs=obs)
        _assert_reconciles(obs)
        assert result.candidates == SMALL_SPACE.size()
        assert len(result.evaluated) <= 3

    def test_frontier_rows_are_nondominated_and_marked_in_csv(self, fresh_cache):
        result, _ = explore_run(_request())
        frontier = result.frontier
        assert frontier, "expected a non-empty frontier"
        for row in frontier:
            assert not any(dominates(other, row) for other in result.evaluated)
        csv_rows = explore_csv_rows(result)
        assert len(csv_rows) == len(result.evaluated)
        marked = {r["cand_id"] for r in csv_rows if r["on_frontier"]}
        assert marked == {r["cand_id"] for r in frontier}

    def test_accuracy_none_drops_the_axis(self, fresh_cache):
        result, _ = explore_run(_request(accuracy="none"))
        assert all(row["accuracy"] is None for row in result.evaluated)
        # Without accuracy the 4- and 8-bit twins collapse to cost only.
        result_proxy, _ = explore_run(_request())
        assert len(result_proxy.frontier) >= len(result.frontier)

    def test_halving_keeps_ceil_n_over_eta(self, fresh_cache):
        obs = Registry()
        result, _ = explore_run(_request(strategy="halving", eta=4), obs=obs)
        _assert_reconciles(obs)
        assert len(result.evaluated) == 2  # ceil(8/4)
        assert _counter(obs, "explore/refined") == 2
        assert _counter(obs, "explore/refine_evaluated") == 2
        assert result.rungs == 2

    def test_rejects_unknown_network_strategy_and_eta(self):
        with pytest.raises(ConfigError):
            explore_run(_request(network="lenet5"))
        with pytest.raises(ConfigError):
            explore_run(_request(strategy="anneal"))
        with pytest.raises(ConfigError):
            explore_run(_request(eta=1))

    def test_request_roundtrips_through_json_dict(self):
        from repro.harness.serialize import to_jsonable

        req = _request(budget_mm2=3.5, strategy="halving", max_candidates=10)
        again = ExploreRequest.from_dict(to_jsonable(req.to_dict()))
        assert again == req
        with pytest.raises(ConfigError):
            ExploreRequest.from_dict({"network": "alexnet", "warp": 9})


class TestReproducibility:
    def test_cold_warm_byte_identity_and_speedup(self, tmp_path):
        cache_dir = tmp_path / "cache"
        try:
            set_active(SimCache(root=cache_dir))
            t0 = time.perf_counter()
            obs_cold = Registry()
            _, cold = explore_run(_request(), obs=obs_cold)
            cold_s = time.perf_counter() - t0
            assert _counter(obs_cold, "explore/cache_hits") == 0

            # A fresh SimCache instance: memory layer empty, disk warm.
            set_active(SimCache(root=cache_dir))
            t0 = time.perf_counter()
            obs_warm = Registry()
            _, warm = explore_run(_request(), obs=obs_warm)
            warm_s = time.perf_counter() - t0
        finally:
            set_active(None)

        assert canonical_envelope_bytes(cold) == canonical_envelope_bytes(warm)
        _assert_reconciles(obs_warm)
        assert _counter(obs_warm, "explore/evaluated") == 0
        assert _counter(obs_warm, "explore/cache_hits") == len(
            [r for r in cold["result"]["evaluated"]]
        )
        assert warm_s * 5 <= cold_s, (
            f"warm re-exploration took {warm_s:.3f}s vs cold {cold_s:.3f}s — "
            "expected at least a 5x speedup from the simcache"
        )

    def test_inline_and_run_dir_envelopes_agree(self, tmp_path, fresh_cache):
        _, inline = explore_run(_request())
        _, rundir = explore_run(_request(), run_dir=tmp_path / "run")
        assert canonical_envelope_bytes(inline) == canonical_envelope_bytes(rundir)
        disk = load_json(tmp_path / "run" / "envelope.json")
        assert canonical_envelope_bytes(disk) == canonical_envelope_bytes(inline)
        assert is_explore_run(tmp_path / "run")
        assert not is_explore_run(tmp_path)

    def test_resume_of_a_finished_run_is_idempotent(self, tmp_path, fresh_cache):
        _, first = explore_run(_request(), run_dir=tmp_path / "run")
        result, second = explore_resume(tmp_path / "run")
        assert canonical_envelope_bytes(first) == canonical_envelope_bytes(second)
        assert result.network == "alexnet"

    def test_marker_mismatch_is_refused(self, tmp_path, fresh_cache):
        explore_run(_request(), run_dir=tmp_path / "run")
        with pytest.raises(ArtifactIntegrityError):
            explore_run(_request(budget_mm2=9.9), run_dir=tmp_path / "run")

    def test_resume_requires_a_marker(self, tmp_path):
        with pytest.raises(ArtifactIntegrityError):
            explore_resume(tmp_path)


class TestKillResumeCLI:
    def test_explore_kill_resume_byte_identical(self, tmp_path):
        run_dir = tmp_path / "run"
        argv = [
            "explore", "alexnet", "--seed", "7", "--no-cache",
            "--clusters", "4", "8", "--groups", "6", "--buffers-kib", "96", "384",
            "--ratios", "0.01", "--acc-bits", "16", "--act-bits", "4", "8",
        ]
        killed = _repro(
            *argv, "--run-dir", str(run_dir),
            env=dict(CLI_ENV, **{KILL_AFTER_ENV: "3"}),
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert len(list((run_dir / "rungs" / "0" / "cells").glob("*.json"))) == 3
        assert not (run_dir / "envelope.json").exists()

        resumed = _repro("resume", str(run_dir), "--no-cache")
        assert resumed.returncode == 0, resumed.stderr
        envelope = load_json(run_dir / "envelope.json")

        reference = _repro(*argv, "--json", str(tmp_path / "ref.json"))
        assert reference.returncode == 0, reference.stderr
        ref = load_json(tmp_path / "ref.json")
        assert canonical_envelope_bytes(envelope) == canonical_envelope_bytes(ref)

    def test_resume_dispatches_on_the_marker(self, tmp_path):
        # A directory without explore.json falls through to sweep resume,
        # which rejects it for having no manifest.
        proc = _repro("resume", str(tmp_path))
        assert proc.returncode == 2
        assert "manifest" in proc.stderr


class TestExploreCLI:
    def test_unknown_network_and_strategy_exit_2(self, capsys):
        assert main(["explore", "lenet5"]) == 2
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(["explore", "alexnet", "--strategy", "anneal"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_explore_writes_json_and_csv(self, tmp_path, capsys, fresh_cache):
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code = main([
            "explore", "alexnet", "--seed", "7",
            "--clusters", "4", "--groups", "6", "--buffers-kib", "96",
            "--ratios", "0.03", "--acc-bits", "24",
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        envelope = load_json(json_path)
        assert envelope["schema"] == EXPLORE_SCHEMA
        assert envelope["volatile"] == ["run_id", "created"]
        assert envelope["result"]["evaluated"]
        from repro.harness.serialize import load_csv

        rows = load_csv(csv_path)
        assert rows and "on_frontier" in rows[0]

    def test_marker_file_name_is_stable(self, tmp_path, fresh_cache):
        # docs and the resume dispatch both rely on the literal name.
        explore_run(_request(), run_dir=tmp_path / "run")
        assert (tmp_path / "run" / EXPLORE_MARKER).exists()
