"""Correctness tests for the persistent simulation cache (``simcache``).

Covers the PR 5 cache guarantees: keys flip on every semantic input
(accelerator config, fault plan, code-version salt), corrupt entries
are structured misses that recompute rather than return wrong results,
cold / warm / ``--no-cache`` envelopes are byte-identical, concurrent
workers can share one cache directory, the ``simcache/*`` counters
reconcile exactly, and a warm fault sweep beats the cold compute by a
wide margin.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.cli import main
from repro.harness.faults import fault_rate_cell, fault_width_cell
from repro.harness.experiments import breakdown_experiment, simulate_cell
from repro.harness.resilience import canonical_envelope_bytes
from repro.harness.serialize import load_json
from repro.harness import simcache as simcache_mod
from repro.harness.simcache import (
    CACHE_DIR_ENV,
    CODE_VERSION,
    NO_CACHE_ENV,
    SIMCACHE_SCHEMA,
    SimCache,
    cache_key,
    get_active,
    set_active,
)
from repro.obs import Registry


@pytest.fixture(autouse=True)
def _isolated_cache_env():
    """Snapshot/restore the cache env vars and the process-wide pin.

    ``main()`` mutates ``REPRO_CACHE_DIR``/``REPRO_NO_CACHE`` and the
    module memoizes the env-resolved cache; every test starts and ends
    from a clean slate so ordering cannot leak state.
    """
    saved = {name: os.environ.get(name) for name in (CACHE_DIR_ENV, NO_CACHE_ENV)}
    set_active(None)
    simcache_mod._env_cache = None
    simcache_mod._env_snapshot = None
    yield
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    set_active(None)
    simcache_mod._env_cache = None
    simcache_mod._env_snapshot = None


def _snap(obs: Registry, name: str) -> int:
    return obs.snapshot().get(f"simcache/{name}", 0)


# ---------------------------------------------------------------------------
# key schema
# ---------------------------------------------------------------------------


def test_cache_key_flips_on_every_component_and_salt():
    base = {
        "cell": "fault_rate",
        "network": "alexnet",
        "ratio": 0.03,
        "fault_plan": {"rate": 1e-3, "model": "bitflip", "seed": 0},
    }
    key = cache_key(base)
    assert key == cache_key(dict(base))  # deterministic
    for variant in (
        {**base, "network": "vgg16"},
        {**base, "ratio": 0.05},
        {**base, "fault_plan": {"rate": 1e-2, "model": "bitflip", "seed": 0}},
        {**base, "fault_plan": {"rate": 1e-3, "model": "stuck0", "seed": 0}},
        {**base, "fault_plan": {"rate": 1e-3, "model": "bitflip", "seed": 1}},
    ):
        assert cache_key(variant) != key
    # the code-version salt alone invalidates every entry
    assert cache_key(base, code_version=CODE_VERSION + "-next") != key


def test_simulate_cell_key_flips_on_accelerator_config(tmp_path):
    # olaccel16 vs olaccel8 differ only through the accelerator id and
    # its config dataclass — distinct cells, two misses, zero hits
    obs = Registry()
    cache = SimCache(root=tmp_path, obs=obs)
    simulate_cell("olaccel16", "alexnet", cache=cache)
    simulate_cell("olaccel8", "alexnet", cache=cache)
    assert _snap(obs, "misses") == 2
    assert _snap(obs, "hits") == 0
    # the same cell again is a pure hit
    simulate_cell("olaccel16", "alexnet", cache=cache)
    assert _snap(obs, "misses") == 2
    assert _snap(obs, "hits") == 1


def test_fault_cells_key_on_the_full_fault_plan(tmp_path):
    obs = Registry()
    cache = SimCache(root=tmp_path, obs=obs)
    fault_rate_cell("alexnet", 0.0, cache=cache)
    fault_rate_cell("alexnet", 1e-3, cache=cache)            # rate flips
    fault_rate_cell("alexnet", 1e-3, seed=1, cache=cache)    # seed flips
    fault_rate_cell("alexnet", 1e-3, model="stuck0", cache=cache)
    fault_width_cell("alexnet", 24, cache=cache)             # accumulator key
    fault_width_cell("alexnet", 16, cache=cache)             # width flips
    assert _snap(obs, "misses") == 6
    assert _snap(obs, "hits") == 0
    fault_rate_cell("alexnet", 1e-3, cache=cache)
    fault_width_cell("alexnet", 24, cache=cache)
    assert _snap(obs, "hits") == 2
    assert _snap(obs, "misses") == 6


# ---------------------------------------------------------------------------
# integrity: corrupt entries are misses, never wrong results
# ---------------------------------------------------------------------------


def _single_entry_path(root):
    paths = [p for shard in root.iterdir() if shard.is_dir() for p in shard.glob("*.json")]
    assert len(paths) == 1
    return paths[0]


def test_corrupt_entry_warns_counts_and_recomputes(tmp_path):
    components = {"cell": "unit", "x": 1}
    first = SimCache(root=tmp_path)
    value = first.memoize(components, lambda: {"answer": 42})
    path = _single_entry_path(tmp_path)

    # torn write: truncate mid-document
    path.write_text(path.read_text()[:40])
    obs = Registry()
    fresh = SimCache(root=tmp_path, obs=obs)
    with pytest.warns(RuntimeWarning, match="integrity"):
        recomputed = fresh.memoize(components, lambda: {"answer": 42})
    assert recomputed == value == {"answer": 42}
    assert _snap(obs, "corrupt") == 1
    assert _snap(obs, "misses") == 1 and _snap(obs, "hits") == 0
    # the recompute re-stored a good entry; the next fresh cache hits
    assert _snap(obs, "stores") == 1
    assert SimCache(root=tmp_path).memoize(components, lambda: {"answer": -1}) == value


def test_flipped_payload_bit_fails_digest_verification(tmp_path):
    components = {"cell": "unit", "x": 2}
    SimCache(root=tmp_path).memoize(components, lambda: {"answer": 42})
    path = _single_entry_path(tmp_path)
    path.write_text(path.read_text().replace('"answer": 42', '"answer": 43'))
    obs = Registry()
    with pytest.warns(RuntimeWarning, match="integrity"):
        result = SimCache(root=tmp_path, obs=obs).memoize(
            components, lambda: {"answer": 42}
        )
    assert result == {"answer": 42}  # never the tampered 43
    assert _snap(obs, "corrupt") == 1


def test_wrong_schema_or_key_treated_as_corrupt(tmp_path):
    from repro.harness.serialize import save_json

    components = {"cell": "unit", "x": 3}
    cache = SimCache(root=tmp_path)
    cache.memoize(components, lambda: {"answer": 42})
    path = _single_entry_path(tmp_path)
    doc = load_json(path, verify=True)
    doc["schema"] = "repro.simcache/v0"
    save_json(doc, path)  # valid digest, wrong schema
    obs = Registry()
    with pytest.warns(RuntimeWarning, match="schema or key"):
        result = SimCache(root=tmp_path, obs=obs).memoize(
            components, lambda: {"answer": 42}
        )
    assert result == {"answer": 42}
    assert _snap(obs, "corrupt") == 1


# ---------------------------------------------------------------------------
# counters reconcile; memory layer is bounded
# ---------------------------------------------------------------------------


def test_counters_reconcile_exactly(tmp_path):
    obs = Registry()
    cache = SimCache(root=tmp_path, obs=obs)
    for x in (1, 2, 1, 3, 2, 1):
        cache.memoize({"x": x}, lambda x=x: x * x)
    bypass = SimCache(root=tmp_path, enabled=False, obs=obs)
    for x in (1, 9):
        bypass.memoize({"x": x}, lambda x=x: x * x)
    snap = obs.snapshot()
    assert snap["simcache/lookups"] == 8
    assert snap["simcache/hits"] == 3
    assert snap["simcache/misses"] == 3
    assert snap["simcache/bypassed"] == 2
    assert snap["simcache/lookups"] == (
        snap["simcache/hits"] + snap["simcache/misses"] + snap["simcache/bypassed"]
    )
    assert snap["simcache/stores"] == 3


def test_memory_layer_is_lru_bounded(tmp_path):
    obs = Registry()
    cache = SimCache(root=None, obs=obs, memory_entries=2)
    cache.memoize({"x": 1}, lambda: 1)
    cache.memoize({"x": 2}, lambda: 2)
    cache.memoize({"x": 1}, lambda: -1)  # hit refreshes recency
    cache.memoize({"x": 3}, lambda: 3)  # evicts x=2, not x=1
    assert len(cache._memory) == 2
    assert _snap(obs, "evictions") == 1
    assert cache.memoize({"x": 1}, lambda: -1) == 1  # survived (refreshed)
    assert cache.memoize({"x": 2}, lambda: 22) == 22  # was evicted, recomputes


def test_hits_return_fresh_copies_never_aliases(tmp_path):
    cache = SimCache(root=tmp_path)
    first = cache.memoize({"x": 1}, lambda: {"nested": [1, 2]})
    first["nested"].append(99)
    second = cache.memoize({"x": 1}, lambda: {"nested": [1, 2]})
    assert second == {"nested": [1, 2]}


# ---------------------------------------------------------------------------
# maintenance: stats / clear / prune
# ---------------------------------------------------------------------------


def test_stats_clear_and_mtime_lru_prune(tmp_path):
    obs = Registry()
    cache = SimCache(root=tmp_path, obs=obs)
    for x in range(4):
        cache.memoize({"x": x}, lambda x=x: {"payload": "p" * 100, "x": x})
        path = cache.entry_path(cache.key({"x": x}))
        os.utime(path, (x + 1, x + 1))  # deterministic mtime order
    stats = cache.stats()
    assert stats["entries"] == 4 and stats["bytes"] > 0
    entry_bytes = stats["bytes"] // 4

    removed, remaining = cache.prune(max_bytes=entry_bytes * 2)
    assert removed == 2 and remaining <= entry_bytes * 2
    assert _snap(obs, "evictions") == 2
    # the two oldest mtimes went first
    assert not cache.entry_path(cache.key({"x": 0})).exists()
    assert not cache.entry_path(cache.key({"x": 1})).exists()
    assert cache.entry_path(cache.key({"x": 3})).exists()

    assert cache.clear() == 2
    assert cache.stats()["entries"] == 0
    assert cache.stats()["memory_entries"] == 0


def test_cache_cli_verb(tmp_path, capsys):
    root = tmp_path / "cache"
    assert main(["faults", "alexnet", "--rates", "0", "--widths", "24",
                 "--cache-dir", str(root)]) == 0
    assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "2 entries" in out
    assert main(["cache", "prune", "--cache-dir", str(root), "--max-bytes", "0"]) == 0
    assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
    assert "0 entries" in capsys.readouterr().out
    os.environ.pop(CACHE_DIR_ENV, None)  # earlier --cache-dir set the env
    assert main(["cache", "stats"]) == 2  # no dir anywhere → usage error


# ---------------------------------------------------------------------------
# envelope byte-identity: cold == warm == --no-cache
# ---------------------------------------------------------------------------


def test_cold_warm_and_nocache_envelopes_byte_identical(tmp_path):
    root = tmp_path / "cache"
    args = ["faults", "alexnet", "--rates", "0", "1e-3", "--widths", "24"]
    envelopes = {}
    for label, extra in (
        ("cold", ["--cache-dir", str(root)]),
        ("warm", ["--cache-dir", str(root)]),
        ("nocache", ["--no-cache"]),
    ):
        out = tmp_path / f"{label}.json"
        assert main(args + extra + ["--json", str(out)]) == 0
        envelopes[label] = canonical_envelope_bytes(load_json(out))
    assert envelopes["cold"] == envelopes["warm"] == envelopes["nocache"]


def test_once_per_invocation_within_one_experiment(tmp_path):
    # repeated cells inside a single invocation simulate exactly once,
    # even with no --cache-dir (the memory layer covers it)
    obs = Registry()
    set_active(SimCache(root=None, obs=obs))
    breakdown_experiment("alexnet")
    misses_first = _snap(obs, "misses")
    assert misses_first > 0 and _snap(obs, "hits") == 0
    breakdown_experiment("alexnet")
    assert _snap(obs, "misses") == misses_first  # nothing recomputed
    assert _snap(obs, "hits") == misses_first


# ---------------------------------------------------------------------------
# concurrency: --jobs workers share one cache directory
# ---------------------------------------------------------------------------


def _race_worker(args):
    root, rate = args
    cache = SimCache(root=root)
    return fault_rate_cell("alexnet", rate, cache=cache)


def test_concurrent_writers_share_a_cache_dir(tmp_path):
    # four processes race to compute and store the SAME cell; atomic
    # temp+fsync+rename writes mean the entry is always whole
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(4) as pool:
        rows = pool.map(_race_worker, [(str(tmp_path), 1e-3)] * 4)
    assert all(row == rows[0] for row in rows)
    # the stored entry verifies and serves a fresh process as a hit
    obs = Registry()
    served = SimCache(root=tmp_path, obs=obs).memoize(
        {"cell": "fault_rate", "network": "alexnet", "ratio": 0.03,
         "case": {"in_c": 32, "out_c": 32, "kernel": 3, "size": 8, "batch": 2},
         "fault_plan": {"rate": 1e-3, "model": "bitflip", "seed": 0},
         "policy": "degrade"},
        lambda: pytest.fail("warm lookup must not recompute"),
    )
    assert served == rows[0]
    assert _snap(obs, "hits") == 1


def test_jobs_workers_resolve_cache_from_env(tmp_path):
    # the CLI propagates --cache-dir via REPRO_CACHE_DIR; worker
    # processes resolve it through get_active()
    os.environ[CACHE_DIR_ENV] = str(tmp_path)
    os.environ.pop(NO_CACHE_ENV, None)
    simcache_mod._env_cache = None
    resolved = get_active()
    assert resolved.root == tmp_path and resolved.enabled
    os.environ[NO_CACHE_ENV] = "1"
    assert not get_active().enabled  # env change re-resolves


# ---------------------------------------------------------------------------
# the headline: warm replay beats cold compute
# ---------------------------------------------------------------------------


def test_warm_fault_sweep_at_least_5x_faster_than_cold(tmp_path):
    rates = (1e-3, 1e-2)
    t0 = time.perf_counter()
    for rate in rates:
        fault_rate_cell("alexnet", rate, cache=SimCache(root=tmp_path))
    cold_s = time.perf_counter() - t0

    warm_s = min(
        _timed_warm_sweep(tmp_path, rates) for _ in range(3)
    )
    assert warm_s * 5 < cold_s, f"warm {warm_s:.4f}s vs cold {cold_s:.4f}s"


def _timed_warm_sweep(root, rates):
    cache = SimCache(root=root)  # fresh: timing covers verified disk reads
    t0 = time.perf_counter()
    for rate in rates:
        fault_rate_cell("alexnet", rate, cache=cache)
    return time.perf_counter() - t0


# ---------------------------------------------------------------------------
# layer-granularity memoization
# ---------------------------------------------------------------------------


def _layer_snap(obs: Registry, name: str) -> int:
    return obs.snapshot().get(f"simcache/layer_{name}", 0)


def test_layer_memo_cold_warm_nocache_byte_identical(tmp_path):
    from repro.harness.experiments import _simulator, simulate_network_layered
    from repro.harness.workloads import paper_workload

    runs = {
        "cold": simulate_network_layered("olaccel16", "alexnet", cache=SimCache(root=tmp_path)),
        "warm": simulate_network_layered("olaccel16", "alexnet", cache=SimCache(root=tmp_path)),
        "nocache": simulate_network_layered("olaccel16", "alexnet", cache=SimCache(enabled=False)),
        "serial": _simulator("olaccel16", "alexnet", 0.03).simulate_network(
            paper_workload("alexnet", ratio=0.03)
        ),
    }
    blobs = {k: json.dumps(r.to_dict(), sort_keys=True) for k, r in runs.items()}
    assert blobs["cold"] == blobs["warm"] == blobs["nocache"] == blobs["serial"]


def test_layer_memo_single_layer_flip_recomputes_exactly_one(tmp_path):
    from dataclasses import replace

    from repro.harness.experiments import simulate_network_layered
    from repro.harness.workloads import paper_workload

    workload = paper_workload("alexnet", ratio=0.03)
    n_layers = len(workload.layers)
    simulate_network_layered("olaccel16", "alexnet", cache=SimCache(root=tmp_path))

    flipped = replace(workload.layers[1], out_channels=workload.layers[1].out_channels * 2)
    tweaked = replace(workload, layers=(workload.layers[0], flipped) + workload.layers[2:])
    obs = Registry()
    simulate_network_layered(
        "olaccel16", "alexnet", cache=SimCache(root=tmp_path, obs=obs), workload=tweaked
    )
    assert _layer_snap(obs, "lookups") == n_layers
    assert _layer_snap(obs, "hits") == n_layers - 1
    assert _layer_snap(obs, "misses") == 1
    # an accelerator config change flips every layer key
    obs8 = Registry()
    simulate_network_layered("olaccel8", "alexnet", cache=SimCache(root=tmp_path, obs=obs8))
    assert _layer_snap(obs8, "hits") == 0
    assert _layer_snap(obs8, "misses") == n_layers


def test_layer_memo_counters_reconcile_and_stay_disjoint(tmp_path):
    from repro.harness.workloads import paper_workload

    n_layers = len(paper_workload("alexnet", ratio=0.03).layers)
    obs = Registry()
    cache = SimCache(root=tmp_path, obs=obs)
    simulate_cell("olaccel16", "alexnet", cache=cache)  # cold: cell miss -> layer misses
    simulate_cell("olaccel16", "alexnet", cache=cache)  # warm: cell hit, layers untouched

    # the cell-level set reconciles on its own
    assert _snap(obs, "lookups") == _snap(obs, "hits") + _snap(obs, "misses") + _snap(obs, "bypassed")
    assert _snap(obs, "lookups") == 2 and _snap(obs, "hits") == 1 and _snap(obs, "misses") == 1
    # the layer-level set reconciles on its own, untouched by the cell hit
    assert _layer_snap(obs, "lookups") == (
        _layer_snap(obs, "hits") + _layer_snap(obs, "misses") + _layer_snap(obs, "bypassed")
    )
    assert _layer_snap(obs, "lookups") == _layer_snap(obs, "misses") == n_layers
    # stores are shared across granularities: one cell entry + n layer entries
    assert _snap(obs, "stores") == n_layers + 1


def test_layer_memo_disabled_cache_counts_bypasses(tmp_path):
    from repro.harness.experiments import simulate_network_layered
    from repro.harness.workloads import paper_workload

    n_layers = len(paper_workload("alexnet", ratio=0.03).layers)
    obs = Registry()
    simulate_network_layered("olaccel16", "alexnet", cache=SimCache(enabled=False, obs=obs))
    assert _layer_snap(obs, "bypassed") == _layer_snap(obs, "lookups") == n_layers
    assert _layer_snap(obs, "hits") == _layer_snap(obs, "misses") == 0
