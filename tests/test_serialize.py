"""Tests for result serialization (repro.harness.serialize)."""

import numpy as np
import pytest

from repro.arch import EnergyBreakdown
from repro.arch.stats import LayerStats, RunStats
from repro.harness import breakdown_experiment, fig17_multi_outlier
from repro.harness.serialize import load_json, run_stats_rows, save_csv, save_json, to_jsonable


def make_run():
    run = RunStats(accelerator="olaccel16", network="testnet")
    run.add(LayerStats("conv1", cycles=100.0, energy=EnergyBreakdown(1, 2, 3, 4), macs=1000))
    run.add(LayerStats("conv2", cycles=50.0, energy=EnergyBreakdown(5, 6, 7, 8), macs=500))
    return run


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = to_jsonable({"a": np.float64(1.5), "b": np.int32(2), "c": np.arange(3)})
        assert out == {"a": 1.5, "b": 2, "c": [0, 1, 2]}

    def test_dataclasses(self):
        out = to_jsonable(EnergyBreakdown(dram=1.0, buffer=2.0))
        assert out["dram"] == 1.0 and out["local"] == 0.0

    def test_tuple_keys_joined(self):
        out = to_jsonable({("olaccel16", 4): [1.0]})
        assert out == {"olaccel16/4": [1.0]}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_experiment_results_serialize(self):
        """Real experiment payloads pass through without error."""
        to_jsonable(fig17_multi_outlier(ratios=(0.01,), lane_counts=(16,)))
        result = breakdown_experiment("alexnet")
        to_jsonable({"cycles": result.normalized_cycles(), "energy": result.normalized_energy()})


class TestFiles:
    def test_json_roundtrip(self, tmp_path):
        payload = {"x": 1, "y": [1.5, 2.5]}
        path = save_json(payload, tmp_path / "out.json")
        assert load_json(path) == payload

    def test_run_stats_rows(self):
        rows = run_stats_rows(make_run())
        assert len(rows) == 2
        assert rows[0]["layer"] == "conv1"
        assert rows[0]["energy_total_pj"] == 10.0
        assert rows[1]["accelerator"] == "olaccel16"

    def test_csv_writes_header_and_rows(self, tmp_path):
        path = save_csv(run_stats_rows(make_run()), tmp_path / "runs.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("accelerator,")

    def test_csv_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv([], tmp_path / "empty.csv")

    def test_nested_directory_created(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "deep" / "dir" / "out.json")
        assert path.exists()
