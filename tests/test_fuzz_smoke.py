"""Fixed-seed smoke sample of the differential datapath fuzzer.

``tools/fuzz_datapath.py`` stays the high-volume standalone entry point
(CI runs it at 200 iterations); this test keeps a small deterministic
sample of the same three-way property inside the tier-1 suite so a
datapath regression is caught by ``pytest`` alone.

Each iteration draws its case from an independent ``default_rng([SEED,
i])`` stream, so a failure message's ``(iteration, seed)`` pair is
enough to reproduce that exact case in isolation.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from fuzz_datapath import check_case, random_case  # noqa: E402

SEED = 20260805
ITERATIONS = 25


def test_fuzz_smoke_three_way_agreement():
    failures = []
    for i in range(ITERATIONS):
        rng = np.random.default_rng([SEED, i])
        acts, weights, stride, pad = random_case(rng)
        error = check_case(acts, weights, stride, pad)
        if error:
            failures.append(
                f"iteration={i} seed={SEED} "
                f"(reproduce: random_case(np.random.default_rng([{SEED}, {i}]))): {error}"
            )
    assert not failures, "\n".join(failures)
