"""Golden regression fixtures: cycle counts and energy breakdowns for the
paper-spec AlexNet/VGG-16/ResNet-18 workloads on every accelerator.

The fixtures (``tests/golden/*.json``) pin the analytic simulators'
outputs so an accidental model change shows up as a diff, not a silent
drift. After an *intentional* model change, refresh them with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

and review the JSON diff in the commit (docs/PERFORMANCE.md documents the
workflow).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.experiments import breakdown_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"
NETWORKS = ("alexnet", "vgg16", "resnet18")
RATIO = 0.03
#: comfortably above float noise, far below any real model change
REL_TOL = 1e-9


def _compute(network: str) -> dict:
    result = breakdown_experiment(network, ratio=RATIO)
    accelerators = {}
    for kind, run in result.runs.items():
        energy = run.total_energy
        accelerators[kind] = {
            "total_cycles": run.total_cycles,
            "energy": {
                "dram": energy.dram,
                "buffer": energy.buffer,
                "local": energy.local,
                "logic": energy.logic,
                "total": energy.total,
            },
            "layer_cycles": {layer.layer_name: layer.cycles for layer in run.layers},
        }
    return {
        "schema": "repro.golden/v1",
        "network": network,
        "ratio": RATIO,
        "accelerators": accelerators,
    }


def _assert_matches(golden, actual, path=""):
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert set(golden) == set(actual), f"{path}: keys differ"
        for key in golden:
            _assert_matches(golden[key], actual[key], f"{path}/{key}")
    elif isinstance(golden, (int, float)) and not isinstance(golden, bool):
        assert actual == pytest.approx(golden, rel=REL_TOL), path
    else:
        assert golden == actual, path


@pytest.mark.parametrize("network", NETWORKS)
def test_golden_breakdown(network, request):
    fixture = GOLDEN_DIR / f"{network}.json"
    actual = _compute(network)
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        fixture.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"updated {fixture}")
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; generate it with "
        "`PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden`"
    )
    golden = json.loads(fixture.read_text())
    _assert_matches(golden, actual)
