"""Tests for the distributed sweep coordination layer (docs/COORD.md).

Covers the lease protocol itself (atomic claims, heartbeats, fencing
tokens, rename-CAS steals), the clock-skew guarantee (expiry is
observation-based on each worker's own monotonic clock — wall clocks
never participate), first-durable-record-wins double-completion
handling, the exactly-reconciling ``coord/*`` counters, ``repro
status``/``repro work`` CLI surfaces, the parse-time lease-knob
validation, and the satellite fixes (prune race tolerance, the
config-mismatch diff in resume errors).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ArtifactIntegrityError, LeaseError, ReproError, StaleOwnerError
from repro.harness.coord import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    LEASE_SCHEMA,
    CellCoordinator,
    Lease,
    LeaseManager,
    default_owner_id,
    safe_cell_filename,
)
from repro.harness.resilience import (
    PLAN_ASSEMBLERS,
    CellSpec,
    RetryPolicy,
    RunDir,
    SweepPlan,
    effective_lease_ttl,
    execute_sweep,
    register_cell_runner,
    resume_run,
    status_run,
    work_run,
)
from repro.harness.serialize import load_json, save_json
from repro.harness.simcache import SimCache
from repro.obs import Registry


# ---------------------------------------------------------------------------
# Synthetic cells (registered at import time so forked workers inherit).
# ---------------------------------------------------------------------------


def _cell_double(params):
    return {"value": params["x"] * 2}


register_cell_runner("c_ok", _cell_double)


class _RowsResult(dict):
    """Dict result with the ``format()`` the CLI drain path expects."""

    def format(self):
        return f"{len(self['rows'])} ok, {len(self['failed'])} failed"


def _rows(plan, records):
    return _RowsResult(
        rows={c: r["result"] for c, r in records.items() if r.get("status") == "ok"},
        failed=sorted(c for c, r in records.items() if r.get("status") != "ok"),
    )


PLAN_ASSEMBLERS["coordplan"] = _rows


def _plan(n=3, seed=0):
    return SweepPlan(
        plan="coordplan",
        experiment="coordplan",
        description="coordination cells",
        seed=seed,
        params={},
        cells=[CellSpec(f"cell{i}", "c_ok", {"x": i}) for i in range(n)],
    )


class _FakeClock:
    """An injectable monotonic clock a test can advance by hand."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _manager(root, owner, clock=None, ttl=5.0, obs=None, **kw):
    return LeaseManager(
        root,
        owner=owner,
        ttl_s=ttl,
        heartbeat_s=0.1,
        obs=obs if obs is not None else Registry(),
        clock=clock if clock is not None else _FakeClock(),
        **kw,
    )


# ---------------------------------------------------------------------------
# Lease mechanics
# ---------------------------------------------------------------------------


class TestLeaseManager:
    def test_claim_creates_schema_valid_lease_file(self, tmp_path):
        mgr = _manager(tmp_path, "a")
        lease = mgr.try_claim("cell0")
        assert lease is not None and mgr.holds("cell0")
        doc = load_json(mgr.lease_path("cell0"))
        assert doc["schema"] == LEASE_SCHEMA
        assert doc["owner"] == "a" and doc["token"] == 1
        assert doc["cell_id"] == "cell0"

    def test_fresh_claim_is_exclusive(self, tmp_path):
        a, b = _manager(tmp_path, "a"), _manager(tmp_path, "b")
        assert a.try_claim("cell0") is not None
        assert b.try_claim("cell0") is None
        assert b.obs.counter("coord/contention").value == 1

    def test_release_unlinks_only_our_lease(self, tmp_path):
        a = _manager(tmp_path, "a")
        a.try_claim("cell0")
        a.release("cell0", "completed")
        assert not a.lease_path("cell0").exists()
        # a second release of a cell we no longer hold is a no-op
        a.release("cell0", "completed")
        assert a.obs.counter("coord/completed").value == 1

    def test_release_rejects_unknown_outcome(self, tmp_path):
        a = _manager(tmp_path, "a")
        with pytest.raises(LeaseError):
            a.release("cell0", "misplaced")

    def test_heartbeat_renews_and_counts(self, tmp_path):
        clock = _FakeClock()
        a = _manager(tmp_path, "a", clock=clock)
        a.try_claim("cell0")
        clock.advance(0.5)
        lease = a.heartbeat("cell0")
        assert lease.heartbeats == 1
        assert lease.elapsed_s == pytest.approx(0.5, abs=0.01)
        doc = load_json(a.lease_path("cell0"))
        assert doc["heartbeats"] == 1

    def test_heartbeat_without_claim_raises(self, tmp_path):
        a = _manager(tmp_path, "a")
        with pytest.raises(LeaseError, match="does not hold"):
            a.heartbeat("cell0")

    def test_heartbeat_after_steal_raises_stale_owner(self, tmp_path):
        clock_a, clock_b = _FakeClock(), _FakeClock()
        a = _manager(tmp_path, "a", clock=clock_a, ttl=1.0)
        b = _manager(tmp_path, "b", clock=clock_b, ttl=1.0)
        a.try_claim("cell0")
        assert b.try_claim("cell0") is None  # starts b's staleness clock
        clock_b.advance(5.0)  # a never renews: stale on b's clock
        stolen = b.try_claim("cell0")
        assert stolen is not None and stolen.token == 2
        with pytest.raises(StaleOwnerError) as err:
            a.heartbeat("cell0")
        assert "b" in str(err.value)
        # the raise did not settle the claim; a still decides via release
        assert a.holds("cell0")
        a.release("cell0", "expired")
        assert a.obs.counter("coord/expired").value == 1

    def test_steal_is_fenced_by_token(self, tmp_path):
        clock_b = _FakeClock()
        a = _manager(tmp_path, "a", ttl=1.0)
        b = _manager(tmp_path, "b", clock=clock_b, ttl=1.0)
        a.try_claim("cell0")
        b.try_claim("cell0")
        clock_b.advance(3.0)
        assert b.try_claim("cell0").token == 2
        # a's release must not remove b's (re-owned, higher-token) lease
        a.release("cell0", "expired")
        assert b.lease_path("cell0").exists()
        assert load_json(b.lease_path("cell0"))["token"] == 2

    def test_corrupt_lease_is_stealable_after_ttl(self, tmp_path):
        clock = _FakeClock()
        b = _manager(tmp_path, "b", clock=clock, ttl=1.0)
        path = b.lease_path("cell0")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all")
        assert b.try_claim("cell0") is None  # corrupt ≠ immediately free
        clock.advance(3.0)
        lease = b.try_claim("cell0")
        assert lease is not None and lease.token == 1
        assert b.obs.counter("coord/stale_detected").value == 1

    def test_reclaim_of_own_lease_is_idempotent(self, tmp_path):
        a = _manager(tmp_path, "a")
        first = a.try_claim("cell0")
        again = a.try_claim("cell0")
        assert again is first
        assert a.obs.counter("coord/claimed").value == 1

    def test_safe_cell_filename_sanitizes(self):
        assert safe_cell_filename("a/b c", ".lease.json") == "a_b_c.lease.json"
        assert safe_cell_filename("rate=1e-3") == "rate=1e-3.json"

    def test_cleanup_sweeps_directory_empty(self, tmp_path):
        a = _manager(tmp_path / "leases", "a")
        a.try_claim("cell0")
        a.try_claim("cell1")
        a.release_all()
        removed = a.cleanup()
        assert removed == 0  # release already unlinked them
        assert not (tmp_path / "leases").exists()


class TestCounterReconciliation:
    def test_every_claim_lands_in_exactly_one_bucket(self, tmp_path):
        obs = Registry()
        clock = _FakeClock()
        a = _manager(tmp_path, "a", clock=clock, ttl=1.0, obs=obs)
        b = _manager(tmp_path, "b", clock=_FakeClock(), ttl=1.0, obs=obs)
        a.try_claim("done")
        a.release("done", "completed")
        a.try_claim("dropped")
        a.release("dropped", "released")
        a.try_claim("stolen")
        b.try_claim("stolen")
        for mgr in (b,):
            mgr.clock.advance(3.0)
        assert b.try_claim("stolen") is not None
        with pytest.raises(StaleOwnerError):
            a.heartbeat("stolen")
        a.release("stolen", "expired")
        b.release("stolen", "completed")
        snap = obs.snapshot()
        assert snap["coord/claimed"] == (
            snap["coord/completed"] + snap["coord/expired"] + snap.get("coord/released", 0)
        )
        assert snap["coord/claimed"] == 4
        assert snap["coord/steals"] == 1


# ---------------------------------------------------------------------------
# Clock skew: expiry never compares wall clocks across workers
# ---------------------------------------------------------------------------


class TestClockSkew:
    """Satellite d: two fake workers with wildly skewed wall clocks.

    Owners ``a``/``b`` are synthetic (not ``host:pid:nonce``), so the
    dead-owner fast path is undecidable and every expiry decision goes
    through the observation clock — the code path these tests pin down.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_absurd_wall_clock_timestamps_do_not_expire_leases(self, tmp_path, seed):
        import random

        rng = random.Random(seed)
        skew = rng.uniform(-1e6, 1e6)  # seconds of wall-clock skew
        b_clock = _FakeClock(start=rng.uniform(0, 1e4))
        a = _manager(tmp_path, "a", ttl=10.0)
        b = _manager(tmp_path, "b", clock=b_clock, ttl=10.0)
        a.try_claim("cell0")
        # rewrite the lease with a wall timestamp from a skewed clock
        doc = load_json(a.lease_path("cell0"))
        doc["claimed_wall"] = f"1970-01-01T00:00:00+00:00 (skew {skew:+.0f}s)"
        save_json(doc, a.lease_path("cell0"))
        assert b.try_claim("cell0") is None  # first sighting, never a steal
        b_clock.advance(5.0)  # under ttl + margin on b's own clock
        assert b.try_claim("cell0") is None
        b_clock.advance(10.0)  # now past ttl + margin of *observation*
        assert b.try_claim("cell0") is not None

    def test_heartbeat_resets_the_observers_staleness_clock(self, tmp_path):
        a_clock, b_clock = _FakeClock(), _FakeClock()
        a = _manager(tmp_path, "a", clock=a_clock, ttl=1.0)
        b = _manager(tmp_path, "b", clock=b_clock, ttl=1.0)
        a.try_claim("cell0")
        assert b.try_claim("cell0") is None
        b_clock.advance(1.5)
        a.heartbeat("cell0")  # fingerprint changes just in time
        assert b.try_claim("cell0") is None  # observation restarts
        b_clock.advance(1.5)
        assert b.try_claim("cell0") is None  # still within new window
        b_clock.advance(1.0)
        assert b.try_claim("cell0") is not None  # silence finally expires it

    def test_observer_never_trusts_the_leases_own_ttl_less_margin(self, tmp_path):
        b_clock = _FakeClock()
        b = _manager(tmp_path, "b", clock=b_clock, ttl=1.0, skew_margin_s=2.0)
        a = _manager(tmp_path, "a", ttl=1.0)
        a.try_claim("cell0")
        assert b.try_claim("cell0") is None
        b_clock.advance(2.5)  # > ttl but <= ttl + margin
        assert b.try_claim("cell0") is None
        b_clock.advance(1.0)
        assert b.try_claim("cell0") is not None


class TestDeadOwnerFastPath:
    def test_same_host_dead_pid_is_stale_immediately(self, tmp_path):
        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()
        dead_owner = f"{socket.gethostname()}:{proc.pid}:deadbe"
        writer = _manager(tmp_path, dead_owner)
        writer.try_claim("cell0")
        thief = _manager(tmp_path, "thief")  # no clock advance at all
        lease = thief.try_claim("cell0")
        assert lease is not None and lease.token == 2
        assert thief.obs.counter("coord/steals").value == 1

    def test_live_same_host_owner_is_not_fast_path_stale(self, tmp_path):
        live_owner = f"{socket.gethostname()}:{os.getpid()}:abc123"
        writer = _manager(tmp_path, live_owner)
        writer.try_claim("cell0")
        thief = _manager(tmp_path, "thief")
        assert thief.try_claim("cell0") is None


# ---------------------------------------------------------------------------
# Double completion: first durable record wins
# ---------------------------------------------------------------------------


class TestWriteCellExclusive:
    def test_first_ok_record_wins_and_duplicate_is_discarded(self, tmp_path):
        rd = RunDir(tmp_path / "run")
        rd.init(_plan(1))
        spec = _plan(1).cells[0]
        first, wrote = rd.write_cell_exclusive(spec, "ok", result={"value": 0})
        assert wrote
        second, wrote = rd.write_cell_exclusive(spec, "ok", result={"value": 0})
        assert not wrote and second == first

    def test_diverging_ok_records_raise_cell_conflict(self, tmp_path):
        rd = RunDir(tmp_path / "run")
        rd.init(_plan(1))
        spec = _plan(1).cells[0]
        rd.write_cell_exclusive(spec, "ok", result={"value": 0})
        with pytest.raises(ArtifactIntegrityError, match="diverging"):
            rd.write_cell_exclusive(spec, "ok", result={"value": 999})

    def test_ok_replaces_failed_but_not_vice_versa(self, tmp_path):
        rd = RunDir(tmp_path / "run")
        rd.init(_plan(1))
        spec = _plan(1).cells[0]
        rd.write_cell_exclusive(spec, "failed", error={"message": "boom"})
        record, wrote = rd.write_cell_exclusive(spec, "ok", result={"value": 0})
        assert wrote and record["status"] == "ok"
        record, wrote = rd.write_cell_exclusive(spec, "failed", error={"message": "boom"})
        assert not wrote and record["status"] == "ok"

    def test_coordinator_counts_duplicates(self, tmp_path):
        obs = Registry()
        rd = RunDir(tmp_path / "run")
        plan = _plan(1)
        rd.init(plan)
        coord = CellCoordinator(rd, owner="w", obs=obs)
        spec = plan.cells[0]
        rd.write_cell(spec, "ok", result={"value": 0})  # another worker won
        assert coord.begin(spec)[0] == "done"
        # a worker that had already launched the cell commits anyway
        coord.leases.try_claim(spec.cell_id)
        coord.commit(spec, "ok", result={"value": 0})
        snap = obs.snapshot()
        assert snap["coord/duplicates"] == 1
        assert snap["coord/claimed"] == snap["coord/completed"]


# ---------------------------------------------------------------------------
# The sweep executor on top of the protocol
# ---------------------------------------------------------------------------


class TestSweepIntegration:
    def test_sweep_leaves_zero_lease_files(self, tmp_path):
        obs = Registry()
        run = tmp_path / "run"
        result, envelope, _, _ = execute_sweep(_plan(3), run, obs=obs)
        assert result["rows"]["cell1"] == {"value": 2}
        assert not (run / "leases").exists()
        snap = obs.snapshot()
        assert snap["coord/claimed"] == 3
        assert snap["coord/claimed"] == snap["coord/completed"]

    def test_second_worker_adopts_completed_cells(self, tmp_path):
        run = tmp_path / "run"
        execute_sweep(_plan(3), run)
        obs = Registry()
        result, _, _, _ = work_run(run, obs=obs)
        assert len(result["rows"]) == 3
        snap = obs.snapshot()
        assert snap.get("coord/claimed", 0) == 0  # nothing left to claim
        assert snap["resilience/cells_skipped"] == 3

    def test_concurrent_worker_contention_defers_not_duplicates(self, tmp_path):
        """A validly-held cell is waited out, then adopted."""
        run = tmp_path / "run"
        plan = _plan(2)
        rd = RunDir(run)
        rd.init(plan)
        # a live foreign worker (this very process) holds cell0
        holder = LeaseManager(rd.leases_dir, owner="peer", ttl_s=30.0)
        holder.try_claim("cell0")
        obs = Registry()
        coord = CellCoordinator(rd, owner="w", obs=obs, heartbeat_s=0.05)
        verdict, payload = coord.begin(plan.cells[0])
        assert verdict == "wait" and payload == pytest.approx(coord.poll_s)
        # the peer finishes and releases; our next begin adopts the record
        rd.write_cell(plan.cells[0], "ok", result={"value": 0})
        holder.release("cell0", "completed")
        verdict, record = coord.begin(plan.cells[0])
        assert verdict == "done" and record["status"] == "ok"

    def test_effective_lease_ttl_scales_past_timeout(self):
        assert effective_lease_ttl(None, None, None) == DEFAULT_LEASE_TTL_S
        assert effective_lease_ttl(12.5, None, None) == 12.5
        long_cells = RetryPolicy(timeout_s=300.0)
        assert effective_lease_ttl(None, None, long_cells) == 300.0 + 2 * DEFAULT_HEARTBEAT_S
        assert effective_lease_ttl(None, 5.0, long_cells) == 310.0

    def test_status_run_reports_records_and_leases(self, tmp_path):
        run = tmp_path / "run"
        plan = _plan(3)
        rd = RunDir(run)
        rd.init(plan)
        rd.write_cell(plan.cells[0], "ok", result={"value": 0})
        holder = LeaseManager(rd.leases_dir, owner="worker-1", ttl_s=9.0)
        holder.try_claim("cell1")
        status = status_run(run)
        states = {c["cell_id"]: c["state"] for c in status["cells"]}
        assert states == {"cell0": "ok", "cell1": "leased", "cell2": "pending"}
        assert status["counts"] == {
            "total": 3, "ok": 1, "failed": 0, "leased": 1, "pending": 1,
        }
        leased = next(c for c in status["cells"] if c["cell_id"] == "cell1")
        assert leased["owner"] == "worker-1" and leased["token"] == 1


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestCoordinationCli:
    def test_status_command_renders_table(self, tmp_path, capsys):
        run = tmp_path / "run"
        execute_sweep(_plan(2), run)
        assert main(["status", str(run)]) == 0
        out = capsys.readouterr().out
        assert "envelope=yes" in out
        assert "cell0" in out and "cell1" in out
        assert "2 ok, 0 failed, 0 leased, 0 pending" in out

    def test_work_command_drains_and_reports_owner(self, tmp_path, capsys):
        run = tmp_path / "run"
        rd = RunDir(run)
        rd.init(_plan(2))
        assert main(["work", str(run)]) == 0
        out = capsys.readouterr().out
        assert "worker " in out and "draining" in out
        assert (run / "envelope.json").exists()

    @pytest.mark.parametrize(
        "argv, needle",
        [
            (["--lease-ttl", "1", "--heartbeat", "2"], "must exceed the --heartbeat"),
            (["--lease-ttl", "5", "--timeout", "10"], "must exceed --timeout"),
        ],
    )
    def test_inconsistent_lease_knobs_exit_2(self, tmp_path, capsys, argv, needle):
        assert main(["work", str(tmp_path / "nowhere"), *argv]) == 2
        assert needle in capsys.readouterr().err

    def test_nonpositive_lease_knobs_rejected_at_parse(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["work", str(tmp_path), "--lease-ttl", "0"])
        assert exc.value.code == 2
        assert "positive" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Satellite fixes
# ---------------------------------------------------------------------------


class TestSatelliteFixes:
    def test_resume_mismatch_names_both_hashes_and_keys(self, tmp_path):
        """Satellite b: the refusal must say *what* differs."""
        run = tmp_path / "run"
        execute_sweep(_plan(2, seed=0), run)
        other = _plan(2, seed=99)
        with pytest.raises(ArtifactIntegrityError) as err:
            execute_sweep(other, run)
        message = str(err.value)
        manifest = load_json(run / "manifest.json")
        assert manifest["config_hash"] in message
        assert other.config_hash() in message
        assert "seed" in message

    def test_prune_tolerates_concurrently_vanishing_entries(self, tmp_path, monkeypatch):
        """Satellite a: a file deleted between stat and unlink is a
        counted skip, not a crash."""
        obs = Registry()
        cache = SimCache(root=tmp_path / "cache", obs=obs)
        for i in range(4):
            cache.memoize({"cell": i}, lambda i=i: {"data": "x" * 256, "i": i})

        real_unlink = Path.unlink
        vanished = []

        def racing_unlink(self, *a, **kw):
            if self.suffix == ".json" and not vanished:
                vanished.append(self)
                real_unlink(self)  # the concurrent worker got there first
                raise FileNotFoundError(str(self))
            return real_unlink(self, *a, **kw)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        removed, remaining = cache.prune(max_bytes=0)
        assert removed == 3  # 4 entries, one vanished mid-prune
        assert remaining == 0
        assert obs.snapshot()["simcache/prune_skipped"] == 1

    def test_prune_tolerates_vanish_before_stat(self, tmp_path, monkeypatch):
        obs = Registry()
        cache = SimCache(root=tmp_path / "cache", obs=obs)
        cache.memoize({"cell": 1}, lambda: {"data": "x" * 64})

        real_stat = Path.stat

        def racing_stat(self, *a, **kw):
            if self.suffix == ".json":
                raise FileNotFoundError(str(self))
            return real_stat(self, *a, **kw)

        monkeypatch.setattr(Path, "stat", racing_stat)
        removed, remaining = cache.prune(max_bytes=0)
        assert removed == 0 and remaining == 0
        assert obs.snapshot()["simcache/prune_skipped"] == 1

    def test_lease_errors_are_repro_errors(self):
        assert issubclass(LeaseError, ReproError)
        assert issubclass(StaleOwnerError, LeaseError)
        err = StaleOwnerError("lost", cell_id="c", owner="a", current_owner="b")
        assert "c" in str(err) and "b" in str(err)
