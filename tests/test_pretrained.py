"""Tests for the trained-model disk cache (repro.harness.pretrained)."""

import numpy as np
import pytest

import repro.harness.pretrained as pretrained
from repro.nn import TrainConfig, build_mini, train_model


class TestCache:
    def test_env_var_overrides_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert pretrained.cache_dir() == tmp_path / "cache"
        assert (tmp_path / "cache").exists()

    def test_dataset_memoized(self):
        a = pretrained.default_dataset()
        b = pretrained.default_dataset()
        assert a is b

    def test_dataset_seed_variants_differ(self):
        a = pretrained.default_dataset(seed=7)
        b = pretrained.default_dataset(seed=8)
        assert not np.allclose(a.train_x, b.train_x)

    def test_state_roundtrip(self, tmp_path, small_dataset):
        """Saving and loading weights reproduces identical predictions."""
        model = build_mini("resnet", num_classes=small_dataset.num_classes)
        train_model(model, small_dataset.train_x[:80], small_dataset.train_y[:80],
                    TrainConfig(epochs=1, lr=0.01))
        path = tmp_path / "state.npz"
        pretrained._save_state(model, path)
        logits_before = model.forward(small_dataset.test_x[:8])

        fresh = build_mini("resnet", num_classes=small_dataset.num_classes)
        pretrained._load_state(fresh, path)
        np.testing.assert_allclose(fresh.forward(small_dataset.test_x[:8]), logits_before)

    def test_state_includes_batchnorm_running_stats(self, tmp_path, small_dataset):
        model = build_mini("resnet", num_classes=small_dataset.num_classes)
        train_model(model, small_dataset.train_x[:40], small_dataset.train_y[:40],
                    TrainConfig(epochs=1, lr=0.01))
        bns = pretrained._batchnorms(model)
        assert bns  # resnet has batch norms
        path = tmp_path / "state.npz"
        pretrained._save_state(model, path)
        fresh = build_mini("resnet", num_classes=small_dataset.num_classes)
        pretrained._load_state(fresh, path)
        for a, b in zip(pretrained._batchnorms(fresh), bns):
            np.testing.assert_allclose(a.running_mean, b.running_mean)
            np.testing.assert_allclose(a.running_var, b.running_var)

    def test_trained_mini_uses_memory_cache(self):
        a = pretrained.trained_mini("alexnet")
        b = pretrained.trained_mini("alexnet")
        assert a is b
