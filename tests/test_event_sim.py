"""Tests for the cycle-stepped cluster simulator (repro.olaccel.event_sim),
including cross-validation against the analytic/exact cycle models."""

import numpy as np
import pytest

from repro.arch import ActivationChunk, WeightChunk
from repro.olaccel import chunk_pass_cycles, expected_pass_costs, schedule_passes
from repro.olaccel.event_sim import ClusterSim, PassDescriptor, PEGroupSim, passes_from_levels


def make_pass(values, spill_lanes=()):
    spill = [i in spill_lanes for i in range(16)]
    return PassDescriptor(tuple(values), tuple(spill))


class TestPEGroupSim:
    def run_to_completion(self, work):
        group = PEGroupSim()
        group.start(work)
        cycles = 0
        while not group.idle:
            group.step()
            cycles += 1
        return cycles, group

    def test_dense_pass_is_16_cycles(self):
        cycles, group = self.run_to_completion(make_pass([1] * 16))
        assert cycles == 16
        assert group.run_cycles == 16
        assert group.skip_cycles == 0

    def test_all_zero_pass_is_4_skip_cycles(self):
        cycles, group = self.run_to_completion(make_pass([0] * 16))
        assert cycles == 4
        assert group.skip_cycles == 4

    def test_spill_lane_adds_stall(self):
        base, _ = self.run_to_completion(make_pass([1] + [0] * 15))
        spilled, _ = self.run_to_completion(make_pass([1] + [0] * 15, spill_lanes=(0,)))
        assert spilled == base + 1

    def test_spill_on_zero_lane_is_free(self):
        base, _ = self.run_to_completion(make_pass([1] + [0] * 15))
        spilled, _ = self.run_to_completion(make_pass([1] + [0] * 15, spill_lanes=(5,)))
        assert spilled == base

    def test_matches_exact_chunk_model(self, rng):
        """Event simulation agrees with chunk_pass_cycles on random data."""
        for _ in range(50):
            values = rng.integers(0, 3, size=16) * rng.integers(0, 2, size=16)
            spill = rng.random(16) < 0.2
            cycles, _ = self.run_to_completion(
                PassDescriptor(tuple(int(v) for v in values), tuple(bool(s) for s in spill))
            )
            chunks = [
                WeightChunk(lanes=(0,) * 16, ol_ptr=0) if spill[i] else WeightChunk(lanes=(0,) * 16)
                for i in range(16)
            ]
            expected = chunk_pass_cycles(ActivationChunk(tuple(int(v) for v in values)), chunks)
            assert cycles == expected

    def test_start_while_busy_raises(self):
        group = PEGroupSim()
        group.start(make_pass([1] * 16))
        with pytest.raises(RuntimeError):
            group.start(make_pass([1] * 16))


class TestClusterSim:
    def test_single_group_serializes(self, rng):
        levels = (rng.random((20, 16)) < 0.4).astype(np.int64)
        passes = passes_from_levels(levels)
        result = ClusterSim(n_groups=1).run(passes)
        serial = sum(
            max(int((levels[i] != 0).sum()), 0) + int(sum((levels[i, q * 4 : q * 4 + 4] == 0).all() for q in range(4)))
            for i in range(20)
        )
        assert result.cycles >= serial  # accumulation can only add
        assert result.passes == 20

    def test_parallel_groups_speed_up(self, rng):
        levels = (rng.random((60, 16)) < 0.5).astype(np.int64)
        passes = passes_from_levels(levels)
        one = ClusterSim(n_groups=1).run(passes).cycles
        six = ClusterSim(n_groups=6).run(passes).cycles
        assert six < one
        assert six >= one / 6 - 1

    def test_matches_greedy_schedule_bound(self, rng):
        """Cluster makespan is the greedy schedule of per-pass costs
        (front ends never wait on accumulation at bandwidth 2)."""
        levels = (rng.integers(0, 2, size=(40, 16))).astype(np.int64)
        passes = passes_from_levels(levels)
        result = ClusterSim(n_groups=4).run(passes)
        costs = []
        for row in levels:
            nz = int((row != 0).sum())
            quads = int(sum((row[q * 4 : q * 4 + 4] == 0).all() for q in range(4)))
            costs.append(nz + quads)
        ideal = schedule_passes(costs, 4)
        assert result.cycles == pytest.approx(ideal, abs=2)

    def test_mean_cost_matches_analytic_expectation(self, rng):
        density, spill_p = 0.45, 0.1
        n = 4000
        levels = (rng.random((n, 16)) < density).astype(np.int64)
        spill = rng.random((n, 16)) < spill_p
        result = ClusterSim(n_groups=6).run(passes_from_levels(levels, spill))
        analytic = expected_pass_costs(density, spill_p).total
        measured = (result.run_cycles + result.skip_cycles) / n
        assert measured == pytest.approx(analytic, rel=0.03)

    def test_outlier_broadcasts_counted(self):
        passes = passes_from_levels(np.ones((4, 16), dtype=np.int64))
        result = ClusterSim(n_groups=2).run(passes, outlier_broadcasts=10)
        assert result.outlier_cycles == 10

    def test_outlier_path_extends_tail(self):
        """A huge outlier load outlasts the dense work and sets the makespan."""
        passes = passes_from_levels(np.ones((2, 16), dtype=np.int64))
        small = ClusterSim(n_groups=2).run(passes, outlier_broadcasts=0).cycles
        big = ClusterSim(n_groups=2).run(passes, outlier_broadcasts=500).cycles
        assert big >= 500 > small

    def test_tri_buffer_conflict_free(self, rng):
        levels = (rng.random((30, 16)) < 0.5).astype(np.int64)
        result = ClusterSim(n_groups=6).run(passes_from_levels(levels))
        assert result.tri_buffer_conflict_free

    def test_accumulation_stalls_with_many_groups(self):
        """12 groups finishing dense passes together exceed bandwidth 2."""
        passes = passes_from_levels(np.ones((48, 16), dtype=np.int64))
        result = ClusterSim(n_groups=12, accumulation_bandwidth=2).run(passes)
        assert result.accumulation_stalls > 0

    def test_idle_accounting(self, rng):
        levels = (rng.random((10, 16)) < 0.5).astype(np.int64)
        result = ClusterSim(n_groups=6).run(passes_from_levels(levels))
        busy = result.run_cycles + result.skip_cycles
        assert result.idle_cycles == result.cycles * 6 - busy

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            ClusterSim(n_groups=0)
        with pytest.raises(ValueError):
            passes_from_levels(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            passes_from_levels(np.zeros((4, 16)), np.zeros((3, 16), dtype=bool))
        with pytest.raises(ValueError):
            PassDescriptor((0,) * 8, (False,) * 8)
