"""Tests for OLAccel cycle-model components (pe_group/cluster/tribuffer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ActivationChunk, WeightChunk
from repro.olaccel import (
    TriBuffer,
    accumulation_drain_cycles,
    chunk_pass_cycles,
    dense_pass_factor,
    expected_pass_costs,
    load_balance_efficiency,
    multi_outlier_probability,
    sample_pass_cycles,
    schedule_passes,
    single_or_more_outlier_probability,
)


class TestMultiOutlierProbability:
    def test_paper_motivating_example(self):
        """Sec. III-A: 1% outliers on 32-way SIMD stall ~27.5% of the time."""
        assert single_or_more_outlier_probability(0.01, 32) == pytest.approx(0.275, abs=0.01)

    def test_fig17_group_size_choice(self):
        """Fig. 17: at 5% outliers, 16 lanes keep P(multi) ~20% while
        32/64 lanes are far worse — the reason PE groups are 16 wide."""
        assert multi_outlier_probability(0.05, 16) == pytest.approx(0.19, abs=0.03)
        assert multi_outlier_probability(0.05, 32) > 0.45
        assert multi_outlier_probability(0.05, 64) > 0.8

    def test_zero_ratio(self):
        assert multi_outlier_probability(0.0, 16) == 0.0
        assert single_or_more_outlier_probability(0.0, 16) == 0.0

    @given(st.floats(0.0, 1.0), st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=60, deadline=None)
    def test_probability_bounds_and_ordering(self, ratio, lanes):
        multi = multi_outlier_probability(ratio, lanes)
        single = single_or_more_outlier_probability(ratio, lanes)
        assert 0.0 <= multi <= single <= 1.0

    @given(st.floats(0.0, 0.3))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_lanes(self, ratio):
        p16 = multi_outlier_probability(ratio, 16)
        p32 = multi_outlier_probability(ratio, 32)
        p64 = multi_outlier_probability(ratio, 64)
        assert p16 <= p32 <= p64

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            multi_outlier_probability(1.5)


class TestExactChunkCycles:
    def test_mixed_chunk(self):
        acts = ActivationChunk(tuple([3, 0, 0, 0] + [0] * 4 + [1, 1, 0, 0] + [0] * 4))
        chunks = [WeightChunk(lanes=(0,) * 16)] * 16
        # nonzero at 0, 8, 9 -> 3 cycles; quads 1 and 3 all-zero -> 2 skips
        assert chunk_pass_cycles(acts, chunks) == 5

    def test_spill_chunk_doubles(self):
        acts = ActivationChunk(tuple([1] + [0] * 15))
        spill = WeightChunk(lanes=(0,) * 16, ol_ptr=0)
        chunks = [spill] + [WeightChunk(lanes=(0,) * 16)] * 15
        assert chunk_pass_cycles(acts, chunks) == 2 + 3  # 2-cycle op + 3 zero quads


class TestExpectedPassCosts:
    def test_dense(self):
        costs = expected_pass_costs(1.0, 0.0)
        assert costs.run_cycles == 16
        assert costs.skip_cycles == 0

    def test_all_zero(self):
        costs = expected_pass_costs(0.0, 0.0)
        assert costs.run_cycles == 0
        assert costs.skip_cycles == pytest.approx(4.0)

    def test_first_layer_dense_factor(self):
        costs = expected_pass_costs(0.5, 0.0, dense_factor=8)
        assert costs.run_cycles == 16 * 8
        assert costs.skip_cycles == 0.0

    def test_multi_outlier_surcharge(self):
        base = expected_pass_costs(0.5, 0.0)
        loaded = expected_pass_costs(0.5, 0.1)
        assert loaded.run_cycles == pytest.approx(base.run_cycles * 1.1)

    def test_matches_monte_carlo(self, rng):
        d, p = 0.4, 0.08
        expected = expected_pass_costs(d, p).total
        sampled = sample_pass_cycles(rng, 100000, d, p).mean()
        assert sampled == pytest.approx(expected, rel=0.02)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_pass_costs(1.5, 0.0)
        with pytest.raises(ValueError):
            expected_pass_costs(0.5, 0.0, dense_factor=0)

    def test_dense_factor_values(self):
        assert dense_pass_factor(16, 8) == 8  # ResNet-18 first layer, 16-bit cmp
        assert dense_pass_factor(8, 8) == 4  # 8-bit comparison
        assert dense_pass_factor(16, 4) == 4  # AlexNet first layer, 16-bit cmp
        assert dense_pass_factor(4, 4) == 1


class TestSampledDistributions:
    def test_fig19_peaks(self, rng):
        """Dense layers peak near 15-16 cycles, sparse layers near 4-5."""
        dense = sample_pass_cycles(rng, 50000, 0.85, 0.08)
        sparse = sample_pass_cycles(rng, 50000, 0.2, 0.08)
        dense_peak = np.bincount(dense).argmax()
        sparse_peak = np.bincount(sparse).argmax()
        assert 13 <= dense_peak <= 18
        assert 3 <= sparse_peak <= 6

    def test_empty(self, rng):
        assert sample_pass_cycles(rng, 0, 0.5, 0.0).size == 0

    def test_bounds(self, rng):
        cycles = sample_pass_cycles(rng, 10000, 0.5, 0.5)
        assert cycles.min() >= 0
        assert cycles.max() <= 16 * 2 + 4


class TestClusterScheduling:
    def test_greedy_matches_ideal_for_uniform(self):
        makespan = schedule_passes([4.0] * 100, 4)
        assert makespan == pytest.approx(100.0)

    def test_greedy_bounded_by_lpt(self, rng):
        costs = rng.uniform(1, 16, size=500)
        makespan = schedule_passes(costs, 8)
        ideal = costs.sum() / 8
        assert ideal <= makespan <= ideal + costs.max()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            schedule_passes([1.0], 0)
        with pytest.raises(ValueError):
            schedule_passes([-1.0], 2)

    def test_efficiency_approaches_one(self):
        assert load_balance_efficiency(1e6, 48) > 0.999
        assert load_balance_efficiency(10, 48) < 0.9
        assert load_balance_efficiency(0, 48) == 1.0


class TestTriBuffer:
    def test_coherence_invariant(self):
        """Normal and outlier accumulation units never share a buffer —
        the paper's pipelining argument (Fig. 10)."""
        tb = TriBuffer()
        tb.run(50)
        assert tb.conflict_free

    def test_rotation_pattern(self):
        tb = TriBuffer()
        n0, o0 = tb.step()
        n1, o1 = tb.step()
        assert n0 == {0, 1} and o0 == set()
        assert n1 == {1, 2} and o1 == {0}  # outlier unit takes released buffer

    def test_outlier_always_one_buffer(self):
        tb = TriBuffer()
        tb.run(20)
        for _, outlier in tb.history[1:]:
            assert len(outlier) == 1

    def test_drain_cycles(self):
        assert accumulation_drain_cycles(4) == 8
        assert accumulation_drain_cycles(0) == 2
        with pytest.raises(ValueError):
            accumulation_drain_cycles(-1)
