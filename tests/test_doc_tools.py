"""Tests for ``tools/check_doc_links.py`` — links, anchors, CLI verbs.

The checker runs against small synthetic doc trees so each failure
mode (missing file, bad anchor, ghost verb, undocumented verb) is
exercised in isolation, plus once against the real repository, which
must stay clean.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_doc_links as cdl  # noqa: E402


def make_repo(root, docs, cli_verbs=("run", "list")):
    """Lay out a minimal fake repo: markdown files + a registering CLI."""
    for rel, text in docs.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    cli = root / "src" / "repro" / "cli.py"
    cli.parent.mkdir(parents=True, exist_ok=True)
    cli.write_text(
        "\n".join(f'sub.add_parser("{verb}", help="")' for verb in cli_verbs) + "\n"
    )
    return root


class TestSlugification:
    def test_basic_headings(self):
        assert cdl.github_slug("Run-directory layout", {}) == "run-directory-layout"
        assert cdl.github_slug("Exit codes", {}) == "exit-codes"

    def test_code_spans_and_punctuation_are_stripped(self):
        slug = cdl.github_slug("The simulation cache (`repro.harness.simcache`)", {})
        assert slug == "the-simulation-cache-reproharnesssimcache"
        assert cdl.github_slug("EXPLORE — `repro explore`, the autotuner", {}) == (
            "explore--repro-explore-the-autotuner"
        )

    def test_duplicate_headings_get_numbered(self):
        seen = {}
        assert cdl.github_slug("Notes", seen) == "notes"
        assert cdl.github_slug("Notes", seen) == "notes-1"
        assert cdl.github_slug("Notes", seen) == "notes-2"

    def test_heading_slugs_ignore_fenced_blocks(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text("# Real\n```bash\n# not a heading\n```\n## Also real\n")
        assert cdl.heading_slugs(doc) == {"real", "also-real"}


class TestLinksAndAnchors:
    def test_clean_tree_passes(self, tmp_path, capsys):
        make_repo(tmp_path, {
            "README.md": "see [docs](docs/GUIDE.md#setup) and `repro run` / `repro list`\n",
            "docs/GUIDE.md": "# Guide\n## Setup\nback to [readme](../README.md)\n",
        })
        assert cdl.main([str(tmp_path)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_missing_file_is_reported(self, tmp_path, capsys):
        make_repo(tmp_path, {"README.md": "[gone](docs/GONE.md) `repro run` `repro list`\n"})
        assert cdl.main([str(tmp_path)]) == 1
        assert "GONE.md" in capsys.readouterr().out

    def test_bad_cross_file_anchor_is_reported(self, tmp_path, capsys):
        make_repo(tmp_path, {
            "README.md": "[x](docs/GUIDE.md#nope) `repro run` `repro list`\n",
            "docs/GUIDE.md": "# Guide\n## Setup\n",
        })
        assert cdl.main([str(tmp_path)]) == 1
        assert "#nope" in capsys.readouterr().out

    def test_bad_same_file_anchor_is_reported(self, tmp_path, capsys):
        make_repo(tmp_path, {
            "README.md": "# Top\nsee [below](#missing) `repro run` `repro list`\n",
        })
        assert cdl.main([str(tmp_path)]) == 1
        assert "#missing" in capsys.readouterr().out

    def test_good_same_file_anchor_passes(self, tmp_path):
        make_repo(tmp_path, {
            "README.md": "# Top\nsee [below](#the-end) `repro run` `repro list`\n## The end\n",
        })
        assert cdl.main([str(tmp_path)]) == 0

    def test_anchor_into_non_markdown_is_not_checked(self, tmp_path):
        make_repo(tmp_path, {
            "README.md": "[src](src/repro/cli.py#L1) `repro run` `repro list`\n",
        })
        assert cdl.main([str(tmp_path)]) == 0


class TestVerbCrossCheck:
    def test_ghost_verb_is_reported(self, tmp_path, capsys):
        make_repo(tmp_path, {
            "README.md": "`repro run` and `repro list` and `repro teleport`\n",
        })
        assert cdl.main([str(tmp_path)]) == 1
        assert "teleport" in capsys.readouterr().out

    def test_undocumented_verb_is_reported(self, tmp_path, capsys):
        make_repo(tmp_path, {"README.md": "`repro run` only\n"}, cli_verbs=("run", "list"))
        assert cdl.main([str(tmp_path)]) == 1
        assert "repro list" in capsys.readouterr().out

    def test_fenced_blocks_count_as_mentions(self, tmp_path):
        make_repo(tmp_path, {
            "README.md": "```bash\npython -m repro run fig11\npython -m repro list\n```\n",
        })
        assert cdl.main([str(tmp_path)]) == 0

    def test_prose_mentions_do_not_count(self, tmp_path, capsys):
        # "repro frobnicate" in prose (outside spans/fences) is ignored.
        make_repo(tmp_path, {
            "README.md": "the repro frobnicate idea\n`repro run` `repro list`\n",
        })
        assert cdl.main([str(tmp_path)]) == 0

    def test_roadmap_may_name_future_verbs(self, tmp_path):
        make_repo(tmp_path, {
            "README.md": "`repro run` `repro list`\n",
            "ROADMAP.md": "someday: `repro teleport`\n",
        })
        assert cdl.main([str(tmp_path)]) == 0

    def test_missing_cli_skips_verb_check(self, tmp_path):
        (tmp_path / "README.md").write_text("`repro anything`\n")
        assert cdl.main([str(tmp_path)]) == 0


class TestRealRepository:
    def test_repo_docs_are_clean(self, capsys):
        assert cdl.main([str(REPO)]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out

    def test_repo_registers_explore_and_docs_mention_it(self):
        verbs = cdl.cli_verbs(REPO)
        assert "explore" in verbs
        mentions = cdl.doc_verb_mentions(REPO)
        assert "explore" in mentions
        assert set(mentions) <= verbs
        assert verbs <= set(mentions)
