"""End-to-end integration tests: the full pipeline from training through
quantization, chunk packing, bit-exact execution, and simulation."""

import numpy as np
import pytest

from repro.arch import encode_table, decode_table, pack_weights
from repro.baselines import EyerissSimulator, ZenaSimulator
from repro.harness import from_quantized_model
from repro.nn import prune_model
from repro.olaccel import (
    ClusterSim,
    OLAccelSimulator,
    olaccel_conv2d,
    passes_from_levels,
    reference_conv2d_int,
)
from repro.quant import (
    QuantConfig,
    QuantizedModel,
    calibrate_activation_thresholds,
    quantize_activations,
    quantize_weights,
)


@pytest.fixture(scope="module")
def pipeline(tiny_trained_model, small_dataset):
    """Trained model -> calibration -> quantized model -> measured stats."""
    cal = calibrate_activation_thresholds(tiny_trained_model, small_dataset.train_x[:60], ratio=0.03)
    qm = QuantizedModel(tiny_trained_model, cal, QuantConfig(ratio=0.03))
    stats = qm.measure_layer_stats(small_dataset.test_x[:30])
    return tiny_trained_model, small_dataset, cal, qm, stats


class TestFullPipeline:
    def test_workload_from_real_model(self, pipeline):
        model, data, _, _, stats = pipeline
        workload = from_quantized_model(model, stats, data.test_x[:1])
        assert len(workload.layers) == len(model.compute_layers())
        assert workload.layers[0].is_first
        # Conv geometry agrees with the model's actual MAC work.
        conv1 = workload.layers[0]
        layer = model.compute_layers()[0]
        assert conv1.weight_count == layer.weight.value.size

    def test_all_three_simulators_run_real_workload(self, pipeline):
        model, data, _, _, stats = pipeline
        workload = from_quantized_model(model, stats, data.test_x[:1])
        ol = OLAccelSimulator().simulate_network(workload)
        ey = EyerissSimulator().simulate_network(workload)
        ze = ZenaSimulator().simulate_network(workload)
        assert ol.total_cycles < ey.total_cycles  # 768 vs 165 lanes
        assert ze.total_cycles <= ey.total_cycles * 1.01
        for run in (ol, ey, ze):
            assert run.total_energy.total > 0
            assert len(run.layers) == len(workload.layers)

    def test_pruning_feeds_zena_speedup(self, pipeline):
        model, data, _, qm, _ = pipeline
        workload_dense = from_quantized_model(model, qm.measure_layer_stats(data.test_x[:20]), data.test_x[:1])
        saved = [l.weight.value.copy() for l in model.compute_layers()]
        try:
            prune_model(model, density=0.4)
            qm2 = QuantizedModel(model, qm.calibration, QuantConfig(ratio=0.03))
            workload_pruned = from_quantized_model(model, qm2.measure_layer_stats(data.test_x[:20]), data.test_x[:1])
        finally:
            for layer, w in zip(model.compute_layers(), saved):
                layer.weight.value = w
        dense = ZenaSimulator().simulate_network(workload_dense).total_cycles
        pruned = ZenaSimulator().simulate_network(workload_pruned).total_cycles
        assert pruned < dense * 0.7

    def test_real_quantized_layer_bit_exact_through_chunks(self, pipeline):
        """Quantize a real trained conv layer, serialize its chunks to
        80-bit words, run the functional datapath, compare to reference."""
        model, data, cal, _, _ = pipeline
        conv = model.compute_layers()[1]
        wq = quantize_weights(conv.weight.value, ratio=0.03)
        w_levels = wq.levels.reshape(wq.levels.shape[0], -1)

        # Real activations for that layer, quantized on its calibrated grid.
        acts = model.record_activations(data.test_x[:1])[1]
        aq = quantize_activations(np.maximum(acts[0], 0.0), threshold=cal.layers[1].threshold)

        packed = pack_weights(w_levels)
        base_words, spill_words = encode_table(packed.base_chunks, packed.spill_chunks)
        bases, spills = decode_table(base_words, spill_words)
        packed.base_chunks, packed.spill_chunks = bases, spills

        act_tensor = aq.levels[None]
        result = olaccel_conv2d(act_tensor, wq.levels, stride=conv.stride, pad=conv.pad, packed=packed)
        reference = reference_conv2d_int(act_tensor, wq.levels, stride=conv.stride, pad=conv.pad)
        np.testing.assert_array_equal(result.psum, reference)
        assert not result.saturated  # 24-bit accumulators suffice (Sec. III-B)

    def test_dequantized_psum_approximates_float_conv(self, pipeline):
        """Integer psums, rescaled by the two deltas, track the float conv."""
        from repro.nn import functional as F

        model, data, cal, _, _ = pipeline
        conv = model.compute_layers()[1]
        wq = quantize_weights(conv.weight.value, ratio=0.03)
        acts = model.record_activations(data.test_x[:1])[1]
        acts_relu = np.maximum(acts, 0.0)
        aq = quantize_activations(acts_relu[0], threshold=cal.layers[1].threshold)

        result = olaccel_conv2d(aq.levels[None], wq.levels, stride=conv.stride, pad=conv.pad)
        approx = result.psum.astype(np.float64) * wq.delta * aq.delta
        exact, _ = F.conv2d(acts_relu, conv.weight.value, None, conv.stride, conv.pad)
        scale = np.abs(exact).max()
        assert np.abs(approx - exact).max() / scale < 0.1

    def test_event_sim_on_real_quantized_activations(self, pipeline):
        """The cycle-stepped cluster chews through real quantized data."""
        model, data, cal, _, _ = pipeline
        acts = model.record_activations(data.test_x[:1])[1]
        aq = quantize_activations(np.maximum(acts[0], 0.0), threshold=cal.layers[1].threshold)
        normal = np.where(aq.levels > 15, 0, aq.levels)
        channels = normal.reshape(normal.shape[0], -1).T  # (pixels, C)
        n_chunks = channels.shape[1] // 16
        if n_chunks == 0:
            pytest.skip("layer too narrow for a 16-channel chunk")
        levels = channels[:, : n_chunks * 16].reshape(-1, 16)
        result = ClusterSim(n_groups=6).run(passes_from_levels(levels[:500]))
        assert result.passes == min(500, levels.shape[0])
        assert result.tri_buffer_conflict_free

    def test_quantized_model_and_simulator_agree_on_density(self, pipeline):
        """Densities measured by the quantized model match what the
        workload carries into the simulators."""
        model, data, _, _, stats = pipeline
        workload = from_quantized_model(model, stats, data.test_x[:1])
        for stat, layer in zip(stats, workload.layers):
            assert layer.act_density == pytest.approx(stat.act_density)
            assert layer.weight_density == pytest.approx(stat.weight_density)
