"""Tests for the experiment harness: workloads, scaling, reporting."""

import numpy as np
import pytest

from repro.harness import (
    MEMORY_TABLE,
    NpuSpec,
    ScalingModel,
    bar,
    conv_only,
    fig17_multi_outlier,
    fig18_utilization,
    fig19_chunk_cycles,
    format_breakdown,
    format_series,
    format_table,
    memory_bytes,
    paper_workload,
    table1_configurations,
)
from repro.harness.experiments import breakdown_experiment, fig15_scalability


class TestWorkloads:
    def test_memory_table_matches_paper(self):
        assert memory_bytes("alexnet", 16) == 393 * 1024
        assert memory_bytes("alexnet", 8) == 196 * 1024
        assert memory_bytes("vgg16", 16) == 4800 * 1024
        assert memory_bytes("resnet18", 8) == 2400 * 1024

    def test_memory_invalid(self):
        with pytest.raises(KeyError):
            memory_bytes("lenet", 16)
        with pytest.raises(ValueError):
            memory_bytes("alexnet", 4)

    def test_paper_workload_conv_only_by_default(self):
        net = paper_workload("alexnet")
        assert all(l.kind == "conv" for l in net.layers)
        full = paper_workload("alexnet", include_fc=True)
        assert len(full.layers) == len(net.layers) + 3

    def test_all_networks_buildable(self):
        for name in MEMORY_TABLE:
            net = paper_workload(name)
            assert net.total_macs > 0


class TestTable1:
    def test_pe_counts(self):
        by_name = table1_configurations().by_name()
        assert by_name["eyeriss16"][0] == 165
        assert by_name["zena16"][0] == 168
        assert by_name["olaccel16"][0] == 768
        assert by_name["olaccel8"][0] == 576

    def test_areas_close_to_paper(self):
        by_name = table1_configurations().by_name()
        paper = {
            "eyeriss16": 1.53, "eyeriss8": 0.96,
            "zena16": 1.66, "zena8": 1.01,
            "olaccel16": 1.67, "olaccel8": 0.93,
        }
        for name, (_, area) in by_name.items():
            assert area == pytest.approx(paper[name], rel=0.12), name

    def test_format_contains_rows(self):
        text = table1_configurations().format()
        assert "olaccel16" in text and "768" in text


class TestScalingModel:
    def make(self, demand=12.0):
        return ScalingModel(NpuSpec("x", cycles_per_image=1e6, dram_bits_per_image=demand * 1e6))

    def test_single_npu_is_unity(self):
        assert self.make().speedup(1, 1).speedup == pytest.approx(1.0)

    def test_batch_parallelism_linear_until_bandwidth(self):
        model = self.make(demand=1.0)
        assert model.speedup(8, 8).speedup == pytest.approx(8.0)

    def test_single_batch_saturates(self):
        model = self.make(demand=1.0)
        s8 = model.speedup(8, 1).speedup
        s16 = model.speedup(16, 1).speedup
        assert s16 < 16 * 0.75  # clearly sub-linear
        assert s16 > s8  # but still improving

    def test_bandwidth_cap_binds(self):
        model = self.make(demand=100.0)  # hugely memory bound
        point = model.speedup(16, 16)
        assert point.bandwidth_bound
        assert point.speedup < 16

    def test_batch4_beats_batch16_when_capped(self):
        """The Fig. 15 observation for OLAccel."""
        model = self.make(demand=13.0)
        b4 = model.speedup(16, 4).speedup
        b16 = model.speedup(16, 16).speedup
        assert b4 > b16

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            self.make().speedup(0, 1)
        with pytest.raises(ValueError):
            ScalingModel(NpuSpec("x", 1e6, 1e6), dram_bandwidth_bits_per_cycle=0)

    def test_sweep_grid_size(self):
        points = self.make().sweep([1, 2, 4], [1, 4])
        assert len(points) == 6


class TestFig15:
    def test_series_structure(self):
        result = fig15_scalability(npu_counts=(1, 2, 4, 8, 16))
        assert ("olaccel16", 1) in result.series
        assert len(result.series[("olaccel16", 4)]) == 5

    def test_olaccel_above_zena(self):
        result = fig15_scalability()
        for batch in (1, 4, 16):
            ol = result.series[("olaccel16", batch)]
            ze = result.series[("zena16", batch)]
            assert all(o > z for o, z in zip(ol, ze))

    def test_batch4_slightly_better_than_batch16_at_scale(self):
        result = fig15_scalability()
        assert result.series[("olaccel16", 4)][-1] > result.series[("olaccel16", 16)][-1]

    def test_monotone_in_npus(self):
        result = fig15_scalability()
        for series in result.series.values():
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))


class TestFig17:
    def test_matches_monte_carlo(self):
        result = fig17_multi_outlier(ratios=(0.01, 0.03, 0.05), lane_counts=(16, 32))
        for lanes in (16, 32):
            for analytic, mc in zip(result.series[lanes], result.monte_carlo[lanes]):
                assert mc == pytest.approx(analytic, abs=0.02)


class TestFig18And19:
    def test_fig18_rows_cover_conv_layers(self):
        result = fig18_utilization("alexnet")
        assert [r.layer for r in result.rows] == ["conv1", "conv2", "conv3", "conv4", "conv5"]

    def test_fig18_run_tracks_nonzero(self):
        """The paper: active period is proportional to nonzero ratio."""
        result = fig18_utilization("alexnet")
        rows = {r.layer: r for r in result.rows}
        assert rows["conv2"].run > rows["conv4"].run
        assert rows["conv4"].skip > rows["conv2"].skip

    def test_fig18_skip_overhead_near_paper(self):
        """Skip overhead can reach ~20% in sparse layers (Sec. V)."""
        result = fig18_utilization("alexnet")
        max_skip = max(r.skip for r in result.rows)
        assert 0.1 < max_skip < 0.3

    def test_fig18_shares_bounded(self):
        for row in fig18_utilization("alexnet").rows:
            assert row.run + row.skip + row.idle == pytest.approx(1.0, abs=0.05)

    def test_fig19_peaks(self):
        result = fig19_chunk_cycles("alexnet", samples=30000)
        assert 13 <= result.peaks["conv2"] <= 17  # paper: near 15-16
        assert 3 <= result.peaks["conv4"] <= 6  # paper: near 5
        assert 3 <= result.peaks["conv5"] <= 6

    def test_fig19_excludes_first_layer(self):
        result = fig19_chunk_cycles("alexnet", samples=1000)
        assert "conv1" not in result.histograms


class TestBreakdownResult:
    def test_reduction_symmetry(self):
        result = breakdown_experiment("alexnet")
        r = result.reduction("olaccel16", "zena16")
        assert 0 < r < 1
        assert result.reduction("zena16", "olaccel16") < 0

    def test_invalid_metric(self):
        result = breakdown_experiment("alexnet")
        with pytest.raises(ValueError):
            result.reduction("olaccel16", "zena16", "power")

    def test_normalized_reference_is_one(self):
        result = breakdown_experiment("vgg16")
        assert result.normalized_cycles()["eyeriss16"] == pytest.approx(1.0)
        assert result.normalized_energy()["eyeriss16"]["total"] == pytest.approx(1.0)

    def test_format_output(self):
        text = breakdown_experiment("alexnet").format()
        assert "OLAccel16 vs ZeNA16" in text
        assert "dram" in text


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        text = format_series("curve", [1, 2], [0.5, 1.0])
        assert "curve" in text and "0.5" in text

    def test_format_breakdown(self):
        text = format_breakdown("x", {"dram": 1.0, "logic": 0.5})
        assert "total=1.5" in text

    def test_bar(self):
        assert bar(1.0, scale=1.0, width=10) == "#" * 10
        assert bar(0.0, scale=1.0) == ""
        with pytest.raises(ValueError):
            bar(1.0, scale=0.0)
