"""Tests for per-layer quantization sensitivity analysis."""

import numpy as np
import pytest

from repro.quant import (
    QuantConfig,
    QuantizedModel,
    calibrate_activation_thresholds,
    layer_sensitivity,
    leave_one_out,
)


@pytest.fixture(scope="module")
def setup(tiny_trained_model, small_dataset):
    cal = calibrate_activation_thresholds(tiny_trained_model, small_dataset.train_x[:60], ratio=0.0)
    config = QuantConfig(ratio=0.0)
    return tiny_trained_model, small_dataset, cal, config


class TestOnlyThisLayer:
    def test_one_row_per_compute_layer(self, setup):
        model, data, cal, config = setup
        report = layer_sensitivity(model, cal, data.test_x, data.test_y, config)
        assert len(report.rows) == len(model.compute_layers())

    def test_reference_is_full_precision(self, setup):
        model, data, cal, config = setup
        report = layer_sensitivity(model, cal, data.test_x, data.test_y, config)
        assert report.reference_accuracy == pytest.approx(model.accuracy(data.test_x, data.test_y))

    def test_single_layer_hurts_less_than_all(self, setup):
        """Quantizing one layer can never do worse than the worst case of
        quantizing everything (sanity ordering on average)."""
        model, data, cal, config = setup
        report = layer_sensitivity(model, cal, data.test_x, data.test_y, config)
        full = QuantizedModel(model, cal, config).accuracy(data.test_x, data.test_y)
        mean_single = float(np.mean([r.accuracy for r in report.rows]))
        assert mean_single >= full - 0.05

    def test_ranked_order(self, setup):
        model, data, cal, config = setup
        report = layer_sensitivity(model, cal, data.test_x, data.test_y, config)
        deltas = [r.delta_vs_reference for r in report.ranked()]
        assert deltas == sorted(deltas)

    def test_model_restored(self, setup):
        model, data, cal, config = setup
        before = model.forward(data.test_x[:4])
        layer_sensitivity(model, cal, data.test_x[:32], data.test_y[:32], config)
        after = model.forward(data.test_x[:4])
        np.testing.assert_allclose(before, after)


class TestLeaveOneOut:
    def test_reference_is_fully_quantized(self, setup):
        model, data, cal, config = setup
        report = leave_one_out(model, cal, data.test_x, data.test_y, config)
        full = QuantizedModel(model, cal, config).accuracy(data.test_x, data.test_y)
        assert report.reference_accuracy == pytest.approx(full)

    def test_format_lists_layers(self, setup):
        model, data, cal, config = setup
        report = leave_one_out(model, cal, data.test_x[:64], data.test_y[:64], config)
        text = report.format()
        for layer in model.compute_layers():
            assert layer.name in text

    def test_most_sensitive_accessor(self, setup):
        model, data, cal, config = setup
        report = leave_one_out(model, cal, data.test_x[:64], data.test_y[:64], config)
        assert report.most_sensitive() is report.ranked()[0]
