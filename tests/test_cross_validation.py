"""Cross-validation between the three cycle models.

The repository has three independent implementations of PE-group timing:
the exact per-chunk counter in the functional simulator
(`olaccel_conv2d.pass_cycles`), the cycle-stepped event simulator
(`ClusterSim`), and the closed-form expectation (`expected_pass_costs`).
These tests require them to agree on the same data — the strongest
internal consistency check the cycle results rest on.
"""

import numpy as np
import pytest

from repro.arch.packing import pack_weights
from repro.nn.functional import im2col
from repro.olaccel import (
    ClusterSim,
    expected_pass_costs,
    olaccel_conv2d,
    passes_from_levels,
)


def build_case(rng, c=16, h=6, w=6, out_c=16, k=3, density=0.5, outlier=0.08):
    acts = rng.integers(1, 16, size=(1, c, h, w))
    acts[rng.random(acts.shape) >= density] = 0
    weights = rng.integers(-7, 8, size=(out_c, c, k, k))
    hot = rng.random(weights.shape) < outlier
    weights[hot] = rng.integers(8, 128, size=int(hot.sum())) * rng.choice([-1, 1], size=int(hot.sum()))
    return acts, weights


class TestFunctionalVsEventSim:
    @pytest.mark.parametrize("seed", range(4))
    def test_total_cycles_agree(self, seed):
        """Functional pass counting == event-sim busy cycles, pass by pass."""
        rng = np.random.default_rng(seed)
        acts, weights = build_case(rng)
        result = olaccel_conv2d(acts, weights, stride=1, pad=0)

        # Rebuild the same passes the functional simulator counted: im2col
        # rows chunked by 16 reduction lanes, with per-(group, lane) spill
        # flags from the packed table.
        cols = im2col(acts, 3, 3, 1, 0)
        reduction = cols.shape[1]
        n_chunks = -(-reduction // 16)
        padded = np.zeros((cols.shape[0], n_chunks * 16), dtype=np.int64)
        padded[:, :reduction] = cols
        packed = pack_weights(weights.reshape(weights.shape[0], -1))
        spill = np.zeros(n_chunks * 16, dtype=bool)
        for r in range(reduction):
            spill[r] = packed.base_chunks[r].has_multi_outlier  # one out-group

        levels = padded.reshape(-1, 16)
        flags = np.broadcast_to(spill.reshape(n_chunks, 16), (cols.shape[0], n_chunks, 16)).reshape(-1, 16)
        sim = ClusterSim(n_groups=1).run(passes_from_levels(levels, flags))
        assert sim.run_cycles + sim.skip_cycles == result.cycles

    def test_analytic_expectation_tracks_both(self):
        """E[pass cost] from the closed form matches large-sample means of
        the exact counters."""
        rng = np.random.default_rng(7)
        density, spill_p = 0.55, 0.09
        n = 6000
        levels = (rng.random((n, 16)) < density) * rng.integers(1, 16, size=(n, 16))
        flags = rng.random((n, 16)) < spill_p
        sim = ClusterSim(n_groups=4).run(passes_from_levels(levels, flags))
        measured = (sim.run_cycles + sim.skip_cycles) / n
        analytic = expected_pass_costs(density, spill_p).total
        assert measured == pytest.approx(analytic, rel=0.03)
