"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import TrainConfig, make_dataset, mini_alexnet, train_model


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current simulators instead of comparing",
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset():
    """A tiny, fast dataset for training-dependent tests."""
    return make_dataset(num_classes=6, train_per_class=40, test_per_class=15, size=32, noise=0.5, jitter=2, seed=3)


@pytest.fixture(scope="session")
def tiny_trained_model(small_dataset):
    """A quickly trained small CNN shared across quantization tests."""
    model = mini_alexnet(num_classes=small_dataset.num_classes, seed=11)
    train_model(
        model,
        small_dataset.train_x,
        small_dataset.train_y,
        TrainConfig(epochs=4, batch_size=32, lr=0.01, seed=0),
    )
    return model
