"""Tests for the bandwidth-aware network pipeline (repro.olaccel.pipeline)."""

import pytest

from repro.harness import paper_workload
from repro.olaccel import OLAccelSimulator, olaccel16
from repro.olaccel.pipeline import bandwidth_to_compute_bound, schedule_network


@pytest.fixture(scope="module")
def alexnet():
    return paper_workload("alexnet")


@pytest.fixture(scope="module")
def alexnet_fc():
    return paper_workload("alexnet", include_fc=True)


class TestSchedule:
    def test_generous_bandwidth_is_compute_bound(self, alexnet):
        result = schedule_network(alexnet, bandwidth_bits_per_cycle=1e6)
        assert result.stall_cycles == pytest.approx(0.0, abs=1.0)
        assert not result.memory_bound_layers

    def test_starved_bandwidth_stalls(self, alexnet):
        result = schedule_network(alexnet, bandwidth_bits_per_cycle=1.0)
        assert result.bandwidth_bound
        assert result.makespan > result.compute_cycles * 2

    def test_makespan_monotone_in_bandwidth(self, alexnet):
        spans = [
            schedule_network(alexnet, bandwidth_bits_per_cycle=bw).makespan
            for bw in (4.0, 16.0, 64.0, 256.0)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(spans, spans[1:]))

    def test_layers_ordered_and_non_overlapping_compute(self, alexnet):
        result = schedule_network(alexnet, bandwidth_bits_per_cycle=64.0)
        for prev, cur in zip(result.layers, result.layers[1:]):
            assert cur.start >= prev.end - 1e-9

    def test_fc_layers_memory_bound_at_batch_1(self, alexnet_fc):
        """AlexNet's FC weights (58M) dominate their compute at batch 1 —
        the classic reason conv-era accelerators report conv layers."""
        result = schedule_network(alexnet_fc, bandwidth_bits_per_cycle=216.0)
        bound = set(result.memory_bound_layers)
        assert {"fc6", "fc7"} <= bound
        assert "conv2" not in bound

    def test_double_buffering_hides_transfers(self, alexnet):
        """At the Fig. 15 bandwidth, conv-layer prefetch mostly overlaps."""
        result = schedule_network(alexnet, bandwidth_bits_per_cycle=216.0)
        assert result.stall_cycles < result.compute_cycles * 0.25

    def test_invalid_bandwidth(self, alexnet):
        with pytest.raises(ValueError):
            schedule_network(alexnet, bandwidth_bits_per_cycle=0.0)


class TestBandwidthSearch:
    def test_search_converges(self, alexnet):
        bw = bandwidth_to_compute_bound(alexnet, tolerance=0.02)
        assert 1.0 < bw < 100000.0
        # At the found bandwidth the stall share respects the tolerance...
        result = schedule_network(alexnet, bandwidth_bits_per_cycle=bw)
        assert result.stall_cycles / result.compute_cycles <= 0.02 + 1e-6
        # ...and meaningfully below it the stalls exceed it.
        worse = schedule_network(alexnet, bandwidth_bits_per_cycle=bw / 4)
        assert worse.stall_cycles / worse.compute_cycles > 0.02

    def test_fc_network_needs_more_bandwidth(self, alexnet, alexnet_fc):
        conv_bw = bandwidth_to_compute_bound(alexnet)
        fc_bw = bandwidth_to_compute_bound(alexnet_fc)
        assert fc_bw > conv_bw * 3

    def test_simulator_override(self, alexnet):
        sim = OLAccelSimulator(olaccel16())
        bw = bandwidth_to_compute_bound(alexnet, simulator=sim)
        assert bw > 0
