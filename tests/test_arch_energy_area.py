"""Tests for the energy and area models (repro.arch.energy / .area)."""

import pytest

from repro.arch import (
    DEFAULT_AREA,
    EnergyBreakdown,
    EnergyModel,
    eyeriss_pe_area,
    iso_area_clusters,
    olaccel_area,
    olaccel_cluster_area,
    zena_pe_area,
)


class TestEnergyModel:
    def setup_method(self):
        self.em = EnergyModel()

    def test_mult_scales_with_bit_product(self):
        assert self.em.mult_energy(8, 8) == pytest.approx(4 * self.em.mult_energy(4, 4))
        assert self.em.mult_energy(16, 4) == pytest.approx(self.em.mult_energy(4, 16))

    def test_mac_energy_monotone_in_bits(self):
        e4 = self.em.mac_energy(4, 4)
        e8 = self.em.mac_energy(8, 8)
        e16 = self.em.mac_energy(16, 16)
        assert e4 < e8 < e16

    def test_mac_includes_accumulator_and_control(self):
        assert self.em.mac_energy(4, 4, acc_bits=24) > self.em.mult_energy(4, 4)

    def test_sram_capacity_scaling(self):
        small = self.em.sram_energy(8 * 1024 * 8, 64)
        big = self.em.sram_energy(32 * 1024 * 8, 64)
        assert big == pytest.approx(2 * small)  # sqrt(4x capacity)

    def test_sram_reference_point(self):
        # 64-bit read from an 8 KiB macro: the documented anchor (10 pJ at
        # 45 nm, scaled by TECH_SCALE).
        energy = self.em.sram_energy(8 * 1024 * 8, 64)
        assert energy == pytest.approx(10.0 * 1.8, rel=1e-6)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            self.em.sram_energy(0, 64)

    def test_dram_dominates_sram_per_bit(self):
        sram = self.em.sram_energy(4 * 1024 * 1024 * 8, 1)
        assert self.em.dram_energy(1) > sram


class TestEnergyBreakdown:
    def test_add_and_total(self):
        a = EnergyBreakdown(dram=1, buffer=2, local=3, logic=4)
        b = EnergyBreakdown(dram=10, buffer=20, local=30, logic=40)
        c = a + b
        assert c.total == 110
        a += b
        assert a.total == 110

    def test_normalized(self):
        e = EnergyBreakdown(dram=5, buffer=5, local=5, logic=5)
        n = e.normalized(40.0)
        assert n.total == pytest.approx(0.5)

    def test_normalized_invalid_reference(self):
        with pytest.raises(ValueError):
            EnergyBreakdown().normalized(0.0)

    def test_as_dict_keys(self):
        assert set(EnergyBreakdown().as_dict()) == {"dram", "buffer", "local", "logic"}


class TestAreaModel:
    def test_eyeriss_areas_match_table1(self):
        assert 165 * eyeriss_pe_area(16) == pytest.approx(1.53, abs=0.02)
        assert 165 * eyeriss_pe_area(8) == pytest.approx(0.96, abs=0.02)

    def test_zena_areas_match_table1(self):
        assert 168 * zena_pe_area(16) == pytest.approx(1.66, abs=0.05)
        assert 168 * zena_pe_area(8) == pytest.approx(1.01, abs=0.05)

    def test_iso_area_search_reproduces_mac_counts(self):
        """Table I: 768 MACs (8 clusters) at 16-bit, 576 (6 clusters) at 8-bit."""
        budget16 = 165 * eyeriss_pe_area(16) * 1.11
        budget8 = 165 * eyeriss_pe_area(8) * 1.11
        assert iso_area_clusters(budget16, 16) == 8
        assert iso_area_clusters(budget8, 8) == 6

    def test_olaccel_areas_near_paper(self):
        assert olaccel_area(8, 16) == pytest.approx(1.67, abs=0.15)
        assert olaccel_area(6, 8) == pytest.approx(0.93, abs=0.1)

    def test_cluster_area_shrinks_with_outlier_bits(self):
        assert olaccel_cluster_area(8) < olaccel_cluster_area(16)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            iso_area_clusters(0.0, 16)

    def test_groups_per_cluster_config(self):
        assert DEFAULT_AREA.groups_per_cluster == 6
        assert DEFAULT_AREA.lanes_per_group == 17
